//! P1: steady-state hot-path throughput and allocation census.
//!
//! The paper's regime of interest (`T_B ≈ n/√k` steps per run) executes
//! the mobility → spatial-hash → union–find → exchange pipeline hundreds
//! of thousands of times per experiment, so the per-step constant factor
//! *is* the experiment runtime. This binary measures that constant
//! directly, for a matrix of processes × grid sides × agent counts:
//!
//! * **ns/step** and **steps/sec** over a timed window of steady-state
//!   steps (after a warm-up that fills the scratch buffers);
//! * **allocs/step** and **bytes/step** via a counting global allocator
//!   — the tentpole claim is that a steady-state step performs **zero**
//!   heap allocations.
//!
//! Results are printed as a table and written to `BENCH_hotpath.json`
//! (the repo's perf-trajectory artifact; CI uploads it per commit).
//!
//! A closing section drives a multi-seed broadcast ensemble through
//! `Runner::run_with_state`, where each worker thread recycles one
//! simulation (engine buffer + scratch) across its whole seed batch via
//! `Simulation::reset`, and cross-checks the outcomes against fresh
//! per-seed constructions — the scratch-reuse determinism contract.
//!
//! Scale via `SG_SCALE` (`quick`/`full`), seed via `SG_SEED`, ensemble
//! threads via `SG_THREADS`, like every other `exp_*` binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_analysis::Runner;
use sparsegossip_bench::{verdict, ExpCtx};
use sparsegossip_core::{Broadcast, NullObserver, Process, SimConfig, Simulation};
use sparsegossip_grid::{Grid, Topology};

/// A pass-through allocator that counts allocations — the measurement
/// instrument behind the allocs/step column. Deallocations are not
/// counted: the claim under test is "the steady state allocates
/// nothing", and any alloc shows up here.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs_now() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// One measured scenario row.
struct Row {
    process: &'static str,
    side: u32,
    k: usize,
    r: u32,
    steps: u64,
    ns_per_step: f64,
    steps_per_sec: f64,
    allocs_per_step: f64,
    bytes_per_step: f64,
}

/// Steps `sim` for `warmup + steps` steps, timing and alloc-counting the
/// last `steps` of them. Completion does not stop the pipeline: a
/// completed process keeps exchanging over the live components, which is
/// exactly the steady-state workload under test.
fn measure_steps<P: Process, T: Topology>(
    sim: &mut Simulation<P, T>,
    rng: &mut SmallRng,
    warmup: u64,
    steps: u64,
) -> (f64, f64, f64, f64) {
    for _ in 0..warmup {
        let _ = sim.step(rng, &mut NullObserver);
    }
    let (a0, b0) = allocs_now();
    let t0 = Instant::now();
    for _ in 0..steps {
        let _ = sim.step(rng, &mut NullObserver);
    }
    let elapsed = t0.elapsed();
    let (a1, b1) = allocs_now();
    let ns_per_step = elapsed.as_nanos() as f64 / steps as f64;
    (
        ns_per_step,
        1e9 / ns_per_step,
        (a1 - a0) as f64 / steps as f64,
        (b1 - b0) as f64 / steps as f64,
    )
}

/// Sub-critical radius `√(n/k)/2`, the paper's regime of interest.
fn subcritical_radius(side: u32, k: usize) -> u32 {
    (((side as f64).powi(2) / k as f64).sqrt() / 2.0) as u32
}

fn scenario(process: &'static str, side: u32, k: usize, seed: u64, warmup: u64, steps: u64) -> Row {
    let r = match process {
        "infection" => 0, // contact-only by definition
        _ => subcritical_radius(side, k),
    };
    let config = SimConfig::builder(side, k)
        .radius(r)
        .build()
        .expect("valid scenario config");
    let mut rng = SmallRng::seed_from_u64(seed);
    let (ns_per_step, steps_per_sec, allocs_per_step, bytes_per_step) = match process {
        "broadcast" => {
            let mut sim = Simulation::broadcast(&config, &mut rng).expect("constructible");
            measure_steps(&mut sim, &mut rng, warmup, steps)
        }
        "gossip" => {
            let mut sim = Simulation::gossip(&config, &mut rng).expect("constructible");
            measure_steps(&mut sim, &mut rng, warmup, steps)
        }
        "infection" => {
            let mut sim = Simulation::infection(&config, &mut rng).expect("constructible");
            measure_steps(&mut sim, &mut rng, warmup, steps)
        }
        other => unreachable!("unknown process {other}"),
    };
    Row {
        process,
        side,
        k,
        r,
        steps,
        ns_per_step,
        steps_per_sec,
        allocs_per_step,
        bytes_per_step,
    }
}

/// Renders the rows as the JSON perf artifact.
fn to_json(ctx: &ExpCtx, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"exp_perf\",\n");
    out.push_str(&format!("  \"scale\": \"{:?}\",\n", ctx.scale));
    out.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    out.push_str("  \"unit\": {\"ns_per_step\": \"nanoseconds\", \"allocs_per_step\": \"heap allocations\"},\n");
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"process\": \"{}\", \"side\": {}, \"k\": {}, \"r\": {}, \"steps\": {}, \
             \"ns_per_step\": {:.1}, \"steps_per_sec\": {:.0}, \"allocs_per_step\": {}, \
             \"bytes_per_step\": {}}}{}\n",
            row.process,
            row.side,
            row.k,
            row.r,
            row.steps,
            row.ns_per_step,
            row.steps_per_sec,
            row.allocs_per_step,
            row.bytes_per_step,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Drives a broadcast ensemble through `Runner::run_with_state`: each
/// worker holds one simulation for its whole seed batch, recycled via
/// `Simulation::reset`, and the outcomes must equal per-seed fresh
/// constructions.
fn ensemble_check(ctx: &ExpCtx, side: u32, k: usize, reps: u32) -> bool {
    let config = SimConfig::builder(side, k)
        .radius(subcritical_radius(side, k))
        .build()
        .expect("valid ensemble config");
    let runner = Runner::new(ctx.seed).repetitions(reps).threads(ctx.threads);
    let t0 = Instant::now();
    let reused = runner.run_with_state(
        || None::<Simulation<Broadcast, Grid>>,
        |slot, seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let sim = match slot {
                // First seed on this worker: construct (warms the scratch).
                None => {
                    slot.insert(Simulation::broadcast(&config, &mut rng).expect("constructible"))
                }
                // Later seeds: reuse engine buffer + scratch wholesale.
                Some(sim) => {
                    sim.reset(
                        Broadcast::from_config(&config).expect("valid process"),
                        &mut rng,
                    )
                    .expect("matching agent count");
                    sim
                }
            };
            sim.run(&mut rng).broadcast_time
        },
    );
    let reused_elapsed = t0.elapsed();
    let fresh = runner.run(|seed| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sim = Simulation::broadcast(&config, &mut rng).expect("constructible");
        sim.run(&mut rng).broadcast_time
    });
    let identical = reused == fresh;
    println!(
        "ensemble: {reps} broadcast seeds (side {side}, k {k}) on {} threads, \
         one recycled sim per worker: {:.2}s; outcomes {} fresh construction",
        ctx.threads,
        reused_elapsed.as_secs_f64(),
        if identical {
            "IDENTICAL to"
        } else {
            "DIVERGE from"
        },
    );
    identical
}

fn main() {
    let ctx = ExpCtx::init(
        "P1",
        "steady-state hot-path throughput and allocation census",
        "a steady-state simulation step performs zero heap allocations",
    );
    let (warmup, steps) = ctx.pick((100u64, 2_000u64), (200, 20_000));
    let sides: &[u32] = ctx.pick(&[128, 512][..], &[128, 512, 1024][..]);

    let mut rows = Vec::new();
    for &side in sides {
        for &process in &["broadcast", "gossip", "infection"] {
            // k = side keeps the density at the paper's sparse regime
            // (k/n = 1/side); k = side/4 samples a sparser point.
            for k in [side as usize / 4, side as usize] {
                rows.push(scenario(process, side, k, ctx.seed, warmup, steps));
            }
        }
    }

    println!(
        "{:<10} {:>5} {:>6} {:>4} {:>7} {:>10} {:>12} {:>12} {:>11}",
        "process", "side", "k", "r", "steps", "ns/step", "steps/sec", "allocs/step", "bytes/step"
    );
    for row in &rows {
        println!(
            "{:<10} {:>5} {:>6} {:>4} {:>7} {:>10.1} {:>12.0} {:>12} {:>11}",
            row.process,
            row.side,
            row.k,
            row.r,
            row.steps,
            row.ns_per_step,
            row.steps_per_sec,
            row.allocs_per_step,
            row.bytes_per_step,
        );
    }
    println!();

    let ensemble_ok = ensemble_check(&ctx, 64, 32, ctx.pick(16, 64));
    println!();

    let json = to_json(&ctx, &rows);
    std::fs::write("BENCH_hotpath.json", &json).expect("writable BENCH_hotpath.json");
    println!("wrote BENCH_hotpath.json ({} rows)", rows.len());

    // The tentpole acceptance: zero steady-state allocs/step everywhere,
    // spotlighting broadcast on the 512-grid.
    let clean = rows.iter().all(|r| r.allocs_per_step == 0.0);
    let spotlight = rows
        .iter()
        .find(|r| r.process == "broadcast" && r.side == 512)
        .expect("512-grid broadcast row present");
    verdict(
        clean && ensemble_ok,
        &format!(
            "broadcast@512: {} allocs/step, {:.0} steps/sec; all {} scenarios \
             allocation-free: {}; ensemble determinism: {}",
            spotlight.allocs_per_step,
            spotlight.steps_per_sec,
            rows.len(),
            clean,
            ensemble_ok
        ),
    );
}
