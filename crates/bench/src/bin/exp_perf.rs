//! P1: steady-state hot-path throughput and allocation census.
//!
//! The paper's regime of interest (`T_B ≈ n/√k` steps per run) executes
//! the mobility → spatial-hash → labelling → exchange pipeline hundreds
//! of thousands of times per experiment, so the per-step constant factor
//! *is* the experiment runtime. This binary measures that constant
//! directly, for a matrix of processes × grid sides × agent counts, and
//! for **both** labelling strategies of the driver:
//!
//! * **full** — the classic path: hash rebuild + union–find over all
//!   `k` agents (forced by an observer that wants the full partition);
//! * **frontier** — the default `run()` path: for processes with a
//!   `Seeded` components scope (broadcast, infection, the frog model),
//!   the spatial hash is maintained incrementally from the engine's
//!   move log and only the components containing an informed agent are
//!   labelled. For `Full`-scope processes (gossip) the two strategies
//!   coincide.
//!
//! Reported per scenario: **ns/step** and **steps/sec** for both paths
//! over a timed window of steady-state steps (after a warm-up that
//! fills the scratch buffers), the full/frontier **speedup**, and
//! **allocs/step** / **bytes/step** via a counting global allocator —
//! the PR-3 invariant, now extended to the frontier path, is that a
//! steady-state step performs **zero** heap allocations on either.
//!
//! Results are printed as a table and written to `BENCH_hotpath.json`
//! (the repo's perf-trajectory artifact; CI uploads it per commit).
//! This binary is a CI gate: it exits nonzero if any scenario allocates
//! in the steady state, if the frontier and full paths disagree on any
//! cross-checked outcome, or if the recycled-simulation ensemble
//! diverges from fresh constructions.
//!
//! Scale via `SG_SCALE` (`quick`/`full`), seed via `SG_SEED`, ensemble
//! threads via `SG_THREADS`, like every other `exp_*` binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_analysis::Runner;
use sparsegossip_bench::{verdict, ExpCtx};
use sparsegossip_core::{
    Broadcast, Mobility, NullObserver, Observer, Process, SimConfig, Simulation, StepContext,
};
use sparsegossip_grid::{Grid, Topology};

/// A pass-through allocator that counts allocations — the measurement
/// instrument behind the allocs/step column. Deallocations are not
/// counted: the claim under test is "the steady state allocates
/// nothing", and any alloc shows up here.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs_now() -> (u64, u64) {
    (
        ALLOC_CALLS.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

/// A do-nothing observer that still demands the full visibility
/// partition, forcing the driver onto the classic rebuild-everything
/// path — the "before" side of every full-vs-frontier comparison.
struct FullPathProbe;

impl Observer for FullPathProbe {
    fn on_step(&mut self, _ctx: StepContext<'_>) {}
}

/// One measured scenario row.
struct Row {
    process: &'static str,
    side: u32,
    k: usize,
    r: u32,
    steps: u64,
    /// Classic path: full hash rebuild + whole-partition labelling.
    ns_per_step_full: f64,
    /// Default `run()` path: frontier-sparse for `Seeded`-scope
    /// processes, identical to `ns_per_step_full` machinery otherwise.
    ns_per_step: f64,
    steps_per_sec: f64,
    /// Steady-state allocations on the full path (must be 0).
    allocs_full: f64,
    /// Steady-state allocations on the default path (must be 0).
    allocs_per_step: f64,
    bytes_per_step: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.ns_per_step_full / self.ns_per_step
    }

    fn allocation_free(&self) -> bool {
        self.allocs_full == 0.0 && self.allocs_per_step == 0.0
    }
}

/// One timed strategy measurement: steps `sim` for `warmup + steps`
/// steps under `observer`, timing and alloc-counting the last `steps`.
/// Completion does not stop the pipeline: a completed process keeps
/// exchanging over the live components, which is exactly the
/// steady-state workload under test.
fn measure_steps<P: Process, T: Topology, O: Observer>(
    sim: &mut Simulation<P, T>,
    rng: &mut SmallRng,
    observer: &mut O,
    warmup: u64,
    steps: u64,
) -> (f64, f64, f64) {
    for _ in 0..warmup {
        let _ = sim.step(rng, observer);
    }
    let (a0, b0) = allocs_now();
    let t0 = Instant::now();
    for _ in 0..steps {
        let _ = sim.step(rng, observer);
    }
    let elapsed = t0.elapsed();
    let (a1, b1) = allocs_now();
    (
        elapsed.as_nanos() as f64 / steps as f64,
        (a1 - a0) as f64 / steps as f64,
        (b1 - b0) as f64 / steps as f64,
    )
}

/// Sub-critical radius `√(n/k)/2`, the paper's regime of interest.
fn subcritical_radius(side: u32, k: usize) -> u32 {
    (((side as f64).powi(2) / k as f64).sqrt() / 2.0) as u32
}

fn config_for(process: &'static str, side: u32, k: usize) -> (SimConfig, u32) {
    let r = match process {
        "infection" => 0, // contact-only by definition
        _ => subcritical_radius(side, k),
    };
    let mut builder = SimConfig::builder(side, k).radius(r);
    if process == "frog" {
        builder = builder.mobility(Mobility::InformedOnly);
    }
    (builder.build().expect("valid scenario config"), r)
}

/// Measures one scenario on both strategies, from identical RNG states
/// (fresh simulation per strategy; an observer draws nothing, so the
/// step sequences are draw-for-draw the same workload).
fn scenario(process: &'static str, side: u32, k: usize, seed: u64, warmup: u64, steps: u64) -> Row {
    let (config, r) = config_for(process, side, k);
    fn both<P: Process, T: Topology>(
        mut make: impl FnMut(&mut SmallRng) -> Simulation<P, T>,
        seed: u64,
        warmup: u64,
        steps: u64,
    ) -> (f64, f64, f64, f64, f64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sim = make(&mut rng);
        let (ns_full, allocs_full, _) =
            measure_steps(&mut sim, &mut rng, &mut FullPathProbe, warmup, steps);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sim = make(&mut rng);
        let (ns_frontier, a, b) =
            measure_steps(&mut sim, &mut rng, &mut NullObserver, warmup, steps);
        (ns_full, ns_frontier, allocs_full, a, b)
    }
    let (ns_per_step_full, ns_per_step, allocs_full, allocs_per_step, bytes_per_step) =
        match process {
            "broadcast" => both(
                |rng| Simulation::broadcast(&config, rng).expect("constructible"),
                seed,
                warmup,
                steps,
            ),
            "frog" => both(
                |rng| Simulation::frog(&config, rng).expect("constructible"),
                seed,
                warmup,
                steps,
            ),
            "gossip" => both(
                |rng| Simulation::gossip(&config, rng).expect("constructible"),
                seed,
                warmup,
                steps,
            ),
            "infection" => both(
                |rng| Simulation::infection(&config, rng).expect("constructible"),
                seed,
                warmup,
                steps,
            ),
            other => unreachable!("unknown process {other}"),
        };
    Row {
        process,
        side,
        k,
        r,
        steps,
        ns_per_step_full,
        ns_per_step,
        steps_per_sec: 1e9 / ns_per_step,
        allocs_full,
        allocs_per_step,
        bytes_per_step,
    }
}

/// Renders the rows as the JSON perf artifact.
fn to_json(ctx: &ExpCtx, rows: &[Row]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"exp_perf\",\n");
    out.push_str(&format!("  \"scale\": \"{:?}\",\n", ctx.scale));
    out.push_str(&format!("  \"seed\": {},\n", ctx.seed));
    out.push_str(
        "  \"unit\": {\"ns_per_step\": \"nanoseconds (default run path: frontier-sparse where \
         the process allows)\", \"ns_per_step_full\": \"nanoseconds (full-partition path)\", \
         \"allocs_per_step\": \"heap allocations (default path; allocs_full: full path)\"},\n",
    );
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"process\": \"{}\", \"side\": {}, \"k\": {}, \"r\": {}, \"steps\": {}, \
             \"ns_per_step_full\": {:.1}, \"ns_per_step\": {:.1}, \"speedup\": {:.2}, \
             \"steps_per_sec\": {:.0}, \"allocs_full\": {}, \"allocs_per_step\": {}, \
             \"bytes_per_step\": {}}}{}\n",
            row.process,
            row.side,
            row.k,
            row.r,
            row.steps,
            row.ns_per_step_full,
            row.ns_per_step,
            row.speedup(),
            row.steps_per_sec,
            row.allocs_full,
            row.allocs_per_step,
            row.bytes_per_step,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs matched seeds to completion on both strategies and compares the
/// outcomes — the frontier engine must be draw-for-draw invisible.
fn frontier_determinism_check(reps: u64) -> bool {
    let mut ok = true;
    for seed in 0..reps {
        let (config, _) = config_for("broadcast", 64, 32);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sim = Simulation::broadcast(&config, &mut rng).expect("constructible");
        let sparse = sim.run(&mut rng);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sim = Simulation::broadcast(&config, &mut rng).expect("constructible");
        ok &= sparse == sim.run_with(&mut rng, &mut FullPathProbe);

        let (config, _) = config_for("frog", 64, 32);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sim = Simulation::frog(&config, &mut rng).expect("constructible");
        let sparse = sim.run(&mut rng);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sim = Simulation::frog(&config, &mut rng).expect("constructible");
        ok &= sparse == sim.run_with(&mut rng, &mut FullPathProbe);
    }
    println!(
        "frontier determinism: {reps} broadcast + {reps} frog seeds, frontier vs full path: {}",
        if ok { "IDENTICAL" } else { "DIVERGE" }
    );
    ok
}

/// Drives a broadcast ensemble through `Runner::run_with_state`: each
/// worker holds one simulation for its whole seed batch, recycled via
/// `Simulation::reset`, and the outcomes must equal per-seed fresh
/// constructions.
fn ensemble_check(ctx: &ExpCtx, side: u32, k: usize, reps: u32) -> bool {
    let config = SimConfig::builder(side, k)
        .radius(subcritical_radius(side, k))
        .build()
        .expect("valid ensemble config");
    let runner = Runner::new(ctx.seed).repetitions(reps).threads(ctx.threads);
    let t0 = Instant::now();
    let reused = runner.run_with_state(
        || None::<Simulation<Broadcast, Grid>>,
        |slot, seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let sim = match slot {
                // First seed on this worker: construct (warms the scratch).
                None => {
                    slot.insert(Simulation::broadcast(&config, &mut rng).expect("constructible"))
                }
                // Later seeds: reuse engine buffer + scratch wholesale.
                Some(sim) => {
                    sim.reset(
                        Broadcast::from_config(&config).expect("valid process"),
                        &mut rng,
                    )
                    .expect("matching agent count");
                    sim
                }
            };
            sim.run(&mut rng).broadcast_time
        },
    );
    let reused_elapsed = t0.elapsed();
    let fresh = runner.run(|seed| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut sim = Simulation::broadcast(&config, &mut rng).expect("constructible");
        sim.run(&mut rng).broadcast_time
    });
    let identical = reused == fresh;
    println!(
        "ensemble: {reps} broadcast seeds (side {side}, k {k}) on {} threads, \
         one recycled sim per worker: {:.2}s; outcomes {} fresh construction",
        ctx.threads,
        reused_elapsed.as_secs_f64(),
        if identical {
            "IDENTICAL to"
        } else {
            "DIVERGE from"
        },
    );
    identical
}

fn main() -> ExitCode {
    let ctx = ExpCtx::init(
        "P1",
        "steady-state hot-path throughput and allocation census",
        "a steady-state step allocates nothing, and frontier-sparse stepping beats the full \
         rebuild in the sparse-informed and masked-mobility regimes",
    );
    let (warmup, steps) = ctx.pick((100u64, 2_000u64), (200, 20_000));
    let sides: &[u32] = ctx.pick(&[128, 512][..], &[128, 512, 1024][..]);

    let mut rows = Vec::new();
    for &side in sides {
        for &process in &["broadcast", "gossip", "infection"] {
            // k = side keeps the density at the paper's sparse regime
            // (k/n = 1/side); k = side/4 samples a sparser point.
            for k in [side as usize / 4, side as usize] {
                rows.push(scenario(process, side, k, ctx.seed, warmup, steps));
            }
        }
    }
    // Frontier-regime scenarios at side 512: masked mobility (the frog
    // model, where most agents never move) and low-informed-fraction
    // broadcast (T_B ≈ n/√k ≫ the measured window, so the informed set
    // stays a small fraction of k throughout). These are the regimes
    // the frontier-sparse engine exists for.
    let frontier_side = 512;
    for k in [frontier_side as usize / 4, frontier_side as usize] {
        rows.push(scenario("frog", frontier_side, k, ctx.seed, warmup, steps));
    }
    rows.push(scenario(
        "broadcast",
        frontier_side,
        4 * frontier_side as usize,
        ctx.seed,
        warmup,
        steps,
    ));

    println!(
        "{:<10} {:>5} {:>6} {:>4} {:>7} {:>12} {:>12} {:>8} {:>12} {:>11} {:>12} {:>11}",
        "process",
        "side",
        "k",
        "r",
        "steps",
        "ns/step full",
        "ns/step",
        "speedup",
        "steps/sec",
        "allocs full",
        "allocs/step",
        "bytes/step"
    );
    for row in &rows {
        println!(
            "{:<10} {:>5} {:>6} {:>4} {:>7} {:>12.1} {:>12.1} {:>7.2}x {:>12.0} {:>11} {:>12} {:>11}",
            row.process,
            row.side,
            row.k,
            row.r,
            row.steps,
            row.ns_per_step_full,
            row.ns_per_step,
            row.speedup(),
            row.steps_per_sec,
            row.allocs_full,
            row.allocs_per_step,
            row.bytes_per_step,
        );
    }
    println!();

    let determinism_ok = frontier_determinism_check(ctx.pick(8, 32));
    let ensemble_ok = ensemble_check(&ctx, 64, 32, ctx.pick(16, 64));
    println!();

    let json = to_json(&ctx, &rows);
    std::fs::write("BENCH_hotpath.json", &json).expect("writable BENCH_hotpath.json");
    println!("wrote BENCH_hotpath.json ({} rows)", rows.len());

    // The acceptance gates: zero steady-state allocs/step everywhere
    // (both paths), frontier/full and recycled/fresh determinism, and a
    // ≥ 2× frontier win in at least one side-512 frontier scenario
    // (frog masks sit near 10–30×, so the 2× floor has a wide margin
    // against machine noise).
    let clean = rows.iter().all(Row::allocation_free);
    let best_frontier = rows
        .iter()
        .filter(|r| r.side == 512 && (r.process == "frog" || r.process == "broadcast"))
        .map(Row::speedup)
        .fold(0.0f64, f64::max);
    let ok = clean && ensemble_ok && determinism_ok && best_frontier >= 2.0;
    verdict(
        ok,
        &format!(
            "all {} scenarios allocation-free: {clean}; frontier vs full paths identical: \
             {determinism_ok}; ensemble determinism: {ensemble_ok}; best side-512 frontier \
             speedup: {best_frontier:.2}x",
            rows.len(),
        ),
    );
    // A MISMATCH must fail the caller (this binary is the CI gate for
    // the zero-allocation and frontier-equivalence invariants).
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
