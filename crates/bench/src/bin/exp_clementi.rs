//! E14 — the dense-MANET baseline of Clementi et al. (§1.1, refs \[7,8\]).
//!
//! Their model: `k = Θ(n)` agents, jumps of radius ρ, one-hop exchange
//! within radius `R` per step; result `T_B = Θ(√n / R)` w.h.p. for
//! `ρ = O(R)`. Expect a log–log slope of ≈ −1 in `R`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_analysis::{power_law_fit, Sweep, Table};
use sparsegossip_bench::{fmt_exponent, verdict, ExpCtx};
use sparsegossip_core::baseline::{ClementiConfig, ClementiSim};

fn clementi_tb(side: u32, k: usize, big_r: u32, rho: u32, seed: u64) -> f64 {
    let config = ClementiConfig {
        side,
        k,
        exchange_radius: big_r,
        jump_radius: rho,
        max_steps: 1_000_000,
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sim = ClementiSim::new(&config, &mut rng).expect("constructible sim");
    sim.run(&mut rng).broadcast_time.unwrap_or(config.max_steps) as f64
}

fn main() {
    let ctx = ExpCtx::init(
        "E14",
        "dense-MANET baseline (Clementi et al.): T_B vs exchange radius R",
        "for k = Theta(n), rho = O(R): T_B = Theta(sqrt(n)/R) => slope -1 in R",
    );
    let side: u32 = ctx.pick(48, 96);
    let k = (u64::from(side) * u64::from(side) / 2) as usize; // dense: k = n/2
    let rs: Vec<u32> = ctx.pick(vec![2, 3, 4, 6, 8, 12], vec![2, 3, 4, 6, 8, 12, 16, 24]);
    let reps = ctx.pick(8, 16);

    let sweep = Sweep::new(ctx.seed).replicates(reps).threads(ctx.threads);
    let points = sweep.run(&rs, |&big_r, seed| {
        clementi_tb(side, k, big_r, big_r.min(2), seed)
    });

    let sqrt_n = f64::from(side);
    let mut table = Table::new(vec![
        "R".into(),
        "mean T_B".into(),
        "ci95".into(),
        "sqrt(n)/R".into(),
        "measured/shape".into(),
    ]);
    for p in &points {
        let shape = sqrt_n / f64::from(p.param);
        table.push_row(vec![
            p.param.to_string(),
            format!("{:.1}", p.summary.mean()),
            format!("{:.1}", p.summary.ci95_half_width()),
            format!("{shape:.1}"),
            format!("{:.3}", p.summary.mean() / shape),
        ]);
    }
    println!("{table}");
    println!(
        "k = {k} agents on n = {} nodes (dense regime)",
        u64::from(side) * u64::from(side)
    );

    let xs: Vec<f64> = points.iter().map(|p| f64::from(p.param)).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.summary.mean()).collect();
    let fit = power_law_fit(&xs, &ys).expect("enough points");
    println!("fitted exponent of T_B ~ R^e: e = {}", fmt_exponent(&fit));
    println!("Clementi et al.: e = -1");
    verdict(
        (fit.exponent + 1.0).abs() < 0.3,
        &format!("measured e = {:.3} vs -1.0", fit.exponent),
    );
}
