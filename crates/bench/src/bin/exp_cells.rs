//! E17 — cell-by-cell exploration (the Theorem 1 proof machinery).
//!
//! Theorem 1's upper bound works by tessellating the grid into `ℓ×ℓ`
//! cells and showing (i) every cell is reached by an informed agent by
//! time `T* = (2√n/ℓ)(T₁+T₂)`, and (ii) broadcast completes shortly
//! after. Empirically: the all-cells-reached time `T_cells` should be
//! of the same order as `T_B` (neither vanishing nor dominating), and
//! cell reach times should grow with distance from the source cell
//! (the spreading front).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_analysis::{linear_fit, Summary, Table};
use sparsegossip_bench::{verdict, ExpCtx};
use sparsegossip_core::{CellReachTimes, SimConfig, Simulation};
use sparsegossip_grid::Tessellation;

fn main() {
    let ctx = ExpCtx::init(
        "E17",
        "cell-by-cell exploration of the tessellation (Theorem 1 machinery)",
        "all cells reached within O~(T_B); reach time grows with distance from source",
    );
    let side: u32 = ctx.pick(96, 160);
    let k: usize = 48;
    let cell_side: u32 = ctx.pick(12, 20);
    let reps: u64 = ctx.pick(8, 16);

    let mut cells_over_tb = Vec::new();
    let mut distance_slopes = Vec::new();
    for i in 0..reps {
        let config = SimConfig::builder(side, k)
            .radius(0)
            .build()
            .expect("valid");
        let mut rng = SmallRng::seed_from_u64(ctx.seed ^ (0xCE11 + i));
        let mut sim = Simulation::broadcast(&config, &mut rng).expect("constructible");
        let source_pos = sim.positions()[config.source()];
        let tess = Tessellation::new(side, cell_side).expect("valid tessellation");
        let source_cell = tess.cell_of(source_pos);
        let mut reach = CellReachTimes::new(tess);
        let out = sim.run_with(&mut rng, &mut reach);
        let tb = out.broadcast_time.expect("completes") as f64;
        let t_cells = reach.all_reached_at().map_or(f64::NAN, |t| t as f64);
        if t_cells.is_finite() && tb > 0.0 {
            cells_over_tb.push(t_cells / tb);
        }
        // Reach time vs cell distance from the source cell.
        let tess = *reach.tessellation();
        let (xs, ys): (Vec<f64>, Vec<f64>) = reach
            .first_reach()
            .iter()
            .enumerate()
            .filter_map(|(c, t)| {
                t.map(|t| {
                    let center = tess.cell_center(sparsegossip_grid::CellId::new(c as u32));
                    let src_center = tess.cell_center(source_cell);
                    (f64::from(center.manhattan(src_center)), t as f64)
                })
            })
            .unzip();
        if let Some(fit) = linear_fit(&xs, &ys) {
            distance_slopes.push(fit.slope);
        }
    }
    let ratio = Summary::from_slice(&cells_over_tb);
    let slope = Summary::from_slice(&distance_slopes);

    let mut table = Table::new(vec!["quantity".into(), "mean".into(), "range".into()]);
    table.push_row(vec![
        "T_cells / T_B".into(),
        format!("{:.3}", ratio.mean()),
        format!("[{:.3}, {:.3}]", ratio.min(), ratio.max()),
    ]);
    table.push_row(vec![
        "reach-time slope vs distance (steps/node)".into(),
        format!("{:.1}", slope.mean()),
        format!("[{:.1}, {:.1}]", slope.min(), slope.max()),
    ]);
    println!("{table}");
    println!("(cells of side {cell_side} on a {side}-grid, k = {k}, r = 0, {reps} runs)");

    verdict(
        ratio.mean() > 0.05 && ratio.mean() <= 1.05 && slope.mean() > 0.0,
        &format!(
            "cells all reached at {:.2} T_B (same order); front advances at {:.1} steps/node",
            ratio.mean(),
            slope.mean()
        ),
    );
}
