//! E15 — frontier advance of the informed area (Theorem 2 machinery).
//!
//! The lower-bound proof shows the rightmost informed x-coordinate
//! advances at most `(γ log n)/2` per `γ²/(144 log n)` steps below the
//! percolation point (γ ≈ √(n/k)-scale), i.e. the frontier speed is
//! `Õ(√k/√n · polylog)` per step. We track the frontier of actual runs
//! and check its average speed is far below the naive ballistic rate
//! and consistent with `T_B = Ω̃(n/√k)`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_analysis::{Summary, Table};
use sparsegossip_bench::{verdict, ExpCtx};
use sparsegossip_core::theory::broadcast_lower_bound_shape;
use sparsegossip_core::{FrontierTracker, SimConfig, Simulation};

fn main() {
    let ctx = ExpCtx::init(
        "E15",
        "frontier advance rate of the informed area (Theorem 2)",
        "frontier speed O~(sqrt(k)/sqrt(n)) per step => T_B = Omega~(n/sqrt(k))",
    );
    let side: u32 = ctx.pick(128, 192);
    let k: usize = 64;
    let n = f64::from(side) * f64::from(side);
    let reps: u64 = ctx.pick(8, 16);

    let mut speeds = Vec::new();
    let mut tbs = Vec::new();
    for i in 0..reps {
        let config = SimConfig::builder(side, k)
            .radius(0)
            .build()
            .expect("valid");
        let mut rng = SmallRng::seed_from_u64(ctx.seed ^ (0xF0 + i));
        let mut sim = Simulation::broadcast(&config, &mut rng).expect("constructible");
        let mut tracker = FrontierTracker::new();
        let out = sim.run_with(&mut rng, &mut tracker);
        let tb = out.broadcast_time.unwrap_or(config.max_steps());
        let f = tracker.frontier();
        if let (Some(&first), Some(&last)) = (f.first(), f.last()) {
            let advance = f64::from(last.saturating_sub(first));
            speeds.push(advance / f.len() as f64);
        }
        tbs.push(tb as f64);
    }
    let speed = Summary::from_slice(&speeds);
    let tb = Summary::from_slice(&tbs);

    let mut table = Table::new(vec!["quantity".into(), "value".into()]);
    table.push_row(vec![
        "mean frontier speed (nodes/step)".into(),
        format!("{:.5}", speed.mean()),
    ]);
    table.push_row(vec!["ballistic walk speed bound".into(), "0.8".into()]);
    table.push_row(vec![
        "theory speed scale sqrt(k)/sqrt(n)".into(),
        format!("{:.5}", (k as f64).sqrt() / n.sqrt()),
    ]);
    table.push_row(vec!["mean T_B".into(), format!("{:.0}", tb.mean())]);
    table.push_row(vec![
        "Theorem 2 floor n/(sqrt(k) ln^2 n)".into(),
        format!("{:.0}", broadcast_lower_bound_shape(n, k as f64)),
    ]);
    println!("{table}");

    // Two checks: frontier is much slower than ballistic, and measured
    // T_B respects the Theorem 2 lower bound.
    let floor = broadcast_lower_bound_shape(n, k as f64);
    let subballistic = speed.mean() < 0.1;
    let above_floor = tb.mean() >= floor;
    verdict(
        subballistic && above_floor,
        &format!(
            "frontier speed {:.5} << 0.8; mean T_B {:.0} >= lower-bound shape {:.0}",
            speed.mean(),
            tb.mean(),
            floor
        ),
    );
}
