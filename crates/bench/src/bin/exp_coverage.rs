//! E10 — coverage time vs broadcast time (§4).
//!
//! Claim: `T_C ≈ T_B = Õ(n/√k)` in the dynamic model — the time for
//! informed agents to touch every grid node scales like the broadcast
//! time (coverage completes within a polylog factor of broadcast).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_analysis::{power_law_fit, Sweep, Table};
use sparsegossip_bench::{fmt_exponent, verdict, ExpCtx};
use sparsegossip_core::{SimConfig, Simulation};

fn coverage_pair(side: u32, k: usize, seed: u64) -> (f64, f64) {
    let config = SimConfig::builder(side, k)
        .radius(0)
        .max_steps(SimConfig::default_step_cap(side, k) * 4)
        .build()
        .expect("valid config");
    let mut rng = SmallRng::seed_from_u64(seed);
    let out = Simulation::coverage(&config, &mut rng)
        .expect("constructible sim")
        .run(&mut rng);
    (
        out.broadcast_time.unwrap_or(config.max_steps()) as f64,
        out.coverage_time.unwrap_or(config.max_steps()) as f64,
    )
}

fn main() {
    let ctx = ExpCtx::init(
        "E10",
        "coverage time T_C vs broadcast time T_B (Section 4)",
        "T_C ~ T_B = O~(n/sqrt(k)): bounded T_C/T_B, same k-exponent",
    );
    let side: u32 = ctx.pick(48, 96);
    let ks: Vec<usize> = ctx.pick(vec![8, 16, 32, 64], vec![8, 16, 32, 64, 128]);
    let reps = ctx.pick(8, 16);

    let sweep = Sweep::new(ctx.seed).replicates(reps).threads(ctx.threads);
    let tb = sweep.run(&ks, |&k, seed| coverage_pair(side, k, seed).0);
    let tc = sweep.run(&ks, |&k, seed| coverage_pair(side, k, seed).1);

    let mut table = Table::new(vec![
        "k".into(),
        "T_B".into(),
        "T_C".into(),
        "T_C/T_B".into(),
    ]);
    let mut ratios = Vec::new();
    for (b, c) in tb.iter().zip(&tc) {
        let r = c.summary.mean() / b.summary.mean();
        ratios.push(r);
        table.push_row(vec![
            b.param.to_string(),
            format!("{:.1}", b.summary.mean()),
            format!("{:.1}", c.summary.mean()),
            format!("{r:.2}"),
        ]);
    }
    println!("{table}");

    let xs: Vec<f64> = tc.iter().map(|p| p.param as f64).collect();
    let ys: Vec<f64> = tc.iter().map(|p| p.summary.mean()).collect();
    let fit = power_law_fit(&xs, &ys).expect("enough points");
    println!("coverage exponent of T_C ~ k^e: e = {}", fmt_exponent(&fit));
    let max_ratio = ratios.iter().cloned().fold(f64::MIN, f64::max);
    let min_ratio = ratios.iter().cloned().fold(f64::MAX, f64::min);
    // T_C ≈ T_B up to polylog: the ratio stays within a small band, and
    // the exponent sits between the broadcast-dominated (-1/2) and
    // cover-dominated (-1) regimes (both are Õ(n/√k) at these sizes).
    verdict(
        (-1.1..=-0.4).contains(&fit.exponent) && max_ratio < 10.0 && min_ratio > 0.3,
        &format!(
            "e = {:.3} in [-1.1, -0.4]; T_C/T_B in [{min_ratio:.2}, {max_ratio:.2}] (bounded)",
            fit.exponent
        ),
    );
}
