//! E7 — cover time of k independent walks (§4 by-product).
//!
//! Claim: the time for `k` uniformly-placed walks to touch every node
//! is `O(n log²n / k + n log n)` w.h.p. — near-linear speedup in `k`
//! until the additive `n log n` term takes over.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_analysis::{power_law_fit, Sweep, Table};
use sparsegossip_bench::{fmt_exponent, verdict, ExpCtx};
use sparsegossip_core::theory::cover_time_shape;
use sparsegossip_grid::Grid;
use sparsegossip_walks::multi_cover;

fn cover(side: u32, k: usize, seed: u64) -> f64 {
    let grid = Grid::new(side).expect("valid side");
    let mut rng = SmallRng::seed_from_u64(seed);
    let cap = 200u64 * u64::from(side) * u64::from(side); // ≫ single-walk cover time
    let run = multi_cover(grid, k, cap, &mut rng).expect("agents");
    run.cover_time.unwrap_or(cap) as f64
}

fn main() {
    let ctx = ExpCtx::init(
        "E7",
        "cover time of k independent walks (Section 4)",
        "T_cover = O(n log^2 n / k + n log n): ~1/k decay, flattening at large k",
    );
    let side: u32 = ctx.pick(64, 96);
    let n = f64::from(side) * f64::from(side);
    let ks: Vec<usize> = ctx.pick(
        vec![2, 4, 8, 16, 32, 64],
        vec![2, 4, 8, 16, 32, 64, 128, 256],
    );
    let reps = ctx.pick(8, 20);

    let sweep = Sweep::new(ctx.seed).replicates(reps).threads(ctx.threads);
    let points = sweep.run(&ks, |&k, seed| cover(side, k, seed));

    let mut table = Table::new(vec![
        "k".into(),
        "mean cover time".into(),
        "ci95".into(),
        "bound shape".into(),
        "measured/shape".into(),
    ]);
    for p in &points {
        let shape = cover_time_shape(n, p.param as f64);
        table.push_row(vec![
            p.param.to_string(),
            format!("{:.0}", p.summary.mean()),
            format!("{:.0}", p.summary.ci95_half_width()),
            format!("{shape:.0}"),
            format!("{:.3}", p.summary.mean() / shape),
        ]);
    }
    println!("{table}");

    // Fit only the small-k regime, where the n log²n/k term dominates.
    let small: Vec<&sparsegossip_analysis::SweepPoint<usize>> =
        points.iter().filter(|p| p.param <= 16).collect();
    let xs: Vec<f64> = small.iter().map(|p| p.param as f64).collect();
    let ys: Vec<f64> = small.iter().map(|p| p.summary.mean()).collect();
    let fit = power_law_fit(&xs, &ys).expect("enough points");
    println!(
        "small-k exponent of T_cover ~ k^e: e = {}",
        fmt_exponent(&fit)
    );
    println!("paper: e = -1 in the k-dominated regime (flattening later)");

    // The claim is an upper bound: measured cover times must never
    // exceed the bound shape (constant 1 already suffices empirically),
    // and the k-dominated regime must show the ~1/k decay. The additive
    // n·log n flattening lies far above feasible simulation sizes (its
    // hidden constant is small), so it is reported but not gated on.
    let max_ratio = points
        .iter()
        .map(|p| p.summary.mean() / cover_time_shape(n, p.param as f64))
        .fold(f64::MIN, f64::max);
    println!("max measured/bound ratio: {max_ratio:.3} (must stay <= 1: the bound holds)");
    verdict(
        (-1.3..=-0.75).contains(&fit.exponent) && max_ratio <= 1.0,
        &format!(
            "small-k exponent {:.3} ≈ -1; bound respected uniformly (max ratio {max_ratio:.2})",
            fit.exponent
        ),
    );
}
