//! E20 — diffusive scaling of the lazy walk.
//!
//! Every horizon in the paper (`d²` steps in Lemmas 1 and 3, `ℓ²`-sized
//! intervals in Theorem 1, `γ²/144 log n` windows in Lemma 7) rests on
//! the walk being diffusive: mean squared displacement `MSD(t) ≈ 0.8·t`
//! in the interior (move probability 4/5), saturating at the boundary
//! scale. We verify the slope and the saturation.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_analysis::{linear_fit, Table};
use sparsegossip_bench::{verdict, ExpCtx};
use sparsegossip_grid::{Grid, Point};
use sparsegossip_walks::{msd_curve, LAZY_WALK_MSD_SLOPE};

fn main() {
    let ctx = ExpCtx::init(
        "E20",
        "mean squared displacement of the lazy walk",
        "MSD(t) = (4/5) t in the interior; saturation at the boundary scale",
    );
    let side: u32 = ctx.pick(512, 1024);
    let trials: u32 = ctx.pick(800, 3000);
    let checkpoints: Vec<u64> = vec![25, 50, 100, 200, 400, 800];

    let grid = Grid::new(side).expect("valid side");
    let mut rng = SmallRng::seed_from_u64(ctx.seed);
    let mid = Point::new(side / 2, side / 2);
    let curve = msd_curve(&grid, mid, &checkpoints, trials, &mut rng);

    let mut table = Table::new(vec!["t".into(), "MSD".into(), "MSD/t".into()]);
    for (t, msd) in checkpoints.iter().zip(&curve) {
        table.push_row(vec![
            t.to_string(),
            format!("{msd:.1}"),
            format!("{:.3}", msd / *t as f64),
        ]);
    }
    println!("{table}");

    let ts: Vec<f64> = checkpoints.iter().map(|&t| t as f64).collect();
    let fit = linear_fit(&ts, &curve).expect("fit");
    println!(
        "fitted MSD slope: {:.3} ± {:.3} (theory: {LAZY_WALK_MSD_SLOPE})",
        fit.slope, fit.slope_std_err
    );

    // Saturation on a small grid: MSD at long times is capped near the
    // squared grid scale instead of growing linearly.
    let small = Grid::new(16).expect("valid side");
    let mut rng = SmallRng::seed_from_u64(ctx.seed ^ 0xD1F);
    let sat = msd_curve(
        &small,
        Point::new(8, 8),
        &[100, 1000, 10_000],
        trials,
        &mut rng,
    );
    println!(
        "saturation on a 16-grid: MSD(100) = {:.1}, MSD(1000) = {:.1}, MSD(10000) = {:.1}",
        sat[0], sat[1], sat[2]
    );
    let saturated = sat[2] / sat[1];
    verdict(
        (fit.slope - LAZY_WALK_MSD_SLOPE).abs() < 0.05 && saturated < 1.3,
        &format!(
            "interior slope {:.3} ≈ 0.8; boundary saturation ratio {saturated:.2} ≈ 1",
            fit.slope
        ),
    );
}
