//! E19 — mobility barriers (the paper's §4 future-work direction).
//!
//! "We are working now on extending our modeling and analysis
//! techniques to handle more complex planar domains that include both
//! communication and mobility barriers." We quantify the effect: a
//! wall with a narrow gap forces all rumor traffic through a
//! bottleneck, inflating `T_B` relative to the open grid — and the
//! inflation grows as the gap narrows.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_analysis::{Sweep, Table};
use sparsegossip_bench::{verdict, ExpCtx};
use sparsegossip_core::{Broadcast, SimConfig, Simulation};
use sparsegossip_grid::{BarrierGrid, Point};

/// Broadcast time on a grid with a vertical wall at x = side/2 with a
/// centered gap of the given height (`gap == side` means no wall).
fn tb_with_gap(side: u32, k: usize, gap: u32, seed: u64) -> f64 {
    let cap = SimConfig::default_step_cap(side, k) * 8;
    let mut rng = SmallRng::seed_from_u64(seed);
    let topo = if gap >= side {
        BarrierGrid::new(side).expect("valid side")
    } else {
        let x = side / 2;
        let gap_lo = (side - gap) / 2;
        let gap_hi = gap_lo + gap - 1;
        let mut rects = Vec::new();
        if gap_lo > 0 {
            rects.push((Point::new(x, 0), Point::new(x, gap_lo - 1)));
        }
        if gap_hi + 1 < side {
            rects.push((Point::new(x, gap_hi + 1), Point::new(x, side - 1)));
        }
        let g = BarrierGrid::with_barriers(side, &rects).expect("valid barriers");
        assert!(g.is_connected(), "gap must keep the domain connected");
        g
    };
    let process = Broadcast::new(k, 0).expect("valid process");
    let mut sim = Simulation::new(topo, k, 0, cap, process, &mut rng).expect("constructible");
    sim.run(&mut rng).broadcast_time.unwrap_or(cap) as f64
}

fn main() {
    let ctx = ExpCtx::init(
        "E19",
        "mobility barriers: broadcast through a wall with a gap (future work, Section 4)",
        "narrower gaps inflate T_B monotonically over the open grid",
    );
    let side: u32 = ctx.pick(64, 96);
    let k: usize = 32;
    let gaps: Vec<u32> = vec![side, side / 2, side / 8, 2];
    let reps = ctx.pick(8, 16);

    let sweep = Sweep::new(ctx.seed).replicates(reps).threads(ctx.threads);
    let points = sweep.run(&gaps, |&gap, seed| tb_with_gap(side, k, gap, seed));

    let open = points[0].summary.mean();
    let mut table = Table::new(vec![
        "gap".into(),
        "mean T_B".into(),
        "ci95".into(),
        "vs open grid".into(),
    ]);
    for p in &points {
        table.push_row(vec![
            if p.param >= side {
                "none".into()
            } else {
                p.param.to_string()
            },
            format!("{:.1}", p.summary.mean()),
            format!("{:.1}", p.summary.ci95_half_width()),
            format!("{:.2}x", p.summary.mean() / open),
        ]);
    }
    println!("{table}");
    println!(
        "(vertical wall at x = {}, centered gap, k = {k}, r = 0)",
        side / 2
    );

    let means: Vec<f64> = points.iter().map(|p| p.summary.mean()).collect();
    let monotone = means.windows(2).all(|w| w[1] >= w[0] * 0.9);
    let worst = means.last().expect("nonempty") / open;
    verdict(
        monotone && worst > 1.5,
        &format!("narrowest gap inflates T_B {worst:.2}x; inflation is monotone in 1/gap"),
    );
}
