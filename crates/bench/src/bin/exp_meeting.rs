//! E5 — two-walk meeting probability near the start (Lemma 3).
//!
//! Claim: two walks started at distance `d` meet within `d²` steps, at
//! a node within distance `d` of both starts, with probability at
//! least `c₃ / log d`. We measure the probability over `d` and check
//! that `P(d) · ln d` stays bounded below (no faster-than-1/log decay).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_analysis::{Sweep, Table};
use sparsegossip_bench::{verdict, ExpCtx};
use sparsegossip_grid::{Grid, Point};
use sparsegossip_walks::meeting_within;

fn meet_rate(side: u32, d: u32, trials: u32, seed: u64) -> f64 {
    let grid = Grid::new(side).expect("valid side");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mid = side / 2;
    let a = Point::new(mid - d / 2, mid);
    let b = Point::new(mid - d / 2 + d, mid);
    let horizon = u64::from(d) * u64::from(d);
    let mut hits = 0u32;
    for _ in 0..trials {
        let t = meeting_within(&grid, a, b, horizon, &mut rng);
        if t.met_in_d {
            hits += 1;
        }
    }
    f64::from(hits) / f64::from(trials)
}

fn main() {
    let ctx = ExpCtx::init(
        "E5",
        "P(two walks meet in D within d^2 steps) vs initial distance d (Lemma 3)",
        "P >= c3 / log d: P(d) * ln d bounded below by a constant",
    );
    let side: u32 = ctx.pick(512, 1024);
    let trials: u32 = ctx.pick(400, 1500);
    let reps = ctx.pick(5, 10);
    let ds: Vec<u32> = ctx.pick(vec![2, 4, 8, 16, 32, 64], vec![2, 4, 8, 16, 32, 64, 128]);

    let sweep = Sweep::new(ctx.seed).replicates(reps).threads(ctx.threads);
    let points = sweep.run(&ds, |&d, seed| meet_rate(side, d, trials, seed));

    let mut table = Table::new(vec![
        "d".into(),
        "P(meet in D by d^2)".into(),
        "ci95".into(),
        "P * ln d".into(),
    ]);
    let mut scaled = Vec::new();
    for p in &points {
        let ln_d = f64::from(p.param).ln().max(1.0);
        scaled.push(p.summary.mean() * ln_d);
        table.push_row(vec![
            p.param.to_string(),
            format!("{:.4}", p.summary.mean()),
            format!("{:.4}", p.summary.ci95_half_width()),
            format!("{:.3}", p.summary.mean() * ln_d),
        ]);
    }
    println!("{table}");

    let min_scaled = scaled.iter().cloned().fold(f64::MAX, f64::min);
    let max_scaled = scaled.iter().cloned().fold(f64::MIN, f64::max);
    println!("P(d) * ln d range: [{min_scaled:.3}, {max_scaled:.3}] (estimates c3 up to flatness)");
    verdict(
        min_scaled > 0.05 && max_scaled / min_scaled < 6.0,
        &format!(
            "lower envelope {min_scaled:.3} > 0.05 and spread {:.1}x < 6x",
            max_scaled / min_scaled
        ),
    );
}
