//! E4 — island sizes below the percolation parameter (Lemma 6).
//!
//! Claim: with `γ = √(n/(4e⁶k))` no island of `G_t(γ)` exceeds `log n`
//! agents over `8n log²n` steps, w.h.p. The proof constant `4e⁶` is far
//! from tight, so we sweep γ as a fraction of `√(n/k)` and check that
//! sub-critical maxima stay `O(log n)` while super-critical ones grow
//! to `Θ(k)`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_analysis::{Sweep, Table};
use sparsegossip_bench::{verdict, ExpCtx};
use sparsegossip_conngraph::IslandSampler;
use sparsegossip_grid::Grid;
use sparsegossip_walks::WalkEngine;

fn max_island_over_time(side: u32, k: usize, gamma: u32, steps: u64, seed: u64) -> f64 {
    let grid = Grid::new(side).expect("valid side");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut engine = WalkEngine::uniform(grid, k, &mut rng).expect("agents");
    let mut sampler = IslandSampler::new(gamma, side);
    sampler.observe(engine.positions());
    for _ in 0..steps {
        engine.step_all(&mut rng);
        sampler.observe(engine.positions());
    }
    sampler.max_island_ever() as f64
}

fn main() {
    let ctx = ExpCtx::init(
        "E4",
        "maximum island size vs island parameter gamma (Lemma 6)",
        "below ~sqrt(n/k): max island O(log n); above: giant Theta(k) islands",
    );
    let side: u32 = ctx.pick(128, 192);
    let k: usize = ctx.pick(256, 512);
    let steps: u64 = ctx.pick(300, 1500);
    let reps = ctx.pick(6, 16);
    let n = f64::from(side) * f64::from(side);
    let log_n = n.ln();
    let rc = (n / k as f64).sqrt();
    let fracs = [0.1f64, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0];
    let gammas: Vec<u32> = fracs
        .iter()
        .map(|f| (f * rc).round().max(0.0) as u32)
        .collect();

    let sweep = Sweep::new(ctx.seed).replicates(reps).threads(ctx.threads);
    let points = sweep.run(&gammas, |&g, seed| {
        max_island_over_time(side, k, g, steps, seed)
    });

    let mut table = Table::new(vec![
        "gamma".into(),
        "gamma/sqrt(n/k)".into(),
        "max island (mean)".into(),
        "max island / ln n".into(),
        "max island / k".into(),
    ]);
    for p in &points {
        table.push_row(vec![
            p.param.to_string(),
            format!("{:.2}", f64::from(p.param) / rc),
            format!("{:.1}", p.summary.mean()),
            format!("{:.2}", p.summary.mean() / log_n),
            format!("{:.3}", p.summary.mean() / k as f64),
        ]);
    }
    println!("{table}");
    println!("n = {n:.0}, ln n = {log_n:.1}, k = {k}, sqrt(n/k) = {rc:.1}, {steps} steps/run");

    // Island-size distribution snapshot at the critical scale.
    {
        use rand::RngExt;
        use sparsegossip_analysis::Histogram;
        use sparsegossip_conngraph::{components, DegreeStats};
        use sparsegossip_grid::Point;
        let gamma = rc.round() as u32;
        let mut rng = SmallRng::seed_from_u64(ctx.seed ^ 0x15);
        let mut hist = Histogram::new(0.0, 32.0, 8).expect("valid histogram");
        let mut deg_total = 0.0;
        let snapshots = 50;
        for _ in 0..snapshots {
            let pts: Vec<Point> = (0..k)
                .map(|_| Point::new(rng.random_range(0..side), rng.random_range(0..side)))
                .collect();
            let c = components(&pts, gamma, side);
            for comp in 0..c.count() {
                hist.record(c.size(comp) as f64);
            }
            deg_total += DegreeStats::compute(&pts, gamma, side).mean_degree;
        }
        println!(
            "\nisland-size distribution at gamma = sqrt(n/k) = {gamma} ({snapshots} snapshots):"
        );
        print!("{}", hist.render(40));
        println!(
            "mean visibility degree at gamma: {:.2} (interior expectation {:.2})",
            deg_total / f64::from(snapshots),
            DegreeStats::expected_mean_degree(gamma, k, n as u64),
        );
    }

    // Sub-critical (≤ 0.25·rc) maxima should be a small multiple of
    // ln n; super-critical (≥ 1.5·rc) should engulf a constant fraction
    // of all agents.
    let sub = points
        .iter()
        .filter(|p| f64::from(p.param) <= 0.25 * rc)
        .map(|p| p.summary.mean())
        .fold(f64::MIN, f64::max);
    let sup = points
        .iter()
        .filter(|p| f64::from(p.param) >= 1.5 * rc)
        .map(|p| p.summary.mean())
        .fold(f64::MIN, f64::max);
    verdict(
        sub <= 4.0 * log_n && sup >= 0.5 * k as f64,
        &format!(
            "sub-critical max {:.1} <= 4 ln n = {:.1}; super-critical max {:.1} >= k/2 = {}",
            sub,
            4.0 * log_n,
            sup,
            k / 2
        ),
    );
}
