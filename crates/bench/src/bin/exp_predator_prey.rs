//! E11 — predator–prey extinction time (§4 by-product).
//!
//! Claim: `k = Ω(log n)` predators catch all moving preys within
//! `O(n log²n / k)` steps w.h.p. — note the `1/k` (not `1/√k`) decay,
//! distinguishing this from the broadcast bound.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_analysis::{power_law_fit, Sweep, Table};
use sparsegossip_bench::{fmt_exponent, verdict, ExpCtx};
use sparsegossip_core::theory::extinction_time_shape;
use sparsegossip_core::{PredatorPrey, Simulation};
use sparsegossip_grid::Grid;

fn extinction(side: u32, k: usize, m: usize, seed: u64) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let cap = 500u64 * u64::from(side) * u64::from(side);
    let grid = Grid::new(side).expect("valid side");
    let process = PredatorPrey::uniform(&grid, m, 0, true, &mut rng).expect("valid process");
    let mut sim = Simulation::new(grid, k, 0, cap, process, &mut rng).expect("constructible sim");
    sim.run(&mut rng).extinction_time.unwrap_or(cap) as f64
}

fn main() {
    let ctx = ExpCtx::init(
        "E11",
        "predator-prey extinction time vs number of predators (Section 4)",
        "T_ext = O(n log^2 n / k): ~1/k decay (contrast broadcast's 1/sqrt(k))",
    );
    let side: u32 = ctx.pick(48, 64);
    let n = f64::from(side) * f64::from(side);
    let m: usize = 16;
    let ks: Vec<usize> = ctx.pick(vec![4, 8, 16, 32, 64], vec![4, 8, 16, 32, 64, 128]);
    let reps = ctx.pick(8, 20);

    let sweep = Sweep::new(ctx.seed).replicates(reps).threads(ctx.threads);
    let points = sweep.run(&ks, |&k, seed| extinction(side, k, m, seed));

    let mut table = Table::new(vec![
        "k predators".into(),
        "mean T_ext".into(),
        "ci95".into(),
        "n ln^2 n / k".into(),
        "measured/shape".into(),
    ]);
    for p in &points {
        let shape = extinction_time_shape(n, p.param as f64);
        table.push_row(vec![
            p.param.to_string(),
            format!("{:.0}", p.summary.mean()),
            format!("{:.0}", p.summary.ci95_half_width()),
            format!("{shape:.0}"),
            format!("{:.3}", p.summary.mean() / shape),
        ]);
    }
    println!("{table}");

    let xs: Vec<f64> = points.iter().map(|p| p.param as f64).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.summary.mean()).collect();
    let fit = power_law_fit(&xs, &ys).expect("enough points");
    println!(
        "extinction exponent of T_ext ~ k^e: e = {}",
        fmt_exponent(&fit)
    );
    println!("paper: e = -1 (up to logs; catching the last prey adds slack)");
    verdict(
        fit.exponent < -0.55,
        &format!(
            "measured e = {:.3}, decisively steeper than broadcast's -0.5",
            fit.exponent
        ),
    );
}
