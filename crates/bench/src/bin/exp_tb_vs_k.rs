//! E1 — broadcast time vs. number of agents (Theorem 1 / Corollary 1).
//!
//! Claim: `T_B = Θ̃(n/√k)`, so at fixed `n` the log–log slope of `T_B`
//! against `k` is ≈ −1/2 (slightly steeper/shallower within the polylog
//! slack).

use sparsegossip_analysis::{power_law_fit, Sweep, Table};
use sparsegossip_bench::{fmt_exponent, measure_broadcast, verdict, ExpCtx};

fn main() {
    let ctx = ExpCtx::init(
        "E1",
        "broadcast time vs k (fixed n, r = 0)",
        "T_B = Theta~(n/sqrt(k)) => slope of log T_B vs log k is about -1/2",
    );
    let side: u32 = ctx.pick(128, 256);
    let ks: Vec<usize> = ctx.pick(
        vec![8, 16, 32, 64, 128, 256],
        vec![8, 16, 32, 64, 128, 256, 512, 1024],
    );
    let reps = ctx.pick(10, 24);

    let sweep = Sweep::new(ctx.seed).replicates(reps).threads(ctx.threads);
    let points = sweep.run(&ks, |&k, seed| measure_broadcast(side, k, 0, seed));

    let n = f64::from(side) * f64::from(side);
    let mut table = Table::new(vec![
        "k".into(),
        "mean T_B".into(),
        "ci95".into(),
        "median".into(),
        "n/sqrt(k)".into(),
        "T_B/(n/sqrt(k))".into(),
    ]);
    for p in &points {
        let shape = n / (p.param as f64).sqrt();
        table.push_row(vec![
            p.param.to_string(),
            format!("{:.1}", p.summary.mean()),
            format!("{:.1}", p.summary.ci95_half_width()),
            format!("{:.1}", p.summary.median()),
            format!("{shape:.1}"),
            format!("{:.3}", p.summary.mean() / shape),
        ]);
    }
    println!("{table}");

    let xs: Vec<f64> = points.iter().map(|p| p.param as f64).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.summary.mean()).collect();
    let fit = power_law_fit(&xs, &ys).expect("enough points to fit");
    println!("fitted exponent of T_B ~ k^e: e = {}", fmt_exponent(&fit));
    println!("paper: e = -0.5 (up to polylog factors)");
    verdict(
        (fit.exponent + 0.5).abs() < 0.2,
        &format!("measured e = {:.3} vs -0.5", fit.exponent),
    );
}
