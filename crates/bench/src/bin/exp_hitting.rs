//! E16 — single-walk hitting probability (Lemma 1).
//!
//! Claim: a walk started at `v₀` visits a node `v` at distance `d`
//! within `d²` steps with probability at least `c₁ / max{1, log d}`.
//! As in E5, we check `P(d) · ln d` is bounded below and roughly flat.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_analysis::{Sweep, Table};
use sparsegossip_bench::{verdict, ExpCtx};
use sparsegossip_grid::{Grid, Point};
use sparsegossip_walks::hitting_probability;

fn hit_rate(side: u32, d: u32, trials: u32, seed: u64) -> f64 {
    let grid = Grid::new(side).expect("valid side");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mid = side / 2;
    let from = Point::new(mid - d / 2, mid);
    let target = Point::new(mid - d / 2 + d, mid);
    hitting_probability(&grid, from, target, trials, &mut rng)
}

fn main() {
    let ctx = ExpCtx::init(
        "E16",
        "P(walk visits node at distance d within d^2 steps) (Lemma 1)",
        "P >= c1 / log d: P(d) * ln d bounded below by a constant",
    );
    let side: u32 = ctx.pick(512, 1024);
    let trials: u32 = ctx.pick(600, 2000);
    let reps = ctx.pick(5, 10);
    let ds: Vec<u32> = ctx.pick(vec![2, 4, 8, 16, 32, 64], vec![2, 4, 8, 16, 32, 64, 128]);

    let sweep = Sweep::new(ctx.seed).replicates(reps).threads(ctx.threads);
    let points = sweep.run(&ds, |&d, seed| hit_rate(side, d, trials, seed));

    let mut table = Table::new(vec![
        "d".into(),
        "P(hit by d^2)".into(),
        "ci95".into(),
        "P * ln d".into(),
    ]);
    let mut scaled = Vec::new();
    for p in &points {
        let ln_d = f64::from(p.param).ln().max(1.0);
        scaled.push(p.summary.mean() * ln_d);
        table.push_row(vec![
            p.param.to_string(),
            format!("{:.4}", p.summary.mean()),
            format!("{:.4}", p.summary.ci95_half_width()),
            format!("{:.3}", p.summary.mean() * ln_d),
        ]);
    }
    println!("{table}");

    let min_scaled = scaled.iter().cloned().fold(f64::MAX, f64::min);
    let max_scaled = scaled.iter().cloned().fold(f64::MIN, f64::max);
    println!("P(d) * ln d range: [{min_scaled:.3}, {max_scaled:.3}] (estimates c1 up to flatness)");
    verdict(
        min_scaled > 0.03 && max_scaled / min_scaled < 8.0,
        &format!(
            "lower envelope {min_scaled:.3} > 0.03 and spread {:.1}x < 8x",
            max_scaled / min_scaled
        ),
    );
}
