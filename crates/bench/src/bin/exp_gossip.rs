//! E9 — gossip time (Corollary 2).
//!
//! Claim: with every agent holding a distinct rumor, the time for all
//! agents to learn all rumors is also `Õ(n/√k)` — i.e. the same
//! scaling as broadcast, with a bounded `T_G/T_B` ratio.

use sparsegossip_analysis::{power_law_fit, Sweep, Table};
use sparsegossip_bench::{fmt_exponent, measure_broadcast, measure_gossip, verdict, ExpCtx};

fn main() {
    let ctx = ExpCtx::init(
        "E9",
        "gossip time vs k (all k rumors to all agents)",
        "T_G = O~(n/sqrt(k)); T_G/T_B bounded by a polylog factor",
    );
    let side: u32 = ctx.pick(64, 128);
    let ks: Vec<usize> = ctx.pick(vec![8, 16, 32, 64], vec![8, 16, 32, 64, 128, 256]);
    let reps = ctx.pick(8, 20);

    let sweep = Sweep::new(ctx.seed).replicates(reps).threads(ctx.threads);
    let gossip = sweep.run(&ks, |&k, seed| measure_gossip(side, k, 0, seed));
    let broadcast = sweep.run(&ks, |&k, seed| measure_broadcast(side, k, 0, seed));

    let mut table = Table::new(vec![
        "k".into(),
        "T_G".into(),
        "T_B".into(),
        "T_G/T_B".into(),
    ]);
    let mut ratios = Vec::new();
    for (g, b) in gossip.iter().zip(&broadcast) {
        let ratio = g.summary.mean() / b.summary.mean();
        ratios.push(ratio);
        table.push_row(vec![
            g.param.to_string(),
            format!("{:.1}", g.summary.mean()),
            format!("{:.1}", b.summary.mean()),
            format!("{ratio:.2}"),
        ]);
    }
    println!("{table}");

    let xs: Vec<f64> = gossip.iter().map(|p| p.param as f64).collect();
    let ys: Vec<f64> = gossip.iter().map(|p| p.summary.mean()).collect();
    let fit = power_law_fit(&xs, &ys).expect("enough points");
    println!("gossip exponent of T_G ~ k^e: e = {}", fmt_exponent(&fit));
    let max_ratio = ratios.iter().cloned().fold(f64::MIN, f64::max);
    println!("max T_G/T_B ratio: {max_ratio:.2}");
    verdict(
        (fit.exponent + 0.5).abs() < 0.25 && max_ratio < 6.0,
        &format!(
            "e = {:.3} vs -0.5; ratio <= {max_ratio:.2} (bounded)",
            fit.exponent
        ),
    );
}
