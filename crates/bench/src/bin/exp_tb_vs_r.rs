//! E3 — broadcast time vs. transmission radius (the headline result).
//!
//! Claim: below the percolation radius `r_c ≈ √(n/k)` the broadcast
//! time does **not** depend on `r` (Theorems 1 + 2); above `r_c` it
//! collapses to polylogarithmic growth (Peres et al., the paper's
//! complement). Expect a flat profile for `r < r_c` and a sharp drop
//! past `r_c`.

use sparsegossip_analysis::{Sweep, Table};
use sparsegossip_bench::{measure_broadcast, verdict, ExpCtx};

fn main() {
    let ctx = ExpCtx::init(
        "E3",
        "broadcast time vs r across the percolation point",
        "T_B independent of r for r < r_c; collapse above r_c",
    );
    let side: u32 = ctx.pick(128, 192);
    let k: usize = 64;
    let n = f64::from(side) * f64::from(side);
    let rc = (n / k as f64).sqrt(); // 16 at side=128
    let radii: Vec<u32> = [0.0, 0.06, 0.12, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0]
        .iter()
        .map(|frac| (frac * rc).round() as u32)
        .collect();
    let reps = ctx.pick(10, 24);

    let sweep = Sweep::new(ctx.seed).replicates(reps).threads(ctx.threads);
    let points = sweep.run(&radii, |&r, seed| measure_broadcast(side, k, r, seed));

    let mut table = Table::new(vec![
        "r".into(),
        "r/r_c".into(),
        "mean T_B".into(),
        "ci95".into(),
        "median".into(),
    ]);
    for p in &points {
        table.push_row(vec![
            p.param.to_string(),
            format!("{:.2}", f64::from(p.param) / rc),
            format!("{:.1}", p.summary.mean()),
            format!("{:.1}", p.summary.ci95_half_width()),
            format!("{:.1}", p.summary.median()),
        ]);
    }
    println!("{table}");
    println!("r_c = sqrt(n/k) = {rc:.1}");

    // The Θ̃-independence below r_c allows polylog variation; the sharp
    // statements are (a) every sub-critical T_B sits above the Theorem 2
    // floor n/(√k·ln²n), and (b) crossing r_c collapses T_B by far more
    // than the whole sub-critical spread.
    let floor = {
        let l = n.ln();
        n / ((k as f64).sqrt() * l * l)
    };
    let below: Vec<f64> = points
        .iter()
        .filter(|p| f64::from(p.param) <= 0.75 * rc)
        .map(|p| p.summary.mean())
        .collect();
    let above: Vec<f64> = points
        .iter()
        .filter(|p| f64::from(p.param) >= 2.0 * rc)
        .map(|p| p.summary.mean())
        .collect();
    let below_min = below.iter().cloned().fold(f64::MAX, f64::min);
    let flat_ratio = below.iter().cloned().fold(f64::MIN, f64::max) / below_min;
    let above_mean = above.iter().sum::<f64>() / above.len() as f64;
    let collapse = below_min / above_mean.max(0.5); // 0.5 guards div-by-0 at T_B = 0
    println!("Theorem 2 floor n/(sqrt(k) ln^2 n) = {floor:.1}");
    println!("sub-critical spread (max/min over r <= 0.75 r_c): {flat_ratio:.2} (polylog allowed; ln^2 n = {:.0})", n.ln().powi(2));
    println!("collapse across r_c (min sub-critical / mean at >= 2 r_c): {collapse:.1}x");
    verdict(
        below_min >= floor && collapse > flat_ratio && collapse > 5.0,
        &format!(
            "all sub-critical T_B >= floor {floor:.0}; collapse {collapse:.1}x dwarfs sub-critical spread {flat_ratio:.2}x"
        ),
    );
}
