//! A2 — ablation: bounded grid vs torus (boundary sensitivity).
//!
//! The paper's analysis works on the bounded grid via the reflection
//! principle; constants (not shapes) absorb the boundary. Running the
//! identical broadcast on a torus should preserve the `k`-exponent.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_analysis::{power_law_fit, Sweep, Table};
use sparsegossip_bench::{fmt_exponent, measure_broadcast, verdict, ExpCtx};
use sparsegossip_core::{Broadcast, SimConfig, Simulation};
use sparsegossip_grid::Torus;

fn torus_tb(side: u32, k: usize, seed: u64) -> f64 {
    let torus = Torus::new(side).expect("valid side");
    let cap = SimConfig::default_step_cap(side, k);
    let mut rng = SmallRng::seed_from_u64(seed);
    let process = Broadcast::new(k, 0).expect("valid process");
    let mut sim = Simulation::new(torus, k, 0, cap, process, &mut rng).expect("constructible");
    sim.run(&mut rng).broadcast_time.unwrap_or(cap) as f64
}

fn main() {
    let ctx = ExpCtx::init(
        "A2",
        "ablation: bounded grid vs torus broadcast scaling",
        "boundary affects constants only; the k-exponent stays about -1/2",
    );
    let side: u32 = ctx.pick(64, 128);
    let ks: Vec<usize> = ctx.pick(vec![8, 16, 32, 64, 128], vec![8, 16, 32, 64, 128, 256]);
    let reps = ctx.pick(8, 16);

    let sweep = Sweep::new(ctx.seed).replicates(reps).threads(ctx.threads);
    let grid = sweep.run(&ks, |&k, seed| measure_broadcast(side, k, 0, seed));
    let torus = sweep.run(&ks, |&k, seed| torus_tb(side, k, seed));

    let mut table = Table::new(vec![
        "k".into(),
        "grid T_B".into(),
        "torus T_B".into(),
        "torus/grid".into(),
    ]);
    for (g, t) in grid.iter().zip(&torus) {
        table.push_row(vec![
            g.param.to_string(),
            format!("{:.1}", g.summary.mean()),
            format!("{:.1}", t.summary.mean()),
            format!("{:.2}", t.summary.mean() / g.summary.mean()),
        ]);
    }
    println!("{table}");

    let xs: Vec<f64> = torus.iter().map(|p| p.param as f64).collect();
    let tg: Vec<f64> = grid.iter().map(|p| p.summary.mean()).collect();
    let tt: Vec<f64> = torus.iter().map(|p| p.summary.mean()).collect();
    let fit_g = power_law_fit(&xs, &tg).expect("enough points");
    let fit_t = power_law_fit(&xs, &tt).expect("enough points");
    println!("grid exponent:  {}", fmt_exponent(&fit_g));
    println!("torus exponent: {}", fmt_exponent(&fit_t));
    verdict(
        (fit_g.exponent - fit_t.exponent).abs() < 0.15,
        &format!(
            "exponents agree: grid {:.3} vs torus {:.3}",
            fit_g.exponent, fit_t.exponent
        ),
    );
}
