//! A1 — ablation: instantaneous component flooding vs one-hop spread.
//!
//! The paper assumes a rumor floods its whole component of `G_t(r)`
//! within a step (radio ≫ motion). Below the percolation point the
//! components are `O(log)`-sized islands (Lemma 6), so restricting the
//! rumor to a single hop per step should barely change `T_B`. Above
//! the percolation point the assumption matters enormously.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_analysis::{Sweep, Table};
use sparsegossip_bench::{verdict, ExpCtx};
use sparsegossip_core::{ExchangeRule, SimConfig, Simulation};

fn tb_with_rule(side: u32, k: usize, r: u32, rule: ExchangeRule, seed: u64) -> f64 {
    let config = SimConfig::builder(side, k)
        .radius(r)
        .exchange_rule(rule)
        .build()
        .expect("valid config");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sim = Simulation::broadcast(&config, &mut rng).expect("constructible");
    sim.run(&mut rng)
        .broadcast_time
        .unwrap_or(config.max_steps()) as f64
}

fn main() {
    let ctx = ExpCtx::init(
        "A1",
        "ablation: component flooding vs one-hop-per-step exchange",
        "below r_c the two models coincide up to small factors; above r_c they diverge",
    );
    let side: u32 = ctx.pick(96, 128);
    let k: usize = 64;
    let n = f64::from(side) * f64::from(side);
    let rc = (n / k as f64).sqrt();
    let radii: Vec<u32> = [0.0f64, 0.25, 0.5, 2.0, 3.0]
        .iter()
        .map(|f| (f * rc).round() as u32)
        .collect();
    let reps = ctx.pick(8, 16);

    let sweep = Sweep::new(ctx.seed).replicates(reps).threads(ctx.threads);
    let flood = sweep.run(&radii, |&r, seed| {
        tb_with_rule(side, k, r, ExchangeRule::Component, seed)
    });
    let onehop = sweep.run(&radii, |&r, seed| {
        tb_with_rule(side, k, r, ExchangeRule::OneHop, seed)
    });

    let mut table = Table::new(vec![
        "r".into(),
        "r/r_c".into(),
        "T_B flood".into(),
        "T_B one-hop".into(),
        "one-hop/flood".into(),
    ]);
    let mut sub_ratio: f64 = 1.0;
    let mut super_ratio: f64 = 1.0;
    for (f, o) in flood.iter().zip(&onehop) {
        let ratio = o.summary.mean() / f.summary.mean();
        let frac = f64::from(f.param) / rc;
        if frac <= 0.5 {
            sub_ratio = sub_ratio.max(ratio);
        }
        if frac >= 2.0 {
            super_ratio = super_ratio.max(ratio);
        }
        table.push_row(vec![
            f.param.to_string(),
            format!("{frac:.2}"),
            format!("{:.1}", f.summary.mean()),
            format!("{:.1}", o.summary.mean()),
            format!("{ratio:.2}"),
        ]);
    }
    println!("{table}");
    println!(
        "sub-critical worst ratio: {sub_ratio:.2}; super-critical worst ratio: {super_ratio:.2}"
    );
    verdict(
        sub_ratio < 2.0 && super_ratio > sub_ratio,
        &format!(
            "below r_c one-hop costs {sub_ratio:.2}x (small); above r_c it costs {super_ratio:.2}x"
        ),
    );
}
