//! E13 — the percolation threshold of `G_t(r)` (§1, §2).
//!
//! Claim: the visibility graph develops a giant component at
//! `r_c ≈ √(n/k)`. We profile the giant-component fraction against
//! `r/r_c` at several `(n, k)` and check the curves cross 1/2 at a
//! common multiple of `r_c` (the hidden constant).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_analysis::Table;
use sparsegossip_bench::{verdict, ExpCtx};
use sparsegossip_conngraph::{critical_radius, estimate_threshold, percolation_profile};
use sparsegossip_grid::{Grid, Topology};

fn main() {
    let ctx = ExpCtx::init(
        "E13",
        "giant-component fraction vs r/r_c; threshold location",
        "percolation at r_c ~ sqrt(n/k): thresholds collapse at a common r/r_c",
    );
    let samples: u32 = ctx.pick(30, 100);
    let configs: Vec<(u32, usize)> = ctx.pick(
        vec![(64, 64), (128, 64), (128, 256)],
        vec![(64, 64), (128, 64), (128, 256), (256, 256)],
    );
    let fracs = [0.25f64, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0];

    let mut table = Table::new(vec![
        "side".into(),
        "k".into(),
        "r/r_c".into(),
        "r".into(),
        "giant fraction".into(),
    ]);
    let mut rng = SmallRng::seed_from_u64(ctx.seed);
    let mut threshold_ratios = Vec::new();
    for &(side, k) in &configs {
        let grid = Grid::new(side).expect("valid side");
        let rc = critical_radius(grid.num_nodes() as f64, k as f64);
        let radii: Vec<u32> = fracs
            .iter()
            .map(|f| (f * rc).round().max(1.0) as u32)
            .collect();
        let profile = percolation_profile(&grid, k, &radii, samples, &mut rng);
        for (f, p) in fracs.iter().zip(&profile) {
            table.push_row(vec![
                side.to_string(),
                k.to_string(),
                format!("{f:.2}"),
                p.r.to_string(),
                format!("{:.3}", p.mean_giant_fraction),
            ]);
        }
        let est = estimate_threshold(&grid, k, 0.5, samples, &mut rng);
        let ratio = f64::from(est) / rc;
        println!(
            "side={side}, k={k}: estimated half-giant threshold r* = {est} = {ratio:.2} r_c (r_c = {rc:.1})"
        );
        threshold_ratios.push(ratio);
    }
    println!("\n{table}");

    let min = threshold_ratios.iter().cloned().fold(f64::MAX, f64::min);
    let max = threshold_ratios.iter().cloned().fold(f64::MIN, f64::max);
    println!("threshold location across configs: [{min:.2}, {max:.2}] x r_c");
    verdict(
        max / min < 1.8 && min > 0.3 && max < 3.0,
        &format!(
            "thresholds collapse to a common multiple of sqrt(n/k) (spread {:.2}x)",
            max / min
        ),
    );
}
