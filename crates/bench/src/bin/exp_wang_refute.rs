//! E12 — refutation of the Wang et al. infection-time claim (§1.1).
//!
//! Wang, Kapadia & Krishnamachari claimed `T ≈ Θ((n log n log k)/k)`
//! on the grid; Pettarin et al. prove `T_B = Θ̃(n/√k)` instead. Fitting
//! both shapes (constants profiled out) against measured broadcast
//! times must decisively favor `n/√k`.

use sparsegossip_analysis::{Sweep, Table};
use sparsegossip_bench::{measure_broadcast, verdict, ExpCtx};
use sparsegossip_core::baseline::{claimed_infection_time, fit_error_against};

fn main() {
    let ctx = ExpCtx::init(
        "E12",
        "which law fits measured T_B: n/sqrt(k) (paper) or n log n log k / k (Wang)",
        "the paper's n/sqrt(k) fits; the Wang bound's 1/k decay does not",
    );
    // Discriminating the k^{-1/2} law from k^{-1}·log needs a grid
    // large enough that finite-size polylog corrections do not bend the
    // measured slope toward Wang's; 256² is the quick-scale minimum.
    let side: u32 = ctx.pick(256, 384);
    let n = f64::from(side) * f64::from(side);
    let ks: Vec<usize> = ctx.pick(
        vec![8, 16, 32, 64, 128, 256, 512],
        vec![8, 16, 32, 64, 128, 256, 512, 1024],
    );
    let reps = ctx.pick(10, 24);

    let sweep = Sweep::new(ctx.seed).replicates(reps).threads(ctx.threads);
    let points = sweep.run(&ks, |&k, seed| measure_broadcast(side, k, 0, seed));

    let kf: Vec<f64> = points.iter().map(|p| p.param as f64).collect();
    let tb: Vec<f64> = points.iter().map(|p| p.summary.mean()).collect();

    let mut table = Table::new(vec![
        "k".into(),
        "T_B".into(),
        "pettarin n/sqrt(k)".into(),
        "wang n ln n ln k/k".into(),
    ]);
    for (p, t) in points.iter().zip(&tb) {
        let k = p.param as f64;
        table.push_row(vec![
            p.param.to_string(),
            format!("{t:.1}"),
            format!("{:.1}", n / k.sqrt()),
            format!("{:.1}", claimed_infection_time(n, k)),
        ]);
    }
    println!("{table}");

    let err_pettarin = fit_error_against(&kf, &tb, |k| n / k.sqrt()).expect("enough points");
    let err_wang =
        fit_error_against(&kf, &tb, |k| claimed_infection_time(n, k)).expect("enough points");
    println!("log-space residual variance vs n/sqrt(k):        {err_pettarin:.4}");
    println!("log-space residual variance vs n ln n ln k / k:  {err_wang:.4}");

    // The decisive test: a Θ claim requires the ratio measured/claimed
    // to stay bounded in k. Fit the trend of each ratio — the Wang
    // ratio must grow (positive exponent: real times outpace the
    // claimed law), while the paper's ratio trend stays closer to flat.
    // (At simulation sizes polylog corrections push the raw exponent
    // between the two laws, so residual variance alone is inconclusive;
    // the *sign* of the ratio trend is the robust discriminator.)
    use sparsegossip_analysis::power_law_fit;
    let wang_ratio: Vec<f64> = kf
        .iter()
        .zip(&tb)
        .map(|(k, t)| t / claimed_infection_time(n, *k))
        .collect();
    let pettarin_ratio: Vec<f64> = kf
        .iter()
        .zip(&tb)
        .map(|(k, t)| t / (n / k.sqrt()))
        .collect();
    let wang_trend = power_law_fit(&kf, &wang_ratio).expect("fit").exponent;
    let pettarin_trend = power_law_fit(&kf, &pettarin_ratio).expect("fit").exponent;
    println!("trend of T_B / wang(k)     ~ k^{wang_trend:.3} (a Θ claim needs ≈ 0)");
    println!("trend of T_B / pettarin(k) ~ k^{pettarin_trend:.3}");
    // An upper-bound law is *refuted* when measured/claimed grows
    // without bound (positive trend): real times outrun the claim.
    // Wang's Θ((n log n log k)/k) shows exactly that; the paper's
    // Õ(n/√k) upper bound is respected (non-positive trend — the
    // decrease is the finite-size polylog correction).
    verdict(
        wang_trend > 0.05 && pettarin_trend < 0.05,
        &format!(
            "measured T_B outgrows the Wang law as k^{wang_trend:.2} (its Theta claim cannot hold), while the paper's n/sqrt(k) bound is respected (trend {pettarin_trend:.2} <= 0)"
        ),
    );
}
