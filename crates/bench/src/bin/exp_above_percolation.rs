//! E18 — above the percolation point (the Peres et al. complement).
//!
//! Peres, Sinclair, Sousi & Stauffer (SODA 2011) show that **above**
//! the percolation density the broadcast time is polylogarithmic in k.
//! The paper positions its `Θ̃(n/√k)` as the sub-critical complement.
//! We run the same simulator at `r = 2 r_c` and at `r = r_c/2` and
//! contrast the k-scaling: polynomial below, near-flat (polylog) above.

use sparsegossip_analysis::{power_law_fit, Sweep, Table};
use sparsegossip_bench::{fmt_exponent, measure_broadcast, verdict, ExpCtx};

fn main() {
    let ctx = ExpCtx::init(
        "E18",
        "broadcast scaling above vs below the percolation point",
        "below r_c: T_B ~ k^{-1/2}; above r_c: polylog in k (near-zero exponent)",
    );
    let side: u32 = ctx.pick(128, 192);
    let n = f64::from(side) * f64::from(side);
    let ks: Vec<usize> = ctx.pick(vec![16, 32, 64, 128, 256], vec![16, 32, 64, 128, 256, 512]);
    let reps = ctx.pick(10, 20);

    let sweep = Sweep::new(ctx.seed).replicates(reps).threads(ctx.threads);
    // Radii scale with k so each point sits at the same r/r_c.
    let below = sweep.run(&ks, |&k, seed| {
        let rc = (n / k as f64).sqrt();
        measure_broadcast(side, k, (0.5 * rc) as u32, seed)
    });
    let above = sweep.run(&ks, |&k, seed| {
        let rc = (n / k as f64).sqrt();
        measure_broadcast(side, k, (2.0 * rc).ceil() as u32, seed)
    });

    let mut table = Table::new(vec![
        "k".into(),
        "T_B at r_c/2".into(),
        "T_B at 2 r_c".into(),
        "ratio".into(),
    ]);
    for (b, a) in below.iter().zip(&above) {
        table.push_row(vec![
            b.param.to_string(),
            format!("{:.1}", b.summary.mean()),
            format!("{:.2}", a.summary.mean()),
            format!("{:.0}", b.summary.mean() / a.summary.mean().max(0.5)),
        ]);
    }
    println!("{table}");

    let xs: Vec<f64> = ks.iter().map(|&k| k as f64).collect();
    let yb: Vec<f64> = below.iter().map(|p| p.summary.mean()).collect();
    // Above-percolation times can be 0 (connected at placement); shift
    // by +1 so the log-log fit is defined.
    let ya: Vec<f64> = above.iter().map(|p| p.summary.mean() + 1.0).collect();
    let fit_below = power_law_fit(&xs, &yb).expect("fit");
    let fit_above = power_law_fit(&xs, &ya).expect("fit");
    println!("below r_c exponent: {}", fmt_exponent(&fit_below));
    println!(
        "above r_c exponent (on T_B + 1): {}",
        fmt_exponent(&fit_above)
    );
    verdict(
        fit_below.exponent < -0.3 && fit_above.exponent.abs() < 0.35,
        &format!(
            "polynomial decay below ({:.3}) vs near-flat above ({:.3})",
            fit_below.exponent, fit_above.exponent
        ),
    );
}
