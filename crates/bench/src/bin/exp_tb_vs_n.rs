//! E2 — broadcast time vs. grid size (Theorem 1).
//!
//! Claim: `T_B = Θ̃(n/√k)`, so at fixed `k` the log–log slope of `T_B`
//! against `n` is ≈ 1 (up to polylog).

use sparsegossip_analysis::{power_law_fit, Sweep, Table};
use sparsegossip_bench::{fmt_exponent, measure_broadcast, verdict, ExpCtx};

fn main() {
    let ctx = ExpCtx::init(
        "E2",
        "broadcast time vs n (fixed k, r = 0)",
        "T_B = Theta~(n/sqrt(k)) => slope of log T_B vs log n is about 1",
    );
    let k: usize = 32;
    let sides: Vec<u32> = ctx.pick(
        vec![32, 48, 64, 96, 128],
        vec![32, 48, 64, 96, 128, 192, 256],
    );
    let reps = ctx.pick(10, 24);

    let sweep = Sweep::new(ctx.seed).replicates(reps).threads(ctx.threads);
    let points = sweep.run(&sides, |&side, seed| measure_broadcast(side, k, 0, seed));

    let mut table = Table::new(vec![
        "side".into(),
        "n".into(),
        "mean T_B".into(),
        "ci95".into(),
        "T_B/(n/sqrt(k))".into(),
    ]);
    for p in &points {
        let n = f64::from(p.param) * f64::from(p.param);
        let shape = n / (k as f64).sqrt();
        table.push_row(vec![
            p.param.to_string(),
            format!("{n:.0}"),
            format!("{:.1}", p.summary.mean()),
            format!("{:.1}", p.summary.ci95_half_width()),
            format!("{:.3}", p.summary.mean() / shape),
        ]);
    }
    println!("{table}");

    let xs: Vec<f64> = points
        .iter()
        .map(|p| f64::from(p.param) * f64::from(p.param))
        .collect();
    let ys: Vec<f64> = points.iter().map(|p| p.summary.mean()).collect();
    let fit = power_law_fit(&xs, &ys).expect("enough points to fit");
    println!("fitted exponent of T_B ~ n^e: e = {}", fmt_exponent(&fit));
    println!("paper: e = 1 (up to polylog factors)");
    verdict(
        (fit.exponent - 1.0).abs() < 0.25,
        &format!("measured e = {:.3} vs 1.0", fit.exponent),
    );
}
