//! E6 — random-walk range and displacement (Lemma 2).
//!
//! Claims: (2.2) after `ℓ` steps a walk has visited `Ω(ℓ/log ℓ)`
//! distinct nodes with probability > 1/2; (2.1) the deviation from the
//! start exceeds `λ√ℓ` with probability at most `~e^{−λ²/2}`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_analysis::{power_law_fit, Sweep, Table};
use sparsegossip_bench::{fmt_exponent, verdict, ExpCtx};
use sparsegossip_grid::{Grid, Point};
use sparsegossip_walks::{azuma_deviation_bound, lazy_step, DisplacementTracker, RangeTracker};

fn walk_stats(side: u32, ell: u64, seed: u64) -> (f64, f64) {
    let grid = Grid::new(side).expect("valid side");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mid = side / 2;
    let mut p = Point::new(mid, mid);
    let mut range = RangeTracker::new(&grid);
    let mut disp = DisplacementTracker::new(p);
    range.record(&grid, p);
    for _ in 0..ell {
        p = lazy_step(&grid, p, &mut rng);
        range.record(&grid, p);
    }
    disp.record(p);
    (range.distinct() as f64, f64::from(disp.last_deviation()))
}

fn main() {
    let ctx = ExpCtx::init(
        "E6",
        "walk range R_ell and displacement after ell steps (Lemma 2)",
        "R_ell = Omega(ell/log ell); P(dev >= lambda sqrt(ell)) <= ~exp(-lambda^2/2)",
    );
    let side: u32 = ctx.pick(1024, 2048);
    let ells: Vec<u64> = ctx.pick(
        vec![1 << 10, 1 << 12, 1 << 14, 1 << 16],
        vec![1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18],
    );
    let reps = ctx.pick(20, 50);

    let sweep = Sweep::new(ctx.seed).replicates(reps).threads(ctx.threads);
    let points = sweep.run(&ells, |&ell, seed| walk_stats(side, ell, seed).0);

    let mut table = Table::new(vec![
        "ell".into(),
        "mean range".into(),
        "range/(ell/ln ell)".into(),
    ]);
    for p in &points {
        let shape = p.param as f64 / (p.param as f64).ln();
        table.push_row(vec![
            p.param.to_string(),
            format!("{:.0}", p.summary.mean()),
            format!("{:.3}", p.summary.mean() / shape),
        ]);
    }
    println!("{table}");

    let xs: Vec<f64> = points.iter().map(|p| p.param as f64).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.summary.mean()).collect();
    let fit = power_law_fit(&xs, &ys).expect("enough points");
    println!(
        "fitted exponent of R_ell ~ ell^e: e = {}",
        fmt_exponent(&fit)
    );
    println!("paper: e = 1 up to the 1/log factor (so slightly below 1)");

    // Displacement tail at lambda = 3.
    let ell = *ells.last().expect("nonempty");
    let lambda = 3.0f64;
    let threshold = lambda * (ell as f64).sqrt();
    let tail_reps: u32 = ctx.pick(400, 1000);
    let tail_sweep = Sweep::new(ctx.seed ^ 0xD15C)
        .replicates(tail_reps)
        .threads(ctx.threads);
    let tail = tail_sweep.run(&[ell], |&l, seed| {
        let (_, dev) = walk_stats(side, l, seed);
        f64::from(u8::from(dev >= threshold))
    });
    let rate = tail[0].summary.mean();
    let bound = azuma_deviation_bound(lambda);
    println!("displacement tail at lambda={lambda}: empirical {rate:.4} vs Azuma bound {bound:.4}");
    verdict(
        (fit.exponent - 1.0).abs() < 0.15 && rate <= bound + 0.01,
        &format!(
            "range exponent {:.3} ~ 1; tail {rate:.4} <= {bound:.4}",
            fit.exponent
        ),
    );
}
