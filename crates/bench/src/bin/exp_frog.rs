//! E8 — Frog-model broadcast time (§4 extension).
//!
//! Claim: with only informed agents moving, the broadcast time obeys
//! the same `Θ̃(n/√k)` bounds (Lemma 3 replaced by Lemma 1 in the
//! argument). Expect a `k`-exponent near −1/2 again, with a larger
//! constant than the fully mobile model.

use sparsegossip_analysis::{power_law_fit, Sweep, Table};
use sparsegossip_bench::{fmt_exponent, measure_broadcast, measure_frog, verdict, ExpCtx};

fn main() {
    let ctx = ExpCtx::init(
        "E8",
        "Frog model: broadcast time vs k (only informed agents move)",
        "same Theta~(n/sqrt(k)) scaling as the fully mobile model",
    );
    let side: u32 = ctx.pick(64, 128);
    let ks: Vec<usize> = ctx.pick(vec![8, 16, 32, 64, 128], vec![8, 16, 32, 64, 128, 256]);
    let reps = ctx.pick(8, 20);

    let sweep = Sweep::new(ctx.seed).replicates(reps).threads(ctx.threads);
    let frog = sweep.run(&ks, |&k, seed| measure_frog(side, k, 0, seed));
    let free = sweep.run(&ks, |&k, seed| measure_broadcast(side, k, 0, seed));

    let mut table = Table::new(vec![
        "k".into(),
        "frog T_B".into(),
        "mobile T_B".into(),
        "frog/mobile".into(),
    ]);
    for (f, m) in frog.iter().zip(&free) {
        table.push_row(vec![
            f.param.to_string(),
            format!("{:.1}", f.summary.mean()),
            format!("{:.1}", m.summary.mean()),
            format!("{:.2}", f.summary.mean() / m.summary.mean()),
        ]);
    }
    println!("{table}");

    let xs: Vec<f64> = frog.iter().map(|p| p.param as f64).collect();
    let ys: Vec<f64> = frog.iter().map(|p| p.summary.mean()).collect();
    let fit = power_law_fit(&xs, &ys).expect("enough points");
    println!("frog exponent of T_B ~ k^e: e = {}", fmt_exponent(&fit));
    println!("paper: e = -0.5 (up to polylog factors)");
    verdict(
        (fit.exponent + 0.5).abs() < 0.25,
        &format!("measured e = {:.3} vs -0.5", fit.exponent),
    );
}
