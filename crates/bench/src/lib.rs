//! Shared plumbing for the experiment binaries that regenerate every
//! claim of Pettarin et al. (PODC 2011).
//!
//! Each binary (`exp_*`) prints a header, a result table, and — where a
//! scaling exponent or threshold is claimed — a fit with the paper's
//! expected value. See `EXPERIMENTS.md` at the workspace root for the
//! full index and recorded results.
//!
//! # Scale control
//!
//! Binaries honor the `SG_SCALE` environment variable:
//!
//! * `quick` (default) — minute-scale total runtime, sizes large
//!   enough for the shapes to be visible;
//! * `full` — larger grids / more replicates for tighter exponents.
//!
//! `SG_SEED` overrides the master seed (default 2011, the venue year).
//! `SG_THREADS` overrides the worker-thread count.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_core::{Mobility, SimConfig, Simulation};

/// Experiment scale selected via `SG_SCALE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Minute-scale defaults.
    Quick,
    /// Publication-scale runs.
    Full,
}

/// Runtime context shared by all experiment binaries.
#[derive(Clone, Copy, Debug)]
pub struct ExpCtx {
    /// Selected scale.
    pub scale: Scale,
    /// Master seed for the sweep harness.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl ExpCtx {
    /// Reads `SG_SCALE`, `SG_SEED` and `SG_THREADS` from the
    /// environment, prints the standard experiment header, and returns
    /// the context.
    #[must_use]
    pub fn init(id: &str, title: &str, claim: &str) -> Self {
        let scale = match std::env::var("SG_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        };
        let seed = std::env::var("SG_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(2011);
        let threads = std::env::var("SG_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, usize::from));
        println!("=== {id}: {title} ===");
        println!("paper claim: {claim}");
        println!("scale: {scale:?}, seed: {seed}, threads: {threads}");
        println!();
        Self {
            scale,
            seed,
            threads,
        }
    }

    /// Picks `quick` or `full` depending on the scale.
    #[must_use]
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        match self.scale {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Runs one broadcast and returns `T_B` as `f64` (the step cap if the
/// run did not finish — callers should size caps so this is rare).
#[must_use]
pub fn measure_broadcast(side: u32, k: usize, r: u32, seed: u64) -> f64 {
    let config = SimConfig::builder(side, k)
        .radius(r)
        .build()
        .expect("valid experiment config");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sim = Simulation::broadcast(&config, &mut rng).expect("constructible sim");
    let out = sim.run(&mut rng);
    out.broadcast_time.unwrap_or(config.max_steps()) as f64
}

/// Runs one Frog-model broadcast and returns `T_B` as `f64`.
#[must_use]
pub fn measure_frog(side: u32, k: usize, r: u32, seed: u64) -> f64 {
    let config = SimConfig::builder(side, k)
        .radius(r)
        .mobility(Mobility::InformedOnly)
        .build()
        .expect("valid experiment config");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sim = Simulation::frog(&config, &mut rng).expect("constructible sim");
    let out = sim.run(&mut rng);
    out.broadcast_time.unwrap_or(config.max_steps()) as f64
}

/// Runs one gossip and returns `T_G` as `f64`.
#[must_use]
pub fn measure_gossip(side: u32, k: usize, r: u32, seed: u64) -> f64 {
    let config = SimConfig::builder(side, k)
        .radius(r)
        .build()
        .expect("valid experiment config");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sim = Simulation::gossip(&config, &mut rng).expect("constructible sim");
    let out = sim.run(&mut rng);
    out.gossip_time.unwrap_or(config.max_steps()) as f64
}

/// Formats a fitted exponent with its standard error.
#[must_use]
pub fn fmt_exponent(fit: &sparsegossip_analysis::Fit) -> String {
    format!(
        "{:.3} ± {:.3} (R² = {:.4})",
        fit.exponent, fit.slope_std_err, fit.r_squared
    )
}

/// Prints the standard closing verdict line.
pub fn verdict(ok: bool, detail: &str) {
    if ok {
        println!("VERDICT: shape reproduced — {detail}");
    } else {
        println!("VERDICT: MISMATCH — {detail}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_respects_scale() {
        let ctx = ExpCtx {
            scale: Scale::Quick,
            seed: 1,
            threads: 1,
        };
        assert_eq!(ctx.pick(1, 2), 1);
        let ctx = ExpCtx {
            scale: Scale::Full,
            seed: 1,
            threads: 1,
        };
        assert_eq!(ctx.pick(1, 2), 2);
    }

    #[test]
    fn measures_return_finite_positive_times() {
        assert!(measure_broadcast(16, 8, 0, 1) > 0.0);
        assert!(measure_frog(12, 8, 0, 2) > 0.0);
        assert!(measure_gossip(12, 6, 0, 3) > 0.0);
    }

    #[test]
    fn identical_seeds_reproduce() {
        let a = measure_broadcast(16, 8, 1, 42);
        let b = measure_broadcast(16, 8, 1, 42);
        assert_eq!(a, b);
    }
}
