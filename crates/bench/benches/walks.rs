//! Micro-benchmarks of the walk engine: per-step cost of advancing k
//! lazy walks (the inner loop of every experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_grid::{Grid, Torus};
use sparsegossip_walks::WalkEngine;
use std::hint::black_box;

fn bench_step_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("walk_step_all");
    for &k in &[64usize, 1024, 16384] {
        group.bench_with_input(BenchmarkId::new("grid", k), &k, |b, &k| {
            let grid = Grid::new(1024).unwrap();
            let mut rng = SmallRng::seed_from_u64(1);
            let mut engine = WalkEngine::uniform(grid, k, &mut rng).unwrap();
            b.iter(|| {
                engine.step_all(&mut rng);
                black_box(engine.positions().len())
            });
        });
        group.bench_with_input(BenchmarkId::new("torus", k), &k, |b, &k| {
            let torus = Torus::new(1024).unwrap();
            let mut rng = SmallRng::seed_from_u64(1);
            let mut engine = WalkEngine::uniform(torus, k, &mut rng).unwrap();
            b.iter(|| {
                engine.step_all(&mut rng);
                black_box(engine.positions().len())
            });
        });
    }
    group.finish();
}

fn bench_cover_small(c: &mut Criterion) {
    c.bench_function("multi_cover_32grid_16walks", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let grid = Grid::new(32).unwrap();
            let mut rng = SmallRng::seed_from_u64(seed);
            let run = sparsegossip_walks::multi_cover(grid, 16, 10_000_000, &mut rng).unwrap();
            black_box(run.cover_time)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_step_all, bench_cover_small
}
criterion_main!(benches);
