//! Micro-benchmarks of visibility-graph component construction: the
//! spatial-hash path against the O(k²) brute force, across densities,
//! and the fresh-allocation path against the scratch-reuse path
//! (`components_into`) that the simulation hot loop uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sparsegossip_conngraph::{components, components_brute, components_into, ComponentsScratch};
use sparsegossip_grid::Point;
use std::hint::black_box;

fn positions(k: usize, side: u32, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..k)
        .map(|_| Point::new(rng.random_range(0..side), rng.random_range(0..side)))
        .collect()
}

fn bench_components(c: &mut Criterion) {
    let side = 512;
    let mut group = c.benchmark_group("visibility_components");
    for &k in &[256usize, 2048, 16384] {
        let pts = positions(k, side, 7);
        // Sub-critical radius: r = sqrt(n/k)/2.
        let r = (((side as f64).powi(2) / k as f64).sqrt() / 2.0) as u32;
        group.bench_with_input(BenchmarkId::new("spatial_hash", k), &k, |b, _| {
            b.iter(|| black_box(components(&pts, r, side)));
        });
        if k <= 2048 {
            group.bench_with_input(BenchmarkId::new("brute_force", k), &k, |b, _| {
                b.iter(|| black_box(components_brute(&pts, r, side)));
            });
        }
    }
    group.finish();
}

/// Fresh `components` (allocating four Vecs plus the spatial hash per
/// call) vs `components_into` with a persistent scratch — the before/
/// after of the zero-allocation hot-path rework, at the sub-critical
/// radius and at the contact-only `r = 0` regime.
fn bench_scratch_reuse(c: &mut Criterion) {
    let side = 512;
    let mut group = c.benchmark_group("components_scratch_reuse");
    for &k in &[256usize, 2048, 16384] {
        let pts = positions(k, side, 7);
        let r = (((side as f64).powi(2) / k as f64).sqrt() / 2.0) as u32;
        group.bench_with_input(BenchmarkId::new("fresh", k), &k, |b, _| {
            b.iter(|| black_box(components(&pts, r, side)));
        });
        group.bench_with_input(BenchmarkId::new("scratch", k), &k, |b, _| {
            let mut scratch = ComponentsScratch::new();
            b.iter(|| {
                black_box(components_into(&mut scratch, &pts, r, side));
            });
        });
        group.bench_with_input(BenchmarkId::new("fresh_r0", k), &k, |b, _| {
            b.iter(|| black_box(components(&pts, 0, side)));
        });
        group.bench_with_input(BenchmarkId::new("scratch_r0", k), &k, |b, _| {
            let mut scratch = ComponentsScratch::new();
            b.iter(|| {
                black_box(components_into(&mut scratch, &pts, 0, side));
            });
        });
    }
    group.finish();
}

fn bench_radius_sweep(c: &mut Criterion) {
    let side = 512;
    let k = 4096usize;
    let pts = positions(k, side, 11);
    let mut group = c.benchmark_group("components_by_radius");
    for &r in &[0u32, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| black_box(components(&pts, r, side)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_components, bench_scratch_reuse, bench_radius_sweep
}
criterion_main!(benches);
