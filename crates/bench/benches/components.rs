//! Micro-benchmarks of visibility-graph component construction: the
//! spatial-hash path against the O(k²) brute force, across densities,
//! and the fresh-allocation path against the scratch-reuse path
//! (`components_into`) that the simulation hot loop uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sparsegossip_conngraph::{
    components, components_brute, components_from_seeds_into, components_from_seeds_on,
    components_into, ComponentsScratch, SeededScratch, SpatialHash,
};
use sparsegossip_grid::Point;
use sparsegossip_walks::BitSet;
use std::hint::black_box;

fn positions(k: usize, side: u32, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..k)
        .map(|_| Point::new(rng.random_range(0..side), rng.random_range(0..side)))
        .collect()
}

fn bench_components(c: &mut Criterion) {
    let side = 512;
    let mut group = c.benchmark_group("visibility_components");
    for &k in &[256usize, 2048, 16384] {
        let pts = positions(k, side, 7);
        // Sub-critical radius: r = sqrt(n/k)/2.
        let r = (((side as f64).powi(2) / k as f64).sqrt() / 2.0) as u32;
        group.bench_with_input(BenchmarkId::new("spatial_hash", k), &k, |b, _| {
            b.iter(|| black_box(components(&pts, r, side)));
        });
        if k <= 2048 {
            group.bench_with_input(BenchmarkId::new("brute_force", k), &k, |b, _| {
                b.iter(|| black_box(components_brute(&pts, r, side)));
            });
        }
    }
    group.finish();
}

/// Fresh `components` (allocating four Vecs plus the spatial hash per
/// call) vs `components_into` with a persistent scratch — the before/
/// after of the zero-allocation hot-path rework, at the sub-critical
/// radius and at the contact-only `r = 0` regime.
fn bench_scratch_reuse(c: &mut Criterion) {
    let side = 512;
    let mut group = c.benchmark_group("components_scratch_reuse");
    for &k in &[256usize, 2048, 16384] {
        let pts = positions(k, side, 7);
        let r = (((side as f64).powi(2) / k as f64).sqrt() / 2.0) as u32;
        group.bench_with_input(BenchmarkId::new("fresh", k), &k, |b, _| {
            b.iter(|| black_box(components(&pts, r, side)));
        });
        group.bench_with_input(BenchmarkId::new("scratch", k), &k, |b, _| {
            let mut scratch = ComponentsScratch::new();
            b.iter(|| {
                black_box(components_into(&mut scratch, &pts, r, side));
            });
        });
        group.bench_with_input(BenchmarkId::new("fresh_r0", k), &k, |b, _| {
            b.iter(|| black_box(components(&pts, 0, side)));
        });
        group.bench_with_input(BenchmarkId::new("scratch_r0", k), &k, |b, _| {
            let mut scratch = ComponentsScratch::new();
            b.iter(|| {
                black_box(components_into(&mut scratch, &pts, 0, side));
            });
        });
    }
    group.finish();
}

/// The frontier-sparse connectivity engine, strategy by strategy: a
/// fresh full build, the scratch-reuse full build, seed-restricted
/// labelling (a small informed set, as in most of a sparse broadcast's
/// lifetime), and seeded labelling over an incrementally maintained
/// hash (`apply_moves` with a lazy-walk-sized move log — the per-step
/// work of the `Simulation` frontier path).
fn bench_components_seeded(c: &mut Criterion) {
    let side = 512;
    let mut group = c.benchmark_group("components_seeded");
    for &k in &[256usize, 2048, 16384] {
        let pts = positions(k, side, 7);
        let r = (((side as f64).powi(2) / k as f64).sqrt() / 2.0) as u32;
        // A 1/64 informed fraction (≥ 1), the sparse-informed regime.
        let mut seeds = BitSet::new(k);
        for s in 0..(k / 64).max(1) {
            seeds.insert(s * 64 % k);
        }
        group.bench_with_input(BenchmarkId::new("fresh", k), &k, |b, _| {
            b.iter(|| black_box(components(&pts, r, side)));
        });
        group.bench_with_input(BenchmarkId::new("scratch", k), &k, |b, _| {
            let mut scratch = ComponentsScratch::new();
            b.iter(|| {
                black_box(components_into(&mut scratch, &pts, r, side));
            });
        });
        group.bench_with_input(BenchmarkId::new("seeded", k), &k, |b, _| {
            let mut scratch = ComponentsScratch::new();
            b.iter(|| {
                black_box(components_from_seeds_into(
                    &mut scratch,
                    &pts,
                    &seeds,
                    r,
                    side,
                ));
            });
        });
        group.bench_with_input(BenchmarkId::new("incremental_hash", k), &k, |b, _| {
            // One lazy step's worth of moves (~4/5 of the agents move
            // one cell), applied forward then backward so the hash
            // returns to `pts` every iteration.
            let mut rng = SmallRng::seed_from_u64(13);
            let mut fwd = Vec::new();
            for (i, &p) in pts.iter().enumerate() {
                let to = match rng.random_range(0u32..5) {
                    0 if p.y + 1 < side => Point::new(p.x, p.y + 1),
                    1 if p.x + 1 < side => Point::new(p.x + 1, p.y),
                    2 if p.y > 0 => Point::new(p.x, p.y - 1),
                    3 if p.x > 0 => Point::new(p.x - 1, p.y),
                    _ => p,
                };
                if to != p {
                    fwd.push((i as u32, p, to));
                }
            }
            let rev: Vec<(u32, Point, Point)> =
                fwd.iter().map(|&(i, from, to)| (i, to, from)).collect();
            let moved: Vec<Point> = {
                let mut v = pts.clone();
                for &(i, _, to) in &fwd {
                    v[i as usize] = to;
                }
                v
            };
            let mut hash = SpatialHash::build(&pts, r, side);
            let mut scratch = SeededScratch::new();
            b.iter(|| {
                hash.apply_moves(&fwd);
                black_box(components_from_seeds_on(
                    &hash,
                    &mut scratch,
                    &moved,
                    &seeds,
                    r,
                ));
                hash.apply_moves(&rev);
                black_box(components_from_seeds_on(
                    &hash,
                    &mut scratch,
                    &pts,
                    &seeds,
                    r,
                ));
            });
        });
    }
    group.finish();
}

fn bench_radius_sweep(c: &mut Criterion) {
    let side = 512;
    let k = 4096usize;
    let pts = positions(k, side, 11);
    let mut group = c.benchmark_group("components_by_radius");
    for &r in &[0u32, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| black_box(components(&pts, r, side)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_components, bench_scratch_reuse, bench_components_seeded, bench_radius_sweep
}
criterion_main!(benches);
