//! Benchmarks of multi-rumor machinery: the bitset rumor-set exchange
//! (gossip) against the single-bit fast path (broadcast), and the
//! predator-prey catch resolution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_core::{GossipSim, PredatorPreySim, SimConfig};
use sparsegossip_grid::Grid;
use std::hint::black_box;

fn bench_gossip_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("gossip_step");
    for &k in &[64usize, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let config = SimConfig::builder(256, k).radius(2).build().unwrap();
            let mut rng = SmallRng::seed_from_u64(5);
            let mut sim = GossipSim::new(&config, &mut rng).unwrap();
            b.iter(|| {
                sim.step(&mut rng);
                black_box(sim.rumors().min_count())
            });
        });
    }
    group.finish();
}

fn bench_predator_step(c: &mut Criterion) {
    c.bench_function("predator_prey_step_k256_m256", |b| {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut sim =
            PredatorPreySim::<Grid>::on_grid(512, 256, 256, 4, true, u64::MAX / 2, &mut rng)
                .unwrap();
        b.iter(|| black_box(sim.step(&mut rng)));
    });
}

fn bench_gossip_end_to_end(c: &mut Criterion) {
    c.bench_function("gossip_end_to_end_grid24_k8", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let config = SimConfig::builder(24, 8).radius(0).build().unwrap();
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut sim = GossipSim::new(&config, &mut rng).unwrap();
            black_box(sim.run(&mut rng))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gossip_step, bench_predator_step, bench_gossip_end_to_end
}
criterion_main!(benches);
