//! Benchmarks of multi-rumor machinery: the bitset rumor-set exchange
//! (gossip) against the single-bit fast path (broadcast), and the
//! predator-prey catch resolution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_core::{NullObserver, PredatorPrey, SimConfig, Simulation};
use sparsegossip_grid::Grid;
use std::hint::black_box;

fn bench_gossip_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("gossip_step");
    for &k in &[64usize, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let config = SimConfig::builder(256, k).radius(2).build().unwrap();
            let mut rng = SmallRng::seed_from_u64(5);
            let mut sim = Simulation::gossip(&config, &mut rng).unwrap();
            b.iter(|| {
                let _ = sim.step(&mut rng, &mut NullObserver);
                black_box(sim.process().rumor_sets().min_count())
            });
        });
    }
    group.finish();
}

fn bench_predator_step(c: &mut Criterion) {
    c.bench_function("predator_prey_step_k256_m256", |b| {
        let mut rng = SmallRng::seed_from_u64(6);
        let grid = Grid::new(512).unwrap();
        let process = PredatorPrey::uniform(&grid, 256, 4, true, &mut rng).unwrap();
        let mut sim = Simulation::new(grid, 256, 4, u64::MAX / 2, process, &mut rng).unwrap();
        b.iter(|| black_box(sim.step(&mut rng, &mut NullObserver)));
    });
}

fn bench_gossip_end_to_end(c: &mut Criterion) {
    c.bench_function("gossip_end_to_end_grid24_k8", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let config = SimConfig::builder(24, 8).radius(0).build().unwrap();
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut sim = Simulation::gossip(&config, &mut rng).unwrap();
            black_box(sim.run(&mut rng))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gossip_step, bench_predator_step, bench_gossip_end_to_end
}
criterion_main!(benches);
