//! Benchmarks of the broadcast simulation: per-step cost and small
//! end-to-end runs for both exchange rules and both mobility modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_core::{ExchangeRule, Mobility, NullObserver, SimConfig, Simulation};
use std::hint::black_box;

fn bench_broadcast_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast_step");
    for &(side, k) in &[(256u32, 256usize), (512, 1024)] {
        let id = format!("side{side}_k{k}");
        group.bench_with_input(
            BenchmarkId::from_parameter(id),
            &(side, k),
            |b, &(side, k)| {
                let config = SimConfig::builder(side, k).radius(2).build().unwrap();
                let mut rng = SmallRng::seed_from_u64(3);
                let mut sim = Simulation::broadcast(&config, &mut rng).unwrap();
                b.iter(|| black_box(sim.step(&mut rng, &mut NullObserver)));
            },
        );
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast_end_to_end");
    group.bench_function("grid32_k16_r0", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let config = SimConfig::builder(32, 16).radius(0).build().unwrap();
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut sim = Simulation::broadcast(&config, &mut rng).unwrap();
            black_box(sim.run(&mut rng))
        });
    });
    group.bench_function("grid32_k16_frog", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let config = SimConfig::builder(32, 16)
                .radius(0)
                .mobility(Mobility::InformedOnly)
                .build()
                .unwrap();
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut sim = Simulation::frog(&config, &mut rng).unwrap();
            black_box(sim.run(&mut rng))
        });
    });
    group.bench_function("grid32_k16_onehop", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let config = SimConfig::builder(32, 16)
                .radius(1)
                .exchange_rule(ExchangeRule::OneHop)
                .build()
                .unwrap();
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut sim = Simulation::broadcast(&config, &mut rng).unwrap();
            black_box(sim.run(&mut rng))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_broadcast_step, bench_end_to_end
}
criterion_main!(benches);
