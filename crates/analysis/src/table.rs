use core::fmt;

/// An aligned text table with CSV export, used by every experiment
/// binary to print paper-style result rows.
///
/// # Examples
///
/// ```
/// use sparsegossip_analysis::Table;
///
/// let mut t = Table::new(vec!["k".into(), "T_B".into()]);
/// t.push_row(vec!["16".into(), "812.3".into()]);
/// t.push_row(vec!["64".into(), "402.7".into()]);
/// let text = t.to_string();
/// assert!(text.contains("T_B"));
/// assert_eq!(t.to_csv(), "k,T_B\n16,812.3\n64,402.7\n");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Self {
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// The number of data rows.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no data rows.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (headers first; naive quoting — cells containing
    /// commas are wrapped in double quotes).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let quote = |cell: &str| {
            if cell.contains(',') {
                format!("\"{cell}\"")
            } else {
                cell.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "12345".into()]);
        t
    }

    #[test]
    fn display_aligns_columns() {
        let text = sample().to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All data lines are equally long after right-alignment.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new(vec!["a".into()]);
        t.push_row(vec!["x,y".into()]);
        assert_eq!(t.to_csv(), "a\n\"x,y\"\n");
    }

    #[test]
    fn counts_rows() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert!(Table::new(vec!["h".into()]).is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.push_row(vec!["only-one".into()]);
    }
}
