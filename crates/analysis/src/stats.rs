use core::fmt;

/// Summary statistics of a replicated measurement.
///
/// # Examples
///
/// ```
/// use sparsegossip_analysis::Summary;
///
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.median(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// assert!(s.std_dev() > 1.0 && s.std_dev() < 1.4);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    n: usize,
    mean: f64,
    variance: f64,
    min: f64,
    max: f64,
    median: f64,
    q25: f64,
    q75: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains non-finite values.
    #[must_use]
    pub fn from_slice(sample: &[f64]) -> Self {
        assert!(!sample.is_empty(), "cannot summarize an empty sample");
        assert!(
            sample.iter().all(|x| x.is_finite()),
            "sample contains non-finite values"
        );
        let n = sample.len();
        let mean = sample.iter().sum::<f64>() / n as f64;
        let variance = if n > 1 {
            sample.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare")); // detlint: allow(panic, finiteness asserted on entry above)
        Self {
            n,
            mean,
            variance,
            min: sorted[0],
            max: sorted[n - 1],
            median: quantile_sorted(&sorted, 0.5),
            q25: quantile_sorted(&sorted, 0.25),
            q75: quantile_sorted(&sorted, 0.75),
        }
    }

    /// Sample size.
    #[inline]
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sample mean.
    #[inline]
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for singleton samples).
    #[inline]
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Sample standard deviation.
    #[inline]
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_err(&self) -> f64 {
        self.std_dev() / (self.n as f64).sqrt()
    }

    /// Half-width of an approximate 95% confidence interval for the
    /// mean: `t · SE` with the two-sided Student-t critical value for
    /// `n − 1` degrees of freedom when `n ≤ 30`, falling back to the
    /// normal 1.96 above.
    ///
    /// The t correction matters at sweep scale: at the 3–10 replicates
    /// sweeps actually run, the normal factor understates the interval
    /// by up to 2× (n = 3: 4.303 vs 1.96), which would mis-steer any
    /// widest-CI-first replicate allocation.
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        t_critical_95(self.n) * self.std_err()
    }

    /// Sample minimum.
    #[inline]
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Sample maximum.
    #[inline]
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sample median (linear interpolation).
    #[inline]
    #[must_use]
    pub fn median(&self) -> f64 {
        self.median
    }

    /// First quartile.
    #[inline]
    #[must_use]
    pub fn q25(&self) -> f64 {
        self.q25
    }

    /// Third quartile.
    #[inline]
    #[must_use]
    pub fn q75(&self) -> f64 {
        self.q75
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} ± {:.3} (n={}, median {:.3}, range [{:.3}, {:.3}])",
            self.mean,
            self.ci95_half_width(),
            self.n,
            self.median,
            self.min,
            self.max
        )
    }
}

/// Two-sided 95% Student-t critical values for 1–29 degrees of
/// freedom (`TABLE[df - 1]`); beyond 30 samples the normal 1.96 is
/// within half a percent.
const T_CRITICAL_95: [f64; 29] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045,
];

/// The 95% critical factor for a sample of size `n`: Student-t with
/// `n − 1` degrees of freedom for `n ≤ 30`, else the normal 1.96. A
/// singleton sample (df = 0, t undefined) returns the df = 1 value;
/// its standard error is 0, so the interval is 0 either way.
fn t_critical_95(n: usize) -> f64 {
    match n {
        0 | 1 => T_CRITICAL_95[0],
        n if n <= 30 => T_CRITICAL_95[n - 2],
        _ => 1.96,
    }
}

/// Quantile of a pre-sorted sample with linear interpolation.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q));
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_sample() {
        let s = Summary::from_slice(&[7.0]);
        assert_eq!(s.n(), 1);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
        assert_eq!(s.median(), 7.0);
        assert_eq!(s.q25(), 7.0);
        assert_eq!(s.q75(), 7.0);
    }

    #[test]
    fn known_statistics() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic sample is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.median() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.q25() - 1.75).abs() < 1e-12);
        assert!((s.q75() - 3.25).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let small = Summary::from_slice(&[1.0, 2.0, 3.0]);
        let large = Summary::from_slice(&[1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn small_n_ci_uses_student_t() {
        // n = 2 (df = 1): sd = √2/2 · √2 = ... pin the exact factor
        // instead: width = t · s/√n with s and n known in closed form.
        let s2 = Summary::from_slice(&[1.0, 3.0]);
        // sd = √2, se = 1, t(df=1) = 12.706.
        assert!((s2.ci95_half_width() - 12.706).abs() < 1e-9);

        // n = 3 (df = 2): sample {1,2,3} has sd = 1, se = 1/√3.
        let s3 = Summary::from_slice(&[1.0, 2.0, 3.0]);
        assert!((s3.ci95_half_width() - 4.303 / 3f64.sqrt()).abs() < 1e-9);

        // n = 5 (df = 4): t = 2.776.
        let s5 = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let expected = 2.776 * s5.std_err();
        assert!((s5.ci95_half_width() - expected).abs() < 1e-12);

        // The normal 1.96 at these n would be up to 6.5× too narrow.
        assert!(s2.ci95_half_width() / (1.96 * s2.std_err()) > 6.0);
    }

    #[test]
    fn large_n_ci_falls_back_to_normal() {
        // n = 30 still uses t (df = 29: 2.045); n = 31 uses 1.96.
        let base: Vec<f64> = (0..30).map(f64::from).collect();
        let s30 = Summary::from_slice(&base);
        assert!((s30.ci95_half_width() - 2.045 * s30.std_err()).abs() < 1e-12);
        let more: Vec<f64> = (0..31).map(f64::from).collect();
        let s31 = Summary::from_slice(&more);
        assert!((s31.ci95_half_width() - 1.96 * s31.std_err()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = Summary::from_slice(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_sample_panics() {
        let _ = Summary::from_slice(&[1.0, f64::NAN]);
    }

    #[test]
    fn display_is_informative() {
        let s = Summary::from_slice(&[1.0, 2.0]);
        let text = s.to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains('±'));
    }
}
