use core::fmt;

/// Summary statistics of a replicated measurement.
///
/// # Examples
///
/// ```
/// use sparsegossip_analysis::Summary;
///
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.median(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// assert!(s.std_dev() > 1.0 && s.std_dev() < 1.4);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    n: usize,
    mean: f64,
    variance: f64,
    min: f64,
    max: f64,
    median: f64,
    q25: f64,
    q75: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains non-finite values.
    #[must_use]
    pub fn from_slice(sample: &[f64]) -> Self {
        assert!(!sample.is_empty(), "cannot summarize an empty sample");
        assert!(
            sample.iter().all(|x| x.is_finite()),
            "sample contains non-finite values"
        );
        let n = sample.len();
        let mean = sample.iter().sum::<f64>() / n as f64;
        let variance = if n > 1 {
            sample.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare")); // detlint: allow(panic, finiteness asserted on entry above)
        Self {
            n,
            mean,
            variance,
            min: sorted[0],
            max: sorted[n - 1],
            median: quantile_sorted(&sorted, 0.5),
            q25: quantile_sorted(&sorted, 0.25),
            q75: quantile_sorted(&sorted, 0.75),
        }
    }

    /// Sample size.
    #[inline]
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sample mean.
    #[inline]
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for singleton samples).
    #[inline]
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Sample standard deviation.
    #[inline]
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn std_err(&self) -> f64 {
        self.std_dev() / (self.n as f64).sqrt()
    }

    /// Half-width of an approximate 95% confidence interval for the
    /// mean (normal approximation, `1.96 · SE`).
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_err()
    }

    /// Sample minimum.
    #[inline]
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Sample maximum.
    #[inline]
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sample median (linear interpolation).
    #[inline]
    #[must_use]
    pub fn median(&self) -> f64 {
        self.median
    }

    /// First quartile.
    #[inline]
    #[must_use]
    pub fn q25(&self) -> f64 {
        self.q25
    }

    /// Third quartile.
    #[inline]
    #[must_use]
    pub fn q75(&self) -> f64 {
        self.q75
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} ± {:.3} (n={}, median {:.3}, range [{:.3}, {:.3}])",
            self.mean,
            self.ci95_half_width(),
            self.n,
            self.median,
            self.min,
            self.max
        )
    }
}

/// Quantile of a pre-sorted sample with linear interpolation.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q));
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_sample() {
        let s = Summary::from_slice(&[7.0]);
        assert_eq!(s.n(), 1);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
        assert_eq!(s.median(), 7.0);
        assert_eq!(s.q25(), 7.0);
        assert_eq!(s.q75(), 7.0);
    }

    #[test]
    fn known_statistics() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic sample is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.median() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.q25() - 1.75).abs() < 1e-12);
        assert!((s.q75() - 3.25).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let small = Summary::from_slice(&[1.0, 2.0, 3.0]);
        let large = Summary::from_slice(&[1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = Summary::from_slice(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_sample_panics() {
        let _ = Summary::from_slice(&[1.0, f64::NAN]);
    }

    #[test]
    fn display_is_informative() {
        let s = Summary::from_slice(&[1.0, 2.0]);
        let text = s.to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains('±'));
    }
}
