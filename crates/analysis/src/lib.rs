//! Statistics and experiment harness for the `sparsegossip` simulator.
//!
//! The paper's claims are asymptotic shapes (`T_B = Θ̃(n/√k)`,
//! thresholds at `r_c ≈ √(n/k)`, …); this crate turns Monte-Carlo runs
//! into those shapes:
//!
//! * [`Summary`] — replication summaries (mean, CI, quantiles);
//! * [`power_law_fit`] — log–log regression recovering scaling
//!   exponents with standard errors;
//! * [`Runner`] — multi-seed parallel execution of one simulation
//!   configuration (the ensemble companion of the `Process` API);
//! * [`Sweep`] — parameter sweeps with per-point replication, run
//!   across threads with deterministic per-replicate seeds
//!   ([`derive_seed`]);
//! * [`ScenarioSweep`] — multi-axis {side, k, r} sweeps of a
//!   declarative `ScenarioSpec`, with a phase-transition detector
//!   cross-checked against `sparsegossip_core::theory`, an adaptive
//!   knee-refinement mode ([`AdaptiveConfig`]) and checkpoint/resume
//!   through a [`ResultStore`];
//! * [`ResultStore`] — an append-only, integrity-checked binary log
//!   of completed simulations, keyed by (spec content hash, seed);
//! * [`Table`] — aligned text/CSV rendering of experiment outputs.
//!
//! # Examples
//!
//! Recover a known exponent from synthetic data:
//!
//! ```
//! use sparsegossip_analysis::power_law_fit;
//!
//! let xs = [4.0f64, 16.0, 64.0, 256.0];
//! let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(-0.5)).collect();
//! let fit = power_law_fit(&xs, &ys).unwrap();
//! assert!((fit.exponent - (-0.5)).abs() < 1e-9);
//! assert!((fit.r_squared - 1.0).abs() < 1e-9);
//! ```

mod histogram;
mod parallel;
mod regression;
mod runner;
mod scenario_sweep;
mod stats;
mod store;
mod sweep;
mod table;

pub use histogram::Histogram;
pub use parallel::{parallel_map, parallel_map_with};
pub use regression::{linear_fit, power_law_fit, Fit};
pub use runner::{Runner, RunnerReport};
pub use scenario_sweep::{
    AdaptiveConfig, AdaptiveSummary, FaultAxis, NetworkAxis, RadiusAxis, ScenarioCell,
    ScenarioSweep, ScenarioSweepReport, SweepCell, SweepError, TransitionEstimate, WorldAxis,
};
pub use store::{ResultStore, StoreError, StoreRecord};
// Seed derivation moved down-stack to `sparsegossip_walks` so the
// protocol twin can share it; re-exported here for API stability.
pub use sparsegossip_walks::{derive_seed, SeedSequence};
pub use stats::Summary;
pub use sweep::{Sweep, SweepPoint};
pub use table::Table;
