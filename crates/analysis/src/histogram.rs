/// A fixed-width histogram over `f64` samples with explicit bounds.
///
/// Used by the island/component experiments to report size
/// distributions. Samples below the range go to an underflow counter,
/// above to an overflow counter, so no data is silently dropped.
///
/// # Examples
///
/// ```
/// use sparsegossip_analysis::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5)?;
/// for x in [0.5, 1.5, 2.5, 2.6, 11.0] {
///     h.record(x);
/// }
/// assert_eq!(h.count(0), 2); // [0, 2)
/// assert_eq!(h.count(1), 2); // [2, 4)
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 5);
/// # Ok::<(), String>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal bins.
    ///
    /// # Errors
    ///
    /// Returns a message if `bins == 0`, bounds are non-finite, or
    /// `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, String> {
        if bins == 0 {
            return Err("histogram needs at least one bin".to_string());
        }
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(format!("invalid histogram range [{lo}, {hi})"));
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            // NaNs are counted as overflow so total() stays faithful.
            self.overflow += 1;
            return;
        }
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// The number of bins.
    #[inline]
    #[must_use]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// The count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    #[must_use]
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// The inclusive-exclusive bounds of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len());
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Samples below the range.
    #[inline]
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the upper bound (plus NaNs).
    #[inline]
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded (in-range + out-of-range).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Renders a compact ASCII bar chart (one line per bin).
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bin_bounds(i);
            let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!("[{lo:>10.2}, {hi:>10.2})  {c:>8}  {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        for i in 0..100 {
            h.record(f64::from(i) / 100.0);
        }
        assert_eq!(h.total(), 100);
        assert_eq!((0..4).map(|i| h.count(i)).sum::<u64>(), 100);
        assert_eq!(h.count(0), 25);
        assert_eq!(h.bin_bounds(1), (0.25, 0.5));
    }

    #[test]
    fn out_of_range_samples_are_counted() {
        let mut h = Histogram::new(0.0, 10.0, 2).unwrap();
        h.record(-1.0);
        h.record(10.0); // hi is exclusive
        h.record(f64::NAN);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn invalid_construction_is_rejected() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 0.0, 4).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
    }

    #[test]
    fn render_has_one_line_per_bin() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.record(1.0);
        let text = h.render(20);
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains('#'));
    }

    #[test]
    fn boundary_value_lands_in_upper_bin() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.record(0.5);
        assert_eq!(h.count(1), 1);
        // Values extremely close to hi stay in the last bin.
        h.record(0.999_999);
        assert_eq!(h.count(1), 2);
    }
}
