use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Applies `f` to every item across `threads` OS threads, preserving
/// input order in the output.
///
/// Work is distributed dynamically (an atomic cursor), so uneven item
/// costs — ubiquitous in Monte-Carlo sweeps where large configurations
/// run longest — still balance. Panics in `f` propagate.
///
/// With `threads <= 1` or a single item, runs inline with no spawning.
///
/// # Examples
///
/// ```
/// use sparsegossip_analysis::parallel_map;
///
/// let squares = parallel_map(&[1u64, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_with(items, threads, || (), |(), item| f(item))
}

/// As [`parallel_map`], but each worker thread first builds a private
/// state with `init` and hands `f` a mutable reference to it for every
/// item it processes.
///
/// This is the scratch-reuse hook of the sweep machinery: a worker's
/// state (e.g. a warmed-up simulation scratch) persists across all the
/// items that worker picks up, so per-item setup cost is paid once per
/// thread instead of once per item. Because work distribution is
/// dynamic, *which* items share a state is scheduling-dependent —
/// states must therefore never influence results, only speed. Output
/// order is input order regardless.
///
/// # Examples
///
/// ```
/// use sparsegossip_analysis::parallel_map_with;
///
/// // Each worker reuses one growable buffer for all its items.
/// let out = parallel_map_with(
///     &[1usize, 2, 3],
///     2,
///     Vec::new,
///     |buf: &mut Vec<usize>, &n| {
///         buf.clear();
///         buf.extend(0..n);
///         buf.iter().sum::<usize>()
///     },
/// );
/// assert_eq!(out, vec![0, 1, 3]);
/// ```
pub fn parallel_map_with<T, S, U, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> U + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    if threads <= 1 || items.len() == 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let threads = threads.min(items.len());
    let cursor = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<U>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let out = f(&mut state, &items[i]);
                    *results[i].lock() = Some(out);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("every slot filled")) // detlint: allow(panic, scoped threads fill every slot before joining)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = parallel_map(&[1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_is_empty_output() {
        let out: Vec<i32> = parallel_map(&[] as &[i32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map(&[10], 16, |&x| x - 1);
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn per_worker_state_persists_and_output_is_ordered() {
        // Count how many items each worker state saw; the total must be
        // the item count and the output must stay in input order.
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map_with(
            &items,
            4,
            || 0usize,
            |seen, &x| {
                *seen += 1;
                (x, *seen)
            },
        );
        assert_eq!(out.len(), 64);
        for (i, &(x, seen)) in out.iter().enumerate() {
            assert_eq!(x, i);
            assert!(seen >= 1);
        }
        let total: usize = {
            // Each worker's last-seen counts sum to 64, but we can only
            // observe per-item snapshots; the serial path is exact.
            let serial = parallel_map_with(
                &items,
                1,
                || 0usize,
                |s, _| {
                    *s += 1;
                    *s
                },
            );
            *serial.last().unwrap()
        };
        assert_eq!(total, 64, "serial path reuses one state for all items");
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different costs still produce correct,
        // ordered output.
        let items: Vec<u64> = (0..32)
            .map(|i| if i % 7 == 0 { 200_000 } else { 10 })
            .collect();
        let out = parallel_map(&items, 4, |&n| (0..n).sum::<u64>());
        for (n, got) in items.iter().zip(&out) {
            assert_eq!(*got, n * (n - 1) / 2);
        }
    }
}
