use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Applies `f` to every item across `threads` OS threads, preserving
/// input order in the output.
///
/// Work is distributed dynamically (an atomic cursor), so uneven item
/// costs — ubiquitous in Monte-Carlo sweeps where large configurations
/// run longest — still balance. Panics in `f` propagate.
///
/// With `threads <= 1` or a single item, runs inline with no spawning.
///
/// # Examples
///
/// ```
/// use sparsegossip_analysis::parallel_map;
///
/// let squares = parallel_map(&[1u64, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    if threads <= 1 || items.len() == 1 {
        return items.iter().map(&f).collect();
    }
    let threads = threads.min(items.len());
    let cursor = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<U>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                *results[i].lock() = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = parallel_map(&[1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_is_empty_output() {
        let out: Vec<i32> = parallel_map(&[] as &[i32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map(&[10], 16, |&x| x - 1);
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different costs still produce correct,
        // ordered output.
        let items: Vec<u64> = (0..32)
            .map(|i| if i % 7 == 0 { 200_000 } else { 10 })
            .collect();
        let out = parallel_map(&items, 4, |&n| (0..n).sum::<u64>());
        for (n, got) in items.iter().zip(&out) {
            assert_eq!(*got, n * (n - 1) / 2);
        }
    }
}
