use crate::{derive_seed, parallel_map, Summary};

/// One point of a completed sweep: the parameter value and the summary
/// of its replicated measurements.
#[derive(Clone, Debug)]
pub struct SweepPoint<P> {
    /// The parameter value of this point.
    pub param: P,
    /// Summary over replicates.
    pub summary: Summary,
    /// The raw per-replicate measurements (replicate order).
    pub samples: Vec<f64>,
}

/// A replicated parameter sweep: for each parameter value, `replicates`
/// measurements are taken with decorrelated deterministic seeds, in
/// parallel across points and replicates.
///
/// # Examples
///
/// ```
/// use sparsegossip_analysis::Sweep;
///
/// // "Measure" a deterministic function of the parameter and seed.
/// let sweep = Sweep::new(42).replicates(4).threads(2);
/// let points = sweep.run(&[1.0f64, 2.0, 4.0], |&p, _seed| p * 10.0);
/// assert_eq!(points.len(), 3);
/// assert_eq!(points[1].summary.mean(), 20.0);
/// assert_eq!(points[1].samples.len(), 4);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Sweep {
    master_seed: u64,
    replicates: u32,
    threads: usize,
}

impl Sweep {
    /// Creates a sweep with the given master seed, 8 replicates, and
    /// single-threaded execution.
    #[must_use]
    pub fn new(master_seed: u64) -> Self {
        Self {
            master_seed,
            replicates: 8,
            threads: 1,
        }
    }

    /// Sets the number of replicates per point.
    ///
    /// # Panics
    ///
    /// Panics if `replicates == 0`.
    #[must_use]
    pub fn replicates(mut self, replicates: u32) -> Self {
        assert!(replicates > 0, "at least one replicate required");
        self.replicates = replicates;
        self
    }

    /// Sets the number of worker threads.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The master seed.
    #[inline]
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Runs `measure(param, seed)` for every `(point, replicate)` pair
    /// and summarizes per point.
    ///
    /// The seed for replicate `j` of point `i` is
    /// `derive_seed(master, i · replicates + j)`, so results are
    /// reproducible and independent of the thread count.
    pub fn run<P, F>(&self, params: &[P], measure: F) -> Vec<SweepPoint<P>>
    where
        P: Clone + Sync,
        F: Fn(&P, u64) -> f64 + Sync,
    {
        let reps = self.replicates as u64;
        // Flatten (point, replicate) into one task list for balancing.
        let tasks: Vec<(usize, u64)> = (0..params.len())
            .flat_map(|i| (0..reps).map(move |j| (i, j)))
            .collect();
        let values = parallel_map(&tasks, self.threads, |&(i, j)| {
            let seed = derive_seed(self.master_seed, i as u64 * reps + j);
            measure(&params[i], seed)
        });
        params
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let samples: Vec<f64> = (0..reps as usize)
                    .map(|j| values[i * reps as usize + j])
                    .collect();
                SweepPoint {
                    param: p.clone(),
                    summary: Summary::from_slice(&samples),
                    samples,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_thread_counts() {
        let params = [1u32, 2, 3];
        let measure = |p: &u32, seed: u64| (u64::from(*p) * 1000 + seed % 97) as f64;
        let serial = Sweep::new(5).replicates(6).threads(1).run(&params, measure);
        let parallel = Sweep::new(5).replicates(6).threads(4).run(&params, measure);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.samples, b.samples);
        }
    }

    #[test]
    fn distinct_seeds_across_points_and_replicates() {
        use std::collections::HashSet; // detlint: allow(nondet-map, test-only seed-collision check; order never observed)
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new()); // detlint: allow(nondet-map, test-only seed-collision check; order never observed)
        let _ = Sweep::new(1).replicates(5).run(&[0u8, 1, 2], |_, seed| {
            assert!(seen.lock().unwrap().insert(seed), "seed {seed} repeated");
            0.0
        });
        assert_eq!(seen.lock().unwrap().len(), 15);
    }

    #[test]
    fn summaries_cover_all_replicates() {
        let pts = Sweep::new(3).replicates(10).run(&[7.0f64], |p, _| *p);
        assert_eq!(pts[0].summary.n(), 10);
        assert_eq!(pts[0].summary.mean(), 7.0);
    }

    #[test]
    #[should_panic(expected = "at least one replicate")]
    fn zero_replicates_panics() {
        let _ = Sweep::new(1).replicates(0);
    }
}
