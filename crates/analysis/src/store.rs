//! The streaming result store: an append-only, versioned, compact
//! binary file of completed sweep measurements, built for
//! checkpoint/resume of long sweeps.
//!
//! # Format (version 1)
//!
//! ```text
//! header  (16 bytes): magic "SGRS" | version u32 | record_len u32 | reserved u32
//! records (32 bytes each, little-endian):
//!     spec_hash u64 | seed u64 | replicate u32 | flags u32 (0) | value f64-bits
//! trailer (24 bytes, written on clean close only):
//!     magic "SGRSEND\0" | record_count u64 | FNV-1a-64 over all record bytes
//! ```
//!
//! Records are keyed by `(spec_hash, seed)` — the spec's
//! [`content_hash`](sparsegossip_core::ScenarioSpec::content_hash)
//! plus the replicate's content-addressed seed — so a record means
//! "this exact simulation, this exact RNG stream, produced this
//! value" regardless of where the cell sat in its sweep grid. The
//! trailer hash mirrors the protocol crate's FNV-1a event-log
//! discipline: a complete file proves its own integrity.
//!
//! A killed run leaves no trailer (and possibly a torn final record);
//! [`ResultStore::open_resume`] verifies the trailer when present,
//! otherwise truncates to the last whole record and replays the
//! prefix as cache hits. Because the sweep engine appends in
//! deterministic task order, a resumed store converges byte-for-byte
//! with an uninterrupted one.
//!
//! Damage short of malformed records is **salvaged**, not fatal: a
//! torn tail or a trailer that contradicts the record bytes recovers
//! the longest whole-record prefix and leaves a
//! [`salvage note`](ResultStore::salvage_note) for the caller to
//! surface as a warning, so `--resume` keeps working after a crash
//! mid-write. A record that itself decodes to garbage (a non-finite
//! value) stays a hard [`StoreError::Corrupt`] — replaying it would
//! poison the resumed sweep.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use sparsegossip_core::fnv1a;

/// File magic of a result store.
pub const STORE_MAGIC: [u8; 4] = *b"SGRS";
/// Current format version.
pub const STORE_VERSION: u32 = 1;
/// Trailer magic of a cleanly closed store.
pub const TRAILER_MAGIC: [u8; 8] = *b"SGRSEND\0";

const HEADER_LEN: usize = 16;
const RECORD_LEN: usize = 32;
const TRAILER_LEN: usize = 24;

/// Errors from the result store.
#[derive(Debug)]
pub enum StoreError {
    /// An OS-level read/write/open failed.
    Io {
        /// The store path.
        path: PathBuf,
        /// The underlying error text.
        error: String,
    },
    /// The file is not a result store or fails its own integrity
    /// checks.
    Corrupt {
        /// The store path.
        path: PathBuf,
        /// What failed.
        detail: String,
    },
    /// The file is a result store of an unsupported format version.
    Version {
        /// The store path.
        path: PathBuf,
        /// The version found in the header.
        found: u32,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { path, error } => write!(f, "result store {}: {error}", path.display()),
            Self::Corrupt { path, detail } => {
                write!(f, "result store {} is corrupt: {detail}", path.display())
            }
            Self::Version { path, found } => write!(
                f,
                "result store {} has format version {found}, this build reads {STORE_VERSION}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// One decoded record (exposed for tooling and tests; the sweep
/// engine itself consumes records through the `(spec_hash, seed)`
/// index).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StoreRecord {
    /// Content hash of the cell's spec.
    pub spec_hash: u64,
    /// Content-addressed seed of the replicate.
    pub seed: u64,
    /// Replicate number (informational; the key is the seed).
    pub replicate: u32,
    /// Measured metric value.
    pub value: f64,
}

/// An append-only binary store of completed sweep measurements.
#[derive(Debug)]
pub struct ResultStore {
    path: PathBuf,
    file: File,
    /// `(spec_hash, seed) → value` over every record in the file.
    index: BTreeMap<(u64, u64), f64>,
    /// Rolling FNV-1a over all record bytes (the trailer hash).
    hash: u64,
    records: u64,
    finished: bool,
    /// What [`open_resume`](Self::open_resume) had to drop to recover
    /// this store, when it was damaged; `None` for a clean open.
    salvage: Option<String>,
}

impl ResultStore {
    /// Creates (or truncates) a store at `path` and writes the header.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be created or written.
    pub fn create(path: &Path) -> Result<Self, StoreError> {
        let io = |error: std::io::Error| StoreError::Io {
            path: path.to_path_buf(),
            error: error.to_string(),
        };
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(io)?;
        let mut header = [0u8; HEADER_LEN];
        header[0..4].copy_from_slice(&STORE_MAGIC);
        header[4..8].copy_from_slice(&STORE_VERSION.to_le_bytes());
        header[8..12].copy_from_slice(&(RECORD_LEN as u32).to_le_bytes());
        file.write_all(&header).map_err(io)?;
        file.flush().map_err(io)?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            index: BTreeMap::new(),
            hash: fnv1a(&[]),
            records: 0,
            finished: false,
            salvage: None,
        })
    }

    /// Opens an existing store for resumption: verifies the header,
    /// verifies the trailer when one is present (clean close) or
    /// truncates a torn tail to the last whole record (kill), builds
    /// the `(spec_hash, seed)` index and positions for appending.
    ///
    /// A trailer that contradicts the record bytes (count or FNV-1a
    /// hash) is treated like a kill: the whole-record prefix is
    /// salvaged, the damage is described by
    /// [`salvage_note`](Self::salvage_note), and appending continues
    /// from the recovered prefix.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on OS failures, [`StoreError::Version`] on a
    /// format version this build does not read, [`StoreError::Corrupt`]
    /// on bad magic, a bad record length or a record whose decoded
    /// value is malformed (non-finite).
    pub fn open_resume(path: &Path) -> Result<Self, StoreError> {
        let io = |error: std::io::Error| StoreError::Io {
            path: path.to_path_buf(),
            error: error.to_string(),
        };
        let corrupt = |detail: &str| StoreError::Corrupt {
            path: path.to_path_buf(),
            detail: detail.to_string(),
        };
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(io)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(io)?;
        if bytes.len() < HEADER_LEN {
            return Err(corrupt("shorter than the 16-byte header"));
        }
        if bytes[0..4] != STORE_MAGIC {
            return Err(corrupt("bad magic (not a result store)"));
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != STORE_VERSION {
            return Err(StoreError::Version {
                path: path.to_path_buf(),
                found: version,
            });
        }
        let record_len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        if record_len as usize != RECORD_LEN {
            return Err(corrupt("unexpected record length in header"));
        }
        let body = &bytes[HEADER_LEN..];
        // A clean close leaves `n · RECORD_LEN + TRAILER_LEN` body
        // bytes ending in the trailer magic; anything else is treated
        // as a kill and truncated to whole records. Damage at this
        // level — a torn tail, a trailer contradicting the records —
        // is salvaged with a note rather than rejected: the
        // whole-record prefix is still every completed measurement.
        let mut salvage: Option<String> = None;
        let record_bytes = if body.len() >= TRAILER_LEN
            && (body.len() - TRAILER_LEN).is_multiple_of(RECORD_LEN)
            && body[body.len() - TRAILER_LEN..body.len() - TRAILER_LEN + 8] == TRAILER_MAGIC
        {
            let trailer = &body[body.len() - TRAILER_LEN..];
            let records = &body[..body.len() - TRAILER_LEN];
            let count = u64::from_le_bytes([
                trailer[8],
                trailer[9],
                trailer[10],
                trailer[11],
                trailer[12],
                trailer[13],
                trailer[14],
                trailer[15],
            ]);
            let hash = u64::from_le_bytes([
                trailer[16],
                trailer[17],
                trailer[18],
                trailer[19],
                trailer[20],
                trailer[21],
                trailer[22],
                trailer[23],
            ]);
            let whole = records.len() / RECORD_LEN;
            if count != whole as u64 {
                salvage = Some(format!(
                    "trailer record count contradicts the file length; \
                     salvaged {whole} whole records"
                ));
            } else if hash != fnv1a(records) {
                salvage = Some(format!(
                    "trailer hash contradicts the record bytes; \
                     salvaged {whole} whole records"
                ));
            }
            records
        } else {
            let torn = body.len() % RECORD_LEN;
            if torn != 0 {
                salvage = Some(format!(
                    "torn {torn}-byte tail dropped; salvaged {} whole records",
                    body.len() / RECORD_LEN
                ));
            }
            &body[..body.len() - torn]
        };
        let mut index = BTreeMap::new();
        for rec in record_bytes.chunks_exact(RECORD_LEN) {
            let r = decode_record(rec);
            if !r.value.is_finite() {
                return Err(corrupt("record holds a non-finite value"));
            }
            index.insert((r.spec_hash, r.seed), r.value);
        }
        let records = (record_bytes.len() / RECORD_LEN) as u64;
        // Drop the trailer / torn tail so appends continue the record
        // stream exactly where the prefix ends.
        let keep = (HEADER_LEN + record_bytes.len()) as u64;
        file.set_len(keep).map_err(io)?;
        file.seek(SeekFrom::Start(keep)).map_err(io)?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            index,
            hash: fnv1a(record_bytes),
            records,
            finished: false,
            salvage,
        })
    }

    /// The damage [`open_resume`](Self::open_resume) recovered from —
    /// a torn tail or a contradicted trailer — or `None` when the
    /// store opened clean. Callers surface this as a warning before
    /// resuming.
    #[must_use]
    pub fn salvage_note(&self) -> Option<&str> {
        self.salvage.as_deref()
    }

    /// The cached value for `(spec_hash, seed)`, if this exact
    /// simulation was already measured.
    #[must_use]
    pub fn get(&self, spec_hash: u64, seed: u64) -> Option<f64> {
        self.index.get(&(spec_hash, seed)).copied()
    }

    /// Appends one completed measurement. A repeated key overwrites
    /// the index entry but still appends (the file is a log, not a
    /// table); the sweep engine never re-appends a cache hit.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the write fails.
    pub fn append(
        &mut self,
        spec_hash: u64,
        seed: u64,
        replicate: u32,
        value: f64,
    ) -> Result<(), StoreError> {
        let io = |path: &Path, e: std::io::Error| StoreError::Io {
            path: path.to_path_buf(),
            error: e.to_string(),
        };
        if self.finished {
            // Drop the trailer: the record stream continues where the
            // last record ended.
            let end = (HEADER_LEN + self.records as usize * RECORD_LEN) as u64;
            self.file.set_len(end).map_err(|e| io(&self.path, e))?;
            self.file
                .seek(SeekFrom::Start(end))
                .map_err(|e| io(&self.path, e))?;
        }
        let mut rec = [0u8; RECORD_LEN];
        rec[0..8].copy_from_slice(&spec_hash.to_le_bytes());
        rec[8..16].copy_from_slice(&seed.to_le_bytes());
        rec[16..20].copy_from_slice(&replicate.to_le_bytes());
        // rec[20..24] stays 0: flags, reserved for future use.
        rec[24..32].copy_from_slice(&value.to_bits().to_le_bytes());
        self.file.write_all(&rec).map_err(|e| StoreError::Io {
            path: self.path.clone(),
            error: e.to_string(),
        })?;
        // Extend the rolling hash record by record — identical to
        // hashing all record bytes at once (FNV-1a is a byte fold).
        let mut h = self.hash;
        for &byte in &rec {
            h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.hash = h;
        self.index.insert((spec_hash, seed), value);
        self.records += 1;
        self.finished = false;
        Ok(())
    }

    /// Writes the integrity trailer and flushes: the clean-close mark.
    /// Idempotent; appending after `finish` re-opens the record stream
    /// (the old trailer is overwritten on the next `finish`).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the write fails.
    pub fn finish(&mut self) -> Result<(), StoreError> {
        if self.finished {
            return Ok(());
        }
        let io = |error: std::io::Error| StoreError::Io {
            path: self.path.clone(),
            error: error.to_string(),
        };
        let mut trailer = [0u8; TRAILER_LEN];
        trailer[0..8].copy_from_slice(&TRAILER_MAGIC);
        trailer[8..16].copy_from_slice(&self.records.to_le_bytes());
        trailer[16..24].copy_from_slice(&self.hash.to_le_bytes());
        let end = (HEADER_LEN + self.records as usize * RECORD_LEN) as u64;
        self.file.seek(SeekFrom::Start(end)).map_err(io)?;
        self.file.write_all(&trailer).map_err(io)?;
        self.file.set_len(end + TRAILER_LEN as u64).map_err(io)?;
        self.file.flush().map_err(io)?;
        self.finished = true;
        Ok(())
    }

    /// Number of records in the store.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.records
    }

    /// Whether the store holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// The store's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn decode_record(rec: &[u8]) -> StoreRecord {
    let u64_at = |o: usize| {
        u64::from_le_bytes([
            rec[o],
            rec[o + 1],
            rec[o + 2],
            rec[o + 3],
            rec[o + 4],
            rec[o + 5],
            rec[o + 6],
            rec[o + 7],
        ])
    };
    StoreRecord {
        spec_hash: u64_at(0),
        seed: u64_at(8),
        replicate: u32::from_le_bytes([rec[16], rec[17], rec[18], rec[19]]),
        value: f64::from_bits(u64_at(24)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sparsegossip_store_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn create_append_finish_resume_round_trip() {
        let path = temp_path("round_trip");
        let mut store = ResultStore::create(&path).unwrap();
        assert!(store.is_empty());
        store.append(11, 101, 0, 42.5).unwrap();
        store.append(11, 102, 1, 7.0).unwrap();
        store.append(22, 201, 0, 0.25).unwrap();
        store.finish().unwrap();
        store.finish().unwrap(); // idempotent
        drop(store);

        let resumed = ResultStore::open_resume(&path).unwrap();
        assert_eq!(resumed.len(), 3);
        assert_eq!(resumed.get(11, 101), Some(42.5));
        assert_eq!(resumed.get(11, 102), Some(7.0));
        assert_eq!(resumed.get(22, 201), Some(0.25));
        assert_eq!(resumed.get(22, 999), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resumed_store_converges_to_uninterrupted_bytes() {
        let full = temp_path("full");
        let killed = temp_path("killed");
        let write_all = |path: &Path, upto: usize, finish: bool| {
            let mut s = ResultStore::create(path).unwrap();
            for i in 0..upto as u64 {
                s.append(i / 3, 1000 + i, (i % 3) as u32, i as f64 * 0.5)
                    .unwrap();
            }
            if finish {
                s.finish().unwrap();
            }
        };
        write_all(&full, 9, true);
        // A "killed" run: 4 records, no trailer, plus a torn half
        // record at the end.
        write_all(&killed, 4, false);
        {
            let mut f = OpenOptions::new().append(true).open(&killed).unwrap();
            f.write_all(&[0xAB; 13]).unwrap();
        }
        // Resume and replay the remaining records in the same order.
        let mut resumed = ResultStore::open_resume(&killed).unwrap();
        assert_eq!(resumed.len(), 4, "torn tail truncated to whole records");
        for i in 4..9u64 {
            resumed
                .append(i / 3, 1000 + i, (i % 3) as u32, i as f64 * 0.5)
                .unwrap();
        }
        resumed.finish().unwrap();
        drop(resumed);
        let a = std::fs::read(&full).unwrap();
        let b = std::fs::read(&killed).unwrap();
        assert_eq!(a, b, "resumed store must converge byte-for-byte");
        std::fs::remove_file(&full).unwrap();
        std::fs::remove_file(&killed).unwrap();
    }

    #[test]
    fn corrupt_files_are_rejected_with_detail() {
        let path = temp_path("corrupt");
        // Not a store at all.
        std::fs::write(&path, b"not a store, definitely").unwrap();
        assert!(matches!(
            ResultStore::open_resume(&path),
            Err(StoreError::Corrupt { .. })
        ));
        // Wrong version.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&STORE_MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&(RECORD_LEN as u32).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ResultStore::open_resume(&path),
            Err(StoreError::Version { found: 99, .. })
        ));
        // A malformed record — its value bits decode to NaN — is a
        // hard error even under an internally consistent file:
        // replaying it would poison the resumed sweep.
        let mut store = ResultStore::create(&path).unwrap();
        store.append(1, 2, 0, 3.0).unwrap();
        store.finish().unwrap();
        drop(store);
        let mut bytes = std::fs::read(&path).unwrap();
        for b in &mut bytes[HEADER_LEN + 24..HEADER_LEN + 32] {
            *b = 0xFF;
        }
        std::fs::write(&path, &bytes).unwrap();
        let err = ResultStore::open_resume(&path).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn contradicted_trailer_salvages_the_record_prefix() {
        let path = temp_path("salvage_trailer");
        let mut store = ResultStore::create(&path).unwrap();
        store.append(1, 10, 0, 4.0).unwrap();
        store.append(1, 11, 1, 5.0).unwrap();
        store.finish().unwrap();
        drop(store);
        // Flip a key byte under the clean trailer: the trailer hash no
        // longer matches, but both records still decode — the open
        // salvages them and says so instead of refusing to resume.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_LEN + 3] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut salvaged = ResultStore::open_resume(&path).unwrap();
        assert_eq!(salvaged.len(), 2);
        let note = salvaged.salvage_note().expect("damage must be reported");
        assert!(note.contains("trailer hash"), "{note}");
        assert!(note.contains("salvaged 2"), "{note}");
        // The salvaged store keeps working: append, finish, reopen
        // clean.
        salvaged.append(1, 12, 2, 6.0).unwrap();
        salvaged.finish().unwrap();
        drop(salvaged);
        let reopened = ResultStore::open_resume(&path).unwrap();
        assert_eq!(reopened.len(), 3);
        assert_eq!(reopened.salvage_note(), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_salvages_with_a_note_and_clean_opens_stay_silent() {
        let path = temp_path("salvage_tail");
        let mut store = ResultStore::create(&path).unwrap();
        store.append(7, 70, 0, 1.5).unwrap();
        drop(store); // killed: no trailer
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xCD; 9]).unwrap();
        }
        let salvaged = ResultStore::open_resume(&path).unwrap();
        assert_eq!(salvaged.len(), 1);
        let note = salvaged.salvage_note().expect("torn tail must be reported");
        assert!(note.contains("torn 9-byte tail"), "{note}");
        drop(salvaged);
        // A plain kill — whole records, no trailer — is the normal
        // resume path, not damage: no note.
        let path2 = temp_path("salvage_none");
        let mut store = ResultStore::create(&path2).unwrap();
        store.append(7, 71, 0, 2.5).unwrap();
        drop(store);
        let resumed = ResultStore::open_resume(&path2).unwrap();
        assert_eq!(resumed.salvage_note(), None);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&path2).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = ResultStore::open_resume(Path::new("/nonexistent/sweep.sgrs")).unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }));
        assert!(err.to_string().contains("sweep.sgrs"));
    }

    #[test]
    fn appending_after_finish_reopens_the_log() {
        let path = temp_path("reopen");
        let mut store = ResultStore::create(&path).unwrap();
        store.append(1, 10, 0, 1.0).unwrap();
        store.finish().unwrap();
        store.append(1, 11, 1, 2.0).unwrap();
        store.finish().unwrap();
        drop(store);
        let resumed = ResultStore::open_resume(&path).unwrap();
        assert_eq!(resumed.len(), 2);
        assert_eq!(resumed.get(1, 11), Some(2.0));
        std::fs::remove_file(&path).unwrap();
    }
}
