use crate::{derive_seed, parallel_map, parallel_map_with, Summary, Table};

/// Executes one measurement per seed across worker threads — the
/// multi-seed companion of the `Process`/`Simulation` API: any process
/// run becomes a deterministic Monte-Carlo ensemble.
///
/// Seeds come from the builder (repetitions derived from a master seed
/// via [`derive_seed`], an explicit seed range, or a verbatim list),
/// work is distributed by [`parallel_map`], and results are returned in
/// seed order — so the output is a pure function of the seed list,
/// independent of thread count or scheduling.
///
/// # Examples
///
/// A multi-seed ensemble with [`measure`](Runner::measure): any
/// `Fn(u64) -> f64` plugs in — with the simulator, the closure is
/// `|seed| { let mut rng = SmallRng::seed_from_u64(seed); let mut sim =
/// Simulation::broadcast(&cfg, &mut rng)?; sim.run(&mut rng)
/// .broadcast_time }` (see the `sparsegossip` facade docs for the full
/// version, and [`run_with_state`](Runner::run_with_state) for the
/// scratch-reusing variant):
///
/// ```
/// use sparsegossip_analysis::Runner;
///
/// let runner = Runner::new(2011).repetitions(16).threads(4);
/// let report = runner.measure(|seed| (seed % 7) as f64);
/// assert_eq!(report.summary.n(), 16);
/// assert_eq!(report.samples.len(), 16);
/// println!("{}", report.table("T_B").to_csv());
///
/// // Outcomes are a pure function of the seed list: thread count and
/// // scheduling never change the aggregate.
/// let serial = Runner::new(2011).repetitions(16).threads(1).measure(|seed| (seed % 7) as f64);
/// assert_eq!(report.samples, serial.samples);
/// ```
#[derive(Clone, Debug)]
pub struct Runner {
    master_seed: u64,
    seeds: Vec<u64>,
    threads: usize,
}

impl Runner {
    /// Creates a runner with 8 repetitions derived from `master_seed`
    /// and single-threaded execution.
    #[must_use]
    pub fn new(master_seed: u64) -> Self {
        Self {
            master_seed,
            seeds: (0..8).map(|i| derive_seed(master_seed, i)).collect(),
            threads: 1,
        }
    }

    /// Uses `n` repetitions with decorrelated seeds
    /// `derive_seed(master, 0..n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn repetitions(mut self, n: u32) -> Self {
        assert!(n > 0, "at least one repetition required");
        self.seeds = (0..u64::from(n))
            .map(|i| derive_seed(self.master_seed, i))
            .collect();
        self
    }

    /// Uses the explicit seeds of `range` (e.g. `0..32`), verbatim —
    /// handy for regenerating a published table from its stated seeds.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[must_use]
    pub fn seed_range(mut self, range: core::ops::Range<u64>) -> Self {
        assert!(!range.is_empty(), "at least one seed required");
        self.seeds = range.collect();
        self
    }

    /// Uses an explicit seed list, verbatim.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    #[must_use]
    pub fn seeds(mut self, seeds: Vec<u64>) -> Self {
        assert!(!seeds.is_empty(), "at least one seed required");
        self.seeds = seeds;
        self
    }

    /// Sets the number of worker threads (values below 1 are clamped).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The master seed.
    #[inline]
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The seed list runs will use, in execution order.
    #[inline]
    #[must_use]
    pub fn seed_list(&self) -> &[u64] {
        &self.seeds
    }

    /// Runs `run_one(seed)` for every seed in parallel; outcomes are
    /// returned in seed order regardless of scheduling.
    pub fn run<O, F>(&self, run_one: F) -> Vec<O>
    where
        O: Send,
        F: Fn(u64) -> O + Sync,
    {
        parallel_map(&self.seeds, self.threads, |&seed| run_one(seed))
    }

    /// As [`Runner::run`], but every worker thread builds one private
    /// state with `init` and reuses it for its whole seed batch — the
    /// scratch-reuse path: a worker warms up simulation buffers once
    /// and then runs every one of its seeds allocation-free.
    ///
    /// Per-seed determinism must come from the seed alone (the state is
    /// shared across a scheduling-dependent subset of seeds), exactly
    /// as with [`run`](Runner::run); outcomes come back in seed order.
    ///
    /// # Examples
    ///
    /// Reusing one scratch buffer per worker (with a `Simulation`, the
    /// state would be a recycled `SimScratch` or a whole resettable
    /// simulation — see `exp_perf` in `crates/bench`):
    ///
    /// ```
    /// use sparsegossip_analysis::Runner;
    ///
    /// let runner = Runner::new(2011).repetitions(16).threads(4);
    /// let with_state = runner.run_with_state(Vec::new, |buf: &mut Vec<u64>, seed| {
    ///     buf.clear(); // reused allocation, per-seed content
    ///     buf.extend([seed % 1000, seed % 7]);
    ///     buf.iter().sum::<u64>()
    /// });
    /// let stateless = runner.run(|seed| seed % 1000 + seed % 7);
    /// assert_eq!(with_state, stateless, "state reuse never changes results");
    /// ```
    pub fn run_with_state<S, O, I, F>(&self, init: I, run_one: F) -> Vec<O>
    where
        O: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, u64) -> O + Sync,
    {
        parallel_map_with(&self.seeds, self.threads, init, |state, &seed| {
            run_one(state, seed)
        })
    }

    /// Runs `measure(seed)` for every seed and aggregates the samples
    /// into a [`RunnerReport`] (summary statistics + per-seed samples).
    pub fn measure<F>(&self, measure: F) -> RunnerReport
    where
        F: Fn(u64) -> f64 + Sync,
    {
        let samples = self.run(measure);
        RunnerReport {
            summary: Summary::from_slice(&samples),
            seeds: self.seeds.clone(),
            samples,
        }
    }
}

/// Aggregated result of a [`Runner::measure`] sweep: per-seed samples
/// plus their [`Summary`], renderable as a [`Table`].
#[derive(Clone, Debug)]
#[must_use]
pub struct RunnerReport {
    /// Summary statistics over all seeds.
    pub summary: Summary,
    /// The seeds, in execution order.
    pub seeds: Vec<u64>,
    /// The per-seed measurements, aligned with `seeds`.
    pub samples: Vec<f64>,
}

impl RunnerReport {
    /// Renders the per-seed samples as a two-column table.
    pub fn table(&self, metric: &str) -> Table {
        let mut t = Table::new(vec!["seed".into(), metric.into()]);
        for (seed, sample) in self.seeds.iter().zip(&self.samples) {
            t.push_row(vec![seed.to_string(), format!("{sample}")]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_are_in_seed_order_and_thread_independent() {
        let f = |seed: u64| seed.wrapping_mul(2654435761) % 1000;
        let serial = Runner::new(7).repetitions(32).threads(1).run(f);
        let threaded = Runner::new(7).repetitions(32).threads(8).run(f);
        assert_eq!(serial.len(), 32);
        assert_eq!(serial, threaded);
    }

    #[test]
    fn seed_range_uses_raw_seeds() {
        let r = Runner::new(0).seed_range(10..14);
        assert_eq!(r.seed_list(), &[10, 11, 12, 13]);
        let out = r.run(|s| s);
        assert_eq!(out, vec![10, 11, 12, 13]);
    }

    #[test]
    fn repetitions_derive_distinct_seeds() {
        use std::collections::HashSet; // detlint: allow(nondet-map, test-only uniqueness counting; order never observed)
        let r = Runner::new(42).repetitions(100);
        let distinct: HashSet<u64> = r.seed_list().iter().copied().collect(); // detlint: allow(nondet-map, test-only uniqueness counting; order never observed)
        assert_eq!(distinct.len(), 100);
        assert_eq!(r.master_seed(), 42);
    }

    #[test]
    fn explicit_seed_list_is_used_verbatim() {
        let r = Runner::new(0).seeds(vec![5, 5, 9]);
        assert_eq!(r.run(|s| s), vec![5, 5, 9]);
    }

    #[test]
    fn measure_aggregates_into_summary_and_table() {
        let report = Runner::new(3).seed_range(0..4).measure(|s| s as f64);
        assert_eq!(report.summary.n(), 4);
        assert_eq!(report.summary.mean(), 1.5);
        let table = report.table("value");
        assert_eq!(table.len(), 4);
        assert!(table.to_csv().starts_with("seed,value\n0,0\n"));
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_repetitions_panics() {
        let _ = Runner::new(1).repetitions(0);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seed_range_panics() {
        let _ = Runner::new(1).seed_range(5..5);
    }
}
