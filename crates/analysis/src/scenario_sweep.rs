//! Multi-axis scenario sweeps: the engine that drives a
//! [`ScenarioSpec`] across the cartesian product of {grid side, agent
//! count, radius} axes and locates the paper's phase transition.
//!
//! One base spec plus axis lists expand into a grid of *cells* (each a
//! re-validated spec); every cell is replicated with deterministic,
//! decorrelated seeds (`derive_seed(master, cell · R + replicate)`), so
//! the whole sweep is a pure function of the spec and the master seed —
//! independent of thread count and scheduling. Workers recycle one
//! [`SimScratch`] each across their whole share of the sweep, so the
//! steady-state step stays allocation-free.
//!
//! The [`ScenarioSweepReport`] carries per-cell summaries and a
//! **transition detector** ([`ScenarioSweepReport::transitions`]):
//! for each (side, k) it finds the knee in the metric-vs-radius curve
//! and cross-checks it against the percolation radius
//! `r_c = √(n/k)` predicted by `sparsegossip_core::theory`.
//!
//! # Examples
//!
//! ```
//! use sparsegossip_analysis::ScenarioSweep;
//! use sparsegossip_core::{ProcessKind, ScenarioSpec};
//!
//! let base = ScenarioSpec::builder(ProcessKind::Broadcast, 16, 8).build()?;
//! let report = ScenarioSweep::new(base, 2011)
//!     .sides(vec![12, 16])
//!     .ks(vec![6, 8])
//!     .r_factors(vec![0.5, 1.0, 2.0]) // radii as fractions of r_c
//!     .replicates(2)
//!     .threads(2)
//!     .run()?;
//! assert_eq!(report.cells.len(), 2 * 2 * 3);
//! assert_eq!(report.transitions().len(), 4); // one knee per (side, k)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use sparsegossip_core::theory;
use sparsegossip_core::toml::{TomlDoc, TomlError};
use sparsegossip_core::{
    Metric, NetworkConfig, ProcessKind, ScenarioSpec, SimError, SimScratch, SpecError, WorldConfig,
};

use crate::{derive_seed, parallel_map_with, Summary, Table};

/// The radius axis of a sweep: absolute grid-step radii, or fractions
/// of the cell's own percolation radius `r_c = √(n/k)` (so the axis
/// tracks the transition across differently-sized cells).
#[derive(Clone, Debug, PartialEq)]
pub enum RadiusAxis {
    /// Radii in grid steps, used verbatim for every (side, k).
    Absolute(Vec<u32>),
    /// Radii as multiples of each cell's `r_c`, rounded to grid steps.
    CriticalFractions(Vec<f64>),
}

impl RadiusAxis {
    /// The concrete radii this axis yields for a `side × side` grid
    /// with `k` agents, first occurrence order, duplicates removed —
    /// distinct fractions of a small `r_c` can round to the same grid
    /// radius, and a repeated radius would only re-measure the same
    /// cell under another name.
    #[must_use]
    pub fn resolve(&self, side: u32, k: usize) -> Vec<u32> {
        let raw: Vec<u32> = match self {
            Self::Absolute(radii) => radii.clone(),
            Self::CriticalFractions(factors) => {
                let n = f64::from(side) * f64::from(side);
                let rc = theory::critical_radius(n, k as f64);
                factors.iter().map(|f| (f * rc).round() as u32).collect()
            }
        };
        let mut radii = Vec::with_capacity(raw.len());
        for r in raw {
            if !radii.contains(&r) {
                radii.push(r);
            }
        }
        radii
    }

    /// Number of axis points.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Self::Absolute(v) => v.len(),
            Self::CriticalFractions(v) => v.len(),
        }
    }

    /// Whether the axis has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A network fault axis for protocol-twin sweeps: one
/// [`NetworkConfig`] knob varied across a list of values while the
/// base spec pins the others. Only
/// [`ProcessKind::ProtocolBroadcast`] specs accept non-ideal
/// networks, so a network axis on any other kind fails cell
/// validation with [`SimError::UnsupportedSetting`].
#[derive(Clone, Debug, PartialEq)]
pub enum NetworkAxis {
    /// Per-message loss probabilities (each finite, in `[0, 1]`).
    DropProbs(Vec<f64>),
    /// `StartGossip` timer periods in ticks (each `≥ 1`).
    GossipIntervals(Vec<u64>),
    /// Per-tick payload send caps (`0` = unlimited).
    SendCaps(Vec<u32>),
}

impl NetworkAxis {
    /// The spec-file key of the varied knob.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            Self::DropProbs(_) => "drop_prob",
            Self::GossipIntervals(_) => "gossip_interval",
            Self::SendCaps(_) => "send_cap",
        }
    }

    /// Number of axis points.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Self::DropProbs(v) => v.len(),
            Self::GossipIntervals(v) => v.len(),
            Self::SendCaps(v) => v.len(),
        }
    }

    /// Whether the axis has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `(key, value)` label and full [`NetworkConfig`] of each axis
    /// point, substituting the varied knob into `base`.
    #[must_use]
    pub fn resolve(&self, base: &NetworkConfig) -> Vec<((&'static str, f64), NetworkConfig)> {
        // Axis values are validated by the builders / the TOML parser,
        // so rebuilding the config cannot fail.
        let build = |drop, delay, cap, interval| {
            // detlint: allow(panic, axis values were validated by the builders)
            NetworkConfig::new(drop, delay, cap, interval).expect("validated axis value")
        };
        match self {
            Self::DropProbs(probs) => probs
                .iter()
                .map(|&p| {
                    let net = build(p, base.delay_max(), base.send_cap(), base.gossip_interval());
                    (("drop_prob", p), net)
                })
                .collect(),
            Self::GossipIntervals(intervals) => intervals
                .iter()
                .map(|&iv| {
                    let net = build(base.drop_prob(), base.delay_max(), base.send_cap(), iv);
                    (("gossip_interval", iv as f64), net)
                })
                .collect(),
            Self::SendCaps(caps) => caps
                .iter()
                .map(|&c| {
                    let net = build(
                        base.drop_prob(),
                        base.delay_max(),
                        c,
                        base.gossip_interval(),
                    );
                    (("send_cap", f64::from(c)), net)
                })
                .collect(),
        }
    }
}

/// A world-model axis for broadcast sweeps: one [`WorldConfig`] knob
/// varied across a list of values while the base spec pins the others.
/// Only [`ProcessKind::Broadcast`] specs accept active world axes, so
/// a world axis on any other kind fails cell validation with
/// [`SimError::UnsupportedSetting`].
#[derive(Clone, Debug, PartialEq)]
pub enum WorldAxis {
    /// City-block wall densities (each finite, in `[0, 1]`).
    BarrierDensities(Vec<f64>),
    /// Per-agent per-step replacement probabilities (each finite, in
    /// `[0, 1]`).
    ChurnRates(Vec<f64>),
    /// Heterogeneous-class fractions (each finite, in `[0, 1]`); the
    /// base spec's `hetero_factor` supplies the radius multiplier.
    RadiusMixes(Vec<f64>),
}

impl WorldAxis {
    /// The spec-file key of the varied knob.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            Self::BarrierDensities(_) => "barrier_density",
            Self::ChurnRates(_) => "churn_rate",
            Self::RadiusMixes(_) => "hetero_fraction",
        }
    }

    /// Number of axis points.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Self::BarrierDensities(v) | Self::ChurnRates(v) | Self::RadiusMixes(v) => v.len(),
        }
    }

    /// Whether the axis has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `(key, value)` label and full [`WorldConfig`] of each axis
    /// point, substituting the varied knob into `base`.
    #[must_use]
    pub fn resolve(&self, base: &WorldConfig) -> Vec<((&'static str, f64), WorldConfig)> {
        let values = match self {
            Self::BarrierDensities(v) | Self::ChurnRates(v) | Self::RadiusMixes(v) => v,
        };
        values
            .iter()
            .map(|&x| {
                let mut world = *base;
                match self {
                    Self::BarrierDensities(_) => world.barrier_density = x,
                    Self::ChurnRates(_) => world.churn_rate = x,
                    Self::RadiusMixes(_) => world.hetero_fraction = x,
                }
                ((self.key(), x), world)
            })
            .collect()
    }
}

/// One cell of the expanded sweep grid: its axis coordinates and the
/// re-validated spec that runs there.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioCell {
    /// Grid side of this cell.
    pub side: u32,
    /// Agent count of this cell.
    pub k: usize,
    /// Transmission radius of this cell (resolved from the axis).
    pub radius: u32,
    /// The network-axis point of this cell as a `(key, value)` label,
    /// or `None` when the sweep has no network axis.
    pub net: Option<(&'static str, f64)>,
    /// The world-axis point of this cell as a `(key, value)` label, or
    /// `None` when the sweep has no world axis.
    pub world: Option<(&'static str, f64)>,
    /// The runnable spec for this cell.
    pub spec: ScenarioSpec,
}

/// A multi-axis sweep of one [`ScenarioSpec`] over {side, k, r}.
///
/// Cells are ordered network-axis-major (when one is set), then
/// side, then k, then radius; the seed of replicate `j` of cell `i`
/// is `derive_seed(master, i · R + j)` — fixed by the spec alone, so
/// results never depend on the thread count (pinned by the
/// `scenario_sweep_regression` suite).
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSweep {
    base: ScenarioSpec,
    master_seed: u64,
    sides: Vec<u32>,
    ks: Vec<usize>,
    radii: RadiusAxis,
    network_axis: Option<NetworkAxis>,
    world_axis: Option<WorldAxis>,
    replicates: u32,
    threads: usize,
}

impl ScenarioSweep {
    /// Creates a sweep of `base` rooted at `master_seed`; every axis
    /// defaults to the base spec's own value (a 1×1×1 grid), with 8
    /// replicates and single-threaded execution.
    #[must_use]
    pub fn new(base: ScenarioSpec, master_seed: u64) -> Self {
        Self {
            master_seed,
            sides: vec![base.config().side()],
            ks: vec![base.config().k()],
            radii: RadiusAxis::Absolute(vec![base.config().radius()]),
            network_axis: None,
            world_axis: None,
            replicates: 8,
            threads: 1,
            base,
        }
    }

    /// Sets the grid-side axis.
    ///
    /// # Panics
    ///
    /// Panics if `sides` is empty.
    #[must_use]
    pub fn sides(mut self, sides: Vec<u32>) -> Self {
        assert!(!sides.is_empty(), "at least one side required");
        self.sides = sides;
        self
    }

    /// Sets the agent-count axis.
    ///
    /// # Panics
    ///
    /// Panics if `ks` is empty.
    #[must_use]
    pub fn ks(mut self, ks: Vec<usize>) -> Self {
        assert!(!ks.is_empty(), "at least one k required");
        self.ks = ks;
        self
    }

    /// Sets the radius axis to absolute radii.
    ///
    /// # Panics
    ///
    /// Panics if `radii` is empty.
    #[must_use]
    pub fn radii(mut self, radii: Vec<u32>) -> Self {
        assert!(!radii.is_empty(), "at least one radius required");
        self.radii = RadiusAxis::Absolute(radii);
        self
    }

    /// Sets the radius axis to fractions of each cell's `r_c` (e.g.
    /// `[0.25, 0.5, 1.0, 2.0]` brackets the transition everywhere).
    ///
    /// # Panics
    ///
    /// Panics if `factors` is empty or contains a negative or
    /// non-finite factor.
    #[must_use]
    pub fn r_factors(mut self, factors: Vec<f64>) -> Self {
        assert!(!factors.is_empty(), "at least one radius factor required");
        assert!(
            factors.iter().all(|f| f.is_finite() && *f >= 0.0),
            "radius factors must be finite and non-negative"
        );
        self.radii = RadiusAxis::CriticalFractions(factors);
        self
    }

    /// Sets the network axis to per-message drop probabilities
    /// (protocol-twin sweeps only; other kinds fail cell validation).
    ///
    /// # Panics
    ///
    /// Panics if `probs` is empty or contains a non-finite value or
    /// one outside `[0, 1]`.
    #[must_use]
    pub fn drop_probs(mut self, probs: Vec<f64>) -> Self {
        assert!(!probs.is_empty(), "at least one drop probability required");
        assert!(
            probs
                .iter()
                .all(|p| p.is_finite() && (0.0..=1.0).contains(p)),
            "drop probabilities must be finite and within [0, 1]"
        );
        self.network_axis = Some(NetworkAxis::DropProbs(probs));
        self
    }

    /// Sets the network axis to `StartGossip` timer periods
    /// (protocol-twin sweeps only).
    ///
    /// # Panics
    ///
    /// Panics if `intervals` is empty or contains a zero.
    #[must_use]
    pub fn gossip_intervals(mut self, intervals: Vec<u64>) -> Self {
        assert!(!intervals.is_empty(), "at least one interval required");
        assert!(
            intervals.iter().all(|iv| *iv >= 1),
            "gossip intervals must be at least 1 tick"
        );
        self.network_axis = Some(NetworkAxis::GossipIntervals(intervals));
        self
    }

    /// Sets the network axis to per-tick payload send caps
    /// (protocol-twin sweeps only; `0` means unlimited).
    ///
    /// # Panics
    ///
    /// Panics if `caps` is empty.
    #[must_use]
    pub fn send_caps(mut self, caps: Vec<u32>) -> Self {
        assert!(!caps.is_empty(), "at least one send cap required");
        self.network_axis = Some(NetworkAxis::SendCaps(caps));
        self
    }

    /// The network axis, if one is set.
    #[inline]
    #[must_use]
    pub fn network_axis(&self) -> Option<&NetworkAxis> {
        self.network_axis.as_ref()
    }

    /// Sets the world axis to city-block wall densities (broadcast
    /// sweeps only; other kinds fail cell validation).
    ///
    /// # Panics
    ///
    /// Panics if `densities` is empty or contains a non-finite value or
    /// one outside `[0, 1]`.
    #[must_use]
    pub fn barrier_densities(mut self, densities: Vec<f64>) -> Self {
        assert!(!densities.is_empty(), "at least one density required");
        assert!(
            densities
                .iter()
                .all(|d| d.is_finite() && (0.0..=1.0).contains(d)),
            "barrier densities must be finite and within [0, 1]"
        );
        self.world_axis = Some(WorldAxis::BarrierDensities(densities));
        self
    }

    /// Sets the world axis to per-agent per-step replacement
    /// probabilities (broadcast sweeps only).
    ///
    /// # Panics
    ///
    /// Panics if `rates` is empty or contains a non-finite value or one
    /// outside `[0, 1]`.
    #[must_use]
    pub fn churn_rates(mut self, rates: Vec<f64>) -> Self {
        assert!(!rates.is_empty(), "at least one churn rate required");
        assert!(
            rates
                .iter()
                .all(|r| r.is_finite() && (0.0..=1.0).contains(r)),
            "churn rates must be finite and within [0, 1]"
        );
        self.world_axis = Some(WorldAxis::ChurnRates(rates));
        self
    }

    /// Sets the world axis to heterogeneous-class fractions (the base
    /// spec's `hetero_factor` supplies the multiplier; broadcast sweeps
    /// only).
    ///
    /// # Panics
    ///
    /// Panics if `mixes` is empty or contains a non-finite value or one
    /// outside `[0, 1]`.
    #[must_use]
    pub fn radius_mixes(mut self, mixes: Vec<f64>) -> Self {
        assert!(!mixes.is_empty(), "at least one radius mix required");
        assert!(
            mixes
                .iter()
                .all(|m| m.is_finite() && (0.0..=1.0).contains(m)),
            "radius mixes must be finite and within [0, 1]"
        );
        self.world_axis = Some(WorldAxis::RadiusMixes(mixes));
        self
    }

    /// The world axis, if one is set.
    #[inline]
    #[must_use]
    pub fn world_axis(&self) -> Option<&WorldAxis> {
        self.world_axis.as_ref()
    }

    /// Sets the number of replicates per cell.
    ///
    /// # Panics
    ///
    /// Panics if `replicates == 0`.
    #[must_use]
    pub fn replicates(mut self, replicates: u32) -> Self {
        assert!(replicates > 0, "at least one replicate required");
        self.replicates = replicates;
        self
    }

    /// Sets the number of worker threads (values below 1 are clamped);
    /// never affects results, only wall-clock time.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the master seed the per-cell seeds derive from.
    #[must_use]
    pub fn seed(mut self, master_seed: u64) -> Self {
        self.master_seed = master_seed;
        self
    }

    /// The base spec the axes expand.
    #[inline]
    #[must_use]
    pub fn base(&self) -> &ScenarioSpec {
        &self.base
    }

    /// The master seed.
    #[inline]
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The replicates per cell.
    #[inline]
    #[must_use]
    pub fn num_replicates(&self) -> u32 {
        self.replicates
    }

    /// Expands the axes into the ordered cell grid, re-validating the
    /// spec at every coordinate.
    ///
    /// # Errors
    ///
    /// The first [`SimError`] any cell's validation produces (e.g. the
    /// base source index is out of range for a smaller `k`).
    pub fn cells(&self) -> Result<Vec<ScenarioCell>, SimError> {
        // One (labelled) base spec per network-axis point; a single
        // unlabelled base when no network axis is set, so existing
        // sweeps keep their exact cell grid and seeds.
        let net_bases: Vec<(Option<(&'static str, f64)>, ScenarioSpec)> = match &self.network_axis {
            None => vec![(None, self.base)],
            Some(axis) => {
                let mut bases = Vec::with_capacity(axis.len());
                for (label, net) in axis.resolve(self.base.network()) {
                    bases.push((Some(label), self.base.with_network(net)?));
                }
                bases
            }
        };
        // World-axis expansion nests inside the network axis, same
        // backward-compatible shape: no world axis, no extra cells.
        type Labels = (Option<(&'static str, f64)>, Option<(&'static str, f64)>);
        let mut bases: Vec<(Labels, ScenarioSpec)> = Vec::new();
        for (net, base) in net_bases {
            match &self.world_axis {
                None => bases.push(((net, None), base)),
                Some(axis) => {
                    for (label, world) in axis.resolve(base.world()) {
                        bases.push(((net, Some(label)), base.with_world(world)?));
                    }
                }
            }
        }
        let mut cells =
            Vec::with_capacity(bases.len() * self.sides.len() * self.ks.len() * self.radii.len());
        for ((net, world), base) in &bases {
            for &side in &self.sides {
                for &k in &self.ks {
                    for radius in self.radii.resolve(side, k) {
                        cells.push(ScenarioCell {
                            side,
                            k,
                            radius,
                            net: *net,
                            world: *world,
                            spec: base.with_axes(side, k, radius)?,
                        });
                    }
                }
            }
        }
        Ok(cells)
    }

    /// Runs every replicate of every cell across the worker threads and
    /// aggregates per cell.
    ///
    /// # Errors
    ///
    /// As [`cells`](Self::cells).
    pub fn run(&self) -> Result<ScenarioSweepReport, SimError> {
        let cells = self.cells()?;
        let reps = u64::from(self.replicates);
        let tasks: Vec<(usize, u64)> = (0..cells.len())
            .flat_map(|i| (0..reps).map(move |j| (i, j)))
            .collect();
        let values =
            parallel_map_with(&tasks, self.threads, SimScratch::new, |scratch, &(i, j)| {
                let seed = derive_seed(self.master_seed, i as u64 * reps + j);
                cells[i].spec.run_seed_with_scratch(scratch, seed)
            });
        let cells = cells
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                let samples: Vec<f64> = (0..reps as usize)
                    .map(|j| values[i * reps as usize + j])
                    .collect();
                let n = f64::from(cell.side) * f64::from(cell.side);
                SweepCell {
                    side: cell.side,
                    k: cell.k,
                    radius: cell.radius,
                    net: cell.net,
                    world: cell.world,
                    critical_radius: theory::critical_radius(n, cell.k as f64),
                    summary: Summary::from_slice(&samples),
                    samples,
                }
            })
            .collect();
        Ok(ScenarioSweepReport {
            process: self.base.kind(),
            metric: self.base.metric(),
            master_seed: self.master_seed,
            replicates: self.replicates,
            cells,
        })
    }

    /// Parses a sweep from text holding a `[scenario]` section and an
    /// optional `[sweep]` section with keys `sides`, `ks`, `radii` *or*
    /// `r_factors`, at most one network axis (`drop_probs`,
    /// `gossip_intervals` or `send_caps`), `replicates`, `seed` and
    /// `threads` (axes default to the scenario's own values).
    ///
    /// # Errors
    ///
    /// As [`ScenarioSpec::from_toml_str`], plus [`SpecError::Toml`] /
    /// [`SpecError::UnknownKey`] on malformed `[sweep]` entries.
    pub fn from_toml_str(text: &str) -> Result<Self, SpecError> {
        let doc = TomlDoc::parse(text)?;
        let base = ScenarioSpec::from_toml_doc(&doc)?;
        let mut sweep = Self::new(base, 2011);
        let Some(table) = doc.opt_section("sweep") else {
            return Ok(sweep);
        };
        const KNOWN: [&str; 12] = [
            "sides",
            "ks",
            "radii",
            "r_factors",
            "drop_probs",
            "gossip_intervals",
            "send_caps",
            "barrier_densities",
            "churn_rates",
            "radius_mixes",
            "replicates",
            "seed",
        ];
        const KNOWN_EXEC: [&str; 1] = ["threads"];
        for key in table.keys() {
            if !KNOWN.contains(&key) && !KNOWN_EXEC.contains(&key) {
                return Err(SpecError::UnknownKey {
                    section: "sweep".to_string(),
                    key: key.to_string(),
                });
            }
        }
        let bad = |key, expected| {
            SpecError::Toml(TomlError::BadValue {
                section: "sweep".to_string(),
                key,
                expected,
            })
        };
        if let Some(sides) = table.opt_u32_array("sides")? {
            if sides.is_empty() {
                return Err(bad("sides".to_string(), "non-empty array"));
            }
            sweep = sweep.sides(sides);
        }
        if let Some(ks) = table.opt_usize_array("ks")? {
            if ks.is_empty() {
                return Err(bad("ks".to_string(), "non-empty array"));
            }
            sweep = sweep.ks(ks);
        }
        let radii = table.opt_u32_array("radii")?;
        let factors = table.opt_f64_array("r_factors")?;
        match (radii, factors) {
            (Some(_), Some(_)) => {
                return Err(bad(
                    "radii".to_string(),
                    "single radius axis (either `radii` or `r_factors`, not both)",
                ))
            }
            (Some(radii), None) => {
                if radii.is_empty() {
                    return Err(bad("radii".to_string(), "non-empty array"));
                }
                sweep = sweep.radii(radii);
            }
            (None, Some(factors)) => {
                if factors.is_empty() || factors.iter().any(|f| !f.is_finite() || *f < 0.0) {
                    return Err(bad(
                        "r_factors".to_string(),
                        "non-empty array of finite non-negative numbers",
                    ));
                }
                sweep = sweep.r_factors(factors);
            }
            (None, None) => {}
        }
        let drop_probs = table.opt_f64_array("drop_probs")?;
        let intervals = table.opt_u32_array("gossip_intervals")?;
        let caps = table.opt_u32_array("send_caps")?;
        let network_axes = usize::from(drop_probs.is_some())
            + usize::from(intervals.is_some())
            + usize::from(caps.is_some());
        if network_axes > 1 {
            return Err(bad(
                "drop_probs".to_string(),
                "single network axis (one of `drop_probs`, `gossip_intervals`, `send_caps`)",
            ));
        }
        if let Some(probs) = drop_probs {
            if probs.is_empty()
                || probs
                    .iter()
                    .any(|p| !p.is_finite() || !(0.0..=1.0).contains(p))
            {
                return Err(bad(
                    "drop_probs".to_string(),
                    "non-empty array of finite numbers in [0, 1]",
                ));
            }
            sweep = sweep.drop_probs(probs);
        }
        if let Some(intervals) = intervals {
            if intervals.is_empty() || intervals.contains(&0) {
                return Err(bad(
                    "gossip_intervals".to_string(),
                    "non-empty array of integers >= 1",
                ));
            }
            sweep = sweep.gossip_intervals(intervals.into_iter().map(u64::from).collect());
        }
        if let Some(caps) = caps {
            if caps.is_empty() {
                return Err(bad("send_caps".to_string(), "non-empty array"));
            }
            sweep = sweep.send_caps(caps);
        }
        let densities = table.opt_f64_array("barrier_densities")?;
        let rates = table.opt_f64_array("churn_rates")?;
        let mixes = table.opt_f64_array("radius_mixes")?;
        let world_axes = usize::from(densities.is_some())
            + usize::from(rates.is_some())
            + usize::from(mixes.is_some());
        if world_axes > 1 {
            return Err(bad(
                "barrier_densities".to_string(),
                "single world axis (one of `barrier_densities`, `churn_rates`, `radius_mixes`)",
            ));
        }
        let unit_array = |key: &str, values: &[f64]| {
            if values.is_empty()
                || values
                    .iter()
                    .any(|x| !x.is_finite() || !(0.0..=1.0).contains(x))
            {
                Err(bad(
                    key.to_string(),
                    "non-empty array of finite numbers in [0, 1]",
                ))
            } else {
                Ok(())
            }
        };
        if let Some(densities) = densities {
            unit_array("barrier_densities", &densities)?;
            sweep = sweep.barrier_densities(densities);
        }
        if let Some(rates) = rates {
            unit_array("churn_rates", &rates)?;
            sweep = sweep.churn_rates(rates);
        }
        if let Some(mixes) = mixes {
            unit_array("radius_mixes", &mixes)?;
            sweep = sweep.radius_mixes(mixes);
        }
        if let Some(reps) = table.opt_u32("replicates")? {
            if reps == 0 {
                return Err(bad("replicates".to_string(), "positive integer"));
            }
            sweep = sweep.replicates(reps);
        }
        if let Some(seed) = table.opt_u64("seed")? {
            sweep.master_seed = seed;
        }
        if let Some(threads) = table.opt_usize("threads")? {
            sweep = sweep.threads(threads);
        }
        Ok(sweep)
    }

    /// Renders the sweep (scenario + axes) in the TOML subset;
    /// [`from_toml_str`](Self::from_toml_str) parses it back to an
    /// equal sweep.
    #[must_use]
    pub fn to_toml(&self) -> String {
        let mut out = self.base.to_toml();
        out.push_str("\n[sweep]\n");
        out.push_str(&format!(
            "sides = [{}]\n",
            join_with(self.sides.iter(), ", ")
        ));
        out.push_str(&format!("ks = [{}]\n", join_with(self.ks.iter(), ", ")));
        match &self.radii {
            RadiusAxis::Absolute(radii) => {
                out.push_str(&format!("radii = [{}]\n", join_with(radii.iter(), ", ")));
            }
            RadiusAxis::CriticalFractions(factors) => {
                let rendered: Vec<String> = factors.iter().map(|f| format_toml_f64(*f)).collect();
                out.push_str(&format!("r_factors = [{}]\n", rendered.join(", ")));
            }
        }
        match &self.network_axis {
            None => {}
            Some(NetworkAxis::DropProbs(probs)) => {
                let rendered: Vec<String> = probs.iter().map(|p| format_toml_f64(*p)).collect();
                out.push_str(&format!("drop_probs = [{}]\n", rendered.join(", ")));
            }
            Some(NetworkAxis::GossipIntervals(intervals)) => {
                out.push_str(&format!(
                    "gossip_intervals = [{}]\n",
                    join_with(intervals.iter(), ", ")
                ));
            }
            Some(NetworkAxis::SendCaps(caps)) => {
                out.push_str(&format!("send_caps = [{}]\n", join_with(caps.iter(), ", ")));
            }
        }
        match &self.world_axis {
            None => {}
            Some(axis) => {
                let key = match axis {
                    WorldAxis::BarrierDensities(_) => "barrier_densities",
                    WorldAxis::ChurnRates(_) => "churn_rates",
                    WorldAxis::RadiusMixes(_) => "radius_mixes",
                };
                let (WorldAxis::BarrierDensities(values)
                | WorldAxis::ChurnRates(values)
                | WorldAxis::RadiusMixes(values)) = axis;
                let rendered: Vec<String> = values.iter().map(|x| format_toml_f64(*x)).collect();
                out.push_str(&format!("{key} = [{}]\n", rendered.join(", ")));
            }
        }
        out.push_str(&format!("replicates = {}\n", self.replicates));
        out.push_str(&format!("seed = {}\n", self.master_seed));
        out.push_str(&format!("threads = {}\n", self.threads));
        out
    }
}

fn join_with<T: ToString>(items: impl Iterator<Item = T>, sep: &str) -> String {
    items.map(|x| x.to_string()).collect::<Vec<_>>().join(sep)
}

/// Renders an `f64` so the subset parser reads it back as a float
/// (integral values keep a `.0`).
fn format_toml_f64(x: f64) -> String {
    if x == x.trunc() {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// One completed cell of a sweep: coordinates, theory prediction and
/// replicate summary.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Grid side.
    pub side: u32,
    /// Agent count.
    pub k: usize,
    /// Transmission radius.
    pub radius: u32,
    /// The network-axis point as a `(key, value)` label, if the sweep
    /// has a network axis.
    pub net: Option<(&'static str, f64)>,
    /// The world-axis point as a `(key, value)` label, if the sweep has
    /// a world axis.
    pub world: Option<(&'static str, f64)>,
    /// The predicted percolation radius `r_c = √(n/k)` at these axes.
    pub critical_radius: f64,
    /// Summary over replicates.
    pub summary: Summary,
    /// Raw per-replicate measurements (replicate order).
    pub samples: Vec<f64>,
}

/// A located phase transition on one (side, k) radius curve: the knee
/// between the last sub-critical and first super-critical axis point,
/// cross-checked against the theory prediction.
#[derive(Clone, Copy, Debug)]
pub struct TransitionEstimate {
    /// Grid side of the curve.
    pub side: u32,
    /// Agent count of the curve.
    pub k: usize,
    /// The curve's network-axis point, if the sweep has one.
    pub net: Option<(&'static str, f64)>,
    /// The curve's world-axis point, if the sweep has one.
    pub world: Option<(&'static str, f64)>,
    /// Radius on the slow side of the knee.
    pub r_below: u32,
    /// Radius on the fast side of the knee.
    pub r_above: u32,
    /// The knee location (geometric midpoint of the bracketing radii).
    pub r_knee: f64,
    /// Mean-metric drop across the knee (slow mean / fast mean).
    pub drop_ratio: f64,
    /// `r_c = √(n/k)` from `sparsegossip_core::theory`.
    pub predicted_rc: f64,
}

impl TransitionEstimate {
    /// The predicted band for the measured knee: `[r_c/4, 4·r_c]`, the
    /// factor-4 window around the asymptotic `r_c = √(n/k)` that the
    /// `Θ̃`-notation's model-dependent constant is allowed to occupy
    /// (the same window the percolation threshold tests use).
    #[must_use]
    pub fn band(&self) -> (f64, f64) {
        (self.predicted_rc / 4.0, self.predicted_rc * 4.0)
    }

    /// Whether the knee lies inside [`band`](Self::band).
    #[must_use]
    pub fn within_band(&self) -> bool {
        let (lo, hi) = self.band();
        self.r_knee >= lo && self.r_knee <= hi
    }
}

/// Aggregated result of a [`ScenarioSweep::run`]: per-cell summaries in
/// cell order, renderable as a [`Table`] or machine-readable JSON.
#[derive(Clone, Debug)]
#[must_use]
pub struct ScenarioSweepReport {
    /// The swept process kind.
    pub process: ProcessKind,
    /// The reported metric.
    pub metric: Metric,
    /// The master seed the cell seeds derive from.
    pub master_seed: u64,
    /// Replicates per cell.
    pub replicates: u32,
    /// Per-cell results, side-major then k then radius.
    pub cells: Vec<SweepCell>,
}

impl ScenarioSweepReport {
    /// The smallest mean-metric drop an adjacent radius pair must show
    /// for [`transitions`](Self::transitions) to call it a knee: well
    /// below the order-of-magnitude collapse the paper predicts across
    /// `r_c`, comfortably above replicate noise on a flat curve.
    pub const MIN_DROP_RATIO: f64 = 2.0;

    /// Locates the knee of every (side, k, network-point) radius curve
    /// with at least three distinct radii: the adjacent radius pair
    /// with the largest drop in mean metric (at least
    /// [`MIN_DROP_RATIO`](Self::MIN_DROP_RATIO) — a flat curve reports
    /// no transition), its knee at their geometric midpoint.
    ///
    /// Meaningful for [`Metric::Time`], where crossing `r_c` collapses
    /// the completion time; with [`Metric::Fraction`] the drop ratios
    /// are typically below 1, so no transition is reported.
    #[must_use]
    pub fn transitions(&self) -> Vec<TransitionEstimate> {
        type Label = Option<(&'static str, f64)>;
        type CurveKey = (u32, usize, Label, Label);
        let mut out = Vec::new();
        let mut groups: Vec<CurveKey> = Vec::new();
        for cell in &self.cells {
            if !groups.contains(&(cell.side, cell.k, cell.net, cell.world)) {
                groups.push((cell.side, cell.k, cell.net, cell.world));
            }
        }
        for (side, k, net, world) in groups {
            let mut curve: Vec<(u32, f64, f64)> = self
                .cells
                .iter()
                .filter(|c| c.side == side && c.k == k && c.net == net && c.world == world)
                .map(|c| (c.radius, c.summary.mean(), c.critical_radius))
                .collect();
            curve.sort_by_key(|&(r, _, _)| r);
            curve.dedup_by_key(|&mut (r, _, _)| r);
            if curve.len() < 3 {
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            for i in 0..curve.len() - 1 {
                let (_, mean_lo, _) = curve[i];
                let (_, mean_hi, _) = curve[i + 1];
                // The 0.5 floor guards division when the fast side
                // completes at step 0.
                let ratio = mean_lo / mean_hi.max(0.5);
                if best.is_none_or(|(_, b)| ratio > b) {
                    best = Some((i, ratio));
                }
            }
            let Some((i, drop_ratio)) = best else {
                continue;
            };
            // A flat curve (all-subcritical or all-supercritical axis,
            // or seed noise) has no knee: only a drop that clears the
            // threshold is a transition.
            if drop_ratio < Self::MIN_DROP_RATIO {
                continue;
            }
            let (r_below, _, predicted_rc) = curve[i];
            let (r_above, _, _) = curve[i + 1];
            let r_knee = if r_below == 0 {
                f64::from(r_below + r_above) / 2.0
            } else {
                (f64::from(r_below) * f64::from(r_above)).sqrt()
            };
            out.push(TransitionEstimate {
                side,
                k,
                net,
                world,
                r_below,
                r_above,
                r_knee,
                drop_ratio,
                predicted_rc,
            });
        }
        out
    }

    /// Renders the per-cell summaries as an aligned table (with a
    /// `net` column only when the sweep has a network axis, so
    /// existing renderings stay byte-identical).
    #[must_use]
    pub fn table(&self) -> Table {
        let has_net = self.cells.iter().any(|c| c.net.is_some());
        let has_world = self.cells.iter().any(|c| c.world.is_some());
        let mut header = vec!["side".to_string(), "k".into(), "r".into()];
        if has_net {
            header.push("net".into());
        }
        if has_world {
            header.push("world".into());
        }
        header.extend([
            "r/r_c".to_string(),
            format!("mean {}", self.metric),
            "ci95".into(),
            "median".into(),
        ]);
        let mut t = Table::new(header);
        for c in &self.cells {
            let mut row = vec![c.side.to_string(), c.k.to_string(), c.radius.to_string()];
            if has_net {
                row.push(match c.net {
                    Some((key, value)) => format!("{key}={value}"),
                    None => "-".to_string(),
                });
            }
            if has_world {
                row.push(match c.world {
                    Some((key, value)) => format!("{key}={value}"),
                    None => "-".to_string(),
                });
            }
            row.extend([
                format!("{:.2}", f64::from(c.radius) / c.critical_radius),
                format!("{:.1}", c.summary.mean()),
                format!("{:.1}", c.summary.ci95_half_width()),
                format!("{:.1}", c.summary.median()),
            ]);
            t.push_row(row);
        }
        t
    }

    /// Renders the report (cells + transitions) as a self-describing
    /// JSON document — the schema behind `BENCH_sweep.json` and the
    /// CLI's `sweep --json`, pinned by the CLI golden tests.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"experiment\": \"scenario_sweep\",\n");
        out.push_str(&format!("  \"process\": \"{}\",\n", self.process));
        out.push_str(&format!("  \"metric\": \"{}\",\n", self.metric));
        out.push_str(&format!("  \"seed\": {},\n", self.master_seed));
        out.push_str(&format!("  \"replicates\": {},\n", self.replicates));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let samples: Vec<String> = c.samples.iter().map(|s| format!("{s}")).collect();
            // Network-axis labels appear only when the sweep has the
            // axis, so pre-network JSON output stays byte-identical.
            let mut net = match c.net {
                Some((key, value)) => format!("\"net_key\": \"{key}\", \"net_value\": {value}, "),
                None => String::new(),
            };
            if let Some((key, value)) = c.world {
                net.push_str(&format!(
                    "\"world_key\": \"{key}\", \"world_value\": {value}, "
                ));
            }
            out.push_str(&format!(
                "    {{\"side\": {}, \"k\": {}, \"r\": {}, {}\"r_c\": {}, \"mean\": {}, \
                 \"ci95\": {}, \"median\": {}, \"min\": {}, \"max\": {}, \"samples\": [{}]}}{}\n",
                c.side,
                c.k,
                c.radius,
                net,
                c.critical_radius,
                c.summary.mean(),
                c.summary.ci95_half_width(),
                c.summary.median(),
                c.summary.min(),
                c.summary.max(),
                samples.join(","),
                if i + 1 == self.cells.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"transitions\": [\n");
        let transitions = self.transitions();
        for (i, t) in transitions.iter().enumerate() {
            let (lo, hi) = t.band();
            let mut net = match t.net {
                Some((key, value)) => format!("\"net_key\": \"{key}\", \"net_value\": {value}, "),
                None => String::new(),
            };
            if let Some((key, value)) = t.world {
                net.push_str(&format!(
                    "\"world_key\": \"{key}\", \"world_value\": {value}, "
                ));
            }
            out.push_str(&format!(
                "    {{\"side\": {}, \"k\": {}, {}\"r_below\": {}, \"r_above\": {}, \
                 \"r_knee\": {}, \"drop_ratio\": {}, \"predicted_rc\": {}, \
                 \"band\": [{}, {}], \"within_band\": {}}}{}\n",
                t.side,
                t.k,
                net,
                t.r_below,
                t.r_above,
                t.r_knee,
                t.drop_ratio,
                t.predicted_rc,
                lo,
                hi,
                t.within_band(),
                if i + 1 == transitions.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_base() -> ScenarioSpec {
        ScenarioSpec::builder(ProcessKind::Broadcast, 12, 6)
            .build()
            .unwrap()
    }

    #[test]
    fn cells_expand_side_major_then_k_then_r() {
        let sweep = ScenarioSweep::new(tiny_base(), 1)
            .sides(vec![8, 12])
            .ks(vec![4, 6])
            .radii(vec![0, 2]);
        let cells = sweep.cells().unwrap();
        assert_eq!(cells.len(), 8);
        let coords: Vec<(u32, usize, u32)> =
            cells.iter().map(|c| (c.side, c.k, c.radius)).collect();
        assert_eq!(
            coords,
            vec![
                (8, 4, 0),
                (8, 4, 2),
                (8, 6, 0),
                (8, 6, 2),
                (12, 4, 0),
                (12, 4, 2),
                (12, 6, 0),
                (12, 6, 2)
            ]
        );
        // Default caps re-derive per cell.
        assert_eq!(
            cells[0].spec.config().max_steps(),
            sparsegossip_core::SimConfig::default_step_cap(8, 4)
        );
    }

    #[test]
    fn critical_fraction_axis_tracks_rc() {
        let axis = RadiusAxis::CriticalFractions(vec![0.5, 1.0, 2.0]);
        // side 16, k 16: r_c = 4.
        assert_eq!(axis.resolve(16, 16), vec![2, 4, 8]);
        // side 32, k 16: r_c = 8.
        assert_eq!(axis.resolve(32, 16), vec![4, 8, 16]);
        assert_eq!(axis.len(), 3);
        assert!(!axis.is_empty());
    }

    #[test]
    fn invalid_cell_is_reported_not_panicked() {
        let base = ScenarioSpec::builder(ProcessKind::Broadcast, 12, 8)
            .source(5)
            .build()
            .unwrap();
        let err = ScenarioSweep::new(base, 1).ks(vec![4]).run().unwrap_err();
        assert_eq!(err, SimError::SourceOutOfRange { source: 5, k: 4 });
    }

    #[test]
    fn run_aggregates_every_cell() {
        let report = ScenarioSweep::new(tiny_base(), 3)
            .sides(vec![10, 12])
            .radii(vec![0, 1, 2])
            .replicates(3)
            .run()
            .unwrap();
        assert_eq!(report.cells.len(), 6);
        for cell in &report.cells {
            assert_eq!(cell.samples.len(), 3);
            assert_eq!(cell.summary.n(), 3);
            assert!(cell.critical_radius > 0.0);
        }
        assert_eq!(report.replicates, 3);
        assert_eq!(report.process, ProcessKind::Broadcast);
    }

    #[test]
    fn transitions_locate_a_synthetic_knee() {
        // Hand-build a report with a sharp drop between r=4 and r=8 on
        // a side-32, k-16 curve (r_c = 8).
        let cell = |radius: u32, mean: f64| SweepCell {
            side: 32,
            k: 16,
            radius,
            net: None,
            world: None,
            critical_radius: 8.0,
            summary: Summary::from_slice(&[mean]),
            samples: vec![mean],
        };
        let report = ScenarioSweepReport {
            process: ProcessKind::Broadcast,
            metric: Metric::Time,
            master_seed: 0,
            replicates: 1,
            cells: vec![cell(2, 900.0), cell(4, 880.0), cell(8, 40.0), cell(16, 5.0)],
        };
        let ts = report.transitions();
        assert_eq!(ts.len(), 1);
        let t = &ts[0];
        assert_eq!((t.r_below, t.r_above), (4, 8));
        assert!((t.r_knee - 32f64.sqrt()).abs() < 1e-9);
        assert!(t.drop_ratio > 20.0);
        assert!(t.within_band(), "knee {} outside {:?}", t.r_knee, t.band());
    }

    #[test]
    fn transitions_need_three_distinct_radii() {
        let cell = |radius: u32, mean: f64| SweepCell {
            side: 16,
            k: 8,
            radius,
            net: None,
            world: None,
            critical_radius: 5.65,
            summary: Summary::from_slice(&[mean]),
            samples: vec![mean],
        };
        let report = ScenarioSweepReport {
            process: ProcessKind::Broadcast,
            metric: Metric::Time,
            master_seed: 0,
            replicates: 1,
            // Two distinct radii only (the duplicate dedups away).
            cells: vec![cell(2, 100.0), cell(2, 90.0), cell(8, 10.0)],
        };
        assert!(report.transitions().is_empty());
    }

    #[test]
    fn flat_curves_report_no_transition() {
        // An all-supercritical axis: tiny near-constant means whose
        // largest adjacent ratio is seed noise, far below the drop
        // threshold — no knee must be reported.
        let cell = |radius: u32, mean: f64| SweepCell {
            side: 32,
            k: 16,
            radius,
            net: None,
            world: None,
            critical_radius: 8.0,
            summary: Summary::from_slice(&[mean]),
            samples: vec![mean],
        };
        let report = ScenarioSweepReport {
            process: ProcessKind::Broadcast,
            metric: Metric::Time,
            master_seed: 0,
            replicates: 1,
            cells: vec![cell(12, 3.0), cell(16, 2.0), cell(24, 2.0), cell(32, 1.5)],
        };
        assert!(
            report.transitions().is_empty(),
            "noise ratio {:.2} must not register as a knee",
            3.0 / 2.0
        );
    }

    #[test]
    fn duplicate_rounded_radii_collapse_to_one_cell() {
        // side 64, k 128: r_c ≈ 5.66, so factors 0.12 and 0.25 both
        // round to r = 1 — the axis must yield each radius once.
        let axis = RadiusAxis::CriticalFractions(vec![0.12, 0.25, 0.5, 1.0]);
        assert_eq!(axis.resolve(64, 128), vec![1, 3, 6]);
        let base = ScenarioSpec::builder(ProcessKind::Broadcast, 64, 128)
            .build()
            .unwrap();
        let cells = ScenarioSweep::new(base, 1)
            .r_factors(vec![0.12, 0.25, 0.5, 1.0])
            .cells()
            .unwrap();
        let radii: Vec<u32> = cells.iter().map(|c| c.radius).collect();
        assert_eq!(radii, vec![1, 3, 6], "no duplicate cells after rounding");
    }

    #[test]
    fn zero_radius_knee_uses_arithmetic_midpoint() {
        let cell = |radius: u32, mean: f64| SweepCell {
            side: 16,
            k: 8,
            radius,
            net: None,
            world: None,
            critical_radius: 5.65,
            summary: Summary::from_slice(&[mean]),
            samples: vec![mean],
        };
        let report = ScenarioSweepReport {
            process: ProcessKind::Broadcast,
            metric: Metric::Time,
            master_seed: 0,
            replicates: 1,
            cells: vec![cell(0, 500.0), cell(4, 20.0), cell(8, 10.0)],
        };
        let ts = report.transitions();
        assert_eq!(ts.len(), 1);
        assert_eq!((ts[0].r_below, ts[0].r_above), (0, 4));
        assert_eq!(ts[0].r_knee, 2.0);
    }

    #[test]
    fn toml_round_trip_is_identity() {
        let sweep = ScenarioSweep::new(tiny_base(), 99)
            .sides(vec![12, 16])
            .ks(vec![4, 6])
            .r_factors(vec![0.25, 1.0, 2.0])
            .replicates(5)
            .threads(3);
        let text = sweep.to_toml();
        let parsed = ScenarioSweep::from_toml_str(&text).unwrap();
        assert_eq!(sweep, parsed, "round trip changed the sweep:\n{text}");

        let absolute = ScenarioSweep::new(tiny_base(), 7).radii(vec![0, 3, 6]);
        let parsed = ScenarioSweep::from_toml_str(&absolute.to_toml()).unwrap();
        assert_eq!(absolute, parsed);
    }

    #[test]
    fn toml_sweep_section_is_optional_and_validated() {
        let spec_only = "[scenario]\nprocess = \"broadcast\"\nside = 12\nk = 6\n";
        let sweep = ScenarioSweep::from_toml_str(spec_only).unwrap();
        assert_eq!(sweep.cells().unwrap().len(), 1);

        let with = |extra: &str| format!("{spec_only}\n[sweep]\n{extra}");
        assert!(matches!(
            ScenarioSweep::from_toml_str(&with("typo = 1\n")),
            Err(SpecError::UnknownKey { .. })
        ));
        assert!(ScenarioSweep::from_toml_str(&with("sides = []\n")).is_err());
        assert!(ScenarioSweep::from_toml_str(&with("ks = []\n")).is_err());
        assert!(ScenarioSweep::from_toml_str(&with("radii = []\n")).is_err());
        assert!(ScenarioSweep::from_toml_str(&with("r_factors = [-1.0]\n")).is_err());
        assert!(ScenarioSweep::from_toml_str(&with("replicates = 0\n")).is_err());
        assert!(
            ScenarioSweep::from_toml_str(&with("radii = [1]\nr_factors = [1.0]\n")).is_err(),
            "both radius axes at once must be rejected"
        );
    }

    fn twin_base() -> ScenarioSpec {
        ScenarioSpec::builder(ProcessKind::ProtocolBroadcast, 12, 6)
            .radius(1)
            .build()
            .unwrap()
    }

    #[test]
    fn network_axis_expands_cells_network_major() {
        let sweep = ScenarioSweep::new(twin_base(), 1)
            .radii(vec![0, 2])
            .drop_probs(vec![0.0, 0.5]);
        let cells = sweep.cells().unwrap();
        assert_eq!(cells.len(), 4);
        let coords: Vec<(Option<(&str, f64)>, u32)> =
            cells.iter().map(|c| (c.net, c.radius)).collect();
        assert_eq!(
            coords,
            vec![
                (Some(("drop_prob", 0.0)), 0),
                (Some(("drop_prob", 0.0)), 2),
                (Some(("drop_prob", 0.5)), 0),
                (Some(("drop_prob", 0.5)), 2),
            ]
        );
        assert_eq!(cells[2].spec.network().drop_prob(), 0.5);
        // The un-swept knobs stay at the base spec's values.
        assert_eq!(cells[2].spec.network().gossip_interval(), 1);
    }

    #[test]
    fn network_axis_on_non_twin_kind_fails_cell_validation() {
        let err = ScenarioSweep::new(tiny_base(), 1)
            .drop_probs(vec![0.5])
            .cells()
            .unwrap_err();
        assert!(matches!(err, SimError::UnsupportedSetting { .. }));
    }

    #[test]
    fn network_axis_round_trips_through_toml() {
        for sweep in [
            ScenarioSweep::new(twin_base(), 4).drop_probs(vec![0.0, 0.25, 0.5]),
            ScenarioSweep::new(twin_base(), 4).gossip_intervals(vec![1, 2, 4]),
            ScenarioSweep::new(twin_base(), 4).send_caps(vec![0, 1, 2]),
        ] {
            let text = sweep.to_toml();
            let parsed = ScenarioSweep::from_toml_str(&text).unwrap();
            assert_eq!(sweep, parsed, "round trip changed the sweep:\n{text}");
        }
    }

    #[test]
    fn toml_rejects_bad_network_axes() {
        let twin_only = "[scenario]\nprocess = \"protocol-broadcast\"\nside = 12\nk = 6\n";
        let with = |extra: &str| format!("{twin_only}\n[sweep]\n{extra}");
        assert!(ScenarioSweep::from_toml_str(&with("drop_probs = []\n")).is_err());
        assert!(ScenarioSweep::from_toml_str(&with("drop_probs = [1.5]\n")).is_err());
        assert!(ScenarioSweep::from_toml_str(&with("gossip_intervals = [0]\n")).is_err());
        assert!(ScenarioSweep::from_toml_str(&with("send_caps = []\n")).is_err());
        assert!(
            ScenarioSweep::from_toml_str(&with("drop_probs = [0.5]\nsend_caps = [1]\n")).is_err(),
            "two network axes at once must be rejected"
        );
        assert!(ScenarioSweep::from_toml_str(&with("drop_probs = [0.0, 0.5]\n")).is_ok());
    }

    #[test]
    fn network_axis_report_labels_cells_and_transitions() {
        let report = ScenarioSweep::new(twin_base(), 9)
            .radii(vec![0, 1, 2])
            .drop_probs(vec![0.0, 0.5])
            .replicates(2)
            .run()
            .unwrap();
        assert_eq!(report.cells.len(), 6);
        assert!(report.cells.iter().all(|c| c.net.is_some()));
        // Transitions group per network point, never across them.
        for t in report.transitions() {
            assert!(t.net.is_some());
        }
        let table = format!("{}", report.table());
        assert!(table.contains("net"), "table must carry the net column");
        assert!(table.contains("drop_prob=0.5"), "{table}");
        let json = report.to_json();
        assert!(json.contains("\"net_key\": \"drop_prob\""), "{json}");
        assert!(json.contains("\"net_value\": 0.5"), "{json}");
    }

    #[test]
    fn world_axis_expands_cells_world_major_inside_network() {
        let sweep = ScenarioSweep::new(tiny_base(), 1)
            .radii(vec![0, 2])
            .churn_rates(vec![0.0, 0.05]);
        let cells = sweep.cells().unwrap();
        assert_eq!(cells.len(), 4);
        let coords: Vec<(Option<(&str, f64)>, u32)> =
            cells.iter().map(|c| (c.world, c.radius)).collect();
        assert_eq!(
            coords,
            vec![
                (Some(("churn_rate", 0.0)), 0),
                (Some(("churn_rate", 0.0)), 2),
                (Some(("churn_rate", 0.05)), 0),
                (Some(("churn_rate", 0.05)), 2),
            ]
        );
        assert_eq!(cells[2].spec.world().churn_rate, 0.05);
        // The un-swept world knobs stay at the base spec's values.
        assert_eq!(cells[2].spec.world().barrier_density, 0.0);
    }

    #[test]
    fn world_axis_on_non_broadcast_kind_fails_cell_validation() {
        let base = ScenarioSpec::builder(ProcessKind::Gossip, 12, 6)
            .build()
            .unwrap();
        let err = ScenarioSweep::new(base, 1)
            .barrier_densities(vec![0.5])
            .cells()
            .unwrap_err();
        assert!(matches!(err, SimError::UnsupportedSetting { .. }));
    }

    #[test]
    fn radius_mix_axis_substitutes_the_base_factor() {
        let base = ScenarioSpec::builder(ProcessKind::Broadcast, 12, 6)
            .radius(1)
            .hetero_factor(2.0)
            .build()
            .unwrap();
        let cells = ScenarioSweep::new(base, 1)
            .radius_mixes(vec![0.0, 0.5])
            .cells()
            .unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[1].spec.world().hetero_fraction, 0.5);
        assert_eq!(cells[1].spec.world().hetero_factor, 2.0);
    }

    #[test]
    fn world_axis_round_trips_through_toml() {
        for sweep in [
            ScenarioSweep::new(tiny_base(), 4).barrier_densities(vec![0.0, 0.5, 1.0]),
            ScenarioSweep::new(tiny_base(), 4).churn_rates(vec![0.0, 0.01, 0.1]),
            ScenarioSweep::new(tiny_base(), 4).radius_mixes(vec![0.0, 0.25]),
        ] {
            let text = sweep.to_toml();
            let parsed = ScenarioSweep::from_toml_str(&text).unwrap();
            assert_eq!(sweep, parsed, "round trip changed the sweep:\n{text}");
        }
    }

    #[test]
    fn toml_rejects_bad_world_axes() {
        let spec_only = "[scenario]\nprocess = \"broadcast\"\nside = 12\nk = 6\n";
        let with = |extra: &str| format!("{spec_only}\n[sweep]\n{extra}");
        assert!(ScenarioSweep::from_toml_str(&with("barrier_densities = []\n")).is_err());
        assert!(ScenarioSweep::from_toml_str(&with("churn_rates = [1.5]\n")).is_err());
        assert!(ScenarioSweep::from_toml_str(&with("radius_mixes = [-0.1]\n")).is_err());
        assert!(
            ScenarioSweep::from_toml_str(&with("churn_rates = [0.1]\nradius_mixes = [0.5]\n"))
                .is_err(),
            "two world axes at once must be rejected"
        );
        assert!(ScenarioSweep::from_toml_str(&with("churn_rates = [0.0, 0.05]\n")).is_ok());
    }

    #[test]
    fn world_axis_report_labels_cells_and_transitions() {
        let report = ScenarioSweep::new(tiny_base(), 9)
            .radii(vec![0, 1, 2])
            .churn_rates(vec![0.0, 0.02])
            .replicates(2)
            .run()
            .unwrap();
        assert_eq!(report.cells.len(), 6);
        assert!(report.cells.iter().all(|c| c.world.is_some()));
        for t in report.transitions() {
            assert!(t.world.is_some());
        }
        let table = format!("{}", report.table());
        assert!(table.contains("world"), "table must carry the world column");
        assert!(table.contains("churn_rate=0.02"), "{table}");
        let json = report.to_json();
        assert!(json.contains("\"world_key\": \"churn_rate\""), "{json}");
        assert!(json.contains("\"world_value\": 0.02"), "{json}");
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = ScenarioSweep::new(tiny_base(), 5)
            .radii(vec![0, 2, 4])
            .replicates(2)
            .run()
            .unwrap();
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.contains("\"experiment\": \"scenario_sweep\""));
        assert!(json.contains("\"process\": \"broadcast\""));
        assert!(json.contains("\"cells\": ["));
        assert!(json.contains("\"transitions\": ["));
        assert_eq!(
            json.matches("\"side\":").count(),
            3 + report.transitions().len()
        );
        // No trailing commas before closing brackets.
        assert!(!json.contains(",\n  ]"));
    }
}
