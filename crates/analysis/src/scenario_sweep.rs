//! Multi-axis scenario sweeps: the engine that drives a
//! [`ScenarioSpec`] across the cartesian product of {grid side, agent
//! count, radius} axes and locates the paper's phase transition.
//!
//! One base spec plus axis lists expand into a grid of *cells* (each a
//! re-validated spec); every cell is replicated with deterministic,
//! decorrelated **content-addressed** seeds
//! ([`cell_seed`]`(master, side, k, radius, replicate)`), so the whole
//! sweep is a pure function of the spec and the master seed —
//! independent of thread count, scheduling, grid shape and replicate
//! count. Workers recycle one [`SimScratch`] each across their whole
//! share of the sweep, so the steady-state step stays allocation-free.
//!
//! Two execution modes sit on top of the grid:
//!
//! * **adaptive refinement** ([`ScenarioSweep::adaptive`]): after the
//!   coarse pass, each (side, k) curve's knee bracket is bisected
//!   until it is ≤ [`AdaptiveConfig::tolerance`]`·r_c` wide (or one
//!   grid step, or the cell budget runs out), then a confidence-aware
//!   top-up spends extra replicates where the relative CI95 is widest;
//! * **checkpoint/resume** ([`ScenarioSweep::run_with_store`]): every
//!   completed simulation streams to a [`crate::ResultStore`] in
//!   deterministic task order, and a resumed sweep replays the store
//!   prefix as cache hits, converging on byte-identical output.
//!
//! The [`ScenarioSweepReport`] carries per-cell summaries and a
//! **transition detector** ([`ScenarioSweepReport::transitions`]):
//! for each (side, k) it finds the knee in the metric-vs-radius curve
//! and cross-checks it against the percolation radius
//! `r_c = √(n/k)` predicted by `sparsegossip_core::theory`.
//!
//! # Examples
//!
//! ```
//! use sparsegossip_analysis::ScenarioSweep;
//! use sparsegossip_core::{ProcessKind, ScenarioSpec};
//!
//! let base = ScenarioSpec::builder(ProcessKind::Broadcast, 16, 8).build()?;
//! let report = ScenarioSweep::new(base, 2011)
//!     .sides(vec![12, 16])
//!     .ks(vec![6, 8])
//!     .r_factors(vec![0.5, 1.0, 2.0]) // radii as fractions of r_c
//!     .replicates(2)
//!     .threads(2)
//!     .run()?;
//! assert_eq!(report.cells.len(), 2 * 2 * 3);
//! assert_eq!(report.transitions().len(), 4); // one knee per (side, k)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use sparsegossip_core::theory;
use sparsegossip_core::toml::{TomlDoc, TomlError};
use sparsegossip_core::{
    cell_seed, FaultConfig, Metric, NetworkConfig, ProcessKind, ScenarioSpec, SimError, SimScratch,
    SpecError, WorldConfig,
};

use crate::store::{ResultStore, StoreError};
use crate::{parallel_map_with, Summary, Table};

/// The radius axis of a sweep: absolute grid-step radii, or fractions
/// of the cell's own percolation radius `r_c = √(n/k)` (so the axis
/// tracks the transition across differently-sized cells).
#[derive(Clone, Debug, PartialEq)]
pub enum RadiusAxis {
    /// Radii in grid steps, used verbatim for every (side, k).
    Absolute(Vec<u32>),
    /// Radii as multiples of each cell's `r_c`, rounded to grid steps.
    CriticalFractions(Vec<f64>),
}

impl RadiusAxis {
    /// The concrete radii this axis yields for a `side × side` grid
    /// with `k` agents, first occurrence order, duplicates removed —
    /// distinct fractions of a small `r_c` can round to the same grid
    /// radius, and a repeated radius would only re-measure the same
    /// cell under another name.
    #[must_use]
    pub fn resolve(&self, side: u32, k: usize) -> Vec<u32> {
        let raw: Vec<u32> = match self {
            Self::Absolute(radii) => radii.clone(),
            Self::CriticalFractions(factors) => {
                let n = f64::from(side) * f64::from(side);
                let rc = theory::critical_radius(n, k as f64);
                factors.iter().map(|f| (f * rc).round() as u32).collect()
            }
        };
        let mut radii = Vec::with_capacity(raw.len());
        for r in raw {
            if !radii.contains(&r) {
                radii.push(r);
            }
        }
        radii
    }

    /// Number of axis points.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Self::Absolute(v) => v.len(),
            Self::CriticalFractions(v) => v.len(),
        }
    }

    /// Whether the axis has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A network fault axis for protocol-twin sweeps: one
/// [`NetworkConfig`] knob varied across a list of values while the
/// base spec pins the others. Only
/// [`ProcessKind::ProtocolBroadcast`] specs accept non-ideal
/// networks, so a network axis on any other kind fails cell
/// validation with [`SimError::UnsupportedSetting`].
#[derive(Clone, Debug, PartialEq)]
pub enum NetworkAxis {
    /// Per-message loss probabilities (each finite, in `[0, 1]`).
    DropProbs(Vec<f64>),
    /// `StartGossip` timer periods in ticks (each `≥ 1`).
    GossipIntervals(Vec<u64>),
    /// Per-tick payload send caps (`0` = unlimited).
    SendCaps(Vec<u32>),
}

impl NetworkAxis {
    /// The spec-file key of the varied knob.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            Self::DropProbs(_) => "drop_prob",
            Self::GossipIntervals(_) => "gossip_interval",
            Self::SendCaps(_) => "send_cap",
        }
    }

    /// Number of axis points.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Self::DropProbs(v) => v.len(),
            Self::GossipIntervals(v) => v.len(),
            Self::SendCaps(v) => v.len(),
        }
    }

    /// Whether the axis has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `(key, value)` label and full [`NetworkConfig`] of each axis
    /// point, substituting the varied knob into `base`.
    #[must_use]
    pub fn resolve(&self, base: &NetworkConfig) -> Vec<((&'static str, f64), NetworkConfig)> {
        // Axis values are validated by the builders / the TOML parser,
        // so rebuilding the config cannot fail.
        let build = |drop, delay, cap, interval| {
            // detlint: allow(panic, axis values were validated by the builders)
            NetworkConfig::new(drop, delay, cap, interval).expect("validated axis value")
        };
        match self {
            Self::DropProbs(probs) => probs
                .iter()
                .map(|&p| {
                    let net = build(p, base.delay_max(), base.send_cap(), base.gossip_interval());
                    (("drop_prob", p), net)
                })
                .collect(),
            Self::GossipIntervals(intervals) => intervals
                .iter()
                .map(|&iv| {
                    let net = build(base.drop_prob(), base.delay_max(), base.send_cap(), iv);
                    (("gossip_interval", iv as f64), net)
                })
                .collect(),
            Self::SendCaps(caps) => caps
                .iter()
                .map(|&c| {
                    let net = build(
                        base.drop_prob(),
                        base.delay_max(),
                        c,
                        base.gossip_interval(),
                    );
                    (("send_cap", f64::from(c)), net)
                })
                .collect(),
        }
    }
}

/// A world-model axis for broadcast sweeps: one [`WorldConfig`] knob
/// varied across a list of values while the base spec pins the others.
/// Only [`ProcessKind::Broadcast`] specs accept active world axes, so
/// a world axis on any other kind fails cell validation with
/// [`SimError::UnsupportedSetting`].
#[derive(Clone, Debug, PartialEq)]
pub enum WorldAxis {
    /// City-block wall densities (each finite, in `[0, 1]`).
    BarrierDensities(Vec<f64>),
    /// Per-agent per-step replacement probabilities (each finite, in
    /// `[0, 1]`).
    ChurnRates(Vec<f64>),
    /// Heterogeneous-class fractions (each finite, in `[0, 1]`); the
    /// base spec's `hetero_factor` supplies the radius multiplier.
    RadiusMixes(Vec<f64>),
}

impl WorldAxis {
    /// The spec-file key of the varied knob.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            Self::BarrierDensities(_) => "barrier_density",
            Self::ChurnRates(_) => "churn_rate",
            Self::RadiusMixes(_) => "hetero_fraction",
        }
    }

    /// Number of axis points.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Self::BarrierDensities(v) | Self::ChurnRates(v) | Self::RadiusMixes(v) => v.len(),
        }
    }

    /// Whether the axis has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `(key, value)` label and full [`WorldConfig`] of each axis
    /// point, substituting the varied knob into `base`.
    #[must_use]
    pub fn resolve(&self, base: &WorldConfig) -> Vec<((&'static str, f64), WorldConfig)> {
        let values = match self {
            Self::BarrierDensities(v) | Self::ChurnRates(v) | Self::RadiusMixes(v) => v,
        };
        values
            .iter()
            .map(|&x| {
                let mut world = *base;
                match self {
                    Self::BarrierDensities(_) => world.barrier_density = x,
                    Self::ChurnRates(_) => world.churn_rate = x,
                    Self::RadiusMixes(_) => world.hetero_fraction = x,
                }
                ((self.key(), x), world)
            })
            .collect()
    }
}

/// A fault axis for protocol-twin sweeps: one [`FaultConfig`] knob
/// varied across a list of values while the base spec pins the others
/// (including the recovery switches and, for partitions, the window
/// start). Only [`ProcessKind::ProtocolBroadcast`] specs accept
/// non-trivial fault settings, so a fault axis on any other kind fails
/// cell validation with [`SimError::UnsupportedSetting`].
#[derive(Clone, Debug, PartialEq)]
pub enum FaultAxis {
    /// Per-node per-tick crash probabilities (each finite, in
    /// `[0, 1]`).
    CrashProbs(Vec<f64>),
    /// Partition-window lengths in ticks (`0` = no partition); the
    /// base spec's `partition_start` supplies the window start.
    PartitionLens(Vec<u64>),
}

impl FaultAxis {
    /// The spec-file key of the varied knob.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            Self::CrashProbs(_) => "crash_prob",
            Self::PartitionLens(_) => "partition_len",
        }
    }

    /// Number of axis points.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Self::CrashProbs(v) => v.len(),
            Self::PartitionLens(v) => v.len(),
        }
    }

    /// Whether the axis has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `(key, value)` label and full [`FaultConfig`] of each axis
    /// point, substituting the varied knob into `base`.
    #[must_use]
    pub fn resolve(&self, base: &FaultConfig) -> Vec<((&'static str, f64), FaultConfig)> {
        match self {
            Self::CrashProbs(probs) => probs
                .iter()
                .map(|&p| {
                    let mut faults = *base;
                    faults.crash_prob = p;
                    (("crash_prob", p), faults)
                })
                .collect(),
            Self::PartitionLens(lens) => lens
                .iter()
                .map(|&len| {
                    let mut faults = *base;
                    faults.partition_len = len;
                    (("partition_len", len as f64), faults)
                })
                .collect(),
        }
    }
}

/// One cell of the expanded sweep grid: its axis coordinates and the
/// re-validated spec that runs there.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioCell {
    /// Grid side of this cell.
    pub side: u32,
    /// Agent count of this cell.
    pub k: usize,
    /// Transmission radius of this cell (resolved from the axis).
    pub radius: u32,
    /// The network-axis point of this cell as a `(key, value)` label,
    /// or `None` when the sweep has no network axis.
    pub net: Option<(&'static str, f64)>,
    /// The world-axis point of this cell as a `(key, value)` label, or
    /// `None` when the sweep has no world axis.
    pub world: Option<(&'static str, f64)>,
    /// The fault-axis point of this cell as a `(key, value)` label, or
    /// `None` when the sweep has no fault axis.
    pub fault: Option<(&'static str, f64)>,
    /// The runnable spec for this cell.
    pub spec: ScenarioSpec,
}

/// Configuration of the adaptive refinement mode: how far each
/// curve's knee bracket is narrowed and how much extra work the
/// confidence-aware replicate top-up may spend.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveConfig {
    /// Maximum total cells per sweep (coarse grid + refinements);
    /// `0` means unlimited. Refinement stops adding cells once the
    /// budget is reached — the coarse grid itself always runs.
    pub cell_budget: usize,
    /// Total extra replicate runs the confidence-aware top-up may
    /// spend across the whole sweep (`0` disables the top-up). Each
    /// round tops up the cell whose relative CI95 half-width is
    /// currently widest.
    pub replicate_budget: u32,
    /// Target bracket width as a fraction of the curve's own `r_c`
    /// (default `0.01`); integer radii additionally stop at a width of
    /// one grid step.
    pub tolerance: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            cell_budget: 0,
            replicate_budget: 0,
            tolerance: 0.01,
        }
    }
}

/// Errors of a store-backed sweep run: either a cell failed
/// validation, or the result store failed.
#[derive(Debug)]
pub enum SweepError {
    /// A cell's spec failed validation.
    Sim(SimError),
    /// The result store failed (I/O, corruption, version).
    Store(StoreError),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Sim(e) => write!(f, "{e}"),
            Self::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Sim(e) => Some(e),
            Self::Store(e) => Some(e),
        }
    }
}

impl From<SimError> for SweepError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}

impl From<StoreError> for SweepError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}

/// A multi-axis sweep of one [`ScenarioSpec`] over {side, k, r}.
///
/// Cells are ordered network-axis-major (when one is set), then
/// side, then k, then radius; the seed of replicate `j` of a cell is
/// [`cell_seed`]`(master, side, k, radius, j)` — content-addressed by
/// the cell's own coordinates, so results never depend on the thread
/// count, the grid shape or the replicate count (pinned by the
/// `scenario_sweep_regression` suite).
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSweep {
    base: ScenarioSpec,
    master_seed: u64,
    sides: Vec<u32>,
    ks: Vec<usize>,
    radii: RadiusAxis,
    network_axis: Option<NetworkAxis>,
    world_axis: Option<WorldAxis>,
    fault_axis: Option<FaultAxis>,
    replicates: u32,
    threads: usize,
    adaptive: Option<AdaptiveConfig>,
}

impl ScenarioSweep {
    /// Creates a sweep of `base` rooted at `master_seed`; every axis
    /// defaults to the base spec's own value (a 1×1×1 grid), with 8
    /// replicates and single-threaded execution.
    #[must_use]
    pub fn new(base: ScenarioSpec, master_seed: u64) -> Self {
        Self {
            master_seed,
            sides: vec![base.config().side()],
            ks: vec![base.config().k()],
            radii: RadiusAxis::Absolute(vec![base.config().radius()]),
            network_axis: None,
            world_axis: None,
            fault_axis: None,
            replicates: 8,
            threads: 1,
            adaptive: None,
            base,
        }
    }

    /// Sets the grid-side axis.
    ///
    /// # Panics
    ///
    /// Panics if `sides` is empty.
    #[must_use]
    pub fn sides(mut self, sides: Vec<u32>) -> Self {
        assert!(!sides.is_empty(), "at least one side required");
        self.sides = sides;
        self
    }

    /// Sets the agent-count axis.
    ///
    /// # Panics
    ///
    /// Panics if `ks` is empty.
    #[must_use]
    pub fn ks(mut self, ks: Vec<usize>) -> Self {
        assert!(!ks.is_empty(), "at least one k required");
        self.ks = ks;
        self
    }

    /// Sets the radius axis to absolute radii.
    ///
    /// # Panics
    ///
    /// Panics if `radii` is empty.
    #[must_use]
    pub fn radii(mut self, radii: Vec<u32>) -> Self {
        assert!(!radii.is_empty(), "at least one radius required");
        self.radii = RadiusAxis::Absolute(radii);
        self
    }

    /// Sets the radius axis to fractions of each cell's `r_c` (e.g.
    /// `[0.25, 0.5, 1.0, 2.0]` brackets the transition everywhere).
    ///
    /// # Panics
    ///
    /// Panics if `factors` is empty or contains a negative or
    /// non-finite factor.
    #[must_use]
    pub fn r_factors(mut self, factors: Vec<f64>) -> Self {
        assert!(!factors.is_empty(), "at least one radius factor required");
        assert!(
            factors.iter().all(|f| f.is_finite() && *f >= 0.0),
            "radius factors must be finite and non-negative"
        );
        self.radii = RadiusAxis::CriticalFractions(factors);
        self
    }

    /// Sets the network axis to per-message drop probabilities
    /// (protocol-twin sweeps only; other kinds fail cell validation).
    ///
    /// # Panics
    ///
    /// Panics if `probs` is empty or contains a non-finite value or
    /// one outside `[0, 1]`.
    #[must_use]
    pub fn drop_probs(mut self, probs: Vec<f64>) -> Self {
        assert!(!probs.is_empty(), "at least one drop probability required");
        assert!(
            probs
                .iter()
                .all(|p| p.is_finite() && (0.0..=1.0).contains(p)),
            "drop probabilities must be finite and within [0, 1]"
        );
        self.network_axis = Some(NetworkAxis::DropProbs(probs));
        self
    }

    /// Sets the network axis to `StartGossip` timer periods
    /// (protocol-twin sweeps only).
    ///
    /// # Panics
    ///
    /// Panics if `intervals` is empty or contains a zero.
    #[must_use]
    pub fn gossip_intervals(mut self, intervals: Vec<u64>) -> Self {
        assert!(!intervals.is_empty(), "at least one interval required");
        assert!(
            intervals.iter().all(|iv| *iv >= 1),
            "gossip intervals must be at least 1 tick"
        );
        self.network_axis = Some(NetworkAxis::GossipIntervals(intervals));
        self
    }

    /// Sets the network axis to per-tick payload send caps
    /// (protocol-twin sweeps only; `0` means unlimited).
    ///
    /// # Panics
    ///
    /// Panics if `caps` is empty.
    #[must_use]
    pub fn send_caps(mut self, caps: Vec<u32>) -> Self {
        assert!(!caps.is_empty(), "at least one send cap required");
        self.network_axis = Some(NetworkAxis::SendCaps(caps));
        self
    }

    /// The network axis, if one is set.
    #[inline]
    #[must_use]
    pub fn network_axis(&self) -> Option<&NetworkAxis> {
        self.network_axis.as_ref()
    }

    /// Sets the world axis to city-block wall densities (broadcast
    /// sweeps only; other kinds fail cell validation).
    ///
    /// # Panics
    ///
    /// Panics if `densities` is empty or contains a non-finite value or
    /// one outside `[0, 1]`.
    #[must_use]
    pub fn barrier_densities(mut self, densities: Vec<f64>) -> Self {
        assert!(!densities.is_empty(), "at least one density required");
        assert!(
            densities
                .iter()
                .all(|d| d.is_finite() && (0.0..=1.0).contains(d)),
            "barrier densities must be finite and within [0, 1]"
        );
        self.world_axis = Some(WorldAxis::BarrierDensities(densities));
        self
    }

    /// Sets the world axis to per-agent per-step replacement
    /// probabilities (broadcast sweeps only).
    ///
    /// # Panics
    ///
    /// Panics if `rates` is empty or contains a non-finite value or one
    /// outside `[0, 1]`.
    #[must_use]
    pub fn churn_rates(mut self, rates: Vec<f64>) -> Self {
        assert!(!rates.is_empty(), "at least one churn rate required");
        assert!(
            rates
                .iter()
                .all(|r| r.is_finite() && (0.0..=1.0).contains(r)),
            "churn rates must be finite and within [0, 1]"
        );
        self.world_axis = Some(WorldAxis::ChurnRates(rates));
        self
    }

    /// Sets the world axis to heterogeneous-class fractions (the base
    /// spec's `hetero_factor` supplies the multiplier; broadcast sweeps
    /// only).
    ///
    /// # Panics
    ///
    /// Panics if `mixes` is empty or contains a non-finite value or one
    /// outside `[0, 1]`.
    #[must_use]
    pub fn radius_mixes(mut self, mixes: Vec<f64>) -> Self {
        assert!(!mixes.is_empty(), "at least one radius mix required");
        assert!(
            mixes
                .iter()
                .all(|m| m.is_finite() && (0.0..=1.0).contains(m)),
            "radius mixes must be finite and within [0, 1]"
        );
        self.world_axis = Some(WorldAxis::RadiusMixes(mixes));
        self
    }

    /// The world axis, if one is set.
    #[inline]
    #[must_use]
    pub fn world_axis(&self) -> Option<&WorldAxis> {
        self.world_axis.as_ref()
    }

    /// Sets the fault axis to per-node per-tick crash probabilities
    /// (protocol-twin sweeps only; other kinds fail cell validation).
    /// The base spec pins the recovery switches — sweep crash rates
    /// with `retransmit` / `anti_entropy_interval` set there.
    ///
    /// # Panics
    ///
    /// Panics if `probs` is empty or contains a non-finite value or
    /// one outside `[0, 1]`.
    #[must_use]
    pub fn crash_probs(mut self, probs: Vec<f64>) -> Self {
        assert!(!probs.is_empty(), "at least one crash probability required");
        assert!(
            probs
                .iter()
                .all(|p| p.is_finite() && (0.0..=1.0).contains(p)),
            "crash probabilities must be finite and within [0, 1]"
        );
        self.fault_axis = Some(FaultAxis::CrashProbs(probs));
        self
    }

    /// Sets the fault axis to partition-window lengths in ticks
    /// (`0` = no partition; protocol-twin sweeps only). The base
    /// spec's `partition_start` supplies the window start.
    ///
    /// # Panics
    ///
    /// Panics if `lens` is empty.
    #[must_use]
    pub fn partition_lens(mut self, lens: Vec<u64>) -> Self {
        assert!(!lens.is_empty(), "at least one partition length required");
        self.fault_axis = Some(FaultAxis::PartitionLens(lens));
        self
    }

    /// The fault axis, if one is set.
    #[inline]
    #[must_use]
    pub fn fault_axis(&self) -> Option<&FaultAxis> {
        self.fault_axis.as_ref()
    }

    /// Sets the number of replicates per cell.
    ///
    /// # Panics
    ///
    /// Panics if `replicates == 0`.
    #[must_use]
    pub fn replicates(mut self, replicates: u32) -> Self {
        assert!(replicates > 0, "at least one replicate required");
        self.replicates = replicates;
        self
    }

    /// Sets the number of worker threads (values below 1 are clamped);
    /// never affects results, only wall-clock time.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the master seed the per-cell seeds derive from.
    #[must_use]
    pub fn seed(mut self, master_seed: u64) -> Self {
        self.master_seed = master_seed;
        self
    }

    /// Enables the adaptive refinement mode: after the coarse pass,
    /// bisect every curve's knee bracket to `tolerance · r_c` (or one
    /// grid step) under the cell budget, then top up replicates where
    /// the relative CI95 is widest under the replicate budget.
    ///
    /// # Panics
    ///
    /// Panics if `config.tolerance` is not finite and positive.
    #[must_use]
    pub fn adaptive(mut self, config: AdaptiveConfig) -> Self {
        assert!(
            config.tolerance.is_finite() && config.tolerance > 0.0,
            "adaptive tolerance must be finite and positive"
        );
        self.adaptive = Some(config);
        self
    }

    /// The adaptive configuration, if the mode is enabled.
    #[inline]
    #[must_use]
    pub fn adaptive_config(&self) -> Option<AdaptiveConfig> {
        self.adaptive
    }

    /// The base spec the axes expand.
    #[inline]
    #[must_use]
    pub fn base(&self) -> &ScenarioSpec {
        &self.base
    }

    /// The master seed.
    #[inline]
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The replicates per cell.
    #[inline]
    #[must_use]
    pub fn num_replicates(&self) -> u32 {
        self.replicates
    }

    /// Expands the axes into the ordered cell grid, re-validating the
    /// spec at every coordinate.
    ///
    /// # Errors
    ///
    /// The first [`SimError`] any cell's validation produces (e.g. the
    /// base source index is out of range for a smaller `k`).
    pub fn cells(&self) -> Result<Vec<ScenarioCell>, SimError> {
        // One (labelled) base spec per network-axis point; a single
        // unlabelled base when no network axis is set, so existing
        // sweeps keep their exact cell grid and seeds.
        let net_bases: Vec<(Option<(&'static str, f64)>, ScenarioSpec)> = match &self.network_axis {
            None => vec![(None, self.base)],
            Some(axis) => {
                let mut bases = Vec::with_capacity(axis.len());
                for (label, net) in axis.resolve(self.base.network()) {
                    bases.push((Some(label), self.base.with_network(net)?));
                }
                bases
            }
        };
        // World-axis expansion nests inside the network axis, same
        // backward-compatible shape: no world axis, no extra cells.
        type Label = Option<(&'static str, f64)>;
        let mut world_bases: Vec<((Label, Label), ScenarioSpec)> = Vec::new();
        for (net, base) in net_bases {
            match &self.world_axis {
                None => world_bases.push(((net, None), base)),
                Some(axis) => {
                    for (label, world) in axis.resolve(base.world()) {
                        world_bases.push(((net, Some(label)), base.with_world(world)?));
                    }
                }
            }
        }
        // The fault axis nests innermost of the config axes, same
        // rule again: no fault axis, no extra cells.
        let mut bases: Vec<((Label, Label, Label), ScenarioSpec)> = Vec::new();
        for ((net, world), base) in world_bases {
            match &self.fault_axis {
                None => bases.push(((net, world, None), base)),
                Some(axis) => {
                    for (label, faults) in axis.resolve(base.faults()) {
                        bases.push(((net, world, Some(label)), base.with_faults(faults)?));
                    }
                }
            }
        }
        let mut cells =
            Vec::with_capacity(bases.len() * self.sides.len() * self.ks.len() * self.radii.len());
        for ((net, world, fault), base) in &bases {
            for &side in &self.sides {
                for &k in &self.ks {
                    for radius in self.radii.resolve(side, k) {
                        cells.push(ScenarioCell {
                            side,
                            k,
                            radius,
                            net: *net,
                            world: *world,
                            fault: *fault,
                            spec: base.with_axes(side, k, radius)?,
                        });
                    }
                }
            }
        }
        Ok(cells)
    }

    /// Runs every replicate of every cell across the worker threads and
    /// aggregates per cell (plus the adaptive refinement and top-up
    /// phases when [`adaptive`](Self::adaptive) is enabled).
    ///
    /// # Errors
    ///
    /// As [`cells`](Self::cells).
    pub fn run(&self) -> Result<ScenarioSweepReport, SimError> {
        match self.run_with_store(None) {
            Ok(report) => Ok(report),
            Err(SweepError::Sim(e)) => Err(e),
            // A storeless run has no store to fail.
            Err(SweepError::Store(_)) => unreachable!("storeless run cannot fail on the store"),
        }
    }

    /// As [`run`](Self::run), streaming every completed simulation to
    /// `store` in deterministic task order and replaying records
    /// already in the store as cache hits — the checkpoint/resume
    /// path. The store's integrity trailer is written on completion;
    /// a killed run leaves a truncatable prefix that
    /// [`ResultStore::open_resume`] recovers, and a resumed sweep
    /// converges on a byte-identical store and report.
    ///
    /// # Errors
    ///
    /// [`SweepError::Sim`] as [`cells`](Self::cells);
    /// [`SweepError::Store`] when the store fails.
    pub fn run_with_store(
        &self,
        mut store: Option<&mut ResultStore>,
    ) -> Result<ScenarioSweepReport, SweepError> {
        let cells = self.cells()?;
        // Curves in first-appearance order; every evaluated cell knows
        // its curve so refined cells sort back into their curve.
        let mut curves: Vec<CurveKey> = Vec::new();
        let mut evals: Vec<Eval> = Vec::with_capacity(cells.len());
        for cell in cells {
            let key = (cell.side, cell.k, cell.net, cell.world, cell.fault);
            let curve = match curves.iter().position(|c| *c == key) {
                Some(i) => i,
                None => {
                    curves.push(key);
                    curves.len() - 1
                }
            };
            evals.push(Eval {
                spec_hash: cell.spec.content_hash(),
                cell,
                curve,
                samples: Vec::with_capacity(self.replicates as usize),
            });
        }
        let coarse_cells = evals.len();
        // Coarse pass: every replicate of every grid cell.
        let jobs: Vec<(usize, u32)> = (0..evals.len())
            .flat_map(|i| (0..self.replicates).map(move |j| (i, j)))
            .collect();
        self.run_jobs(&mut evals, &jobs, &mut store)?;

        let adaptive = match self.adaptive {
            Some(cfg) => {
                let refined = self.refine(&mut evals, curves.len(), cfg, &mut store)?;
                let topped_up = self.top_up(&mut evals, cfg, &mut store)?;
                Some(AdaptiveSummary {
                    coarse_cells,
                    refined_cells: refined,
                    topup_replicates: topped_up,
                })
            }
            None => None,
        };
        if let Some(store) = store.as_mut() {
            store.finish()?;
        }
        // Adaptive runs interleave refined cells back into their
        // curves in radius order; plain runs keep the grid's own cell
        // order verbatim (pinned byte-for-byte by the CLI goldens).
        if adaptive.is_some() {
            evals.sort_by_key(|e| (e.curve, e.cell.radius));
        }
        let cells = evals
            .into_iter()
            .map(|e| {
                let n = f64::from(e.cell.side) * f64::from(e.cell.side);
                SweepCell {
                    side: e.cell.side,
                    k: e.cell.k,
                    radius: e.cell.radius,
                    net: e.cell.net,
                    world: e.cell.world,
                    fault: e.cell.fault,
                    critical_radius: theory::critical_radius(n, e.cell.k as f64),
                    summary: Summary::from_slice(&e.samples),
                    samples: e.samples,
                }
            })
            .collect();
        Ok(ScenarioSweepReport {
            process: self.base.kind(),
            metric: self.base.metric(),
            master_seed: self.master_seed,
            replicates: self.replicates,
            adaptive,
            cells,
        })
    }

    /// Executes a batch of `(eval index, replicate)` jobs: store hits
    /// are replayed, misses run in parallel (per-worker scratch) and
    /// are appended to the store in job order, and every value is
    /// pushed onto its eval's samples in job order.
    fn run_jobs(
        &self,
        evals: &mut [Eval],
        jobs: &[(usize, u32)],
        store: &mut Option<&mut ResultStore>,
    ) -> Result<(), SweepError> {
        // (job slot, eval, replicate, seed) of every cache miss.
        let mut to_run: Vec<(usize, usize, u32, u64)> = Vec::with_capacity(jobs.len());
        let mut values: Vec<Option<f64>> = vec![None; jobs.len()];
        for (slot, &(e, rep)) in jobs.iter().enumerate() {
            let c = &evals[e].cell;
            let seed = cell_seed(self.master_seed, c.side, c.k, c.radius, rep);
            match store
                .as_deref()
                .and_then(|s| s.get(evals[e].spec_hash, seed))
            {
                Some(v) => values[slot] = Some(v),
                None => to_run.push((slot, e, rep, seed)),
            }
        }
        let shared: &[Eval] = evals;
        let outs = parallel_map_with(
            &to_run,
            self.threads,
            SimScratch::new,
            |scratch, &(_, e, _, seed)| shared[e].cell.spec.run_seed_with_scratch(scratch, seed),
        );
        for (&(slot, e, rep, seed), &v) in to_run.iter().zip(&outs) {
            values[slot] = Some(v);
            if let Some(store) = store.as_deref_mut() {
                store.append(evals[e].spec_hash, seed, rep, v)?;
            }
        }
        for (slot, &(e, _)) in jobs.iter().enumerate() {
            if let Some(v) = values[slot] {
                evals[e].samples.push(v);
            }
        }
        Ok(())
    }

    /// The bisection phase: narrows every curve's knee bracket by
    /// evaluating midpoint cells in parallel waves until each bracket
    /// is at most `tolerance · r_c` (or one grid step) wide or the
    /// cell budget is exhausted. Returns the number of refined cells
    /// added.
    fn refine(
        &self,
        evals: &mut Vec<Eval>,
        num_curves: usize,
        cfg: AdaptiveConfig,
        store: &mut Option<&mut ResultStore>,
    ) -> Result<usize, SweepError> {
        // Detector-driven waves: each round re-runs the knee detector
        // over every curve's *current* points and bisects the pair it
        // flags, so refinement converges on exactly the bracket the
        // final report will cite. (Classifying midpoints against a
        // fixed initial bracket can converge while the detector still
        // flags a wide coarse pair elsewhere on the curve — splitting
        // a steep interval splits its drop ratio across the pieces.)
        let mut active: Vec<bool> = vec![true; num_curves];
        let mut refined = 0usize;
        loop {
            // Plan one wave: the flagged pair's midpoint for every
            // still-active curve, in curve order, respecting the cell
            // budget. A curve retires when its flagged pair is narrow
            // enough (one grid step or `tolerance · r_c`), bisection
            // degenerates, or the detector stops finding a knee.
            // One wave entry per curve: (curve, mid radius, lo eval).
            let mut wave: Vec<(usize, u32, usize)> = Vec::new();
            // detlint: hot
            for (curve, live) in active.iter_mut().enumerate() {
                if !*live {
                    continue;
                }
                let Some((lo, hi)) = knee_bracket(evals, curve) else {
                    *live = false;
                    continue;
                };
                let r_lo = evals[lo].cell.radius;
                let r_hi = evals[hi].cell.radius;
                let rc = critical_radius_of(&evals[lo].cell);
                let width = f64::from(r_hi - r_lo);
                if width <= 1.0 || width <= cfg.tolerance * rc {
                    *live = false;
                    continue;
                }
                let mid = bracket_midpoint(r_lo, r_hi);
                if mid <= r_lo || mid >= r_hi {
                    *live = false;
                    continue;
                }
                if cfg.cell_budget > 0 && evals.len() + wave.len() >= cfg.cell_budget {
                    *live = false;
                    continue;
                }
                wave.push((curve, mid, lo));
            }
            if wave.is_empty() {
                return Ok(refined);
            }
            // Materialize the wave's cells and run all their
            // replicates as one parallel batch.
            let first_new = evals.len();
            let mut jobs: Vec<(usize, u32)> =
                Vec::with_capacity(wave.len() * self.replicates as usize);
            for (w, &(curve, mid, lo)) in wave.iter().enumerate() {
                let parent = evals[lo].cell.clone();
                let spec = parent.spec.with_axes(parent.side, parent.k, mid)?;
                evals.push(Eval {
                    spec_hash: spec.content_hash(),
                    cell: ScenarioCell {
                        radius: mid,
                        spec,
                        ..parent
                    },
                    curve,
                    samples: Vec::with_capacity(self.replicates as usize),
                });
                jobs.extend((0..self.replicates).map(|j| (first_new + w, j)));
            }
            refined += wave.len();
            self.run_jobs(evals, &jobs, store)?;
        }
    }

    /// The confidence-aware top-up phase: while replicate budget
    /// remains, find the evaluated cell with the widest *relative*
    /// CI95 half-width (half-width over `max(|mean|, 1)` — time
    /// scales differ wildly across cells) and give it up to one more
    /// round of replicates. Returns the replicates actually spent.
    fn top_up(
        &self,
        evals: &mut [Eval],
        cfg: AdaptiveConfig,
        store: &mut Option<&mut ResultStore>,
    ) -> Result<u32, SweepError> {
        let mut remaining = cfg.replicate_budget;
        let mut spent = 0u32;
        while remaining > 0 {
            let mut widest: Option<(usize, f64)> = None;
            // detlint: hot
            for (i, e) in evals.iter().enumerate() {
                let width = relative_ci95(&e.samples);
                if widest.is_none_or(|(_, w)| width > w) {
                    widest = Some((i, width));
                }
            }
            let Some((target, width)) = widest else { break };
            if width <= 0.0 {
                // Every cell's interval is tight (or degenerate):
                // nothing left for the budget to buy.
                break;
            }
            let add = self.replicates.min(remaining);
            let start = evals[target].samples.len() as u32;
            let jobs: Vec<(usize, u32)> = (0..add).map(|j| (target, start + j)).collect();
            self.run_jobs(evals, &jobs, store)?;
            remaining -= add;
            spent += add;
        }
        Ok(spent)
    }

    /// Parses a sweep from text holding a `[scenario]` section and an
    /// optional `[sweep]` section with keys `sides`, `ks`, `radii` *or*
    /// `r_factors`, at most one network axis (`drop_probs`,
    /// `gossip_intervals` or `send_caps`), at most one world axis
    /// (`barrier_densities`, `churn_rates` or `radius_mixes`), at most
    /// one fault axis (`crash_probs` or `partition_lens`),
    /// `replicates`, `seed`,
    /// `threads` and the adaptive-mode keys `adaptive`, `cell_budget`,
    /// `replicate_budget`, `tolerance` (axes default to the scenario's
    /// own values; the budget/tolerance keys require
    /// `adaptive = true`).
    ///
    /// # Errors
    ///
    /// As [`ScenarioSpec::from_toml_str`], plus [`SpecError::Toml`] /
    /// [`SpecError::UnknownKey`] on malformed `[sweep]` entries.
    pub fn from_toml_str(text: &str) -> Result<Self, SpecError> {
        let doc = TomlDoc::parse(text)?;
        let base = ScenarioSpec::from_toml_doc(&doc)?;
        let mut sweep = Self::new(base, 2011);
        let Some(table) = doc.opt_section("sweep") else {
            return Ok(sweep);
        };
        const KNOWN: [&str; 18] = [
            "sides",
            "ks",
            "radii",
            "r_factors",
            "drop_probs",
            "gossip_intervals",
            "send_caps",
            "barrier_densities",
            "churn_rates",
            "radius_mixes",
            "crash_probs",
            "partition_lens",
            "replicates",
            "seed",
            "adaptive",
            "cell_budget",
            "replicate_budget",
            "tolerance",
        ];
        const KNOWN_EXEC: [&str; 1] = ["threads"];
        for key in table.keys() {
            if !KNOWN.contains(&key) && !KNOWN_EXEC.contains(&key) {
                return Err(SpecError::UnknownKey {
                    section: "sweep".to_string(),
                    key: key.to_string(),
                });
            }
        }
        let bad = |key, expected| {
            SpecError::Toml(TomlError::BadValue {
                section: "sweep".to_string(),
                key,
                expected,
            })
        };
        if let Some(sides) = table.opt_u32_array("sides")? {
            if sides.is_empty() {
                return Err(bad("sides".to_string(), "non-empty array"));
            }
            sweep = sweep.sides(sides);
        }
        if let Some(ks) = table.opt_usize_array("ks")? {
            if ks.is_empty() {
                return Err(bad("ks".to_string(), "non-empty array"));
            }
            sweep = sweep.ks(ks);
        }
        let radii = table.opt_u32_array("radii")?;
        let factors = table.opt_f64_array("r_factors")?;
        match (radii, factors) {
            (Some(_), Some(_)) => {
                return Err(bad(
                    "radii".to_string(),
                    "single radius axis (either `radii` or `r_factors`, not both)",
                ))
            }
            (Some(radii), None) => {
                if radii.is_empty() {
                    return Err(bad("radii".to_string(), "non-empty array"));
                }
                sweep = sweep.radii(radii);
            }
            (None, Some(factors)) => {
                if factors.is_empty() || factors.iter().any(|f| !f.is_finite() || *f < 0.0) {
                    return Err(bad(
                        "r_factors".to_string(),
                        "non-empty array of finite non-negative numbers",
                    ));
                }
                sweep = sweep.r_factors(factors);
            }
            (None, None) => {}
        }
        let drop_probs = table.opt_f64_array("drop_probs")?;
        let intervals = table.opt_u32_array("gossip_intervals")?;
        let caps = table.opt_u32_array("send_caps")?;
        let network_axes = usize::from(drop_probs.is_some())
            + usize::from(intervals.is_some())
            + usize::from(caps.is_some());
        if network_axes > 1 {
            return Err(bad(
                "drop_probs".to_string(),
                "single network axis (one of `drop_probs`, `gossip_intervals`, `send_caps`)",
            ));
        }
        if let Some(probs) = drop_probs {
            if probs.is_empty()
                || probs
                    .iter()
                    .any(|p| !p.is_finite() || !(0.0..=1.0).contains(p))
            {
                return Err(bad(
                    "drop_probs".to_string(),
                    "non-empty array of finite numbers in [0, 1]",
                ));
            }
            sweep = sweep.drop_probs(probs);
        }
        if let Some(intervals) = intervals {
            if intervals.is_empty() || intervals.contains(&0) {
                return Err(bad(
                    "gossip_intervals".to_string(),
                    "non-empty array of integers >= 1",
                ));
            }
            sweep = sweep.gossip_intervals(intervals.into_iter().map(u64::from).collect());
        }
        if let Some(caps) = caps {
            if caps.is_empty() {
                return Err(bad("send_caps".to_string(), "non-empty array"));
            }
            sweep = sweep.send_caps(caps);
        }
        let densities = table.opt_f64_array("barrier_densities")?;
        let rates = table.opt_f64_array("churn_rates")?;
        let mixes = table.opt_f64_array("radius_mixes")?;
        let world_axes = usize::from(densities.is_some())
            + usize::from(rates.is_some())
            + usize::from(mixes.is_some());
        if world_axes > 1 {
            return Err(bad(
                "barrier_densities".to_string(),
                "single world axis (one of `barrier_densities`, `churn_rates`, `radius_mixes`)",
            ));
        }
        let unit_array = |key: &str, values: &[f64]| {
            if values.is_empty()
                || values
                    .iter()
                    .any(|x| !x.is_finite() || !(0.0..=1.0).contains(x))
            {
                Err(bad(
                    key.to_string(),
                    "non-empty array of finite numbers in [0, 1]",
                ))
            } else {
                Ok(())
            }
        };
        if let Some(densities) = densities {
            unit_array("barrier_densities", &densities)?;
            sweep = sweep.barrier_densities(densities);
        }
        if let Some(rates) = rates {
            unit_array("churn_rates", &rates)?;
            sweep = sweep.churn_rates(rates);
        }
        if let Some(mixes) = mixes {
            unit_array("radius_mixes", &mixes)?;
            sweep = sweep.radius_mixes(mixes);
        }
        let crash_probs = table.opt_f64_array("crash_probs")?;
        let partition_lens = table.opt_u32_array("partition_lens")?;
        if crash_probs.is_some() && partition_lens.is_some() {
            return Err(bad(
                "crash_probs".to_string(),
                "single fault axis (either `crash_probs` or `partition_lens`, not both)",
            ));
        }
        if let Some(probs) = crash_probs {
            unit_array("crash_probs", &probs)?;
            sweep = sweep.crash_probs(probs);
        }
        if let Some(lens) = partition_lens {
            if lens.is_empty() {
                return Err(bad("partition_lens".to_string(), "non-empty array"));
            }
            sweep = sweep.partition_lens(lens.into_iter().map(u64::from).collect());
        }
        if let Some(reps) = table.opt_u32("replicates")? {
            if reps == 0 {
                return Err(bad("replicates".to_string(), "positive integer"));
            }
            sweep = sweep.replicates(reps);
        }
        if let Some(seed) = table.opt_u64("seed")? {
            sweep.master_seed = seed;
        }
        if let Some(threads) = table.opt_usize("threads")? {
            sweep = sweep.threads(threads);
        }
        let adaptive_on = matches!(table.opt_bool("adaptive")?, Some(true));
        let cell_budget = table.opt_usize("cell_budget")?;
        let replicate_budget = table.opt_u32("replicate_budget")?;
        let tolerance = table.opt_f64("tolerance")?;
        if !adaptive_on
            && (cell_budget.is_some() || replicate_budget.is_some() || tolerance.is_some())
        {
            return Err(bad(
                "adaptive".to_string(),
                "adaptive = true alongside cell_budget / replicate_budget / tolerance",
            ));
        }
        if adaptive_on {
            let mut cfg = AdaptiveConfig::default();
            if let Some(budget) = cell_budget {
                cfg.cell_budget = budget;
            }
            if let Some(budget) = replicate_budget {
                cfg.replicate_budget = budget;
            }
            if let Some(tol) = tolerance {
                if !tol.is_finite() || tol <= 0.0 {
                    return Err(bad("tolerance".to_string(), "finite positive number"));
                }
                cfg.tolerance = tol;
            }
            sweep = sweep.adaptive(cfg);
        }
        Ok(sweep)
    }

    /// Renders the sweep (scenario + axes) in the TOML subset;
    /// [`from_toml_str`](Self::from_toml_str) parses it back to an
    /// equal sweep.
    #[must_use]
    pub fn to_toml(&self) -> String {
        let mut out = self.base.to_toml();
        out.push_str("\n[sweep]\n");
        out.push_str(&format!(
            "sides = [{}]\n",
            join_with(self.sides.iter(), ", ")
        ));
        out.push_str(&format!("ks = [{}]\n", join_with(self.ks.iter(), ", ")));
        match &self.radii {
            RadiusAxis::Absolute(radii) => {
                out.push_str(&format!("radii = [{}]\n", join_with(radii.iter(), ", ")));
            }
            RadiusAxis::CriticalFractions(factors) => {
                let rendered: Vec<String> = factors.iter().map(|f| format_toml_f64(*f)).collect();
                out.push_str(&format!("r_factors = [{}]\n", rendered.join(", ")));
            }
        }
        match &self.network_axis {
            None => {}
            Some(NetworkAxis::DropProbs(probs)) => {
                let rendered: Vec<String> = probs.iter().map(|p| format_toml_f64(*p)).collect();
                out.push_str(&format!("drop_probs = [{}]\n", rendered.join(", ")));
            }
            Some(NetworkAxis::GossipIntervals(intervals)) => {
                out.push_str(&format!(
                    "gossip_intervals = [{}]\n",
                    join_with(intervals.iter(), ", ")
                ));
            }
            Some(NetworkAxis::SendCaps(caps)) => {
                out.push_str(&format!("send_caps = [{}]\n", join_with(caps.iter(), ", ")));
            }
        }
        match &self.world_axis {
            None => {}
            Some(axis) => {
                let key = match axis {
                    WorldAxis::BarrierDensities(_) => "barrier_densities",
                    WorldAxis::ChurnRates(_) => "churn_rates",
                    WorldAxis::RadiusMixes(_) => "radius_mixes",
                };
                let (WorldAxis::BarrierDensities(values)
                | WorldAxis::ChurnRates(values)
                | WorldAxis::RadiusMixes(values)) = axis;
                let rendered: Vec<String> = values.iter().map(|x| format_toml_f64(*x)).collect();
                out.push_str(&format!("{key} = [{}]\n", rendered.join(", ")));
            }
        }
        match &self.fault_axis {
            None => {}
            Some(FaultAxis::CrashProbs(probs)) => {
                let rendered: Vec<String> = probs.iter().map(|p| format_toml_f64(*p)).collect();
                out.push_str(&format!("crash_probs = [{}]\n", rendered.join(", ")));
            }
            Some(FaultAxis::PartitionLens(lens)) => {
                out.push_str(&format!(
                    "partition_lens = [{}]\n",
                    join_with(lens.iter(), ", ")
                ));
            }
        }
        out.push_str(&format!("replicates = {}\n", self.replicates));
        out.push_str(&format!("seed = {}\n", self.master_seed));
        out.push_str(&format!("threads = {}\n", self.threads));
        if let Some(cfg) = &self.adaptive {
            out.push_str("adaptive = true\n");
            out.push_str(&format!("cell_budget = {}\n", cfg.cell_budget));
            out.push_str(&format!("replicate_budget = {}\n", cfg.replicate_budget));
            out.push_str(&format!("tolerance = {}\n", format_toml_f64(cfg.tolerance)));
        }
        out
    }
}

fn join_with<T: ToString>(items: impl Iterator<Item = T>, sep: &str) -> String {
    items.map(|x| x.to_string()).collect::<Vec<_>>().join(sep)
}

/// Renders an `f64` so the subset parser reads it back as a float
/// (integral values keep a `.0`).
fn format_toml_f64(x: f64) -> String {
    if x == x.trunc() {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// The identity of a radius curve: every axis coordinate except the
/// radius itself.
type CurveKey = (
    u32,
    usize,
    Option<(&'static str, f64)>,
    Option<(&'static str, f64)>,
    Option<(&'static str, f64)>,
);

/// One evaluated cell during a run: the cell, the curve it belongs
/// to, its spec's content hash (the store key, shared by every
/// replicate) and its accumulated samples in replicate order.
struct Eval {
    cell: ScenarioCell,
    curve: usize,
    spec_hash: u64,
    samples: Vec<f64>,
}

/// Mean of a sample (`0` for an empty one, which never occurs after
/// the coarse pass — every eval holds at least one replicate).
fn mean_of(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// The relative CI95 half-width the top-up phase ranks cells by:
/// half-width over `max(|mean|, 1)`, so slow sub-critical cells
/// (means in the hundreds) and fast super-critical ones (means near
/// 1) compete on equal footing.
fn relative_ci95(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let summary = Summary::from_slice(samples);
    summary.ci95_half_width() / summary.mean().abs().max(1.0)
}

/// `r_c = √(n/k)` at a cell's own axes.
fn critical_radius_of(cell: &ScenarioCell) -> f64 {
    let n = f64::from(cell.side) * f64::from(cell.side);
    theory::critical_radius(n, cell.k as f64)
}

/// Bisection midpoint on the integer radius axis: arithmetic when the
/// bracket touches radius 0 (the geometric mean `√(0·r)` degenerates
/// to 0 and would pin the bracket), geometric otherwise — the same
/// midpoint rule the knee detector reports.
fn bracket_midpoint(r_lo: u32, r_hi: u32) -> u32 {
    if r_lo == 0 {
        (r_lo + r_hi) / 2
    } else {
        (f64::from(r_lo) * f64::from(r_hi)).sqrt().round() as u32
    }
}

/// The coarse knee bracket of one curve, as eval indices: the
/// adjacent radius pair with the largest mean-metric drop, under the
/// knee detector's own symmetric one-step floor and
/// [`ScenarioSweepReport::MIN_DROP_RATIO`] gate. Curves with fewer
/// than three distinct radii or no qualifying drop yield no bracket
/// and are not refined.
fn knee_bracket(evals: &[Eval], curve: usize) -> Option<(usize, usize)> {
    let mut points: Vec<(u32, usize)> = evals
        .iter()
        .enumerate()
        .filter(|(_, e)| e.curve == curve)
        .map(|(i, e)| (e.cell.radius, i))
        .collect();
    points.sort_by_key(|&(r, _)| r);
    if points.len() < 3 {
        return None;
    }
    let mut best: Option<((usize, usize), f64)> = None;
    for pair in points.windows(2) {
        let (lo, hi) = (pair[0].1, pair[1].1);
        let ratio = mean_of(&evals[lo].samples).max(1.0) / mean_of(&evals[hi].samples).max(1.0);
        if best.is_none_or(|(_, b)| ratio > b) {
            best = Some(((lo, hi), ratio));
        }
    }
    best.and_then(|(pair, ratio)| (ratio >= ScenarioSweepReport::MIN_DROP_RATIO).then_some(pair))
}

/// One completed cell of a sweep: coordinates, theory prediction and
/// replicate summary.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Grid side.
    pub side: u32,
    /// Agent count.
    pub k: usize,
    /// Transmission radius.
    pub radius: u32,
    /// The network-axis point as a `(key, value)` label, if the sweep
    /// has a network axis.
    pub net: Option<(&'static str, f64)>,
    /// The world-axis point as a `(key, value)` label, if the sweep has
    /// a world axis.
    pub world: Option<(&'static str, f64)>,
    /// The fault-axis point as a `(key, value)` label, if the sweep has
    /// a fault axis.
    pub fault: Option<(&'static str, f64)>,
    /// The predicted percolation radius `r_c = √(n/k)` at these axes.
    pub critical_radius: f64,
    /// Summary over replicates.
    pub summary: Summary,
    /// Raw per-replicate measurements (replicate order).
    pub samples: Vec<f64>,
}

/// A located phase transition on one (side, k) radius curve: the knee
/// between the last sub-critical and first super-critical axis point,
/// cross-checked against the theory prediction.
#[derive(Clone, Copy, Debug)]
pub struct TransitionEstimate {
    /// Grid side of the curve.
    pub side: u32,
    /// Agent count of the curve.
    pub k: usize,
    /// The curve's network-axis point, if the sweep has one.
    pub net: Option<(&'static str, f64)>,
    /// The curve's world-axis point, if the sweep has one.
    pub world: Option<(&'static str, f64)>,
    /// The curve's fault-axis point, if the sweep has one.
    pub fault: Option<(&'static str, f64)>,
    /// Radius on the slow side of the knee.
    pub r_below: u32,
    /// Radius on the fast side of the knee.
    pub r_above: u32,
    /// The knee location (geometric midpoint of the bracketing radii).
    pub r_knee: f64,
    /// Mean-metric drop across the knee (slow mean / fast mean).
    pub drop_ratio: f64,
    /// `r_c = √(n/k)` from `sparsegossip_core::theory`.
    pub predicted_rc: f64,
}

impl TransitionEstimate {
    /// The predicted band for the measured knee: `[r_c/4, 4·r_c]`, the
    /// factor-4 window around the asymptotic `r_c = √(n/k)` that the
    /// `Θ̃`-notation's model-dependent constant is allowed to occupy
    /// (the same window the percolation threshold tests use).
    #[must_use]
    pub fn band(&self) -> (f64, f64) {
        (self.predicted_rc / 4.0, self.predicted_rc * 4.0)
    }

    /// Whether the knee lies inside [`band`](Self::band).
    #[must_use]
    pub fn within_band(&self) -> bool {
        let (lo, hi) = self.band();
        self.r_knee >= lo && self.r_knee <= hi
    }
}

/// What the adaptive mode spent on top of the coarse grid, carried on
/// the report (and into its JSON) when the mode was enabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptiveSummary {
    /// Cells in the coarse grid.
    pub coarse_cells: usize,
    /// Midpoint cells added by the bisection phase.
    pub refined_cells: usize,
    /// Extra replicates spent by the confidence-aware top-up.
    pub topup_replicates: u32,
}

impl AdaptiveSummary {
    /// Total cells evaluated (coarse grid + refinements).
    #[must_use]
    pub fn total_cells(&self) -> usize {
        self.coarse_cells + self.refined_cells
    }
}

/// Aggregated result of a [`ScenarioSweep::run`]: per-cell summaries in
/// cell order, renderable as a [`Table`] or machine-readable JSON.
#[derive(Clone, Debug)]
#[must_use]
pub struct ScenarioSweepReport {
    /// The swept process kind.
    pub process: ProcessKind,
    /// The reported metric.
    pub metric: Metric,
    /// The master seed the cell seeds derive from.
    pub master_seed: u64,
    /// Replicates per cell.
    pub replicates: u32,
    /// What the adaptive mode spent, when it was enabled (plain grid
    /// runs carry `None` and render exactly as before).
    pub adaptive: Option<AdaptiveSummary>,
    /// Per-cell results, side-major then k then radius (adaptive runs
    /// interleave refined radii into their curves in radius order).
    pub cells: Vec<SweepCell>,
}

impl ScenarioSweepReport {
    /// The smallest mean-metric drop an adjacent radius pair must show
    /// for [`transitions`](Self::transitions) to call it a knee: well
    /// below the order-of-magnitude collapse the paper predicts across
    /// `r_c`, comfortably above replicate noise on a flat curve.
    pub const MIN_DROP_RATIO: f64 = 2.0;

    /// Locates the knee of every (side, k, network-point) radius curve
    /// with at least three distinct radii: the adjacent radius pair
    /// with the largest drop in mean metric (at least
    /// [`MIN_DROP_RATIO`](Self::MIN_DROP_RATIO) — a flat curve reports
    /// no transition), its knee at their geometric midpoint.
    ///
    /// Meaningful for [`Metric::Time`], where crossing `r_c` collapses
    /// the completion time; with [`Metric::Fraction`] the drop ratios
    /// are typically below 1, so no transition is reported.
    #[must_use]
    pub fn transitions(&self) -> Vec<TransitionEstimate> {
        type Label = Option<(&'static str, f64)>;
        type CurveKey = (u32, usize, Label, Label, Label);
        let mut out = Vec::new();
        let mut groups: Vec<CurveKey> = Vec::new();
        for cell in &self.cells {
            if !groups.contains(&(cell.side, cell.k, cell.net, cell.world, cell.fault)) {
                groups.push((cell.side, cell.k, cell.net, cell.world, cell.fault));
            }
        }
        for (side, k, net, world, fault) in groups {
            let mut curve: Vec<(u32, f64, f64)> = self
                .cells
                .iter()
                .filter(|c| {
                    c.side == side
                        && c.k == k
                        && c.net == net
                        && c.world == world
                        && c.fault == fault
                })
                .map(|c| (c.radius, c.summary.mean(), c.critical_radius))
                .collect();
            curve.sort_by_key(|&(r, _, _)| r);
            curve.dedup_by_key(|&mut (r, _, _)| r);
            if curve.len() < 3 {
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            for i in 0..curve.len() - 1 {
                let (_, mean_lo, _) = curve[i];
                let (_, mean_hi, _) = curve[i + 1];
                // Both means floored at one step: the fast side must
                // not divide by ~0, and a sub-step mean on the *slow*
                // side (every agent informed at step 0) must not
                // manufacture a drop out of a flat all-informed curve.
                let ratio = mean_lo.max(1.0) / mean_hi.max(1.0);
                if best.is_none_or(|(_, b)| ratio > b) {
                    best = Some((i, ratio));
                }
            }
            let Some((i, drop_ratio)) = best else {
                continue;
            };
            // A flat curve (all-subcritical or all-supercritical axis,
            // or seed noise) has no knee: only a drop that clears the
            // threshold is a transition.
            if drop_ratio < Self::MIN_DROP_RATIO {
                continue;
            }
            let (r_below, _, predicted_rc) = curve[i];
            let (r_above, _, _) = curve[i + 1];
            let r_knee = if r_below == 0 {
                f64::from(r_below + r_above) / 2.0
            } else {
                (f64::from(r_below) * f64::from(r_above)).sqrt()
            };
            out.push(TransitionEstimate {
                side,
                k,
                net,
                world,
                fault,
                r_below,
                r_above,
                r_knee,
                drop_ratio,
                predicted_rc,
            });
        }
        out
    }

    /// Renders the per-cell summaries as an aligned table (with a
    /// `net` column only when the sweep has a network axis, so
    /// existing renderings stay byte-identical).
    #[must_use]
    pub fn table(&self) -> Table {
        let has_net = self.cells.iter().any(|c| c.net.is_some());
        let has_world = self.cells.iter().any(|c| c.world.is_some());
        let has_fault = self.cells.iter().any(|c| c.fault.is_some());
        let mut header = vec!["side".to_string(), "k".into(), "r".into()];
        if has_net {
            header.push("net".into());
        }
        if has_world {
            header.push("world".into());
        }
        if has_fault {
            header.push("fault".into());
        }
        header.extend([
            "r/r_c".to_string(),
            format!("mean {}", self.metric),
            "ci95".into(),
            "median".into(),
        ]);
        let mut t = Table::new(header);
        for c in &self.cells {
            let mut row = vec![c.side.to_string(), c.k.to_string(), c.radius.to_string()];
            if has_net {
                row.push(match c.net {
                    Some((key, value)) => format!("{key}={value}"),
                    None => "-".to_string(),
                });
            }
            if has_world {
                row.push(match c.world {
                    Some((key, value)) => format!("{key}={value}"),
                    None => "-".to_string(),
                });
            }
            if has_fault {
                row.push(match c.fault {
                    Some((key, value)) => format!("{key}={value}"),
                    None => "-".to_string(),
                });
            }
            row.extend([
                format!("{:.2}", f64::from(c.radius) / c.critical_radius),
                format!("{:.1}", c.summary.mean()),
                format!("{:.1}", c.summary.ci95_half_width()),
                format!("{:.1}", c.summary.median()),
            ]);
            t.push_row(row);
        }
        t
    }

    /// Renders the report (cells + transitions) as a self-describing
    /// JSON document — the schema behind `BENCH_sweep.json` and the
    /// CLI's `sweep --json`, pinned by the CLI golden tests.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"experiment\": \"scenario_sweep\",\n");
        out.push_str(&format!("  \"process\": \"{}\",\n", self.process));
        out.push_str(&format!("  \"metric\": \"{}\",\n", self.metric));
        out.push_str(&format!("  \"seed\": {},\n", self.master_seed));
        out.push_str(&format!("  \"replicates\": {},\n", self.replicates));
        // The adaptive block appears only when the mode ran, so plain
        // grid reports stay byte-identical to the pinned goldens.
        if let Some(a) = &self.adaptive {
            out.push_str(&format!(
                "  \"adaptive\": {{\"coarse_cells\": {}, \"refined_cells\": {}, \
                 \"topup_replicates\": {}}},\n",
                a.coarse_cells, a.refined_cells, a.topup_replicates
            ));
        }
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let samples: Vec<String> = c.samples.iter().map(|s| format!("{s}")).collect();
            // Network-axis labels appear only when the sweep has the
            // axis, so pre-network JSON output stays byte-identical.
            let mut net = match c.net {
                Some((key, value)) => format!("\"net_key\": \"{key}\", \"net_value\": {value}, "),
                None => String::new(),
            };
            if let Some((key, value)) = c.world {
                net.push_str(&format!(
                    "\"world_key\": \"{key}\", \"world_value\": {value}, "
                ));
            }
            if let Some((key, value)) = c.fault {
                net.push_str(&format!(
                    "\"fault_key\": \"{key}\", \"fault_value\": {value}, "
                ));
            }
            out.push_str(&format!(
                "    {{\"side\": {}, \"k\": {}, \"r\": {}, {}\"r_c\": {}, \"mean\": {}, \
                 \"ci95\": {}, \"median\": {}, \"min\": {}, \"max\": {}, \"samples\": [{}]}}{}\n",
                c.side,
                c.k,
                c.radius,
                net,
                c.critical_radius,
                c.summary.mean(),
                c.summary.ci95_half_width(),
                c.summary.median(),
                c.summary.min(),
                c.summary.max(),
                samples.join(","),
                if i + 1 == self.cells.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"transitions\": [\n");
        let transitions = self.transitions();
        for (i, t) in transitions.iter().enumerate() {
            let (lo, hi) = t.band();
            let mut net = match t.net {
                Some((key, value)) => format!("\"net_key\": \"{key}\", \"net_value\": {value}, "),
                None => String::new(),
            };
            if let Some((key, value)) = t.world {
                net.push_str(&format!(
                    "\"world_key\": \"{key}\", \"world_value\": {value}, "
                ));
            }
            if let Some((key, value)) = t.fault {
                net.push_str(&format!(
                    "\"fault_key\": \"{key}\", \"fault_value\": {value}, "
                ));
            }
            out.push_str(&format!(
                "    {{\"side\": {}, \"k\": {}, {}\"r_below\": {}, \"r_above\": {}, \
                 \"r_knee\": {}, \"drop_ratio\": {}, \"predicted_rc\": {}, \
                 \"band\": [{}, {}], \"within_band\": {}}}{}\n",
                t.side,
                t.k,
                net,
                t.r_below,
                t.r_above,
                t.r_knee,
                t.drop_ratio,
                t.predicted_rc,
                lo,
                hi,
                t.within_band(),
                if i + 1 == transitions.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_base() -> ScenarioSpec {
        ScenarioSpec::builder(ProcessKind::Broadcast, 12, 6)
            .build()
            .unwrap()
    }

    #[test]
    fn cells_expand_side_major_then_k_then_r() {
        let sweep = ScenarioSweep::new(tiny_base(), 1)
            .sides(vec![8, 12])
            .ks(vec![4, 6])
            .radii(vec![0, 2]);
        let cells = sweep.cells().unwrap();
        assert_eq!(cells.len(), 8);
        let coords: Vec<(u32, usize, u32)> =
            cells.iter().map(|c| (c.side, c.k, c.radius)).collect();
        assert_eq!(
            coords,
            vec![
                (8, 4, 0),
                (8, 4, 2),
                (8, 6, 0),
                (8, 6, 2),
                (12, 4, 0),
                (12, 4, 2),
                (12, 6, 0),
                (12, 6, 2)
            ]
        );
        // Default caps re-derive per cell.
        assert_eq!(
            cells[0].spec.config().max_steps(),
            sparsegossip_core::SimConfig::default_step_cap(8, 4)
        );
    }

    #[test]
    fn critical_fraction_axis_tracks_rc() {
        let axis = RadiusAxis::CriticalFractions(vec![0.5, 1.0, 2.0]);
        // side 16, k 16: r_c = 4.
        assert_eq!(axis.resolve(16, 16), vec![2, 4, 8]);
        // side 32, k 16: r_c = 8.
        assert_eq!(axis.resolve(32, 16), vec![4, 8, 16]);
        assert_eq!(axis.len(), 3);
        assert!(!axis.is_empty());
    }

    #[test]
    fn invalid_cell_is_reported_not_panicked() {
        let base = ScenarioSpec::builder(ProcessKind::Broadcast, 12, 8)
            .source(5)
            .build()
            .unwrap();
        let err = ScenarioSweep::new(base, 1).ks(vec![4]).run().unwrap_err();
        assert_eq!(err, SimError::SourceOutOfRange { source: 5, k: 4 });
    }

    #[test]
    fn run_aggregates_every_cell() {
        let report = ScenarioSweep::new(tiny_base(), 3)
            .sides(vec![10, 12])
            .radii(vec![0, 1, 2])
            .replicates(3)
            .run()
            .unwrap();
        assert_eq!(report.cells.len(), 6);
        for cell in &report.cells {
            assert_eq!(cell.samples.len(), 3);
            assert_eq!(cell.summary.n(), 3);
            assert!(cell.critical_radius > 0.0);
        }
        assert_eq!(report.replicates, 3);
        assert_eq!(report.process, ProcessKind::Broadcast);
    }

    #[test]
    fn transitions_locate_a_synthetic_knee() {
        // Hand-build a report with a sharp drop between r=4 and r=8 on
        // a side-32, k-16 curve (r_c = 8).
        let cell = |radius: u32, mean: f64| SweepCell {
            side: 32,
            k: 16,
            radius,
            net: None,
            world: None,
            fault: None,
            critical_radius: 8.0,
            summary: Summary::from_slice(&[mean]),
            samples: vec![mean],
        };
        let report = ScenarioSweepReport {
            process: ProcessKind::Broadcast,
            metric: Metric::Time,
            master_seed: 0,
            replicates: 1,
            adaptive: None,
            cells: vec![cell(2, 900.0), cell(4, 880.0), cell(8, 40.0), cell(16, 5.0)],
        };
        let ts = report.transitions();
        assert_eq!(ts.len(), 1);
        let t = &ts[0];
        assert_eq!((t.r_below, t.r_above), (4, 8));
        assert!((t.r_knee - 32f64.sqrt()).abs() < 1e-9);
        assert!(t.drop_ratio > 20.0);
        assert!(t.within_band(), "knee {} outside {:?}", t.r_knee, t.band());
    }

    #[test]
    fn transitions_need_three_distinct_radii() {
        let cell = |radius: u32, mean: f64| SweepCell {
            side: 16,
            k: 8,
            radius,
            net: None,
            world: None,
            fault: None,
            critical_radius: 5.65,
            summary: Summary::from_slice(&[mean]),
            samples: vec![mean],
        };
        let report = ScenarioSweepReport {
            process: ProcessKind::Broadcast,
            metric: Metric::Time,
            master_seed: 0,
            replicates: 1,
            adaptive: None,
            // Two distinct radii only (the duplicate dedups away).
            cells: vec![cell(2, 100.0), cell(2, 90.0), cell(8, 10.0)],
        };
        assert!(report.transitions().is_empty());
    }

    #[test]
    fn flat_curves_report_no_transition() {
        // An all-supercritical axis: tiny near-constant means whose
        // largest adjacent ratio is seed noise, far below the drop
        // threshold — no knee must be reported.
        let cell = |radius: u32, mean: f64| SweepCell {
            side: 32,
            k: 16,
            radius,
            net: None,
            world: None,
            fault: None,
            critical_radius: 8.0,
            summary: Summary::from_slice(&[mean]),
            samples: vec![mean],
        };
        let report = ScenarioSweepReport {
            process: ProcessKind::Broadcast,
            metric: Metric::Time,
            master_seed: 0,
            replicates: 1,
            adaptive: None,
            cells: vec![cell(12, 3.0), cell(16, 2.0), cell(24, 2.0), cell(32, 1.5)],
        };
        assert!(
            report.transitions().is_empty(),
            "noise ratio {:.2} must not register as a knee",
            3.0 / 2.0
        );
    }

    #[test]
    fn duplicate_rounded_radii_collapse_to_one_cell() {
        // side 64, k 128: r_c ≈ 5.66, so factors 0.12 and 0.25 both
        // round to r = 1 — the axis must yield each radius once.
        let axis = RadiusAxis::CriticalFractions(vec![0.12, 0.25, 0.5, 1.0]);
        assert_eq!(axis.resolve(64, 128), vec![1, 3, 6]);
        let base = ScenarioSpec::builder(ProcessKind::Broadcast, 64, 128)
            .build()
            .unwrap();
        let cells = ScenarioSweep::new(base, 1)
            .r_factors(vec![0.12, 0.25, 0.5, 1.0])
            .cells()
            .unwrap();
        let radii: Vec<u32> = cells.iter().map(|c| c.radius).collect();
        assert_eq!(radii, vec![1, 3, 6], "no duplicate cells after rounding");
    }

    #[test]
    fn zero_radius_knee_uses_arithmetic_midpoint() {
        let cell = |radius: u32, mean: f64| SweepCell {
            side: 16,
            k: 8,
            radius,
            net: None,
            world: None,
            fault: None,
            critical_radius: 5.65,
            summary: Summary::from_slice(&[mean]),
            samples: vec![mean],
        };
        let report = ScenarioSweepReport {
            process: ProcessKind::Broadcast,
            metric: Metric::Time,
            master_seed: 0,
            replicates: 1,
            adaptive: None,
            cells: vec![cell(0, 500.0), cell(4, 20.0), cell(8, 10.0)],
        };
        let ts = report.transitions();
        assert_eq!(ts.len(), 1);
        assert_eq!((ts[0].r_below, ts[0].r_above), (0, 4));
        assert_eq!(ts[0].r_knee, 2.0);
    }

    #[test]
    fn toml_round_trip_is_identity() {
        let sweep = ScenarioSweep::new(tiny_base(), 99)
            .sides(vec![12, 16])
            .ks(vec![4, 6])
            .r_factors(vec![0.25, 1.0, 2.0])
            .replicates(5)
            .threads(3);
        let text = sweep.to_toml();
        let parsed = ScenarioSweep::from_toml_str(&text).unwrap();
        assert_eq!(sweep, parsed, "round trip changed the sweep:\n{text}");

        let absolute = ScenarioSweep::new(tiny_base(), 7).radii(vec![0, 3, 6]);
        let parsed = ScenarioSweep::from_toml_str(&absolute.to_toml()).unwrap();
        assert_eq!(absolute, parsed);
    }

    #[test]
    fn toml_sweep_section_is_optional_and_validated() {
        let spec_only = "[scenario]\nprocess = \"broadcast\"\nside = 12\nk = 6\n";
        let sweep = ScenarioSweep::from_toml_str(spec_only).unwrap();
        assert_eq!(sweep.cells().unwrap().len(), 1);

        let with = |extra: &str| format!("{spec_only}\n[sweep]\n{extra}");
        assert!(matches!(
            ScenarioSweep::from_toml_str(&with("typo = 1\n")),
            Err(SpecError::UnknownKey { .. })
        ));
        assert!(ScenarioSweep::from_toml_str(&with("sides = []\n")).is_err());
        assert!(ScenarioSweep::from_toml_str(&with("ks = []\n")).is_err());
        assert!(ScenarioSweep::from_toml_str(&with("radii = []\n")).is_err());
        assert!(ScenarioSweep::from_toml_str(&with("r_factors = [-1.0]\n")).is_err());
        assert!(ScenarioSweep::from_toml_str(&with("replicates = 0\n")).is_err());
        assert!(
            ScenarioSweep::from_toml_str(&with("radii = [1]\nr_factors = [1.0]\n")).is_err(),
            "both radius axes at once must be rejected"
        );
    }

    fn twin_base() -> ScenarioSpec {
        ScenarioSpec::builder(ProcessKind::ProtocolBroadcast, 12, 6)
            .radius(1)
            .build()
            .unwrap()
    }

    #[test]
    fn network_axis_expands_cells_network_major() {
        let sweep = ScenarioSweep::new(twin_base(), 1)
            .radii(vec![0, 2])
            .drop_probs(vec![0.0, 0.5]);
        let cells = sweep.cells().unwrap();
        assert_eq!(cells.len(), 4);
        let coords: Vec<(Option<(&str, f64)>, u32)> =
            cells.iter().map(|c| (c.net, c.radius)).collect();
        assert_eq!(
            coords,
            vec![
                (Some(("drop_prob", 0.0)), 0),
                (Some(("drop_prob", 0.0)), 2),
                (Some(("drop_prob", 0.5)), 0),
                (Some(("drop_prob", 0.5)), 2),
            ]
        );
        assert_eq!(cells[2].spec.network().drop_prob(), 0.5);
        // The un-swept knobs stay at the base spec's values.
        assert_eq!(cells[2].spec.network().gossip_interval(), 1);
    }

    #[test]
    fn network_axis_on_non_twin_kind_fails_cell_validation() {
        let err = ScenarioSweep::new(tiny_base(), 1)
            .drop_probs(vec![0.5])
            .cells()
            .unwrap_err();
        assert!(matches!(err, SimError::UnsupportedSetting { .. }));
    }

    #[test]
    fn network_axis_round_trips_through_toml() {
        for sweep in [
            ScenarioSweep::new(twin_base(), 4).drop_probs(vec![0.0, 0.25, 0.5]),
            ScenarioSweep::new(twin_base(), 4).gossip_intervals(vec![1, 2, 4]),
            ScenarioSweep::new(twin_base(), 4).send_caps(vec![0, 1, 2]),
        ] {
            let text = sweep.to_toml();
            let parsed = ScenarioSweep::from_toml_str(&text).unwrap();
            assert_eq!(sweep, parsed, "round trip changed the sweep:\n{text}");
        }
    }

    #[test]
    fn toml_rejects_bad_network_axes() {
        let twin_only = "[scenario]\nprocess = \"protocol-broadcast\"\nside = 12\nk = 6\n";
        let with = |extra: &str| format!("{twin_only}\n[sweep]\n{extra}");
        assert!(ScenarioSweep::from_toml_str(&with("drop_probs = []\n")).is_err());
        assert!(ScenarioSweep::from_toml_str(&with("drop_probs = [1.5]\n")).is_err());
        assert!(ScenarioSweep::from_toml_str(&with("gossip_intervals = [0]\n")).is_err());
        assert!(ScenarioSweep::from_toml_str(&with("send_caps = []\n")).is_err());
        assert!(
            ScenarioSweep::from_toml_str(&with("drop_probs = [0.5]\nsend_caps = [1]\n")).is_err(),
            "two network axes at once must be rejected"
        );
        assert!(ScenarioSweep::from_toml_str(&with("drop_probs = [0.0, 0.5]\n")).is_ok());
    }

    #[test]
    fn network_axis_report_labels_cells_and_transitions() {
        let report = ScenarioSweep::new(twin_base(), 9)
            .radii(vec![0, 1, 2])
            .drop_probs(vec![0.0, 0.5])
            .replicates(2)
            .run()
            .unwrap();
        assert_eq!(report.cells.len(), 6);
        assert!(report.cells.iter().all(|c| c.net.is_some()));
        // Transitions group per network point, never across them.
        for t in report.transitions() {
            assert!(t.net.is_some());
        }
        let table = format!("{}", report.table());
        assert!(table.contains("net"), "table must carry the net column");
        assert!(table.contains("drop_prob=0.5"), "{table}");
        let json = report.to_json();
        assert!(json.contains("\"net_key\": \"drop_prob\""), "{json}");
        assert!(json.contains("\"net_value\": 0.5"), "{json}");
    }

    #[test]
    fn world_axis_expands_cells_world_major_inside_network() {
        let sweep = ScenarioSweep::new(tiny_base(), 1)
            .radii(vec![0, 2])
            .churn_rates(vec![0.0, 0.05]);
        let cells = sweep.cells().unwrap();
        assert_eq!(cells.len(), 4);
        let coords: Vec<(Option<(&str, f64)>, u32)> =
            cells.iter().map(|c| (c.world, c.radius)).collect();
        assert_eq!(
            coords,
            vec![
                (Some(("churn_rate", 0.0)), 0),
                (Some(("churn_rate", 0.0)), 2),
                (Some(("churn_rate", 0.05)), 0),
                (Some(("churn_rate", 0.05)), 2),
            ]
        );
        assert_eq!(cells[2].spec.world().churn_rate, 0.05);
        // The un-swept world knobs stay at the base spec's values.
        assert_eq!(cells[2].spec.world().barrier_density, 0.0);
    }

    #[test]
    fn world_axis_on_non_broadcast_kind_fails_cell_validation() {
        let base = ScenarioSpec::builder(ProcessKind::Gossip, 12, 6)
            .build()
            .unwrap();
        let err = ScenarioSweep::new(base, 1)
            .barrier_densities(vec![0.5])
            .cells()
            .unwrap_err();
        assert!(matches!(err, SimError::UnsupportedSetting { .. }));
    }

    #[test]
    fn radius_mix_axis_substitutes_the_base_factor() {
        let base = ScenarioSpec::builder(ProcessKind::Broadcast, 12, 6)
            .radius(1)
            .hetero_factor(2.0)
            .build()
            .unwrap();
        let cells = ScenarioSweep::new(base, 1)
            .radius_mixes(vec![0.0, 0.5])
            .cells()
            .unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[1].spec.world().hetero_fraction, 0.5);
        assert_eq!(cells[1].spec.world().hetero_factor, 2.0);
    }

    #[test]
    fn world_axis_round_trips_through_toml() {
        for sweep in [
            ScenarioSweep::new(tiny_base(), 4).barrier_densities(vec![0.0, 0.5, 1.0]),
            ScenarioSweep::new(tiny_base(), 4).churn_rates(vec![0.0, 0.01, 0.1]),
            ScenarioSweep::new(tiny_base(), 4).radius_mixes(vec![0.0, 0.25]),
        ] {
            let text = sweep.to_toml();
            let parsed = ScenarioSweep::from_toml_str(&text).unwrap();
            assert_eq!(sweep, parsed, "round trip changed the sweep:\n{text}");
        }
    }

    #[test]
    fn toml_rejects_bad_world_axes() {
        let spec_only = "[scenario]\nprocess = \"broadcast\"\nside = 12\nk = 6\n";
        let with = |extra: &str| format!("{spec_only}\n[sweep]\n{extra}");
        assert!(ScenarioSweep::from_toml_str(&with("barrier_densities = []\n")).is_err());
        assert!(ScenarioSweep::from_toml_str(&with("churn_rates = [1.5]\n")).is_err());
        assert!(ScenarioSweep::from_toml_str(&with("radius_mixes = [-0.1]\n")).is_err());
        assert!(
            ScenarioSweep::from_toml_str(&with("churn_rates = [0.1]\nradius_mixes = [0.5]\n"))
                .is_err(),
            "two world axes at once must be rejected"
        );
        assert!(ScenarioSweep::from_toml_str(&with("churn_rates = [0.0, 0.05]\n")).is_ok());
    }

    #[test]
    fn world_axis_report_labels_cells_and_transitions() {
        let report = ScenarioSweep::new(tiny_base(), 9)
            .radii(vec![0, 1, 2])
            .churn_rates(vec![0.0, 0.02])
            .replicates(2)
            .run()
            .unwrap();
        assert_eq!(report.cells.len(), 6);
        assert!(report.cells.iter().all(|c| c.world.is_some()));
        for t in report.transitions() {
            assert!(t.world.is_some());
        }
        let table = format!("{}", report.table());
        assert!(table.contains("world"), "table must carry the world column");
        assert!(table.contains("churn_rate=0.02"), "{table}");
        let json = report.to_json();
        assert!(json.contains("\"world_key\": \"churn_rate\""), "{json}");
        assert!(json.contains("\"world_value\": 0.02"), "{json}");
    }

    #[test]
    fn fault_axis_expands_cells_innermost() {
        let sweep = ScenarioSweep::new(twin_base(), 1)
            .radii(vec![0, 2])
            .crash_probs(vec![0.0, 0.2]);
        let cells = sweep.cells().unwrap();
        assert_eq!(cells.len(), 4);
        let coords: Vec<(Option<(&str, f64)>, u32)> =
            cells.iter().map(|c| (c.fault, c.radius)).collect();
        assert_eq!(
            coords,
            vec![
                (Some(("crash_prob", 0.0)), 0),
                (Some(("crash_prob", 0.0)), 2),
                (Some(("crash_prob", 0.2)), 0),
                (Some(("crash_prob", 0.2)), 2),
            ]
        );
        assert_eq!(cells[2].spec.faults().crash_prob, 0.2);
        // The un-swept fault knobs stay at the base spec's values.
        assert_eq!(cells[2].spec.faults().restart_delay, 1);
        assert!(!cells[2].spec.faults().retransmit);
    }

    #[test]
    fn partition_len_axis_substitutes_the_base_start() {
        let base = ScenarioSpec::builder(ProcessKind::ProtocolBroadcast, 12, 6)
            .radius(1)
            .partition(3, 0)
            .build()
            .unwrap();
        let cells = ScenarioSweep::new(base, 1)
            .partition_lens(vec![0, 8])
            .cells()
            .unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[1].fault, Some(("partition_len", 8.0)));
        assert_eq!(cells[1].spec.faults().partition_len, 8);
        assert_eq!(cells[1].spec.faults().partition_start, 3);
    }

    #[test]
    fn fault_axis_on_non_twin_kind_fails_cell_validation() {
        let err = ScenarioSweep::new(tiny_base(), 1)
            .crash_probs(vec![0.2])
            .cells()
            .unwrap_err();
        assert!(matches!(err, SimError::UnsupportedSetting { .. }));
    }

    #[test]
    fn fault_axis_round_trips_through_toml() {
        for sweep in [
            ScenarioSweep::new(twin_base(), 4).crash_probs(vec![0.0, 0.1, 0.3]),
            ScenarioSweep::new(twin_base(), 4).partition_lens(vec![0, 4, 16]),
        ] {
            let text = sweep.to_toml();
            let parsed = ScenarioSweep::from_toml_str(&text).unwrap();
            assert_eq!(sweep, parsed, "round trip changed the sweep:\n{text}");
        }
    }

    #[test]
    fn toml_rejects_bad_fault_axes() {
        let twin_only = "[scenario]\nprocess = \"protocol-broadcast\"\nside = 12\nk = 6\n";
        let with = |extra: &str| format!("{twin_only}\n[sweep]\n{extra}");
        assert!(ScenarioSweep::from_toml_str(&with("crash_probs = []\n")).is_err());
        assert!(ScenarioSweep::from_toml_str(&with("crash_probs = [1.5]\n")).is_err());
        assert!(ScenarioSweep::from_toml_str(&with("partition_lens = []\n")).is_err());
        assert!(
            ScenarioSweep::from_toml_str(&with("crash_probs = [0.1]\npartition_lens = [4]\n"))
                .is_err(),
            "two fault axes at once must be rejected"
        );
        assert!(ScenarioSweep::from_toml_str(&with("crash_probs = [0.0, 0.1]\n")).is_ok());
        assert!(ScenarioSweep::from_toml_str(&with("partition_lens = [0, 8]\n")).is_ok());
    }

    #[test]
    fn fault_axis_report_labels_cells_and_transitions() {
        let base = ScenarioSpec::builder(ProcessKind::ProtocolBroadcast, 12, 6)
            .radius(1)
            .retransmit(true)
            .anti_entropy_interval(1)
            .build()
            .unwrap();
        let report = ScenarioSweep::new(base, 9)
            .radii(vec![0, 1, 2])
            .crash_probs(vec![0.0, 0.1])
            .replicates(2)
            .run()
            .unwrap();
        assert_eq!(report.cells.len(), 6);
        assert!(report.cells.iter().all(|c| c.fault.is_some()));
        // Transitions group per fault point, never across them.
        for t in report.transitions() {
            assert!(t.fault.is_some());
        }
        let table = format!("{}", report.table());
        assert!(table.contains("fault"), "table must carry the fault column");
        assert!(table.contains("crash_prob=0.1"), "{table}");
        let json = report.to_json();
        assert!(json.contains("\"fault_key\": \"crash_prob\""), "{json}");
        assert!(json.contains("\"fault_value\": 0.1"), "{json}");
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = ScenarioSweep::new(tiny_base(), 5)
            .radii(vec![0, 2, 4])
            .replicates(2)
            .run()
            .unwrap();
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.contains("\"experiment\": \"scenario_sweep\""));
        assert!(json.contains("\"process\": \"broadcast\""));
        assert!(json.contains("\"cells\": ["));
        assert!(json.contains("\"transitions\": ["));
        assert_eq!(
            json.matches("\"side\":").count(),
            3 + report.transitions().len()
        );
        // No trailing commas before closing brackets.
        assert!(!json.contains(",\n  ]"));
        // Plain grid runs carry no adaptive block.
        assert!(report.adaptive.is_none());
        assert!(!json.contains("\"adaptive\""));
    }

    #[test]
    fn all_informed_flat_curve_with_trailing_drop_reports_none() {
        // An all-informed curve (every agent within r of the source at
        // step 0) measures ~1 everywhere; a final cell completing at
        // step 0 used to trip the old asymmetric 0.5 floor
        // (1.0 / max(0.0, 0.5) = 2.0 ≥ MIN_DROP_RATIO) and
        // manufacture a knee out of a flat curve.
        let cell = |radius: u32, mean: f64| SweepCell {
            side: 8,
            k: 16,
            radius,
            net: None,
            world: None,
            fault: None,
            critical_radius: 2.0,
            summary: Summary::from_slice(&[mean]),
            samples: vec![mean],
        };
        let report = ScenarioSweepReport {
            process: ProcessKind::Broadcast,
            metric: Metric::Time,
            master_seed: 0,
            replicates: 1,
            adaptive: None,
            cells: vec![cell(4, 1.0), cell(6, 1.0), cell(8, 1.0), cell(16, 0.0)],
        };
        assert!(
            report.transitions().is_empty(),
            "a sub-step tail on a flat curve must not register as a knee"
        );
    }

    #[test]
    fn knee_always_lies_within_its_bracketing_pair() {
        // Whatever the curve, the reported knee must sit between
        // r_below and r_above (geometric and arithmetic midpoints
        // both satisfy this; pin it against regressions).
        let cell = |radius: u32, mean: f64| SweepCell {
            side: 32,
            k: 16,
            radius,
            net: None,
            world: None,
            fault: None,
            critical_radius: 8.0,
            summary: Summary::from_slice(&[mean]),
            samples: vec![mean],
        };
        for cells in [
            vec![cell(0, 700.0), cell(5, 600.0), cell(9, 30.0), cell(20, 4.0)],
            vec![cell(0, 700.0), cell(1, 80.0), cell(3, 40.0)],
            vec![cell(2, 900.0), cell(4, 880.0), cell(8, 40.0)],
        ] {
            let report = ScenarioSweepReport {
                process: ProcessKind::Broadcast,
                metric: Metric::Time,
                master_seed: 0,
                replicates: 1,
                adaptive: None,
                cells,
            };
            for t in report.transitions() {
                assert!(
                    f64::from(t.r_below) <= t.r_knee && t.r_knee <= f64::from(t.r_above),
                    "knee {} outside bracket [{}, {}]",
                    t.r_knee,
                    t.r_below,
                    t.r_above
                );
            }
        }
    }

    #[test]
    fn bracket_midpoint_bisects_without_degenerating() {
        // Zero lower edge: arithmetic, so the midpoint moves.
        assert_eq!(bracket_midpoint(0, 8), 4);
        // Width 1: rounds to an endpoint, so the caller stops.
        assert_eq!(bracket_midpoint(0, 1), 0);
        // Positive edges: geometric, matching the knee report.
        assert_eq!(bracket_midpoint(4, 16), 8);
        assert_eq!(bracket_midpoint(2, 3), 2); // rounds to an endpoint
    }

    #[test]
    fn adaptive_run_refines_toward_the_knee() {
        let report = ScenarioSweep::new(tiny_base(), 7)
            .radii(vec![0, 2, 10])
            .replicates(2)
            .adaptive(AdaptiveConfig::default())
            .run()
            .unwrap();
        let summary = report.adaptive.expect("adaptive summary present");
        assert_eq!(summary.coarse_cells, 3);
        assert!(summary.refined_cells >= 1, "the knee bracket must bisect");
        assert_eq!(summary.total_cells(), report.cells.len());
        assert_eq!(summary.topup_replicates, 0, "no replicate budget given");
        // Refined cells interleave in radius order and stay inside
        // the coarse axis range.
        let radii: Vec<u32> = report.cells.iter().map(|c| c.radius).collect();
        let mut sorted = radii.clone();
        sorted.sort_unstable();
        assert_eq!(radii, sorted, "cells must come out in radius order");
        assert!(radii.iter().all(|&r| r <= 10));
        // Every cell still carries its full replicate set.
        assert!(report.cells.iter().all(|c| c.samples.len() == 2));
        let json = report.to_json();
        assert!(
            json.contains("\"adaptive\": {\"coarse_cells\": 3"),
            "{json}"
        );
    }

    #[test]
    fn adaptive_cell_budget_caps_refinement() {
        let base = AdaptiveConfig {
            cell_budget: 4,
            ..AdaptiveConfig::default()
        };
        let report = ScenarioSweep::new(tiny_base(), 7)
            .radii(vec![0, 2, 10])
            .replicates(2)
            .adaptive(base)
            .run()
            .unwrap();
        assert!(
            report.cells.len() <= 4,
            "cell budget must cap the sweep at 4 cells, got {}",
            report.cells.len()
        );
    }

    #[test]
    fn adaptive_topup_spends_the_replicate_budget() {
        let cfg = AdaptiveConfig {
            replicate_budget: 3,
            ..AdaptiveConfig::default()
        };
        let report = ScenarioSweep::new(tiny_base(), 7)
            .radii(vec![0, 2, 10])
            .replicates(2)
            .adaptive(cfg)
            .run()
            .unwrap();
        let summary = report.adaptive.expect("adaptive summary present");
        assert!(summary.topup_replicates <= 3);
        let extra: usize = report
            .cells
            .iter()
            .map(|c| c.samples.len().saturating_sub(2))
            .sum();
        assert_eq!(extra, summary.topup_replicates as usize);
    }

    #[test]
    fn adaptive_reports_match_across_thread_counts() {
        let run = |threads: usize| {
            ScenarioSweep::new(tiny_base(), 7)
                .radii(vec![0, 2, 10])
                .replicates(2)
                .threads(threads)
                .adaptive(AdaptiveConfig {
                    replicate_budget: 2,
                    ..AdaptiveConfig::default()
                })
                .run()
                .unwrap()
                .to_json()
        };
        let single = run(1);
        assert_eq!(single, run(3), "thread count must not leak into results");
    }

    #[test]
    fn store_backed_run_replays_as_cache_hits() {
        let mut path = std::env::temp_dir();
        path.push(format!("sparsegossip_sweep_store_{}", std::process::id()));
        let sweep = ScenarioSweep::new(tiny_base(), 7)
            .radii(vec![0, 2, 10])
            .replicates(2)
            .adaptive(AdaptiveConfig::default());
        let mut store = ResultStore::create(&path).unwrap();
        let first = sweep.run_with_store(Some(&mut store)).unwrap().to_json();
        drop(store);

        // Second run against the finished store: everything replays.
        let before = std::fs::read(&path).unwrap();
        let mut store = ResultStore::open_resume(&path).unwrap();
        let second = sweep.run_with_store(Some(&mut store)).unwrap().to_json();
        drop(store);
        let after = std::fs::read(&path).unwrap();

        assert_eq!(first, second, "replayed run must reproduce the report");
        assert_eq!(before, after, "replayed run must not grow the store");
        // And both match the storeless run.
        assert_eq!(first, sweep.run().unwrap().to_json());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn adaptive_toml_round_trip_and_validation() {
        let sweep = ScenarioSweep::new(tiny_base(), 99)
            .radii(vec![0, 2, 10])
            .replicates(3)
            .adaptive(AdaptiveConfig {
                cell_budget: 20,
                replicate_budget: 8,
                tolerance: 0.05,
            });
        let text = sweep.to_toml();
        let parsed = ScenarioSweep::from_toml_str(&text).unwrap();
        assert_eq!(sweep, parsed, "round trip changed the sweep:\n{text}");

        let spec_only = "[scenario]\nprocess = \"broadcast\"\nside = 12\nk = 6\n";
        let with = |extra: &str| format!("{spec_only}\n[sweep]\n{extra}");
        assert!(
            ScenarioSweep::from_toml_str(&with("cell_budget = 5\n")).is_err(),
            "budget keys without adaptive = true must be rejected"
        );
        assert!(
            ScenarioSweep::from_toml_str(&with("adaptive = true\ntolerance = 0.0\n")).is_err(),
            "non-positive tolerance must be rejected"
        );
        assert!(ScenarioSweep::from_toml_str(&with("adaptive = false\n")).is_ok());
        let parsed = ScenarioSweep::from_toml_str(&with("adaptive = true\n")).unwrap();
        assert_eq!(parsed.adaptive_config(), Some(AdaptiveConfig::default()));
    }
}
