/// Result of a least-squares line fit `y ≈ intercept + slope · x`.
///
/// For [`power_law_fit`] the fit is in log–log space, so `slope` is the
/// scaling *exponent* and `exp(intercept)` the prefactor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fit {
    /// Fitted slope (the exponent, for power-law fits).
    pub slope: f64,
    /// Fitted intercept (log-prefactor, for power-law fits).
    pub intercept: f64,
    /// Standard error of the slope.
    pub slope_std_err: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Alias of `slope` kept for readability at power-law call sites.
    pub exponent: f64,
}

/// Ordinary least squares on `(x, y)` pairs.
///
/// Returns `None` if fewer than two distinct finite `x` values exist.
///
/// # Examples
///
/// ```
/// use sparsegossip_analysis::linear_fit;
///
/// let fit = linear_fit(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<Fit> {
    let pairs: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .map(|(x, y)| (*x, *y))
        .collect();
    let n = pairs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean_x = pairs.iter().map(|(x, _)| x).sum::<f64>() / nf;
    let mean_y = pairs.iter().map(|(_, y)| y).sum::<f64>() / nf;
    let sxx: f64 = pairs.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = pairs.iter().map(|(x, y)| (x - mean_x) * (y - mean_y)).sum();
    let syy: f64 = pairs.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_res: f64 = pairs
        .iter()
        .map(|(x, y)| (y - intercept - slope * x).powi(2))
        .sum();
    let r_squared = if syy == 0.0 { 1.0 } else { 1.0 - ss_res / syy };
    let slope_std_err = if n > 2 {
        (ss_res / ((nf - 2.0) * sxx)).sqrt()
    } else {
        0.0
    };
    Some(Fit {
        slope,
        intercept,
        slope_std_err,
        r_squared,
        exponent: slope,
    })
}

/// Fits `y ≈ C · x^e` by least squares on `(ln x, ln y)`; `e` is
/// returned in [`Fit::exponent`].
///
/// Non-positive or non-finite pairs are dropped. Returns `None` with
/// fewer than two usable pairs.
///
/// # Examples
///
/// ```
/// use sparsegossip_analysis::power_law_fit;
///
/// let xs = [1.0, 2.0, 4.0, 8.0];
/// let ys = [5.0, 10.0, 20.0, 40.0]; // y = 5x
/// let fit = power_law_fit(&xs, &ys).unwrap();
/// assert!((fit.exponent - 1.0).abs() < 1e-12);
/// assert!((fit.intercept.exp() - 5.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn power_law_fit(xs: &[f64], ys: &[f64]) -> Option<Fit> {
    let (lx, ly): (Vec<f64>, Vec<f64>) = xs
        .iter()
        .zip(ys)
        .filter(|(x, y)| **x > 0.0 && **y > 0.0 && x.is_finite() && y.is_finite())
        .map(|(x, y)| (x.ln(), y.ln()))
        .unzip();
    linear_fit(&lx, &ly)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_has_unit_r_squared() {
        let fit = linear_fit(&[1.0, 2.0, 3.0, 4.0], &[2.0, 4.0, 6.0, 8.0]).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!(fit.slope_std_err < 1e-10);
    }

    #[test]
    fn noisy_line_recovers_slope_with_uncertainty() {
        let xs: Vec<f64> = (0..50).map(f64::from).collect();
        // Deterministic "noise" via a fixed pattern.
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 3.0 * x + 1.0 + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 3.0).abs() < 0.01);
        assert!(fit.slope_std_err > 0.0);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn power_law_recovers_negative_exponent() {
        let xs = [2.0f64, 4.0, 8.0, 16.0, 32.0];
        let ys: Vec<f64> = xs.iter().map(|x| 100.0 * x.powf(-0.5)).collect();
        let fit = power_law_fit(&xs, &ys).unwrap();
        assert!((fit.exponent + 0.5).abs() < 1e-10);
        assert!((fit.intercept.exp() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs_give_none() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(
            linear_fit(&[2.0, 2.0], &[1.0, 5.0]).is_none(),
            "vertical line"
        );
        assert!(power_law_fit(&[-1.0, 0.0], &[1.0, 2.0]).is_none());
        assert!(linear_fit(&[f64::NAN, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn power_law_ignores_nonpositive_points() {
        let xs = [1.0, 2.0, 4.0, -3.0, 0.0];
        let ys = [2.0, 4.0, 8.0, 100.0, 100.0];
        let fit = power_law_fit(&xs, &ys).unwrap();
        assert!((fit.exponent - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_y_has_zero_slope_and_unit_r2() {
        let fit = linear_fit(&[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }
}
