//! Property tests for the multi-seed [`Runner`]: its aggregation must
//! be a pure function of the seed list — independent of the number of
//! worker threads and of scheduling.

use proptest::prelude::*;
use sparsegossip_analysis::Runner;

/// A cheap, seed-sensitive stand-in for a simulation measurement.
fn measure(seed: u64) -> f64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (z % 10_000) as f64
}

proptest! {
    #[test]
    fn aggregation_is_independent_of_parallelism_degree(
        master in 0u64..1_000_000,
        reps in 1u32..64,
        threads in 2usize..16,
    ) {
        let serial = Runner::new(master).repetitions(reps).threads(1).measure(measure);
        let threaded = Runner::new(master).repetitions(reps).threads(threads).measure(measure);
        prop_assert_eq!(&serial.samples, &threaded.samples);
        prop_assert_eq!(serial.summary, threaded.summary);
        prop_assert_eq!(serial.seeds, threaded.seeds);
    }

    #[test]
    fn seed_range_outcomes_are_in_seed_order(
        start in 0u64..1_000,
        len in 1u64..64,
        threads in 1usize..8,
    ) {
        let outcomes = Runner::new(0)
            .seed_range(start..start + len)
            .threads(threads)
            .run(|seed| seed);
        let expected: Vec<u64> = (start..start + len).collect();
        prop_assert_eq!(outcomes, expected);
    }
}
