//! Regression suite for the scenario sweep engine's determinism
//! contract: results are a pure function of the sweep (thread-count
//! independent, rerun-stable, resume-stable), and a TOML-loaded sweep
//! is indistinguishable from its builder-built twin — including the
//! committed `examples/phase_transition.toml`.

use sparsegossip_analysis::{
    AdaptiveConfig, ResultStore, ScenarioSweep, ScenarioSweepReport, SweepCell,
};
use sparsegossip_core::{cell_seed, theory, Metric, ProcessKind, ScenarioSpec, SimScratch};
use sparsegossip_walks::derive_seed;

fn small_sweep() -> ScenarioSweep {
    // An explicit cap keeps the worst replicate bounded in debug test
    // runs; capped cells are as deterministic as completed ones.
    let base = ScenarioSpec::builder(ProcessKind::Broadcast, 10, 4)
        .max_steps(2_000)
        .build()
        .unwrap();
    ScenarioSweep::new(base, 2011)
        .sides(vec![8, 10])
        .ks(vec![4, 6])
        .radii(vec![0, 1, 3])
        .replicates(3)
}

fn assert_reports_identical(a: &ScenarioSweepReport, b: &ScenarioSweepReport, what: &str) {
    assert_eq!(a.cells.len(), b.cells.len(), "{what}: cell count differs");
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(
            (ca.side, ca.k, ca.radius),
            (cb.side, cb.k, cb.radius),
            "{what}: cell order differs"
        );
        assert_eq!(
            ca.samples, cb.samples,
            "{what}: samples differ at side={} k={} r={}",
            ca.side, ca.k, ca.radius
        );
    }
}

#[test]
fn results_are_identical_for_1_2_and_8_threads() {
    let serial = small_sweep().threads(1).run().unwrap();
    for threads in [2, 8] {
        let parallel = small_sweep().threads(threads).run().unwrap();
        assert_reports_identical(&serial, &parallel, &format!("{threads} threads"));
    }
}

#[test]
fn adaptive_results_are_identical_for_1_2_and_8_threads() {
    let adaptive = || {
        small_sweep().adaptive(AdaptiveConfig {
            replicate_budget: 4,
            ..AdaptiveConfig::default()
        })
    };
    let serial = adaptive().threads(1).run().unwrap();
    assert!(
        serial.adaptive.is_some(),
        "adaptive summary must be carried"
    );
    for threads in [2, 8] {
        let parallel = adaptive().threads(threads).run().unwrap();
        assert_reports_identical(&serial, &parallel, &format!("adaptive {threads} threads"));
        assert_eq!(
            serial.to_json(),
            parallel.to_json(),
            "adaptive JSON must be byte-identical across thread counts"
        );
    }
}

#[test]
fn killed_and_resumed_sweep_converges_to_uninterrupted_bytes() {
    let tmp = |name: &str| {
        std::env::temp_dir().join(format!(
            "sparsegossip_regress_{name}_{}.bin",
            std::process::id()
        ))
    };
    let sweep = small_sweep().threads(2).adaptive(AdaptiveConfig::default());

    // The uninterrupted reference: one store-backed run to completion.
    let full_path = tmp("full");
    let mut store = ResultStore::create(&full_path).unwrap();
    let reference = sweep.run_with_store(Some(&mut store)).unwrap().to_json();
    drop(store);
    let full_bytes = std::fs::read(&full_path).unwrap();

    // Kill after a prefix of the record stream (including torn tails),
    // resume, and demand byte-identical convergence. Records stream in
    // deterministic job order, so a truncated prefix of the reference
    // store is exactly what a killed run leaves behind.
    const HEADER_LEN: usize = 16;
    const RECORD_LEN: usize = 32;
    const TRAILER_LEN: usize = 24;
    let body = full_bytes.len() - HEADER_LEN - TRAILER_LEN;
    let records = body / RECORD_LEN;
    for cut in [0, 1, records / 2, records.saturating_sub(1)] {
        for torn in [0usize, 13] {
            let killed_path = tmp(&format!("killed_{cut}_{torn}"));
            let upto = HEADER_LEN + cut * RECORD_LEN + torn;
            std::fs::write(&killed_path, &full_bytes[..upto]).unwrap();
            let mut store = ResultStore::open_resume(&killed_path).unwrap();
            let resumed = sweep.run_with_store(Some(&mut store)).unwrap().to_json();
            drop(store);
            assert_eq!(
                resumed, reference,
                "resume after {cut} cells (+{torn} torn bytes) changed the report"
            );
            assert_eq!(
                std::fs::read(&killed_path).unwrap(),
                full_bytes,
                "resume after {cut} cells (+{torn} torn bytes) changed the store"
            );
            std::fs::remove_file(&killed_path).unwrap();
        }
    }
    std::fs::remove_file(&full_path).unwrap();
}

/// The seed-derivation migration golden: the old grid-index seeds
/// (`derive_seed(master, i·R + j)`) and the new content-addressed
/// ones (`cell_seed(master, side, k, r, j)`) measure different
/// replicates, but both must locate the same phase transition with
/// the same within-band verdict on every curve — the physics is
/// seed-independent even though individual samples are not.
#[test]
fn seed_migration_preserves_knee_verdicts() {
    let sweep = small_sweep();
    let cells = sweep.cells().unwrap();
    let reps = 3u32;
    let mut scratch = SimScratch::new();
    let build = |seed_of: &dyn Fn(usize, u32, &sparsegossip_analysis::ScenarioCell) -> u64,
                 scratch: &mut SimScratch| {
        let swept: Vec<SweepCell> = cells
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                let samples: Vec<f64> = (0..reps)
                    .map(|j| {
                        cell.spec
                            .run_seed_with_scratch(scratch, seed_of(i, j, cell))
                    })
                    .collect();
                let n = f64::from(cell.side) * f64::from(cell.side);
                SweepCell {
                    side: cell.side,
                    k: cell.k,
                    radius: cell.radius,
                    net: cell.net,
                    world: cell.world,
                    fault: cell.fault,
                    critical_radius: theory::critical_radius(n, cell.k as f64),
                    summary: sparsegossip_analysis::Summary::from_slice(&samples),
                    samples,
                }
            })
            .collect();
        ScenarioSweepReport {
            process: ProcessKind::Broadcast,
            metric: Metric::Time,
            master_seed: 2011,
            replicates: reps,
            adaptive: None,
            cells: swept,
        }
    };
    let old = build(
        &|i, j, _| derive_seed(2011, i as u64 * u64::from(reps) + u64::from(j)),
        &mut scratch,
    );
    let new = build(
        &|_, j, c| cell_seed(2011, c.side, c.k, c.radius, j),
        &mut scratch,
    );
    // The engine itself must agree with the locally-computed new-seed
    // report sample for sample.
    let engine = sweep.run().unwrap();
    assert_reports_identical(&engine, &new, "engine vs local cell_seed");

    // Golden verdict tables: (side, k, r_below, r_above, within_band)
    // per detected transition, under each derivation. Pinned so a
    // future seeding change cannot silently alter what the suite
    // considers the knee. At this debug-friendly scale (3 replicates,
    // 3 radii) individual curves may disagree between derivations —
    // that disagreement is itself part of the golden.
    let verdicts = |r: &ScenarioSweepReport| -> Vec<(u32, usize, u32, u32, bool)> {
        r.transitions()
            .iter()
            .map(|t| (t.side, t.k, t.r_below, t.r_above, t.within_band()))
            .collect()
    };
    let old_golden = vec![
        (8u32, 4usize, 0u32, 1u32, false),
        (8, 6, 1, 3, true),
        (10, 4, 1, 3, true),
        (10, 6, 1, 3, true),
    ];
    let new_golden = vec![
        (8u32, 4usize, 1u32, 3u32, true),
        (8, 6, 1, 3, true),
        (10, 4, 1, 3, true),
        (10, 6, 0, 1, false),
    ];
    assert_eq!(verdicts(&old), old_golden, "old-seed verdicts drifted");
    assert_eq!(verdicts(&new), new_golden, "new-seed verdicts drifted");
}

#[test]
fn rerunning_the_same_sweep_reproduces_samples_exactly() {
    let a = small_sweep().threads(4).run().unwrap();
    let b = small_sweep().threads(4).run().unwrap();
    assert_reports_identical(&a, &b, "rerun");
}

#[test]
fn toml_loaded_sweep_equals_builder_built_sweep() {
    let built = small_sweep().threads(2);
    let loaded = ScenarioSweep::from_toml_str(&built.to_toml()).unwrap();
    assert_eq!(built, loaded, "serialization round trip changed the sweep");
    let a = built.run().unwrap();
    let b = loaded.run().unwrap();
    assert_reports_identical(&a, &b, "toml vs builder");
}

#[test]
fn fraction_metric_sweeps_are_thread_independent_too() {
    let base = ScenarioSpec::builder(ProcessKind::Gossip, 10, 4)
        .max_steps(300)
        .metric(Metric::Fraction)
        .build()
        .unwrap();
    let sweep = |threads| {
        ScenarioSweep::new(base, 7)
            .radii(vec![0, 2, 4])
            .replicates(4)
            .threads(threads)
            .run()
            .unwrap()
    };
    let serial = sweep(1);
    assert_reports_identical(&serial, &sweep(8), "fraction metric");
    for cell in &serial.cells {
        for s in &cell.samples {
            assert!((0.0..=1.0).contains(s), "fraction {s} out of range");
        }
    }
}

/// The committed example spec is the acceptance artifact: parsing it
/// must equal the builder-built twin, and running a trimmed version of
/// both must produce identical outcomes.
#[test]
fn committed_example_spec_round_trips_against_builder() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/phase_transition.toml"
    );
    let text = std::fs::read_to_string(path).expect("examples/phase_transition.toml exists");
    let loaded = ScenarioSweep::from_toml_str(&text).expect("example spec parses");

    // The builder-built twin of the committed file, field for field.
    let base = ScenarioSpec::builder(ProcessKind::Broadcast, 32, 16)
        .radius(0)
        .source(0)
        .metric(Metric::Time)
        .build()
        .unwrap();
    let built = ScenarioSweep::new(base, 2011)
        .sides(vec![24, 32, 48])
        .ks(vec![8, 16, 32])
        .r_factors(vec![0.25, 0.5, 1.0, 2.0, 3.0])
        .replicates(4)
        .threads(4);
    assert_eq!(
        built, loaded,
        "committed spec drifted from its builder twin"
    );

    // Run a trimmed slice of both (debug-friendly) and compare
    // outcomes cell by cell: parse → run ≡ build → run.
    let trim = |s: ScenarioSweep| s.sides(vec![24]).ks(vec![8, 16]).replicates(2).threads(2);
    let a = trim(built).run().unwrap();
    let b = trim(loaded).run().unwrap();
    assert_reports_identical(&a, &b, "trimmed example spec");
    assert_eq!(a.cells.len(), 2 * 5, "trim keeps the full radius axis");
}
