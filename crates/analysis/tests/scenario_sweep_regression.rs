//! Regression suite for the scenario sweep engine's determinism
//! contract: results are a pure function of the sweep (thread-count
//! independent, rerun-stable), and a TOML-loaded sweep is
//! indistinguishable from its builder-built twin — including the
//! committed `examples/phase_transition.toml`.

use sparsegossip_analysis::{ScenarioSweep, ScenarioSweepReport};
use sparsegossip_core::{Metric, ProcessKind, ScenarioSpec};

fn small_sweep() -> ScenarioSweep {
    // An explicit cap keeps the worst replicate bounded in debug test
    // runs; capped cells are as deterministic as completed ones.
    let base = ScenarioSpec::builder(ProcessKind::Broadcast, 10, 4)
        .max_steps(2_000)
        .build()
        .unwrap();
    ScenarioSweep::new(base, 2011)
        .sides(vec![8, 10])
        .ks(vec![4, 6])
        .radii(vec![0, 1, 3])
        .replicates(3)
}

fn assert_reports_identical(a: &ScenarioSweepReport, b: &ScenarioSweepReport, what: &str) {
    assert_eq!(a.cells.len(), b.cells.len(), "{what}: cell count differs");
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(
            (ca.side, ca.k, ca.radius),
            (cb.side, cb.k, cb.radius),
            "{what}: cell order differs"
        );
        assert_eq!(
            ca.samples, cb.samples,
            "{what}: samples differ at side={} k={} r={}",
            ca.side, ca.k, ca.radius
        );
    }
}

#[test]
fn results_are_identical_for_1_2_and_8_threads() {
    let serial = small_sweep().threads(1).run().unwrap();
    for threads in [2, 8] {
        let parallel = small_sweep().threads(threads).run().unwrap();
        assert_reports_identical(&serial, &parallel, &format!("{threads} threads"));
    }
}

#[test]
fn rerunning_the_same_sweep_reproduces_samples_exactly() {
    let a = small_sweep().threads(4).run().unwrap();
    let b = small_sweep().threads(4).run().unwrap();
    assert_reports_identical(&a, &b, "rerun");
}

#[test]
fn toml_loaded_sweep_equals_builder_built_sweep() {
    let built = small_sweep().threads(2);
    let loaded = ScenarioSweep::from_toml_str(&built.to_toml()).unwrap();
    assert_eq!(built, loaded, "serialization round trip changed the sweep");
    let a = built.run().unwrap();
    let b = loaded.run().unwrap();
    assert_reports_identical(&a, &b, "toml vs builder");
}

#[test]
fn fraction_metric_sweeps_are_thread_independent_too() {
    let base = ScenarioSpec::builder(ProcessKind::Gossip, 10, 4)
        .max_steps(300)
        .metric(Metric::Fraction)
        .build()
        .unwrap();
    let sweep = |threads| {
        ScenarioSweep::new(base, 7)
            .radii(vec![0, 2, 4])
            .replicates(4)
            .threads(threads)
            .run()
            .unwrap()
    };
    let serial = sweep(1);
    assert_reports_identical(&serial, &sweep(8), "fraction metric");
    for cell in &serial.cells {
        for s in &cell.samples {
            assert!((0.0..=1.0).contains(s), "fraction {s} out of range");
        }
    }
}

/// The committed example spec is the acceptance artifact: parsing it
/// must equal the builder-built twin, and running a trimmed version of
/// both must produce identical outcomes.
#[test]
fn committed_example_spec_round_trips_against_builder() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/phase_transition.toml"
    );
    let text = std::fs::read_to_string(path).expect("examples/phase_transition.toml exists");
    let loaded = ScenarioSweep::from_toml_str(&text).expect("example spec parses");

    // The builder-built twin of the committed file, field for field.
    let base = ScenarioSpec::builder(ProcessKind::Broadcast, 32, 16)
        .radius(0)
        .source(0)
        .metric(Metric::Time)
        .build()
        .unwrap();
    let built = ScenarioSweep::new(base, 2011)
        .sides(vec![24, 32, 48])
        .ks(vec![8, 16, 32])
        .r_factors(vec![0.25, 0.5, 1.0, 2.0, 3.0])
        .replicates(4)
        .threads(4);
    assert_eq!(
        built, loaded,
        "committed spec drifted from its builder twin"
    );

    // Run a trimmed slice of both (debug-friendly) and compare
    // outcomes cell by cell: parse → run ≡ build → run.
    let trim = |s: ScenarioSweep| s.sides(vec![24]).ks(vec![8, 16]).replicates(2).threads(2);
    let a = trim(built).run().unwrap();
    let b = trim(loaded).run().unwrap();
    assert_reports_identical(&a, &b, "trimmed example spec");
    assert_eq!(a.cells.len(), 2 * 5, "trim keeps the full radius axis");
}
