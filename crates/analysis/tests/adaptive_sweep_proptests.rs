//! Property tests for the adaptive sweep mode's determinism contract:
//! the report is a pure function of the sweep — independent of thread
//! count and of where a store-backed run was killed and resumed — and
//! the content-addressed seed derivation is collision-free at sweep
//! scale.

use std::collections::BTreeSet;

use proptest::prelude::*;
use sparsegossip_analysis::{AdaptiveConfig, ResultStore, ScenarioSweep};
use sparsegossip_core::{cell_seed, ProcessKind, ScenarioSpec};

fn tiny_adaptive(master: u64) -> ScenarioSweep {
    let base = ScenarioSpec::builder(ProcessKind::Broadcast, 10, 5)
        .max_steps(500)
        .build()
        .unwrap();
    ScenarioSweep::new(base, master)
        .radii(vec![0, 1, 4])
        .replicates(2)
        .adaptive(AdaptiveConfig {
            replicate_budget: 2,
            ..AdaptiveConfig::default()
        })
}

proptest! {
    // Each case runs real simulations; a handful of cases is plenty
    // for the schedule-independence property.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn adaptive_reports_are_thread_count_independent(
        master in 0u64..1_000,
        threads in 2usize..9,
    ) {
        let serial = tiny_adaptive(master).threads(1).run().unwrap().to_json();
        let threaded = tiny_adaptive(master).threads(threads).run().unwrap().to_json();
        prop_assert_eq!(serial, threaded);
    }

    #[test]
    fn resume_from_any_kill_point_is_byte_identical(
        master in 0u64..1_000,
        kill_permille in 0u32..1000,
        torn in 0usize..32,
    ) {
        let tmp = |name: &str| std::env::temp_dir().join(format!(
            "sparsegossip_prop_{name}_{}_{master}",
            std::process::id()
        ));
        let sweep = tiny_adaptive(master).threads(2);

        let full_path = tmp("full");
        let mut store = ResultStore::create(&full_path).unwrap();
        let reference = sweep.run_with_store(Some(&mut store)).unwrap().to_json();
        drop(store);
        let full_bytes = std::fs::read(&full_path).unwrap();
        std::fs::remove_file(&full_path).unwrap();

        // Kill anywhere in the record stream — whole records plus a
        // torn tail — and resume. Records stream in deterministic job
        // order, so a prefix of the reference store is exactly what a
        // killed run leaves behind.
        const HEADER_LEN: usize = 16;
        const RECORD_LEN: usize = 32;
        const TRAILER_LEN: usize = 24;
        let body = full_bytes.len() - HEADER_LEN - TRAILER_LEN;
        let records = body / RECORD_LEN;
        let cut = records * kill_permille as usize / 1000;
        let upto = (HEADER_LEN + cut * RECORD_LEN + torn).min(HEADER_LEN + body);

        let killed_path = tmp("killed");
        std::fs::write(&killed_path, &full_bytes[..upto]).unwrap();
        let mut store = ResultStore::open_resume(&killed_path).unwrap();
        let resumed = sweep.run_with_store(Some(&mut store)).unwrap().to_json();
        drop(store);
        let resumed_bytes = std::fs::read(&killed_path).unwrap();
        std::fs::remove_file(&killed_path).unwrap();

        prop_assert_eq!(resumed, reference);
        prop_assert_eq!(resumed_bytes, full_bytes);
    }

    #[test]
    fn content_addressed_seeds_do_not_collide_at_sweep_scale(
        master in any::<u64>(),
    ) {
        // A 10×10×10 (side, k, radius) grid with 10 replicates each:
        // 10^4 cells' worth of seeds, all distinct.
        let mut seen = BTreeSet::new();
        let mut total = 0u32;
        for side in (8u32..).step_by(8).take(10) {
            for k in (4usize..).step_by(4).take(10) {
                for radius in 0u32..10 {
                    for rep in 0u32..10 {
                        seen.insert(cell_seed(master, side, k, radius, rep));
                        total += 1;
                    }
                }
            }
        }
        prop_assert_eq!(seen.len() as u32, total);
    }
}
