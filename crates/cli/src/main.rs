//! `sparsegossip` — command-line interface to the mobile-network
//! dissemination simulator of Pettarin et al. (PODC 2011).
//!
//! ```text
//! sparsegossip broadcast --side 128 --k 64 --radius 4 --seed 1
//! sparsegossip gossip --side 64 --k 16 --rumors 4
//! sparsegossip coverage --side 64 --k 32
//! sparsegossip percolation --side 128 --k 64 --samples 40
//! sparsegossip cover --side 64 --k 16
//! sparsegossip predator --side 64 --predators 16 --preys 8
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        print!("{}", commands::USAGE);
        return ExitCode::SUCCESS;
    }
    match args::ParsedArgs::parse(argv) {
        Ok(parsed) => match commands::dispatch(&parsed) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
