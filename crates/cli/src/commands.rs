//! Subcommand implementations.
//!
//! Every run command goes through the unified [`Simulation`] driver;
//! `--reps`/`--threads` route multi-seed ensembles through the
//! [`Runner`], and `--json` emits machine-readable outcome lines so
//! results are scriptable.

use core::fmt;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_analysis::{ResultStore, Runner, ScenarioSweep, StoreError, SweepError, Table};
use sparsegossip_conngraph::{critical_radius, percolation_profile};
use sparsegossip_core::{
    BroadcastOutcome, CoverageOutcome, ExchangeRule, ExtinctionOutcome, FaultConfig, Gossip,
    GossipOutcome, Infection, InfectionOutcome, Mobility, NetworkConfig, NetworkError,
    PredatorPrey, ProcessKind, ProtocolBroadcast, ProtocolOutcome, RuntimeError, ScenarioSpec,
    SimConfig, Simulation, SpecError, WorldConfig, WorldSim,
};
use sparsegossip_grid::{Grid, Point, Topology};
use sparsegossip_walks::multi_cover;

use crate::args::{ArgError, ParsedArgs};

/// Usage text for `help`.
pub const USAGE: &str = "\
sparsegossip — information dissemination in sparse mobile networks
(reproduction of Pettarin et al., PODC 2011)

USAGE:
  sparsegossip <command> [--option value]... [--flag]...

COMMANDS:
  broadcast    one rumor to all agents
               --side N --k K --radius R --seed S --max-steps M
               --frog (only informed agents move)
               --one-hop (one hop per step instead of component flooding)
               --reps R --threads T (multi-seed ensemble via the Runner)
               --barrier-density P --churn-rate P (walled / churning worlds)
               --hetero-fraction P --hetero-factor F (mixed contact radii)
               --speed-fraction P --speed-factor S (fast-mover class)
               --sources N --adversarial (multi-source placement)
  gossip       all rumors to all agents
               --side N --k K --radius R --seed S --rumors M
  infection    contact infection (r = 0) with per-agent infection times
               --side N --k K --seed S --max-steps M
               --sources N --adversarial (multi-source placement)
  coverage     broadcast + informed-agent coverage times
               --side N --k K --radius R --seed S
  protocol     message-passing protocol twin of broadcast
               --side N --k K --radius R --seed S --max-steps M
               --drop P --delay D --cap C --interval I (network faults)
               --crash P --restart-delay D (per-tick node crashes)
               --partition-start T --partition-len L (network partition)
               --retransmit --anti-entropy I (recovery layer)
               --workers W (scheduler threads; never changes results)
  percolation  giant-component fraction around r_c = sqrt(n/k)
               --side N --k K --samples S --seed S
  cover        cover time of k independent walks
               --side N --k K --cap C --seed S
  predator     predator-prey extinction time
               --side N --predators K --preys M --radius R
               --static-preys --seed S
  sweep        multi-axis {side, k, r} scenario sweep from a TOML spec,
               with phase-transition detection against r_c = sqrt(n/k)
               --spec file.toml [--replicates R --threads T --seed S]
               --barrier-densities A,B | --churn-rates A,B |
               --radius-mixes A,B (world axis override; at most one)
               --crash-probs A,B | --partition-lens A,B
               (fault axis override; at most one)
               --adaptive [--budget N --replicate-budget N]
               (knee refinement: bisect each curve's knee bracket to
               1% of r_c under the cell budget, then top up replicates
               where the CI is widest)
               --store file.bin [--resume] (checkpoint every completed
               run; --resume replays a prior store as cache hits)
  help         this text

All run commands accept --json for machine-readable outcome output.
Defaults: --side 64, --k 32, --radius 0, --seed 2011.
";

/// Errors surfaced to the user.
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing or validation failed.
    Args(ArgError),
    /// The simulation could not be configured.
    Sim(sparsegossip_core::SimError),
    /// A required option was not given.
    MissingOption(&'static str),
    /// A spec file could not be read.
    Io {
        /// The path that failed.
        path: String,
        /// The underlying error text.
        error: String,
    },
    /// A spec file could not be parsed or validated.
    Spec(SpecError),
    /// The sweep result store failed (I/O, corruption, version).
    Store(StoreError),
    /// The protocol runtime aborted mid-run (worker panic).
    Runtime(RuntimeError),
    /// Unknown subcommand.
    UnknownCommand(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Args(e) => write!(f, "{e}"),
            Self::Sim(e) => write!(f, "{e}"),
            Self::MissingOption(name) => write!(f, "missing required option --{name}"),
            Self::Io { path, error } => write!(f, "cannot read {path:?}: {error}"),
            Self::Spec(e) => write!(f, "{e}"),
            Self::Store(e) => write!(f, "{e}"),
            Self::Runtime(e) => write!(f, "{e}"),
            Self::UnknownCommand(c) => {
                write!(f, "unknown command {c:?}; try `sparsegossip help`")
            }
        }
    }
}

impl std::error::Error for CliError {}

impl From<StoreError> for CliError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        Self::Args(e)
    }
}

impl From<sparsegossip_core::SimError> for CliError {
    fn from(e: sparsegossip_core::SimError) -> Self {
        Self::Sim(e)
    }
}

impl From<SpecError> for CliError {
    fn from(e: SpecError) -> Self {
        Self::Spec(e)
    }
}

impl From<sparsegossip_grid::GridError> for CliError {
    fn from(e: sparsegossip_grid::GridError) -> Self {
        Self::Sim(sparsegossip_core::SimError::Grid(e))
    }
}

impl From<sparsegossip_walks::WalkError> for CliError {
    fn from(e: sparsegossip_walks::WalkError) -> Self {
        Self::Sim(sparsegossip_core::SimError::Walk(e))
    }
}

/// Routes a parsed command line to its implementation.
pub fn dispatch(args: &ParsedArgs) -> Result<(), CliError> {
    match args.command.as_str() {
        "broadcast" => broadcast(args),
        "gossip" => gossip(args),
        "infection" => infection(args),
        "coverage" => coverage(args),
        "protocol" => protocol(args),
        "percolation" => percolation(args),
        "cover" => cover(args),
        "predator" => predator(args),
        "sweep" => sweep(args),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

struct Common {
    side: u32,
    k: usize,
    radius: u32,
    seed: u64,
    json: bool,
}

fn common(args: &ParsedArgs) -> Result<Common, CliError> {
    Ok(Common {
        side: args.get("side", 64u32)?,
        k: args.get("k", 32usize)?,
        radius: args.get("radius", 0u32)?,
        seed: args.get("seed", 2011u64)?,
        json: args.flag("json"),
    })
}

fn bad(key: &str, value: impl ToString) -> CliError {
    CliError::Args(ArgError::BadValue {
        key: key.to_string(),
        value: value.to_string(),
    })
}

/// Parses the eight world options shared by the run commands into a
/// [`WorldConfig`]. Range and combination validation is left to the
/// [`ScenarioSpec`] builder, which applies the same rules to TOML
/// specs.
fn world_config(args: &ParsedArgs) -> Result<WorldConfig, CliError> {
    Ok(WorldConfig {
        barrier_density: args.get("barrier-density", 0.0f64)?,
        churn_rate: args.get("churn-rate", 0.0f64)?,
        hetero_fraction: args.get("hetero-fraction", 0.0f64)?,
        hetero_factor: args.get("hetero-factor", 1.0f64)?,
        speed_fraction: args.get("speed-fraction", 0.0f64)?,
        speed_factor: args.get("speed-factor", 1u32)?,
        num_sources: args.get("sources", 1usize)?,
        adversarial_sources: args.flag("adversarial"),
    })
}

/// One-line human summary of the active world axes.
fn world_summary(w: &WorldConfig) -> String {
    let mut parts = Vec::new();
    if w.has_barriers() {
        parts.push(format!("barriers {:.2}", w.barrier_density));
    }
    if w.has_churn() {
        parts.push(format!("churn {:.3}", w.churn_rate));
    }
    if w.has_hetero_radii() {
        parts.push(format!(
            "radii {:.2} at {:.1}x",
            w.hetero_fraction, w.hetero_factor
        ));
    }
    if w.has_speed_classes() {
        parts.push(format!(
            "speeds {:.2} at {}x",
            w.speed_fraction, w.speed_factor
        ));
    }
    if w.num_sources > 1 {
        parts.push(format!("{} sources", w.num_sources));
    }
    if w.adversarial_sources {
        parts.push("adversarial".to_string());
    }
    parts.join(", ")
}

/// Parses a comma-separated `--name a,b,c` option into unit-interval
/// floats, rejecting bad values here so the sweep builder's asserts
/// can never fire on user input.
fn unit_list(args: &ParsedArgs, name: &'static str) -> Result<Option<Vec<f64>>, CliError> {
    if !args.has_option(name) {
        return Ok(None);
    }
    let raw: String = args.get(name, String::new())?;
    let mut out = Vec::new();
    for part in raw.split(',') {
        let v: f64 = part.trim().parse().map_err(|_| bad(name, &raw))?;
        if !v.is_finite() || !(0.0..=1.0).contains(&v) {
            return Err(bad(name, &raw));
        }
        out.push(v);
    }
    Ok(Some(out))
}

/// Parses an optional comma-separated list of non-negative integers
/// (e.g. `--partition-lens 0,8,32`).
fn u64_list(args: &ParsedArgs, name: &'static str) -> Result<Option<Vec<u64>>, CliError> {
    if !args.has_option(name) {
        return Ok(None);
    }
    let raw: String = args.get(name, String::new())?;
    let mut out = Vec::new();
    for part in raw.split(',') {
        let v: u64 = part.trim().parse().map_err(|_| bad(name, &raw))?;
        out.push(v);
    }
    if out.is_empty() {
        return Err(bad(name, &raw));
    }
    Ok(Some(out))
}

/// Renders `Option<u64>` as JSON (`null` when absent).
fn json_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |t| t.to_string())
}

fn broadcast_json(out: &BroadcastOutcome) -> String {
    format!(
        "{{\"process\":\"broadcast\",\"broadcast_time\":{},\"informed\":{},\"k\":{}}}",
        json_opt(out.broadcast_time),
        out.informed,
        out.k
    )
}

fn gossip_json(out: &GossipOutcome) -> String {
    format!(
        "{{\"process\":\"gossip\",\"gossip_time\":{},\"min_rumors\":{},\"num_rumors\":{}}}",
        json_opt(out.gossip_time),
        out.min_rumors,
        out.num_rumors
    )
}

fn infection_json(out: &InfectionOutcome) -> String {
    let per_agent: Vec<String> = out.per_agent.iter().map(|t| json_opt(*t)).collect();
    let mean = out
        .mean_time
        .map_or_else(|| "null".to_string(), |m| format!("{m}"));
    format!(
        "{{\"process\":\"infection\",\"infection_time\":{},\"mean_time\":{mean},\"per_agent\":[{}]}}",
        json_opt(out.infection_time),
        per_agent.join(",")
    )
}

fn coverage_json(out: &CoverageOutcome) -> String {
    format!(
        "{{\"process\":\"coverage\",\"broadcast_time\":{},\"coverage_time\":{},\"covered\":{},\"num_nodes\":{}}}",
        json_opt(out.broadcast_time),
        json_opt(out.coverage_time),
        out.covered,
        out.num_nodes
    )
}

fn extinction_json(out: &ExtinctionOutcome) -> String {
    format!(
        "{{\"process\":\"predator_prey\",\"extinction_time\":{},\"survivors\":{},\"num_preys\":{}}}",
        json_opt(out.extinction_time),
        out.survivors,
        out.num_preys
    )
}

fn broadcast(args: &ParsedArgs) -> Result<(), CliError> {
    let c = common(args)?;
    let max_steps = args.get("max-steps", SimConfig::default_step_cap(c.side, c.k))?;
    let reps: u32 = args.get("reps", 1u32)?;
    let threads: usize = args.get("threads", 1usize)?;
    let world = world_config(args)?;
    if !world.is_trivial() {
        return broadcast_world(args, &c, world, max_steps, reps, threads);
    }
    let mut builder = SimConfig::builder(c.side, c.k)
        .radius(c.radius)
        .max_steps(max_steps);
    if args.flag("one-hop") {
        builder = builder.exchange_rule(ExchangeRule::OneHop);
    }
    if args.flag("frog") {
        builder = builder.mobility(Mobility::InformedOnly);
    }
    let config = builder.build()?;
    if reps > 1 {
        return broadcast_ensemble(&config, c.seed, reps, threads, c.json);
    }
    let mut rng = SmallRng::seed_from_u64(c.seed);
    let mut sim = Simulation::broadcast(&config, &mut rng)?;
    let out = sim.run(&mut rng);
    if c.json {
        println!("{}", broadcast_json(&out));
        return Ok(());
    }
    println!(
        "n = {}, k = {}, r = {} (r_c = {:.1}), seed = {}",
        config.n(),
        config.k(),
        config.radius(),
        config.critical_radius(),
        c.seed
    );
    println!("{out}");
    Ok(())
}

/// Broadcast in a non-trivial world (barriers, churn, heterogeneous
/// radii or speeds, multiple or adversarial sources): the options are
/// packed into a validated [`ScenarioSpec`] and run through the
/// [`WorldSim`] driver, so CLI runs and sweep cells share one code
/// path — and one set of rejection rules.
fn broadcast_world(
    args: &ParsedArgs,
    c: &Common,
    world: WorldConfig,
    max_steps: u64,
    reps: u32,
    threads: usize,
) -> Result<(), CliError> {
    let mut builder = ScenarioSpec::builder(ProcessKind::Broadcast, c.side, c.k)
        .radius(c.radius)
        .max_steps(max_steps)
        .world(world);
    if args.flag("one-hop") {
        builder = builder.exchange_rule(ExchangeRule::OneHop);
    }
    if args.flag("frog") {
        builder = builder.mobility(Mobility::InformedOnly);
    }
    let spec = builder.build()?;
    if reps > 1 {
        return broadcast_world_ensemble(&spec, c, reps, threads);
    }
    let mut rng = SmallRng::seed_from_u64(c.seed);
    let mut sim = WorldSim::from_spec(&spec, &mut rng)?;
    let out = sim.run(&mut rng);
    if c.json {
        println!("{}", broadcast_json(&out));
        return Ok(());
    }
    let cfg = spec.config();
    println!(
        "n = {}, k = {}, r = {} (r_c = {:.1}), seed = {}, world: {}",
        cfg.n(),
        cfg.k(),
        cfg.radius(),
        cfg.critical_radius(),
        c.seed,
        world_summary(spec.world()),
    );
    println!("{out}");
    Ok(())
}

/// Multi-seed world-broadcast ensemble: every seed's metric goes
/// through [`ScenarioSpec::run_seed`], the same entry the sweep engine
/// uses.
fn broadcast_world_ensemble(
    spec: &ScenarioSpec,
    c: &Common,
    reps: u32,
    threads: usize,
) -> Result<(), CliError> {
    let runner = Runner::new(c.seed).repetitions(reps).threads(threads);
    let report = runner.measure(|s| spec.run_seed(s));
    if c.json {
        let samples: Vec<String> = report.samples.iter().map(|s| format!("{s}")).collect();
        println!(
            "{{\"process\":\"broadcast\",\"reps\":{reps},\"mean\":{},\"median\":{},\"min\":{},\"max\":{},\"samples\":[{}]}}",
            report.summary.mean(),
            report.summary.median(),
            report.summary.min(),
            report.summary.max(),
            samples.join(",")
        );
        return Ok(());
    }
    let cfg = spec.config();
    println!(
        "n = {}, k = {}, r = {} (r_c = {:.1}), master seed = {}, {reps} seeds, world: {}",
        cfg.n(),
        cfg.k(),
        cfg.radius(),
        cfg.critical_radius(),
        c.seed,
        world_summary(spec.world()),
    );
    println!(
        "T_B: mean {:.1}, median {:.1}, min {:.0}, max {:.0}",
        report.summary.mean(),
        report.summary.median(),
        report.summary.min(),
        report.summary.max()
    );
    Ok(())
}

/// Multi-seed broadcast ensemble through the [`Runner`]: every seed's
/// `T_B` is measured through the parallel path and aggregated.
fn broadcast_ensemble(
    config: &SimConfig,
    seed: u64,
    reps: u32,
    threads: usize,
    json: bool,
) -> Result<(), CliError> {
    let runner = Runner::new(seed).repetitions(reps).threads(threads);
    let report = runner.measure(|s| {
        let mut rng = SmallRng::seed_from_u64(s);
        let mut sim = Simulation::broadcast(config, &mut rng).expect("validated config");
        sim.run(&mut rng)
            .broadcast_time
            .unwrap_or(config.max_steps()) as f64
    });
    if json {
        let samples: Vec<String> = report.samples.iter().map(|s| format!("{s}")).collect();
        println!(
            "{{\"process\":\"broadcast\",\"reps\":{reps},\"mean\":{},\"median\":{},\"min\":{},\"max\":{},\"samples\":[{}]}}",
            report.summary.mean(),
            report.summary.median(),
            report.summary.min(),
            report.summary.max(),
            samples.join(",")
        );
        return Ok(());
    }
    println!(
        "n = {}, k = {}, r = {} (r_c = {:.1}), master seed = {seed}, {reps} seeds",
        config.n(),
        config.k(),
        config.radius(),
        config.critical_radius(),
    );
    println!(
        "T_B: mean {:.1}, median {:.1}, min {:.0}, max {:.0}",
        report.summary.mean(),
        report.summary.median(),
        report.summary.min(),
        report.summary.max()
    );
    Ok(())
}

fn gossip(args: &ParsedArgs) -> Result<(), CliError> {
    let c = common(args)?;
    let rumors: usize = args.get("rumors", c.k)?;
    let grid = Grid::new(c.side)?;
    let cap = SimConfig::default_step_cap(c.side, c.k);
    let mut rng = SmallRng::seed_from_u64(c.seed);
    let process = Gossip::with_rumors(c.k, rumors)?;
    let mut sim = Simulation::new(grid, c.k, c.radius, cap, process, &mut rng)?;
    let out = sim.run(&mut rng);
    if c.json {
        println!("{}", gossip_json(&out));
        return Ok(());
    }
    match out.gossip_time {
        Some(t) => println!("T_G = {t} ({} rumors to {} agents)", out.num_rumors, c.k),
        None => println!(
            "not finished after {cap} steps (min {}/{} rumors per agent)",
            out.min_rumors, out.num_rumors
        ),
    }
    Ok(())
}

fn infection(args: &ParsedArgs) -> Result<(), CliError> {
    let c = common(args)?;
    let max_steps = args.get("max-steps", SimConfig::default_step_cap(c.side, c.k))?;
    if args.has_option("radius") {
        eprintln!("note: --radius is ignored; infection is contact-only (r = 0)");
    }
    let world = world_config(args)?;
    let mut rng = SmallRng::seed_from_u64(c.seed);
    let out = if world.is_trivial() {
        let config = SimConfig::builder(c.side, c.k)
            .max_steps(max_steps)
            .build()?;
        let mut sim = Simulation::infection(&config, &mut rng)?;
        sim.run(&mut rng)
    } else {
        // Validate through the spec builder so the CLI rejects exactly
        // the combinations TOML specs reject: infection supports only
        // the source axes.
        ScenarioSpec::builder(ProcessKind::Infection, c.side, c.k)
            .max_steps(max_steps)
            .world(world)
            .build()?;
        let grid = Grid::new(c.side)?;
        let process = Infection::with_sources(c.k, world.num_sources)?;
        let mut sim = if world.adversarial_sources {
            let mut positions: Vec<Point> = (0..c.k).map(|_| grid.random_point(&mut rng)).collect();
            for p in positions.iter_mut().take(world.num_sources) {
                *p = Point::new(0, 0);
            }
            Simulation::from_positions(grid, positions, 0, max_steps, process)?
        } else {
            Simulation::new(grid, c.k, 0, max_steps, process, &mut rng)?
        };
        sim.run(&mut rng)
    };
    if c.json {
        println!("{}", infection_json(&out));
        return Ok(());
    }
    println!("{out}");
    Ok(())
}

fn coverage(args: &ParsedArgs) -> Result<(), CliError> {
    let c = common(args)?;
    let config = SimConfig::builder(c.side, c.k)
        .radius(c.radius)
        .max_steps(SimConfig::default_step_cap(c.side, c.k) * 4)
        .build()?;
    let mut rng = SmallRng::seed_from_u64(c.seed);
    let mut sim = Simulation::coverage(&config, &mut rng)?;
    let out = sim.run(&mut rng);
    if c.json {
        println!("{}", coverage_json(&out));
        return Ok(());
    }
    println!("T_B = {:?}", out.broadcast_time);
    println!(
        "T_C = {:?} ({}/{} nodes)",
        out.coverage_time, out.covered, out.num_nodes
    );
    if let Some(r) = out.ratio() {
        println!("T_C/T_B = {r:.2}");
    }
    Ok(())
}

fn protocol_json(out: &ProtocolOutcome, faults: &FaultConfig) -> String {
    // The log hash is a full u64; rendered as hex text so JSON
    // consumers never round it through a double. The fault counters
    // only appear when the fault layer is active, so the fault-free
    // output stays byte-identical to the pre-fault twin.
    let fault_fields = if faults.is_trivial() {
        String::new()
    } else {
        format!(
            ",\"crashes\":{},\"restarts\":{},\"retransmits\":{},\"digests\":{}",
            out.stats.crashes, out.stats.restarts, out.stats.retransmits, out.stats.digests
        )
    };
    format!(
        "{{\"process\":\"protocol\",\"completion_time\":{},\"informed\":{},\"k\":{},\
         \"sent\":{},\"delivered\":{},\"dropped\":{},\"timers\":{}{},\"log_hash\":\"{:016x}\"}}",
        json_opt(out.completion_time),
        out.informed,
        out.k,
        out.stats.sent,
        out.stats.delivered,
        out.stats.dropped,
        out.stats.timers,
        fault_fields,
        out.log_hash
    )
}

/// Runs the message-passing protocol twin over the same seeded
/// trajectory the `broadcast` command would use.
fn protocol(args: &ParsedArgs) -> Result<(), CliError> {
    let c = common(args)?;
    let max_steps = args.get("max-steps", SimConfig::default_step_cap(c.side, c.k))?;
    let drop: f64 = args.get("drop", 0.0f64)?;
    let delay: u64 = args.get("delay", 0u64)?;
    let cap: u32 = args.get("cap", 0u32)?;
    let interval: u64 = args.get("interval", 1u64)?;
    let workers: usize = args.get("workers", 1usize)?;
    let net = NetworkConfig::new(drop, delay, cap, interval).map_err(|e| {
        let (key, value) = match e {
            NetworkError::DropProbOutOfRange => ("drop", drop.to_string()),
            NetworkError::ZeroGossipInterval => ("interval", interval.to_string()),
        };
        CliError::Args(ArgError::BadValue {
            key: key.to_string(),
            value,
        })
    })?;
    let faults = FaultConfig {
        crash_prob: args.get("crash", 0.0f64)?,
        restart_delay: args.get("restart-delay", 1u64)?,
        partition_start: args.get("partition-start", 0u64)?,
        partition_len: args.get("partition-len", 0u64)?,
        retransmit: args.flag("retransmit"),
        anti_entropy_interval: args.get("anti-entropy", 0u64)?,
    };
    faults.validate()?;
    let config = SimConfig::builder(c.side, c.k)
        .radius(c.radius)
        .max_steps(max_steps)
        .build()?;
    let mut rng = SmallRng::seed_from_u64(c.seed);
    let process = ProtocolBroadcast::from_config(&config, net, c.seed)?
        .workers(workers)
        .faults(faults.to_plan())
        .recovery(faults.to_recovery());
    let mut sim = Simulation::new(
        Grid::new(c.side)?,
        config.k(),
        config.radius(),
        config.max_steps(),
        process,
        &mut rng,
    )?;
    let out = sim.run(&mut rng);
    if let Some(err) = out.error {
        return Err(CliError::Runtime(err));
    }
    if c.json {
        println!("{}", protocol_json(&out, &faults));
        return Ok(());
    }
    println!(
        "n = {}, k = {}, r = {} (r_c = {:.1}), seed = {}, drop = {drop}, \
         delay <= {delay}, cap = {cap}, interval = {interval}",
        config.n(),
        config.k(),
        config.radius(),
        config.critical_radius(),
        c.seed
    );
    println!("{out}");
    println!(
        "messages: {} sent, {} delivered, {} dropped; {} timer firings; log hash {:016x}",
        out.stats.sent, out.stats.delivered, out.stats.dropped, out.stats.timers, out.log_hash
    );
    if !faults.is_trivial() {
        println!(
            "faults: {} crashes, {} restarts; recovery: {} retransmits, {} digests",
            out.stats.crashes, out.stats.restarts, out.stats.retransmits, out.stats.digests
        );
    }
    Ok(())
}

fn percolation(args: &ParsedArgs) -> Result<(), CliError> {
    let c = common(args)?;
    if args.has_option("radius") {
        eprintln!("note: --radius is ignored; percolation sweeps radii around r_c");
    }
    let samples: u32 = args.get("samples", 30u32)?;
    let grid = Grid::new(c.side)?;
    let rc = critical_radius(grid.num_nodes() as f64, c.k as f64);
    let radii: Vec<u32> = [0.25f64, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0]
        .iter()
        .map(|f| (f * rc).round().max(1.0) as u32)
        .collect();
    let mut rng = SmallRng::seed_from_u64(c.seed);
    let profile = percolation_profile(&grid, c.k, &radii, samples, &mut rng);
    let mut table = Table::new(vec!["r".into(), "r/r_c".into(), "giant fraction".into()]);
    for p in &profile {
        table.push_row(vec![
            p.r.to_string(),
            format!("{:.2}", f64::from(p.r) / rc),
            format!("{:.3}", p.mean_giant_fraction),
        ]);
    }
    println!("r_c = sqrt(n/k) = {rc:.1}");
    println!("{table}");
    Ok(())
}

fn cover(args: &ParsedArgs) -> Result<(), CliError> {
    let c = common(args)?;
    let cap: u64 = args.get("cap", 200 * u64::from(c.side) * u64::from(c.side))?;
    let grid = Grid::new(c.side)?;
    let mut rng = SmallRng::seed_from_u64(c.seed);
    let run = multi_cover(grid, c.k, cap, &mut rng)?;
    match run.cover_time {
        Some(t) => println!("cover time = {t} ({} walks, {} nodes)", c.k, run.num_nodes),
        None => println!(
            "not covered after {cap} steps ({:.1}% done)",
            100.0 * run.coverage_fraction()
        ),
    }
    Ok(())
}

fn predator(args: &ParsedArgs) -> Result<(), CliError> {
    let c = common(args)?;
    let predators: usize = args.get("predators", 16usize)?;
    let preys: usize = args.get("preys", 8usize)?;
    let cap = 500 * u64::from(c.side) * u64::from(c.side);
    if predators == 0 {
        return Err(CliError::Sim(sparsegossip_core::SimError::TooFewAgents {
            k: predators,
        }));
    }
    let grid = Grid::new(c.side)?;
    let mut rng = SmallRng::seed_from_u64(c.seed);
    let process =
        PredatorPrey::uniform(&grid, preys, c.radius, !args.flag("static-preys"), &mut rng)?;
    let mut sim = Simulation::new(grid, predators, c.radius, cap, process, &mut rng)?;
    let out = sim.run(&mut rng);
    if c.json {
        println!("{}", extinction_json(&out));
        return Ok(());
    }
    match out.extinction_time {
        Some(t) => println!("extinction time = {t} ({predators} predators, {preys} preys)"),
        None => println!("{} preys survived after {cap} steps", out.survivors),
    }
    Ok(())
}

/// Runs a multi-axis scenario sweep loaded from a TOML spec file and
/// reports per-cell summaries plus the detected phase transitions.
fn sweep(args: &ParsedArgs) -> Result<(), CliError> {
    let path: String = args.get("spec", String::new())?;
    if path.is_empty() {
        return Err(CliError::MissingOption("spec"));
    }
    let text = std::fs::read_to_string(&path).map_err(|e| CliError::Io {
        path: path.clone(),
        error: e.to_string(),
    })?;
    let mut sweep = ScenarioSweep::from_toml_str(&text)?;
    if args.has_option("replicates") {
        let reps: u32 = args.get("replicates", 1u32)?;
        if reps == 0 {
            return Err(CliError::Args(ArgError::BadValue {
                key: "replicates".to_string(),
                value: "0".to_string(),
            }));
        }
        sweep = sweep.replicates(reps);
    }
    if args.has_option("threads") {
        sweep = sweep.threads(args.get("threads", 1usize)?);
    }
    if args.has_option("seed") {
        sweep = sweep.seed(args.get("seed", 2011u64)?);
    }
    let barriers = unit_list(args, "barrier-densities")?;
    let churns = unit_list(args, "churn-rates")?;
    let mixes = unit_list(args, "radius-mixes")?;
    let axes_given = usize::from(barriers.is_some())
        + usize::from(churns.is_some())
        + usize::from(mixes.is_some());
    if axes_given > 1 {
        return Err(bad(
            "barrier-densities",
            "at most one world axis (--barrier-densities, --churn-rates, --radius-mixes)",
        ));
    }
    if let Some(v) = barriers {
        sweep = sweep.barrier_densities(v);
    }
    if let Some(v) = churns {
        sweep = sweep.churn_rates(v);
    }
    if let Some(v) = mixes {
        sweep = sweep.radius_mixes(v);
    }
    let crash_probs = unit_list(args, "crash-probs")?;
    let partition_lens = u64_list(args, "partition-lens")?;
    if crash_probs.is_some() && partition_lens.is_some() {
        return Err(bad(
            "crash-probs",
            "at most one fault axis (--crash-probs, --partition-lens)",
        ));
    }
    if let Some(v) = crash_probs {
        sweep = sweep.crash_probs(v);
    }
    if let Some(v) = partition_lens {
        sweep = sweep.partition_lens(v);
    }
    // Adaptive-mode overrides: --adaptive switches the mode on (the
    // spec's own `[sweep] adaptive` keys, if any, supply defaults);
    // the budget flags require it.
    let adaptive_on = args.flag("adaptive") || sweep.adaptive_config().is_some();
    if !adaptive_on && (args.has_option("budget") || args.has_option("replicate-budget")) {
        return Err(bad(
            "budget",
            "--budget/--replicate-budget require --adaptive",
        ));
    }
    if adaptive_on {
        let mut cfg = sweep.adaptive_config().unwrap_or_default();
        if args.has_option("budget") {
            cfg.cell_budget = args.get("budget", 0usize)?;
        }
        if args.has_option("replicate-budget") {
            cfg.replicate_budget = args.get("replicate-budget", 0u32)?;
        }
        sweep = sweep.adaptive(cfg);
    }
    // Checkpoint/resume: --store streams completed runs to a result
    // store; --resume reopens one and replays it as cache hits.
    let store_path: String = args.get("store", String::new())?;
    let resume = args.flag("resume");
    if resume && store_path.is_empty() {
        return Err(CliError::MissingOption("store"));
    }
    let report = if store_path.is_empty() {
        sweep.run()?
    } else {
        let path = std::path::Path::new(&store_path);
        let mut store = if resume {
            let store = ResultStore::open_resume(path)?;
            if let Some(note) = store.salvage_note() {
                eprintln!("warning: result store {store_path:?}: {note}");
            }
            store
        } else {
            ResultStore::create(path)?
        };
        sweep
            .run_with_store(Some(&mut store))
            .map_err(|e| match e {
                SweepError::Sim(e) => CliError::Sim(e),
                SweepError::Store(e) => CliError::Store(e),
            })?
    };
    if args.flag("json") {
        print!("{}", report.to_json());
        return Ok(());
    }
    println!(
        "{} sweep: {} cells × {} replicates (metric {}, master seed {})",
        report.process,
        report.cells.len(),
        report.replicates,
        report.metric,
        report.master_seed
    );
    if let Some(a) = &report.adaptive {
        println!(
            "adaptive: {} coarse + {} refined cells, {} top-up replicates",
            a.coarse_cells, a.refined_cells, a.topup_replicates
        );
    }
    println!("{}", report.table());
    let transitions = report.transitions();
    if transitions.is_empty() {
        println!(
            "no transition detected (needs >= 3 distinct radii per (side, k) \
             and a >= {:.0}x drop in the mean)",
            sparsegossip_analysis::ScenarioSweepReport::MIN_DROP_RATIO
        );
    }
    for t in &transitions {
        let (lo, hi) = t.band();
        println!(
            "transition side={} k={}: knee r = {:.1} (between r={} and r={}), \
             drop {:.1}x, predicted r_c = {:.1}, band [{:.1}, {:.1}] -> {}",
            t.side,
            t.k,
            t.r_knee,
            t.r_below,
            t.r_above,
            t.drop_ratio,
            t.predicted_rc,
            lo,
            hi,
            if t.within_band() { "WITHIN" } else { "OUTSIDE" }
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(s: &str) -> ParsedArgs {
        ParsedArgs::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn dispatch_runs_each_command_on_tiny_inputs() {
        for cmd in [
            "broadcast --side 12 --k 6 --seed 1",
            "broadcast --side 12 --k 6 --frog --seed 1",
            "broadcast --side 12 --k 6 --one-hop --radius 1 --seed 1",
            "broadcast --side 12 --k 6 --seed 1 --reps 4 --threads 2",
            "broadcast --side 12 --k 6 --seed 1 --json",
            "broadcast --side 12 --k 6 --radius 2 --barrier-density 0.2 --seed 1",
            "broadcast --side 12 --k 6 --churn-rate 0.05 --seed 1",
            "broadcast --side 12 --k 6 --radius 2 --hetero-fraction 0.5 --hetero-factor 2 \
             --seed 1",
            "broadcast --side 12 --k 6 --speed-fraction 0.5 --speed-factor 3 --seed 1",
            "broadcast --side 12 --k 6 --sources 3 --adversarial --seed 1",
            "broadcast --side 12 --k 6 --churn-rate 0.05 --seed 1 --json",
            "broadcast --side 12 --k 6 --churn-rate 0.05 --seed 1 --reps 3 --threads 2",
            "broadcast --side 12 --k 6 --speed-fraction 0.5 --speed-factor 2 --one-hop \
             --radius 1 --seed 1",
            "gossip --side 12 --k 4 --seed 1",
            "gossip --side 12 --k 4 --rumors 2 --seed 1",
            "gossip --side 12 --k 4 --seed 1 --json",
            "infection --side 12 --k 4 --seed 1",
            "infection --side 12 --k 4 --seed 1 --json",
            "infection --side 12 --k 4 --sources 2 --seed 1",
            "infection --side 12 --k 4 --sources 2 --adversarial --seed 1 --json",
            "coverage --side 10 --k 6 --seed 1",
            "coverage --side 10 --k 6 --seed 1 --json",
            "protocol --side 12 --k 6 --radius 2 --seed 1",
            "protocol --side 12 --k 6 --radius 2 --seed 1 --json",
            "protocol --side 12 --k 6 --radius 2 --drop 0.3 --delay 1 --cap 2 --interval 2 \
             --workers 2 --seed 1",
            "protocol --side 12 --k 6 --radius 2 --crash 0.05 --restart-delay 2 --seed 1",
            "protocol --side 12 --k 6 --radius 2 --partition-start 3 --partition-len 5 \
             --anti-entropy 4 --seed 1",
            "protocol --side 12 --k 6 --radius 2 --drop 0.3 --crash 0.02 --retransmit \
             --anti-entropy 2 --workers 2 --seed 1 --json",
            "percolation --side 16 --k 8 --samples 3 --seed 1",
            "cover --side 8 --k 4 --seed 1",
            "predator --side 10 --predators 4 --preys 3 --seed 1",
            "predator --side 10 --predators 4 --preys 3 --static-preys --seed 1",
            "predator --side 10 --predators 4 --preys 3 --seed 1 --json",
        ] {
            dispatch(&parsed(cmd)).unwrap_or_else(|e| panic!("{cmd}: {e}"));
        }
    }

    #[test]
    fn sweep_runs_from_a_spec_file() {
        let path = std::env::temp_dir().join("sparsegossip_cli_sweep_unit.toml");
        std::fs::write(
            &path,
            "[scenario]\nprocess = \"broadcast\"\nside = 10\nk = 5\n\n\
             [sweep]\nsides = [8, 10]\nradii = [0, 1, 3]\nreplicates = 2\nseed = 7\n",
        )
        .unwrap();
        let path = path.to_str().unwrap();
        dispatch(&parsed(&format!("sweep --spec {path}"))).unwrap();
        dispatch(&parsed(&format!("sweep --spec {path} --json"))).unwrap();
        dispatch(&parsed(&format!(
            "sweep --spec {path} --replicates 1 --threads 2 --seed 3"
        )))
        .unwrap();
    }

    #[test]
    fn sweep_reports_missing_and_bad_specs() {
        assert!(matches!(
            dispatch(&parsed("sweep")),
            Err(CliError::MissingOption("spec"))
        ));
        assert!(matches!(
            dispatch(&parsed("sweep --spec /nonexistent/no.toml")),
            Err(CliError::Io { .. })
        ));
        let path = std::env::temp_dir().join("sparsegossip_cli_sweep_bad.toml");
        std::fs::write(&path, "[scenario]\nprocess = \"warp\"\nside = 8\nk = 4\n").unwrap();
        let spec = path.to_str().unwrap();
        assert!(matches!(
            dispatch(&parsed(&format!("sweep --spec {spec}"))),
            Err(CliError::Spec(_))
        ));
        let good = std::env::temp_dir().join("sparsegossip_cli_sweep_reps.toml");
        std::fs::write(
            &good,
            "[scenario]\nprocess = \"broadcast\"\nside = 8\nk = 4\n",
        )
        .unwrap();
        let good = good.to_str().unwrap();
        assert!(matches!(
            dispatch(&parsed(&format!("sweep --spec {good} --replicates 0"))),
            Err(CliError::Args(ArgError::BadValue { .. }))
        ));
    }

    #[test]
    fn sweep_adaptive_and_store_flags() {
        let path = std::env::temp_dir().join("sparsegossip_cli_sweep_adaptive.toml");
        std::fs::write(
            &path,
            "[scenario]\nprocess = \"broadcast\"\nside = 10\nk = 5\n\n\
             [sweep]\nradii = [0, 1, 4]\nreplicates = 2\nseed = 7\n",
        )
        .unwrap();
        let spec = path.to_str().unwrap();
        dispatch(&parsed(&format!("sweep --spec {spec} --adaptive"))).unwrap();
        dispatch(&parsed(&format!(
            "sweep --spec {spec} --adaptive --budget 8 --replicate-budget 2 --json"
        )))
        .unwrap();
        // Budget flags without the mode are argument errors.
        assert!(matches!(
            dispatch(&parsed(&format!("sweep --spec {spec} --budget 8"))),
            Err(CliError::Args(ArgError::BadValue { .. }))
        ));
        // --resume needs --store.
        assert!(matches!(
            dispatch(&parsed(&format!("sweep --spec {spec} --resume"))),
            Err(CliError::MissingOption("store"))
        ));
        // A store-backed run checkpoints, then resumes as cache hits.
        let store = std::env::temp_dir().join(format!(
            "sparsegossip_cli_sweep_store_{}.bin",
            std::process::id()
        ));
        let store_arg = store.to_str().unwrap();
        dispatch(&parsed(&format!(
            "sweep --spec {spec} --adaptive --store {store_arg}"
        )))
        .unwrap();
        dispatch(&parsed(&format!(
            "sweep --spec {spec} --adaptive --store {store_arg} --resume"
        )))
        .unwrap();
        // Resuming a missing store is a store error, not a panic.
        assert!(matches!(
            dispatch(&parsed(&format!(
                "sweep --spec {spec} --store /nonexistent/no.bin --resume"
            ))),
            Err(CliError::Store(_))
        ));
        std::fs::remove_file(&store).unwrap();
    }

    #[test]
    fn world_options_reject_invalid_combinations() {
        // Out-of-range axis values surface as spec validation errors.
        let e = dispatch(&parsed("broadcast --side 12 --k 6 --barrier-density 1.5")).unwrap_err();
        assert!(e.to_string().contains("barrier_density"), "{e}");
        // One-hop exchange is build-gated against the world axes.
        let e = dispatch(&parsed(
            "broadcast --side 12 --k 6 --churn-rate 0.1 --one-hop --radius 1",
        ))
        .unwrap_err();
        assert!(matches!(e, CliError::Sim(_)), "{e}");
        // Infection takes only the source axes.
        let e = dispatch(&parsed("infection --side 12 --k 4 --churn-rate 0.1")).unwrap_err();
        assert!(matches!(e, CliError::Sim(_)), "{e}");
        // More sources than agents.
        let e = dispatch(&parsed("broadcast --side 12 --k 4 --sources 9")).unwrap_err();
        assert!(matches!(e, CliError::Sim(_)), "{e}");
    }

    #[test]
    fn sweep_world_axis_overrides() {
        let path = std::env::temp_dir().join("sparsegossip_cli_sweep_world.toml");
        std::fs::write(
            &path,
            "[scenario]\nprocess = \"broadcast\"\nside = 10\nk = 5\n\n\
             [sweep]\nradii = [0, 2]\nreplicates = 1\nseed = 7\n",
        )
        .unwrap();
        let path = path.to_str().unwrap();
        dispatch(&parsed(&format!(
            "sweep --spec {path} --churn-rates 0.0,0.1"
        )))
        .unwrap();
        dispatch(&parsed(&format!(
            "sweep --spec {path} --barrier-densities 0.0,0.2 --json"
        )))
        .unwrap();
        dispatch(&parsed(&format!(
            "sweep --spec {path} --radius-mixes 0.0,0.5"
        )))
        .unwrap();
        // At most one world axis per invocation.
        assert!(matches!(
            dispatch(&parsed(&format!(
                "sweep --spec {path} --churn-rates 0.1 --radius-mixes 0.5"
            ))),
            Err(CliError::Args(ArgError::BadValue { .. }))
        ));
        // Malformed or out-of-range lists are argument errors, not
        // panics.
        assert!(matches!(
            dispatch(&parsed(&format!(
                "sweep --spec {path} --churn-rates 0.1,zap"
            ))),
            Err(CliError::Args(ArgError::BadValue { .. }))
        ));
        assert!(matches!(
            dispatch(&parsed(&format!(
                "sweep --spec {path} --barrier-densities 1.5"
            ))),
            Err(CliError::Args(ArgError::BadValue { .. }))
        ));
    }

    #[test]
    fn sweep_fault_axis_overrides() {
        // The fault axes only exist on the protocol twin; any other
        // kind rejects them at cell validation.
        let path = std::env::temp_dir().join("sparsegossip_cli_sweep_fault.toml");
        std::fs::write(
            &path,
            "[scenario]\nprocess = \"protocol-broadcast\"\nside = 10\nk = 5\n\n\
             [sweep]\nradii = [0, 2]\nreplicates = 1\nseed = 7\n",
        )
        .unwrap();
        let path = path.to_str().unwrap();
        dispatch(&parsed(&format!(
            "sweep --spec {path} --crash-probs 0.0,0.05"
        )))
        .unwrap();
        dispatch(&parsed(&format!(
            "sweep --spec {path} --partition-lens 0,6 --json"
        )))
        .unwrap();
        // At most one fault axis per invocation.
        assert!(matches!(
            dispatch(&parsed(&format!(
                "sweep --spec {path} --crash-probs 0.1 --partition-lens 4"
            ))),
            Err(CliError::Args(ArgError::BadValue { .. }))
        ));
        // Malformed lists are argument errors, not panics.
        assert!(matches!(
            dispatch(&parsed(&format!(
                "sweep --spec {path} --partition-lens 4,zap"
            ))),
            Err(CliError::Args(ArgError::BadValue { .. }))
        ));
        assert!(matches!(
            dispatch(&parsed(&format!("sweep --spec {path} --crash-probs 1.5"))),
            Err(CliError::Args(ArgError::BadValue { .. }))
        ));
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(matches!(
            dispatch(&parsed("frobnicate")),
            Err(CliError::UnknownCommand(_))
        ));
    }

    #[test]
    fn invalid_config_is_reported_not_panicked() {
        let e = dispatch(&parsed("broadcast --side 0 --k 4")).unwrap_err();
        assert!(e.to_string().contains("grid"));
        let e = dispatch(&parsed("broadcast --side 8 --k 1")).unwrap_err();
        assert!(e.to_string().contains("agents"));
        let e = dispatch(&parsed("predator --side 8 --predators 0 --preys 2")).unwrap_err();
        assert!(e.to_string().contains("agents"));
        let e = dispatch(&parsed("protocol --side 8 --k 4 --drop 1.5")).unwrap_err();
        assert!(matches!(e, CliError::Args(ArgError::BadValue { .. })));
        let e = dispatch(&parsed("protocol --side 8 --k 4 --interval 0")).unwrap_err();
        assert!(matches!(e, CliError::Args(ArgError::BadValue { .. })));
        // Fault settings validate through the shared FaultConfig path.
        let e = dispatch(&parsed("protocol --side 8 --k 4 --crash 1.5")).unwrap_err();
        assert!(matches!(e, CliError::Sim(_)), "{e}");
        let e = dispatch(&parsed("protocol --side 8 --k 4 --restart-delay 0")).unwrap_err();
        assert!(matches!(e, CliError::Sim(_)), "{e}");
    }

    #[test]
    fn json_outputs_are_well_formed() {
        let done = BroadcastOutcome {
            broadcast_time: Some(10),
            informed: 4,
            k: 4,
        };
        assert_eq!(
            broadcast_json(&done),
            "{\"process\":\"broadcast\",\"broadcast_time\":10,\"informed\":4,\"k\":4}"
        );
        let capped = BroadcastOutcome {
            broadcast_time: None,
            informed: 2,
            k: 4,
        };
        assert!(broadcast_json(&capped).contains("\"broadcast_time\":null"));
        let inf = InfectionOutcome {
            infection_time: Some(3),
            per_agent: vec![Some(0), None, Some(3)],
            mean_time: Some(1.5),
        };
        assert_eq!(
            infection_json(&inf),
            "{\"process\":\"infection\",\"infection_time\":3,\"mean_time\":1.5,\"per_agent\":[0,null,3]}"
        );
        let cov = CoverageOutcome {
            broadcast_time: Some(1),
            coverage_time: None,
            covered: 9,
            num_nodes: 16,
        };
        assert!(coverage_json(&cov).contains("\"coverage_time\":null"));
        let ext = ExtinctionOutcome {
            extinction_time: Some(5),
            survivors: 0,
            num_preys: 3,
        };
        assert!(extinction_json(&ext).contains("\"extinction_time\":5"));
        let g = GossipOutcome {
            gossip_time: None,
            min_rumors: 1,
            num_rumors: 4,
        };
        assert!(gossip_json(&g).contains("\"gossip_time\":null"));
        let p = ProtocolOutcome {
            completion_time: Some(7),
            informed: 4,
            k: 4,
            stats: sparsegossip_core::RuntimeStats {
                sent: 10,
                delivered: 8,
                dropped: 2,
                timers: 5,
                crashes: 1,
                restarts: 1,
                retransmits: 3,
                digests: 2,
            },
            log_hash: 0xAB,
            error: None,
        };
        // Trivial faults: the counters stay hidden so the output is
        // byte-identical to the pre-fault twin.
        assert_eq!(
            protocol_json(&p, &FaultConfig::DEFAULT),
            "{\"process\":\"protocol\",\"completion_time\":7,\"informed\":4,\"k\":4,\
             \"sent\":10,\"delivered\":8,\"dropped\":2,\"timers\":5,\
             \"log_hash\":\"00000000000000ab\"}"
        );
        let faulty = FaultConfig {
            crash_prob: 0.1,
            retransmit: true,
            ..FaultConfig::DEFAULT
        };
        assert_eq!(
            protocol_json(&p, &faulty),
            "{\"process\":\"protocol\",\"completion_time\":7,\"informed\":4,\"k\":4,\
             \"sent\":10,\"delivered\":8,\"dropped\":2,\"timers\":5,\
             \"crashes\":1,\"restarts\":1,\"retransmits\":3,\"digests\":2,\
             \"log_hash\":\"00000000000000ab\"}"
        );
    }

    #[test]
    fn usage_mentions_every_command() {
        for cmd in [
            "broadcast",
            "gossip",
            "infection",
            "coverage",
            "protocol",
            "percolation",
            "cover",
            "predator",
            "sweep",
            "--json",
        ] {
            assert!(USAGE.contains(cmd), "usage missing {cmd}");
        }
    }
}
