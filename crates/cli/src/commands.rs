//! Subcommand implementations.

use core::fmt;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_analysis::Table;
use sparsegossip_conngraph::{critical_radius, percolation_profile};
use sparsegossip_core::{
    broadcast_with_coverage, BroadcastSim, ExchangeRule, FrogSim, GossipSim, Mobility,
    PredatorPreySim, SimConfig,
};
use sparsegossip_grid::{Grid, Topology};
use sparsegossip_walks::multi_cover;

use crate::args::{ArgError, ParsedArgs};

/// Usage text for `help`.
pub const USAGE: &str = "\
sparsegossip — information dissemination in sparse mobile networks
(reproduction of Pettarin et al., PODC 2011)

USAGE:
  sparsegossip <command> [--option value]... [--flag]...

COMMANDS:
  broadcast    one rumor to all agents
               --side N --k K --radius R --seed S --max-steps M
               --frog (only informed agents move)
               --one-hop (one hop per step instead of component flooding)
  gossip       all rumors to all agents
               --side N --k K --radius R --seed S --rumors M
  coverage     broadcast + informed-agent coverage times
               --side N --k K --radius R --seed S
  percolation  giant-component fraction around r_c = sqrt(n/k)
               --side N --k K --samples S --seed S
  cover        cover time of k independent walks
               --side N --k K --cap C --seed S
  predator     predator-prey extinction time
               --side N --predators K --preys M --radius R
               --static-preys --seed S
  help         this text

Defaults: --side 64, --k 32, --radius 0, --seed 2011.
";

/// Errors surfaced to the user.
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing or validation failed.
    Args(ArgError),
    /// The simulation could not be configured.
    Sim(sparsegossip_core::SimError),
    /// Unknown subcommand.
    UnknownCommand(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Args(e) => write!(f, "{e}"),
            Self::Sim(e) => write!(f, "{e}"),
            Self::UnknownCommand(c) => {
                write!(f, "unknown command {c:?}; try `sparsegossip help`")
            }
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        Self::Args(e)
    }
}

impl From<sparsegossip_core::SimError> for CliError {
    fn from(e: sparsegossip_core::SimError) -> Self {
        Self::Sim(e)
    }
}

impl From<sparsegossip_grid::GridError> for CliError {
    fn from(e: sparsegossip_grid::GridError) -> Self {
        Self::Sim(sparsegossip_core::SimError::Grid(e))
    }
}

impl From<sparsegossip_walks::WalkError> for CliError {
    fn from(e: sparsegossip_walks::WalkError) -> Self {
        Self::Sim(sparsegossip_core::SimError::Walk(e))
    }
}

/// Routes a parsed command line to its implementation.
pub fn dispatch(args: &ParsedArgs) -> Result<(), CliError> {
    match args.command.as_str() {
        "broadcast" => broadcast(args),
        "gossip" => gossip(args),
        "coverage" => coverage(args),
        "percolation" => percolation(args),
        "cover" => cover(args),
        "predator" => predator(args),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

struct Common {
    side: u32,
    k: usize,
    radius: u32,
    seed: u64,
}

fn common(args: &ParsedArgs) -> Result<Common, CliError> {
    Ok(Common {
        side: args.get("side", 64u32)?,
        k: args.get("k", 32usize)?,
        radius: args.get("radius", 0u32)?,
        seed: args.get("seed", 2011u64)?,
    })
}

fn broadcast(args: &ParsedArgs) -> Result<(), CliError> {
    let c = common(args)?;
    let max_steps = args.get("max-steps", SimConfig::default_step_cap(c.side, c.k))?;
    let mut builder = SimConfig::builder(c.side, c.k)
        .radius(c.radius)
        .max_steps(max_steps);
    if args.flag("one-hop") {
        builder = builder.exchange_rule(ExchangeRule::OneHop);
    }
    if args.flag("frog") {
        builder = builder.mobility(Mobility::InformedOnly);
    }
    let config = builder.build()?;
    let mut rng = SmallRng::seed_from_u64(c.seed);
    let mut sim = if args.flag("frog") {
        FrogSim::new(&config, &mut rng)?
    } else {
        BroadcastSim::new(&config, &mut rng)?
    };
    let out = sim.run(&mut rng);
    println!(
        "n = {}, k = {}, r = {} (r_c = {:.1}), seed = {}",
        config.n(),
        config.k(),
        config.radius(),
        config.critical_radius(),
        c.seed
    );
    match out.broadcast_time {
        Some(t) => println!("T_B = {t}"),
        None => println!(
            "not finished after {} steps ({}/{} informed)",
            config.max_steps(),
            out.informed,
            out.k
        ),
    }
    Ok(())
}

fn gossip(args: &ParsedArgs) -> Result<(), CliError> {
    let c = common(args)?;
    let rumors: usize = args.get("rumors", c.k)?;
    let grid = Grid::new(c.side)?;
    let cap = SimConfig::default_step_cap(c.side, c.k);
    let mut rng = SmallRng::seed_from_u64(c.seed);
    let mut sim = GossipSim::with_rumors(grid, c.k, rumors, c.radius, cap, &mut rng)?;
    let out = sim.run(&mut rng);
    match out.gossip_time {
        Some(t) => println!("T_G = {t} ({} rumors to {} agents)", out.num_rumors, c.k),
        None => println!(
            "not finished after {cap} steps (min {}/{} rumors per agent)",
            out.min_rumors, out.num_rumors
        ),
    }
    Ok(())
}

fn coverage(args: &ParsedArgs) -> Result<(), CliError> {
    let c = common(args)?;
    let config = SimConfig::builder(c.side, c.k)
        .radius(c.radius)
        .max_steps(SimConfig::default_step_cap(c.side, c.k) * 4)
        .build()?;
    let mut rng = SmallRng::seed_from_u64(c.seed);
    let out = broadcast_with_coverage(&config, &mut rng)?;
    println!("T_B = {:?}", out.broadcast_time);
    println!(
        "T_C = {:?} ({}/{} nodes)",
        out.coverage_time, out.covered, out.num_nodes
    );
    if let Some(r) = out.ratio() {
        println!("T_C/T_B = {r:.2}");
    }
    Ok(())
}

fn percolation(args: &ParsedArgs) -> Result<(), CliError> {
    let c = common(args)?;
    if args.has_option("radius") {
        eprintln!("note: --radius is ignored; percolation sweeps radii around r_c");
    }
    let samples: u32 = args.get("samples", 30u32)?;
    let grid = Grid::new(c.side)?;
    let rc = critical_radius(grid.num_nodes() as f64, c.k as f64);
    let radii: Vec<u32> = [0.25f64, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0]
        .iter()
        .map(|f| (f * rc).round().max(1.0) as u32)
        .collect();
    let mut rng = SmallRng::seed_from_u64(c.seed);
    let profile = percolation_profile(&grid, c.k, &radii, samples, &mut rng);
    let mut table = Table::new(vec!["r".into(), "r/r_c".into(), "giant fraction".into()]);
    for p in &profile {
        table.push_row(vec![
            p.r.to_string(),
            format!("{:.2}", f64::from(p.r) / rc),
            format!("{:.3}", p.mean_giant_fraction),
        ]);
    }
    println!("r_c = sqrt(n/k) = {rc:.1}");
    println!("{table}");
    Ok(())
}

fn cover(args: &ParsedArgs) -> Result<(), CliError> {
    let c = common(args)?;
    let cap: u64 = args.get("cap", 200 * u64::from(c.side) * u64::from(c.side))?;
    let grid = Grid::new(c.side)?;
    let mut rng = SmallRng::seed_from_u64(c.seed);
    let run = multi_cover(grid, c.k, cap, &mut rng)?;
    match run.cover_time {
        Some(t) => println!("cover time = {t} ({} walks, {} nodes)", c.k, run.num_nodes),
        None => println!(
            "not covered after {cap} steps ({:.1}% done)",
            100.0 * run.coverage_fraction()
        ),
    }
    Ok(())
}

fn predator(args: &ParsedArgs) -> Result<(), CliError> {
    let c = common(args)?;
    let predators: usize = args.get("predators", 16usize)?;
    let preys: usize = args.get("preys", 8usize)?;
    let cap = 500 * u64::from(c.side) * u64::from(c.side);
    let mut rng = SmallRng::seed_from_u64(c.seed);
    let mut sim = PredatorPreySim::<Grid>::on_grid(
        c.side,
        predators,
        preys,
        c.radius,
        !args.flag("static-preys"),
        cap,
        &mut rng,
    )?;
    let out = sim.run(&mut rng);
    match out.extinction_time {
        Some(t) => println!("extinction time = {t} ({predators} predators, {preys} preys)"),
        None => println!("{} preys survived after {cap} steps", out.survivors),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(s: &str) -> ParsedArgs {
        ParsedArgs::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn dispatch_runs_each_command_on_tiny_inputs() {
        for cmd in [
            "broadcast --side 12 --k 6 --seed 1",
            "broadcast --side 12 --k 6 --frog --seed 1",
            "broadcast --side 12 --k 6 --one-hop --radius 1 --seed 1",
            "gossip --side 12 --k 4 --seed 1",
            "gossip --side 12 --k 4 --rumors 2 --seed 1",
            "coverage --side 10 --k 6 --seed 1",
            "percolation --side 16 --k 8 --samples 3 --seed 1",
            "cover --side 8 --k 4 --seed 1",
            "predator --side 10 --predators 4 --preys 3 --seed 1",
            "predator --side 10 --predators 4 --preys 3 --static-preys --seed 1",
        ] {
            dispatch(&parsed(cmd)).unwrap_or_else(|e| panic!("{cmd}: {e}"));
        }
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(matches!(
            dispatch(&parsed("frobnicate")),
            Err(CliError::UnknownCommand(_))
        ));
    }

    #[test]
    fn invalid_config_is_reported_not_panicked() {
        let e = dispatch(&parsed("broadcast --side 0 --k 4")).unwrap_err();
        assert!(e.to_string().contains("grid"));
        let e = dispatch(&parsed("broadcast --side 8 --k 1")).unwrap_err();
        assert!(e.to_string().contains("agents"));
    }

    #[test]
    fn usage_mentions_every_command() {
        for cmd in [
            "broadcast",
            "gossip",
            "coverage",
            "percolation",
            "cover",
            "predator",
        ] {
            assert!(USAGE.contains(cmd), "usage missing {cmd}");
        }
    }
}
