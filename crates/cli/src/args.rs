//! Minimal `--key value` argument parsing for the CLI.
//!
//! Kept dependency-free on purpose: the workspace's only external
//! dependencies are the ones justified in `DESIGN.md`.

use core::fmt;
use std::collections::BTreeMap;

/// A parsed command line: a subcommand name plus `--key value` options
/// and bare `--flag`s.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first positional argument).
    pub command: String,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Errors from argument parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand was given.
    MissingCommand,
    /// A value could not be parsed.
    BadValue {
        /// Option name.
        key: String,
        /// Raw value.
        value: String,
    },
    /// A positional argument appeared where options were expected.
    UnexpectedPositional(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingCommand => write!(f, "missing subcommand; try `sparsegossip help`"),
            Self::BadValue { key, value } => {
                write!(f, "option --{key} has invalid value {value:?}")
            }
            Self::UnexpectedPositional(a) => write!(f, "unexpected argument {a:?}"),
        }
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parses `args` (without the program name).
    ///
    /// A token starting with `--` is an option; if the next token exists
    /// and does not start with `--`, it is the value, otherwise the
    /// token is a bare flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::MissingCommand`] if no subcommand was given
    /// and [`ArgError::UnexpectedPositional`] on stray positionals.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgError> {
        let mut iter = args.into_iter().peekable();
        let command = iter.next().ok_or(ArgError::MissingCommand)?;
        if command.starts_with("--") {
            return Err(ArgError::MissingCommand);
        }
        let mut parsed = Self {
            command,
            options: BTreeMap::new(),
            flags: Vec::new(),
        };
        while let Some(tok) = iter.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(ArgError::UnexpectedPositional(tok));
            };
            match iter.peek() {
                Some(v) if !v.starts_with("--") => {
                    let value = iter.next().expect("peeked");
                    parsed.options.insert(key.to_string(), value);
                }
                _ => parsed.flags.push(key.to_string()),
            }
        }
        Ok(parsed)
    }

    /// Whether the bare flag `--name` was given.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Whether `--name` was given a value.
    #[must_use]
    pub fn has_option(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// Parses `--name` as `T`, with a default when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] if present but unparsable.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                key: name.to_string(),
                value: v.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let p = ParsedArgs::parse(to_args("broadcast --side 64 --k 32 --frog")).unwrap();
        assert_eq!(p.command, "broadcast");
        assert_eq!(p.get::<u32>("side", 0).unwrap(), 64);
        assert_eq!(p.get::<usize>("k", 0).unwrap(), 32);
        assert!(p.flag("frog"));
        assert!(!p.flag("one-hop"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let p = ParsedArgs::parse(to_args("gossip")).unwrap();
        assert_eq!(p.get::<u32>("side", 48).unwrap(), 48);
        assert!(!p.has_option("side"));
    }

    #[test]
    fn rejects_missing_command_and_bad_values() {
        assert_eq!(
            ParsedArgs::parse(Vec::<String>::new()).unwrap_err(),
            ArgError::MissingCommand
        );
        assert_eq!(
            ParsedArgs::parse(to_args("--side 4")).unwrap_err(),
            ArgError::MissingCommand
        );
        let p = ParsedArgs::parse(to_args("broadcast --side four")).unwrap();
        assert!(matches!(
            p.get::<u32>("side", 0),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn rejects_stray_positionals() {
        assert_eq!(
            ParsedArgs::parse(to_args("broadcast stray")).unwrap_err(),
            ArgError::UnexpectedPositional("stray".to_string())
        );
    }

    #[test]
    fn option_followed_by_option_is_a_flag() {
        let p = ParsedArgs::parse(to_args("x --a --b 3")).unwrap();
        assert!(p.flag("a"));
        assert_eq!(p.get::<u32>("b", 0).unwrap(), 3);
    }

    #[test]
    fn error_messages_are_lowercase() {
        for e in [
            ArgError::MissingCommand,
            ArgError::BadValue {
                key: "k".into(),
                value: "x".into(),
            },
            ArgError::UnexpectedPositional("y".into()),
        ] {
            assert!(e.to_string().chars().next().unwrap().is_lowercase());
        }
    }
}
