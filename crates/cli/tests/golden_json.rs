//! Golden-output tests for the CLI's `--json` mode: the exact bytes of
//! every run command's JSON line and of the `sweep` command's JSON
//! report are pinned here, so downstream tooling can rely on the
//! schema (field names, ordering, null encoding) *and* on the seeded
//! draws staying draw-for-draw stable.
//!
//! If a change legitimately alters the simulation draws or the schema,
//! update these snapshots deliberately — that is the point of the test.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_sparsegossip"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        String::from_utf8(out.stderr).expect("utf-8 stderr"),
        out.status.success(),
    )
}

fn assert_golden(args: &str, expected_stdout: &str) {
    let argv: Vec<&str> = args.split_whitespace().collect();
    let (stdout, stderr, ok) = run(&argv);
    assert!(ok, "`{args}` failed: {stderr}");
    assert_eq!(
        stdout, expected_stdout,
        "`{args}` drifted from its golden output"
    );
}

#[test]
fn broadcast_json_golden() {
    assert_golden(
        "broadcast --side 12 --k 6 --seed 1 --json",
        "{\"process\":\"broadcast\",\"broadcast_time\":164,\"informed\":6,\"k\":6}\n",
    );
}

#[test]
fn broadcast_ensemble_json_golden() {
    assert_golden(
        "broadcast --side 12 --k 6 --seed 1 --reps 3 --threads 2 --json",
        "{\"process\":\"broadcast\",\"reps\":3,\"mean\":303,\"median\":245,\"min\":142,\
         \"max\":522,\"samples\":[142,522,245]}\n",
    );
}

#[test]
fn gossip_json_golden() {
    assert_golden(
        "gossip --side 12 --k 4 --seed 1 --json",
        "{\"process\":\"gossip\",\"gossip_time\":532,\"min_rumors\":4,\"num_rumors\":4}\n",
    );
}

#[test]
fn infection_json_golden() {
    assert_golden(
        "infection --side 12 --k 4 --seed 1 --json",
        "{\"process\":\"infection\",\"infection_time\":218,\"mean_time\":114.75,\
         \"per_agent\":[0,67,174,218]}\n",
    );
}

#[test]
fn coverage_json_golden() {
    assert_golden(
        "coverage --side 10 --k 6 --seed 1 --json",
        "{\"process\":\"coverage\",\"broadcast_time\":305,\"coverage_time\":349,\
         \"covered\":100,\"num_nodes\":100}\n",
    );
}

#[test]
fn predator_json_golden() {
    assert_golden(
        "predator --side 10 --predators 4 --preys 3 --seed 1 --json",
        "{\"process\":\"predator_prey\",\"extinction_time\":116,\"survivors\":0,\
         \"num_preys\":3}\n",
    );
}

#[test]
fn protocol_json_golden() {
    // Ideal network: the twin's completion tick equals the analytic
    // broadcast's T_B for the same seed (see `broadcast --side 12 --k 6
    // --seed 1` completing at 164 with radius 0; radius 2 here).
    assert_golden(
        "protocol --side 12 --k 6 --radius 2 --seed 1 --json",
        "{\"process\":\"protocol\",\"completion_time\":50,\"informed\":6,\"k\":6,\
         \"sent\":14,\"delivered\":14,\"dropped\":0,\"timers\":175,\
         \"log_hash\":\"e50ff5335a1b1ed4\"}\n",
    );
    // Lossy network: same trajectory, protocol-level drops change the
    // message counters and the event-log hash but stay deterministic.
    assert_golden(
        "protocol --side 12 --k 6 --radius 2 --seed 1 --drop 0.5 --json",
        "{\"process\":\"protocol\",\"completion_time\":50,\"informed\":6,\"k\":6,\
         \"sent\":43,\"delivered\":16,\"dropped\":27,\"timers\":130,\
         \"log_hash\":\"1c8d037cd923332b\"}\n",
    );
}

#[test]
fn protocol_twin_matches_broadcast_golden() {
    // The twin and the analytic broadcast share the seeded trajectory:
    // identical completion time at identical (side, k, r, seed).
    assert_golden(
        "broadcast --side 12 --k 6 --radius 2 --seed 1 --json",
        "{\"process\":\"broadcast\",\"broadcast_time\":50,\"informed\":6,\"k\":6}\n",
    );
}

#[test]
fn protocol_worker_count_never_changes_output() {
    let reference = run(&[
        "protocol", "--side", "12", "--k", "6", "--radius", "2", "--seed", "3", "--drop", "0.25",
        "--json",
    ]);
    assert!(reference.2, "reference run failed: {}", reference.1);
    for workers in ["2", "8"] {
        let out = run(&[
            "protocol",
            "--side",
            "12",
            "--k",
            "6",
            "--radius",
            "2",
            "--seed",
            "3",
            "--drop",
            "0.25",
            "--workers",
            workers,
            "--json",
        ]);
        assert!(out.2, "workers={workers} run failed: {}", out.1);
        assert_eq!(out.0, reference.0, "workers={workers} changed the output");
    }
}

const SWEEP_SPEC: &str = "[scenario]\n\
process = \"broadcast\"\n\
side = 10\n\
k = 5\n\
max_steps = 500\n\
\n\
[sweep]\n\
radii = [0, 1, 3]\n\
replicates = 2\n\
seed = 7\n";

// Regenerated for the content-addressed per-cell seeds
// (`cell_seed(master, side, k, r, replicate)` replaced the old
// grid-index derivation) and the Student-t small-sample CI widths
// (t(df=1) = 12.706 at n = 2 replicates).
const SWEEP_GOLDEN: &str = r#"{
  "experiment": "scenario_sweep",
  "process": "broadcast",
  "metric": "time",
  "seed": 7,
  "replicates": 2,
  "cells": [
    {"side": 10, "k": 5, "r": 0, "r_c": 4.47213595499958, "mean": 167, "ci95": 571.77, "median": 167, "min": 122, "max": 212, "samples": [122,212]},
    {"side": 10, "k": 5, "r": 1, "r_c": 4.47213595499958, "mean": 121, "ci95": 444.71, "median": 121, "min": 86, "max": 156, "samples": [156,86]},
    {"side": 10, "k": 5, "r": 3, "r_c": 4.47213595499958, "mean": 28, "ci95": 152.47199999999998, "median": 28, "min": 16, "max": 40, "samples": [16,40]}
  ],
  "transitions": [
    {"side": 10, "k": 5, "r_below": 1, "r_above": 3, "r_knee": 1.7320508075688772, "drop_ratio": 4.321428571428571, "predicted_rc": 4.47213595499958, "band": [1.118033988749895, 17.88854381999832], "within_band": true}
  ]
}
"#;

#[test]
fn sweep_json_golden() {
    let path = std::env::temp_dir().join("sparsegossip_golden_sweep.toml");
    std::fs::write(&path, SWEEP_SPEC).unwrap();
    let path = path.to_str().unwrap();
    let (stdout, stderr, ok) = run(&["sweep", "--spec", path, "--json"]);
    assert!(ok, "sweep failed: {stderr}");
    assert_eq!(stdout, SWEEP_GOLDEN, "sweep JSON drifted from its golden");
}

/// Schema-level assertions on top of the byte-exact goldens: the keys
/// downstream tooling greps for, and `null` for capped runs.
#[test]
fn json_schema_contract() {
    let (stdout, _, ok) = run(&[
        "broadcast",
        "--side",
        "64",
        "--k",
        "2",
        "--seed",
        "1",
        "--max-steps",
        "1",
        "--json",
    ]);
    assert!(ok);
    assert!(
        stdout.contains("\"broadcast_time\":null"),
        "capped runs must encode time as null: {stdout}"
    );
    for (args, keys) in [
        (
            vec![
                "broadcast",
                "--side",
                "12",
                "--k",
                "6",
                "--seed",
                "1",
                "--json",
            ],
            vec!["\"process\"", "\"broadcast_time\"", "\"informed\"", "\"k\""],
        ),
        (
            vec![
                "gossip", "--side", "12", "--k", "4", "--seed", "1", "--json",
            ],
            vec!["\"gossip_time\"", "\"min_rumors\"", "\"num_rumors\""],
        ),
        (
            vec![
                "infection",
                "--side",
                "12",
                "--k",
                "4",
                "--seed",
                "1",
                "--json",
            ],
            vec!["\"infection_time\"", "\"mean_time\"", "\"per_agent\""],
        ),
        (
            vec![
                "coverage", "--side", "10", "--k", "6", "--seed", "1", "--json",
            ],
            vec![
                "\"broadcast_time\"",
                "\"coverage_time\"",
                "\"covered\"",
                "\"num_nodes\"",
            ],
        ),
        (
            vec![
                "predator",
                "--side",
                "10",
                "--predators",
                "4",
                "--preys",
                "3",
                "--seed",
                "1",
                "--json",
            ],
            vec!["\"extinction_time\"", "\"survivors\"", "\"num_preys\""],
        ),
    ] {
        let (stdout, stderr, ok) = run(&args);
        assert!(ok, "{args:?} failed: {stderr}");
        for key in keys {
            assert!(
                stdout.contains(key),
                "{args:?} output missing {key}: {stdout}"
            );
        }
        assert_eq!(stdout.lines().count(), 1, "run commands emit one JSON line");
    }
}
