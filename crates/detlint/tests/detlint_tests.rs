//! Integration tests: the fixture trees exercise every lint class end
//! to end (library API and binary), the golden JSON snapshot pins the
//! report format, and the self-scan pins the real workspace to its
//! committed baseline — including the hot markers the zero-alloc
//! contract depends on.

use std::path::{Path, PathBuf};
use std::process::Command;

use detlint::{render_json, scan_workspace, Config, LintId};

fn crate_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn fixture(name: &str) -> PathBuf {
    crate_dir().join("tests/fixtures").join(name)
}

fn scan(root: &Path) -> detlint::ScanResult {
    scan_workspace(root, &Config::fallback()).expect("fixture tree scans")
}

#[test]
fn violations_fixture_hits_every_lint_class() {
    let result = scan(&fixture("violations"));
    for lint in [
        LintId::NondetMap,
        LintId::WallClock,
        LintId::UnseededRng,
        LintId::HotAlloc,
        LintId::Panic,
        LintId::Annotation,
    ] {
        assert!(
            result.findings.iter().any(|f| f.lint == lint),
            "no {} finding in the violations fixture",
            lint.as_str()
        );
    }
    assert_eq!(result.findings.len(), 10);
    assert_eq!(result.new_findings().len(), 10);
}

#[test]
fn violations_fixture_respects_path_scopes() {
    let result = scan(&fixture("violations"));
    let cli: Vec<_> = result
        .findings
        .iter()
        .filter(|f| f.file == "crates/cli/src/main.rs")
        .collect();
    // The CLI file contains Instant::now and .unwrap() too, but only
    // unseeded-rng applies in that tier.
    assert_eq!(cli.len(), 1, "{cli:?}");
    assert_eq!(cli[0].lint, LintId::UnseededRng);
}

#[test]
fn clean_fixture_is_finding_free() {
    let result = scan(&fixture("clean"));
    assert!(
        result.findings.is_empty(),
        "clean fixture produced: {:?}",
        result.findings
    );
    assert_eq!(result.hot_regions_in("crates/core/src/good.rs"), 1);
}

#[test]
fn golden_json_snapshot_is_stable() {
    let result = scan(&fixture("violations"));
    let want = std::fs::read_to_string(crate_dir().join("tests/golden/violations.json"))
        .expect("golden snapshot exists");
    assert_eq!(
        render_json(&result),
        want,
        "JSON report drifted from tests/golden/violations.json; \
         regenerate with: cargo run -p detlint -- \
         --root crates/detlint/tests/fixtures/violations --json \
         --out crates/detlint/tests/golden/violations.json"
    );
}

#[test]
fn binary_exit_codes_match_the_contract() {
    let bin = env!("CARGO_BIN_EXE_detlint");
    let run = |args: &[&str]| Command::new(bin).args(args).output().expect("binary runs");
    let violations = fixture("violations");
    let clean = fixture("clean");
    assert_eq!(
        run(&["--root", violations.to_str().expect("utf8 path")])
            .status
            .code(),
        Some(1),
        "new findings must exit 1"
    );
    assert_eq!(
        run(&["--root", clean.to_str().expect("utf8 path")])
            .status
            .code(),
        Some(0),
        "clean tree must exit 0"
    );
    assert_eq!(
        run(&["--bogus-flag"]).status.code(),
        Some(2),
        "usage errors must exit 2"
    );
}

/// The self-scan: detlint run on its own workspace, with the committed
/// `detlint.toml`, must be green — and must stay *exactly* at the
/// baseline. Both directions fail: a new finding means a contract
/// violation landed; a vanished finding means the baseline is stale and
/// must be tightened.
#[test]
fn workspace_self_scan_matches_committed_baseline() {
    let root = crate_dir().join("../..");
    let config = Config::load(&root.join("detlint.toml")).expect("committed config parses");
    assert!(
        config.baseline.is_empty(),
        "the workspace panic surface is clean; new findings must be fixed, \
         not baselined"
    );
    let result = scan_workspace(&root, &config).expect("workspace scans");
    assert!(
        result.new_findings().is_empty(),
        "findings beyond the committed baseline:\n{}",
        detlint::render_table(&result)
    );
    assert!(
        result.stale.is_empty(),
        "stale baseline entries (tighten detlint.toml): {:?}",
        result.stale
    );
    let total: usize = config.baseline.iter().map(|b| b.count).sum();
    assert_eq!(
        result.findings.len(),
        total,
        "workspace findings must equal the baseline exactly"
    );
}

/// The zero-alloc contract is only as good as its markers: the hot
/// paths named in the determinism contract must actually carry
/// `// detlint: hot`, else the hot-alloc lint silently checks nothing.
#[test]
fn workspace_hot_paths_carry_their_markers() {
    let root = crate_dir().join("../..");
    let config = Config::load(&root.join("detlint.toml")).expect("committed config parses");
    let result = scan_workspace(&root, &config).expect("workspace scans");
    for (file, min) in [
        ("crates/core/src/process.rs", 1),            // Simulation::step
        ("crates/conngraph/src/seeded.rs", 1),        // components_from_seeds_on
        ("crates/conngraph/src/spatial.rs", 2),       // rebuild + apply_moves
        ("crates/walks/src/engine.rs", 4),            // step_all{,_into}, step_masked{,_into}
        ("crates/core/src/broadcast.rs", 2),          // exchange_one_hop + exchange_components
        ("crates/core/src/gossip.rs", 1),             // exchange
        ("crates/core/src/rumor.rs", 1),              // RumorSets::exchange
        ("crates/core/src/infection.rs", 1),          // exchange
        ("crates/analysis/src/scenario_sweep.rs", 2), // refine wave scan + top_up scan
        ("crates/protocol/src/runtime.rs", 3),        // fault draw + retry queue + anti-entropy
    ] {
        assert!(
            result.hot_regions_in(file) >= min,
            "{file}: expected at least {min} `// detlint: hot` region(s), \
             found {}",
            result.hot_regions_in(file)
        );
    }
}
