//! Clean fixture: every line here looks suspicious but must produce
//! zero findings — annotated escape hatches, literals, comments, test
//! modules and lookalike identifiers.

use std::collections::BTreeMap;
use std::collections::HashSet; // detlint: allow(nondet-map, membership probe; iteration order never observed)

pub fn strings_and_comments() -> &'static str {
    // HashMap, Instant::now and thread_rng in a comment are fine.
    /* So is SystemTime in a block comment. */
    "HashMap Instant::now thread_rng .unwrap() vec![panic!]"
}

pub fn raw_literal() -> &'static str {
    r#"rand::random() and from_entropy() stay inert in raw strings"#
}

pub fn lookalikes(x: Option<u64>) -> u64 {
    // unwrap_or / expect_err are not the panicking forms.
    let v: Result<u64, u64> = Err(0);
    x.unwrap_or(0) + v.expect_err("always err")
}

// detlint: hot
pub fn hot_but_clean(acc: &mut Vec<u64>, xs: &[u64]) {
    acc.clear();
    acc.extend_from_slice(xs);
}

pub fn cold_allocates(xs: &[u64]) -> Vec<u64> {
    // Allocation outside a hot region is fine.
    xs.to_vec()
}

pub fn annotated_panic(xs: &[u64]) -> u64 {
    // detlint: allow(panic, fixture invariant: index 0 exists by construction)
    xs.first().copied().unwrap()
}

pub fn probe(xs: &[u64]) -> bool {
    let seen: HashSet<u64> = xs.iter().copied().collect(); // detlint: allow(nondet-map, membership probe; iteration order never observed)
    seen.len() == xs.len()
}

pub fn ordered() -> BTreeMap<u64, u64> {
    BTreeMap::new()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let x: Option<u64> = Some(1);
        assert_eq!(x.unwrap(), 1);
        let v: Result<u64, &str> = Ok(2);
        v.expect("test expectations are fine");
    }
}
