//! Deliberately violating fixture: one hit per lint class. The
//! workspace config excludes this tree; integration tests scan it
//! directly and pin the exact finding set.

use std::collections::HashMap;

pub fn wall() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn entropy() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

// detlint: hot
pub fn hot_path(xs: &[u64]) -> Vec<u64> {
    let v = vec![0u64];
    drop(v);
    xs.iter().copied().collect()
}

pub fn lib_panic(x: Option<u64>) -> u64 {
    x.unwrap()
}

pub fn keyed() -> HashMap<u64, u64> {
    HashMap::new() // detlint: allow(nondet-map)
}
