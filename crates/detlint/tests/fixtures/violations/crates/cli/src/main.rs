//! Scope fixture: wall-clock and panics are legal in the CLI tier, but
//! unseeded RNG is forbidden everywhere.

pub fn timed() -> u64 {
    let t = std::time::Instant::now();
    let x: u64 = rand::random();
    t.elapsed().as_nanos() as u64 + x
}

pub fn cli_panic(x: Option<u64>) -> u64 {
    x.unwrap()
}
