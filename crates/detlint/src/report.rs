//! Rendering: an aligned human-readable table and a stable JSON form
//! (hand-rolled — the workspace vendors no serde), both derived from the
//! same sorted [`ScanResult`] so the two views never disagree.

use std::fmt::Write as _;

use crate::lints::LintId;
use crate::scan::ScanResult;

/// Renders the human-readable report: one aligned row per finding
/// (new findings marked `NEW`), then stale-baseline warnings and a
/// one-line summary.
#[must_use]
pub fn render_table(result: &ScanResult) -> String {
    let mut out = String::new();
    if !result.findings.is_empty() {
        let loc_w = result
            .findings
            .iter()
            .map(|f| f.file.len() + 1 + digits(f.line))
            .max()
            .unwrap_or(0);
        let lint_w = result
            .findings
            .iter()
            .map(|f| f.lint.as_str().len())
            .max()
            .unwrap_or(0);
        let what_w = result
            .findings
            .iter()
            .map(|f| f.what.len())
            .max()
            .unwrap_or(0);
        for f in &result.findings {
            let loc = format!("{}:{}", f.file, f.line);
            let tag = if f.is_new { "NEW " } else { "     " };
            let _ = writeln!(
                out,
                "{tag}{loc:<loc_w$}  {lint:<lint_w$}  {what:<what_w$}  | {src}",
                lint = f.lint.as_str(),
                what = f.what,
                src = f.source,
            );
        }
        out.push('\n');
    }
    for s in &result.stale {
        let _ = writeln!(out, "warning: {s}");
    }
    let new = result.new_findings().len();
    let _ = writeln!(
        out,
        "detlint: {} file(s), {} finding(s), {} new, {} stale baseline entr{}",
        result.files_scanned,
        result.findings.len(),
        new,
        result.stale.len(),
        if result.stale.len() == 1 { "y" } else { "ies" },
    );
    if new > 0 {
        out.push('\n');
        for lint in LintId::ALL {
            if result.findings.iter().any(|f| f.is_new && f.lint == lint) {
                let _ = writeln!(out, "{}: {}", lint.as_str(), lint.contract());
            }
        }
    }
    out
}

/// Renders the machine-readable report. Key order and finding order are
/// fixed, so the output is byte-stable for a given tree — CI diffs and
/// golden tests can compare it directly.
#[must_use]
pub fn render_json(result: &ScanResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", result.files_scanned);
    let _ = writeln!(out, "  \"new_findings\": {},", result.new_findings().len());
    out.push_str("  \"findings\": [");
    for (i, f) in result.findings.iter().enumerate() {
        let sep = if i + 1 < result.findings.len() {
            ","
        } else {
            ""
        };
        let _ = write!(
            out,
            "\n    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"what\": {}, \"new\": {}, \"source\": {}}}{sep}",
            json_str(f.lint.as_str()),
            json_str(&f.file),
            f.line,
            json_str(&f.what),
            f.is_new,
            json_str(&f.source),
        );
    }
    if result.findings.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"hot_regions\": [");
    for (i, h) in result.hot_regions.iter().enumerate() {
        let sep = if i + 1 < result.hot_regions.len() {
            ","
        } else {
            ""
        };
        let _ = write!(
            out,
            "\n    {{\"file\": {}, \"line\": {}}}{sep}",
            json_str(&h.file),
            h.line
        );
    }
    if result.hot_regions.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"stale_baseline\": [");
    for (i, s) in result.stale.iter().enumerate() {
        let sep = if i + 1 < result.stale.len() { "," } else { "" };
        let _ = write!(
            out,
            "\n    {{\"entry\": {}, \"found\": {}}}{sep}",
            json_str(&s.entry.to_string()),
            s.found
        );
    }
    if result.stale.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

fn digits(mut n: usize) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

/// Escapes a string for JSON output (quotes, backslashes, control
/// bytes — source lines can contain anything).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{Finding, HotRegion};

    fn sample() -> ScanResult {
        ScanResult {
            files_scanned: 2,
            findings: vec![
                Finding {
                    lint: LintId::Panic,
                    file: "crates/core/src/x.rs".to_string(),
                    line: 7,
                    what: ".unwrap()".to_string(),
                    source: "let v = \"quote\\\"\".unwrap();".to_string(),
                    is_new: true,
                },
                Finding {
                    lint: LintId::NondetMap,
                    file: "crates/walks/src/y.rs".to_string(),
                    line: 120,
                    what: "HashMap".to_string(),
                    source: "use std::collections::HashMap;".to_string(),
                    is_new: false,
                },
            ],
            hot_regions: vec![HotRegion {
                file: "crates/core/src/process.rs".to_string(),
                line: 670,
            }],
            stale: Vec::new(),
        }
    }

    #[test]
    fn table_marks_new_findings_and_aligns_columns() {
        let t = render_table(&sample());
        assert!(t.contains("NEW crates/core/src/x.rs:7"));
        assert!(t.contains("     crates/walks/src/y.rs:120"));
        assert!(t.contains("2 finding(s), 1 new"));
        assert!(t.contains("panic: "), "contract shown for new findings");
        assert!(
            !t.contains("nondet-map: std"),
            "no contract for baselined lints"
        );
    }

    #[test]
    fn json_is_escaped_and_stable() {
        let j = render_json(&sample());
        assert!(j.contains("\"files_scanned\": 2"));
        assert!(j.contains("\"new_findings\": 1"));
        assert!(j.contains("quote\\\\\\\"")); // backslash + quote escaped
        assert!(j.contains("\"hot_regions\""));
        assert_eq!(j, render_json(&sample()), "byte-stable");
    }

    #[test]
    fn empty_result_renders_valid_json() {
        let j = render_json(&ScanResult::default());
        assert!(j.contains("\"findings\": [],"));
        assert!(j.contains("\"stale_baseline\": []"));
    }
}
