//! `detlint.toml`: scan excludes plus the committed finding baseline.
//!
//! The file uses the same self-contained TOML subset as the scenario
//! specs ([`sparsegossip_core::toml`]): sections, scalars and
//! single-line arrays. A missing file means "defaults + empty
//! baseline", so detlint works out of the box on fixture trees.
//!
//! The baseline is count-based: each entry tolerates up to `count`
//! findings of one lint in one file. Count-based entries survive
//! unrelated edits (line-number baselines go stale on every reflow)
//! while still failing the moment a *new* finding of that class lands
//! in that file. Stale entries (fewer findings than tolerated) are
//! reported so the baseline can only shrink over time.

use std::fmt;
use std::path::Path;

use sparsegossip_core::toml::{TomlDoc, TomlError};

use crate::lints::LintId;

/// A parsed `detlint.toml`.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Workspace-relative path prefixes never scanned.
    pub exclude: Vec<String>,
    /// Tolerated pre-existing findings: (lint, file, count).
    pub baseline: Vec<BaselineEntry>,
}

/// One tolerated finding group from the `[baseline]` section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineEntry {
    /// The tolerated lint.
    pub lint: LintId,
    /// Workspace-relative file (forward slashes).
    pub file: String,
    /// Number of findings of `lint` tolerated in `file`.
    pub count: usize,
}

impl fmt::Display for BaselineEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lint.as_str(), self.file, self.count)
    }
}

/// Errors loading or parsing a config file.
#[derive(Debug)]
pub enum ConfigError {
    /// The file exists but could not be read.
    Io(std::io::Error),
    /// The TOML subset parser rejected the file.
    Toml(TomlError),
    /// A `[baseline] entries` element is not `"<lint> <file> <count>"`.
    BadEntry(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "cannot read config: {e}"),
            Self::Toml(e) => write!(f, "bad config: {e}"),
            Self::BadEntry(s) => write!(
                f,
                "bad baseline entry {s:?}: expected \"<lint> <file> <count>\""
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// The excludes every scan starts from, even with no config file:
    /// VCS metadata, build output, vendored third-party code (not ours
    /// to lint) and detlint's own deliberately-violating test fixtures.
    #[must_use]
    pub fn default_excludes() -> Vec<String> {
        [".git", "target", "vendor", "crates/detlint/tests/fixtures"]
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    /// The fallback configuration when no `detlint.toml` exists.
    #[must_use]
    pub fn fallback() -> Self {
        Self {
            exclude: Self::default_excludes(),
            baseline: Vec::new(),
        }
    }

    /// Loads `path` if it exists, else returns [`Config::fallback`].
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if the file exists but cannot be read or parsed.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        if !path.exists() {
            return Ok(Self::fallback());
        }
        let text = std::fs::read_to_string(path).map_err(ConfigError::Io)?;
        Self::parse(&text)
    }

    /// Parses a config document.
    ///
    /// # Errors
    ///
    /// As [`Config::load`].
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let doc = TomlDoc::parse(text).map_err(ConfigError::Toml)?;
        let exclude = match doc.opt_section("scan") {
            Some(s) => s
                .opt_str_array("exclude")
                .map_err(ConfigError::Toml)?
                .unwrap_or_else(Self::default_excludes),
            None => Self::default_excludes(),
        };
        let mut baseline = Vec::new();
        if let Some(s) = doc.opt_section("baseline") {
            for raw in s
                .opt_str_array("entries")
                .map_err(ConfigError::Toml)?
                .unwrap_or_default()
            {
                baseline.push(parse_entry(&raw)?);
            }
        }
        Ok(Self { exclude, baseline })
    }

    /// Renders the config back to TOML, with `baseline` replaced by the
    /// given entries (the `--write-baseline` output).
    #[must_use]
    pub fn render(&self, baseline: &[BaselineEntry]) -> String {
        let mut out = String::new();
        out.push_str("# detlint — static determinism / zero-alloc / panic-surface checker.\n");
        out.push_str("# Run:      cargo run -p detlint --release\n");
        out.push_str("# Baseline: cargo run -p detlint --release -- --write-baseline\n");
        out.push_str("# Entries are \"<lint> <file> <count>\"; new findings exit nonzero.\n\n");
        out.push_str("[scan]\n");
        out.push_str(&format!("exclude = [{}]\n", quote_all(&self.exclude)));
        out.push_str("\n[baseline]\n");
        let rendered: Vec<String> = baseline.iter().map(BaselineEntry::to_string).collect();
        out.push_str(&format!("entries = [{}]\n", quote_all(&rendered)));
        out
    }

    /// The tolerated count for findings of `lint` in `file`.
    #[must_use]
    pub fn allowance(&self, lint: LintId, file: &str) -> usize {
        self.baseline
            .iter()
            .filter(|b| b.lint == lint && b.file == file)
            .map(|b| b.count)
            .sum()
    }
}

fn parse_entry(raw: &str) -> Result<BaselineEntry, ConfigError> {
    let mut it = raw.split_whitespace();
    let (Some(lint), Some(file), Some(count), None) = (it.next(), it.next(), it.next(), it.next())
    else {
        return Err(ConfigError::BadEntry(raw.to_string()));
    };
    let lint = LintId::parse(lint).ok_or_else(|| ConfigError::BadEntry(raw.to_string()))?;
    let count: usize = count
        .parse()
        .map_err(|_| ConfigError::BadEntry(raw.to_string()))?;
    Ok(BaselineEntry {
        lint,
        file: file.to_string(),
        count,
    })
}

fn quote_all(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("{s:?}")).collect();
    quoted.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_excludes_and_baseline() {
        let cfg = Config::parse(
            "[scan]\nexclude = [\"vendor\", \"target\"]\n\n\
             [baseline]\nentries = [\"panic crates/core/src/x.rs 2\"]\n",
        )
        .unwrap();
        assert_eq!(cfg.exclude, vec!["vendor", "target"]);
        assert_eq!(cfg.baseline.len(), 1);
        assert_eq!(cfg.allowance(LintId::Panic, "crates/core/src/x.rs"), 2);
        assert_eq!(cfg.allowance(LintId::HotAlloc, "crates/core/src/x.rs"), 0);
    }

    #[test]
    fn missing_sections_fall_back_to_defaults() {
        let cfg = Config::parse("").unwrap();
        assert_eq!(cfg.exclude, Config::default_excludes());
        assert!(cfg.baseline.is_empty());
    }

    #[test]
    fn bad_entries_are_rejected() {
        for bad in [
            "panic only-two",
            "panic a.rs x",
            "nope a.rs 1",
            "panic a.rs 1 extra",
        ] {
            let text = format!("[baseline]\nentries = [{bad:?}]\n");
            assert!(
                matches!(Config::parse(&text), Err(ConfigError::BadEntry(_))),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn render_round_trips() {
        let cfg = Config::fallback();
        let entries = vec![BaselineEntry {
            lint: LintId::Panic,
            file: "crates/core/src/x.rs".to_string(),
            count: 1,
        }];
        let rendered = cfg.render(&entries);
        let back = Config::parse(&rendered).unwrap();
        assert_eq!(back.exclude, cfg.exclude);
        assert_eq!(back.baseline, entries);
    }
}
