//! detlint — workspace-native static analysis for sparsegossip's
//! determinism, zero-allocation and panic-surface contracts.
//!
//! The simulator's headline guarantees — byte-reproducible seeded runs,
//! thread-count-independent sweeps, 0 allocations per step on the hot
//! paths, and a `SimError`-only failure surface in library code — are
//! enforced at runtime only by *sampling*: one seed, one allocator
//! counter, one replay hash at a time. detlint closes the gap statically
//! by scanning every workspace source for the constructs that violate
//! those contracts:
//!
//! | id            | contract                                              |
//! |---------------|-------------------------------------------------------|
//! | `nondet-map`  | no `HashMap`/`HashSet` in the deterministic crates    |
//! | `wall-clock`  | no `Instant::now`/`SystemTime` outside bench/cli      |
//! | `unseeded-rng`| no `thread_rng`/`from_entropy`/`rand::random` anywhere|
//! | `hot-alloc`   | no allocating constructs in `// detlint: hot` regions |
//! | `panic`       | no `unwrap`/`expect`/`panic!` in non-test library code|
//! | `annotation`  | the escape hatch polices itself                       |
//!
//! Violations are suppressed either by a justified annotation on the
//! offending line —
//!
//! ```text
//! // detlint: allow(nondet-map, uniqueness counting only; order never observed)
//! ```
//!
//! — or by a count-based entry in the committed `detlint.toml` baseline.
//! Anything beyond the baseline exits nonzero, so CI fails the moment a
//! *new* violation lands while the pre-existing, triaged surface stays
//! green.
//!
//! The tool is fully self-contained: a ~200-line lexer
//! ([`lexer`]) classifies bytes as code / comment / literal (so
//! `"HashMap"` in a string never fires), [`lints`] matches token
//! patterns under path scopes, [`scan`] tracks `#[cfg(test)]` and
//! `// detlint: hot` brace regions, and [`report`] renders an aligned
//! table or byte-stable JSON. No `syn`, no new dependencies.

pub mod config;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod scan;

pub use config::{BaselineEntry, Config, ConfigError};
pub use lints::LintId;
pub use report::{render_json, render_table};
pub use scan::{scan_workspace, Finding, HotRegion, ScanResult};
