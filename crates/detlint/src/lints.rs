//! The lint catalog: project invariants as typed, path-scoped token
//! patterns.
//!
//! Every lint guards a contract the runtime test suites enforce only by
//! sampling (one seed, one code path at a time):
//!
//! * [`LintId::NondetMap`] — byte-reproducible runs and the FNV-1a
//!   event-log hash assume deterministic iteration everywhere; std's
//!   hashed collections randomize theirs.
//! * [`LintId::WallClock`] — outcomes must be pure functions of
//!   (spec, seed); wall-clock reads belong to the bench/CLI tier only.
//! * [`LintId::UnseededRng`] — every RNG stream must descend from an
//!   explicit seed; OS-entropy constructors break replay.
//! * [`LintId::HotAlloc`] — regions marked `// detlint: hot` are the
//!   0-allocs/step paths pinned by the counting allocator; allocating
//!   constructs there defeat the scratch-buffer design.
//! * [`LintId::Panic`] — library code surfaces failures as
//!   `SimError`; panics are for provably unreachable states, and each
//!   one must name its invariant in an allow annotation.
//! * [`LintId::Annotation`] — the escape hatch polices itself:
//!   malformed, reason-less or unused `detlint:` annotations are
//!   findings too.

use crate::lexer::Tok;

/// A lint class (stable string ids appear in findings, annotations and
/// baselines).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintId {
    /// D1: `HashMap`/`HashSet` in deterministic crates.
    NondetMap,
    /// D2: `Instant::now`/`SystemTime` outside bench/cli.
    WallClock,
    /// D3: `thread_rng`/`from_entropy`/`rand::random` anywhere.
    UnseededRng,
    /// A1: allocating constructs inside `// detlint: hot` regions.
    HotAlloc,
    /// P1: `unwrap`/`expect`/`panic!` in library code outside tests.
    Panic,
    /// Meta: malformed, reason-less or unused `detlint:` annotations.
    Annotation,
}

impl LintId {
    /// All lints, in reporting order.
    pub const ALL: [LintId; 6] = [
        LintId::NondetMap,
        LintId::WallClock,
        LintId::UnseededRng,
        LintId::HotAlloc,
        LintId::Panic,
        LintId::Annotation,
    ];

    /// The stable id used in annotations, baselines and reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            LintId::NondetMap => "nondet-map",
            LintId::WallClock => "wall-clock",
            LintId::UnseededRng => "unseeded-rng",
            LintId::HotAlloc => "hot-alloc",
            LintId::Panic => "panic",
            LintId::Annotation => "annotation",
        }
    }

    /// Parses a stable id (as written in `allow(...)` annotations).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|l| l.as_str() == s)
    }

    /// One-line contract statement shown in reports.
    #[must_use]
    pub fn contract(self) -> &'static str {
        match self {
            LintId::NondetMap => {
                "std::collections::Hash{Map,Set} iterate in a randomized order; \
                 deterministic crates must use Vec/BTreeMap or justify the use"
            }
            LintId::WallClock => {
                "wall-clock reads are forbidden outside bench/cli: outcomes must be \
                 pure functions of (spec, seed)"
            }
            LintId::UnseededRng => {
                "every RNG stream must descend from an explicit seed; \
                 OS-entropy constructors break byte-reproducible replay"
            }
            LintId::HotAlloc => {
                "allocating construct inside a `// detlint: hot` region — the \
                 0-allocs/step paths must go through persistent scratch buffers"
            }
            LintId::Panic => {
                "library code surfaces failures as SimError; a panic is only for a \
                 provably unreachable state and must name its invariant in an allow"
            }
            LintId::Annotation => "detlint annotation is malformed, reason-less or unused",
        }
    }

    /// Whether the lint applies to the workspace-relative `path`
    /// (forward-slash form). Region conditions (hot, `#[cfg(test)]`)
    /// are applied separately by the scanner.
    #[must_use]
    pub fn in_scope(self, path: &str) -> bool {
        /// Crates whose `src/` trees carry the determinism and
        /// panic-surface contracts (the simulation pipeline proper).
        const DET_SRC: [&str; 5] = [
            "crates/walks/src/",
            "crates/conngraph/src/",
            "crates/core/src/",
            "crates/protocol/src/",
            "crates/analysis/src/",
        ];
        let in_det_src = DET_SRC.iter().any(|p| path.starts_with(p));
        match self {
            LintId::NondetMap => in_det_src,
            LintId::WallClock => {
                !path.starts_with("crates/bench/") && !path.starts_with("crates/cli/")
            }
            LintId::UnseededRng | LintId::HotAlloc | LintId::Annotation => true,
            LintId::Panic => {
                in_det_src || path.starts_with("crates/grid/src/") || path == "src/lib.rs"
            }
        }
    }
}

/// One element of a token pattern.
enum Pat {
    /// An exact identifier.
    I(&'static str),
    /// An exact punctuation byte.
    P(char),
}

/// A forbidden construct: the lint it violates, the pattern that
/// detects it, and the display form reported in findings.
pub struct Rule {
    /// The violated lint.
    pub lint: LintId,
    /// Rendered form of the construct (`Instant::now`, `.unwrap()`, …).
    pub what: &'static str,
    pat: &'static [Pat],
}

/// The rule table. Matching is purely token-sequence based — `::`
/// lexes as two `:` tokens, method calls as `.` + identifier — so
/// formatting, turbofish and spacing cannot hide a hit.
pub const RULES: &[Rule] = &[
    Rule {
        lint: LintId::NondetMap,
        what: "HashMap",
        pat: &[Pat::I("HashMap")],
    },
    Rule {
        lint: LintId::NondetMap,
        what: "HashSet",
        pat: &[Pat::I("HashSet")],
    },
    Rule {
        lint: LintId::WallClock,
        what: "Instant::now",
        pat: &[Pat::I("Instant"), Pat::P(':'), Pat::P(':'), Pat::I("now")],
    },
    Rule {
        lint: LintId::WallClock,
        what: "SystemTime",
        pat: &[Pat::I("SystemTime")],
    },
    Rule {
        lint: LintId::UnseededRng,
        what: "thread_rng",
        pat: &[Pat::I("thread_rng")],
    },
    Rule {
        lint: LintId::UnseededRng,
        what: "from_entropy",
        pat: &[Pat::I("from_entropy")],
    },
    Rule {
        lint: LintId::UnseededRng,
        what: "rand::random",
        pat: &[Pat::I("rand"), Pat::P(':'), Pat::P(':'), Pat::I("random")],
    },
    Rule {
        lint: LintId::HotAlloc,
        what: "Vec::new",
        pat: &[Pat::I("Vec"), Pat::P(':'), Pat::P(':'), Pat::I("new")],
    },
    Rule {
        lint: LintId::HotAlloc,
        what: "vec![",
        pat: &[Pat::I("vec"), Pat::P('!')],
    },
    Rule {
        lint: LintId::HotAlloc,
        what: ".collect()",
        pat: &[Pat::P('.'), Pat::I("collect")],
    },
    Rule {
        lint: LintId::HotAlloc,
        what: "Box::new",
        pat: &[Pat::I("Box"), Pat::P(':'), Pat::P(':'), Pat::I("new")],
    },
    Rule {
        lint: LintId::HotAlloc,
        what: "format!",
        pat: &[Pat::I("format"), Pat::P('!')],
    },
    Rule {
        lint: LintId::HotAlloc,
        what: ".to_vec()",
        pat: &[Pat::P('.'), Pat::I("to_vec")],
    },
    Rule {
        lint: LintId::Panic,
        what: ".unwrap()",
        pat: &[Pat::P('.'), Pat::I("unwrap"), Pat::P('(')],
    },
    Rule {
        lint: LintId::Panic,
        what: ".expect()",
        pat: &[Pat::P('.'), Pat::I("expect"), Pat::P('(')],
    },
    Rule {
        lint: LintId::Panic,
        what: "panic!",
        pat: &[Pat::I("panic"), Pat::P('!')],
    },
];

/// Token offsets (within a line) at which `rule` matches.
pub fn matches_at(rule: &Rule, toks: &[Tok]) -> Vec<usize> {
    let mut hits = Vec::new();
    if toks.len() < rule.pat.len() {
        return hits;
    }
    'outer: for start in 0..=(toks.len() - rule.pat.len()) {
        for (off, p) in rule.pat.iter().enumerate() {
            let ok = match (p, &toks[start + off]) {
                (Pat::I(want), Tok::Ident(have)) => want == have,
                (Pat::P(want), Tok::Punct(have)) => want == have,
                _ => false,
            };
            if !ok {
                continue 'outer;
            }
        }
        hits.push(start);
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn hits(rule_what: &str, src: &str) -> usize {
        let rule = RULES.iter().find(|r| r.what == rule_what).unwrap();
        lex(src)
            .iter()
            .map(|l| matches_at(rule, &l.toks).len())
            .sum()
    }

    #[test]
    fn method_rules_do_not_match_lookalike_idents() {
        assert_eq!(hits(".unwrap()", "x.unwrap_or(0); y.unwrap_or_else(f);"), 0);
        assert_eq!(hits(".unwrap()", "x.unwrap()"), 1);
        assert_eq!(hits(".expect()", "x.expect_err(\"e\")"), 0);
        assert_eq!(hits(".collect()", "xs.collect::<Vec<_>>()"), 1);
        assert_eq!(hits(".to_vec()", "positions.to_vec()"), 1);
    }

    #[test]
    fn path_rules_span_token_gaps() {
        assert_eq!(
            hits("Instant::now", "let t = std::time::Instant::now();"),
            1
        );
        assert_eq!(hits("Instant::now", "use std::time::Instant;"), 0);
        assert_eq!(hits("rand::random", "let x: u8 = rand::random();"), 1);
        assert_eq!(
            hits("rand::random", "let x = rand::rngs::SmallRng::f();"),
            0
        );
    }

    #[test]
    fn macro_rules_match_bang_forms() {
        assert_eq!(hits("panic!", "core::panic!(\"boom\")"), 1);
        assert_eq!(hits("panic!", "assert!(cond)"), 0);
        assert_eq!(hits("vec![", "let v = vec![1, 2];"), 1);
        assert_eq!(hits("format!", "let s = format!(\"x\");"), 1);
    }

    #[test]
    fn scopes_match_the_contract_tiers() {
        assert!(LintId::NondetMap.in_scope("crates/core/src/lib.rs"));
        assert!(!LintId::NondetMap.in_scope("crates/grid/src/grid.rs"));
        assert!(!LintId::NondetMap.in_scope("crates/walks/tests/proptests.rs"));
        assert!(!LintId::WallClock.in_scope("crates/bench/src/bin/exp_perf.rs"));
        assert!(!LintId::WallClock.in_scope("crates/cli/src/main.rs"));
        assert!(LintId::WallClock.in_scope("crates/core/src/process.rs"));
        assert!(LintId::UnseededRng.in_scope("examples/demo.rs"));
        assert!(LintId::Panic.in_scope("crates/grid/src/grid.rs"));
        assert!(LintId::Panic.in_scope("src/lib.rs"));
        assert!(!LintId::Panic.in_scope("src/bin/exp_sweep.rs"));
        assert!(!LintId::Panic.in_scope("crates/cli/src/commands.rs"));
        assert!(!LintId::Panic.in_scope("crates/detlint/src/main.rs"));
    }

    #[test]
    fn lint_ids_round_trip() {
        for l in LintId::ALL {
            assert_eq!(LintId::parse(l.as_str()), Some(l));
        }
        assert_eq!(LintId::parse("bogus"), None);
    }
}
