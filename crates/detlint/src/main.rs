//! The detlint CLI.
//!
//! ```text
//! detlint [--root <dir>] [--config <file>] [--json] [--out <file>]
//!         [--write-baseline]
//! ```
//!
//! Exit codes: `0` — no findings beyond the baseline; `1` — new
//! findings; `2` — usage, I/O or config error.

use std::path::PathBuf;
use std::process::ExitCode;

use detlint::{render_json, render_table, scan_workspace, Config};

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    out: Option<PathBuf>,
    write_baseline: bool,
}

const USAGE: &str = "usage: detlint [--root <dir>] [--config <file>] [--json] \
                     [--out <file>] [--write-baseline]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        json: false,
        out: None,
        write_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = take(&mut it, "--root")?.into(),
            "--config" => args.config = Some(take(&mut it, "--config")?.into()),
            "--out" => args.out = Some(take(&mut it, "--out")?.into()),
            "--json" => args.json = true,
            "--write-baseline" => args.write_baseline = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn take(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next()
        .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("detlint.toml"));
    let config = match Config::load(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("detlint: {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let result = match scan_workspace(&args.root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("detlint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if args.write_baseline {
        let rendered = config.render(&result.as_baseline());
        if let Err(e) = std::fs::write(&config_path, rendered) {
            eprintln!("detlint: cannot write {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
        println!(
            "detlint: wrote baseline ({} entr{}) to {}",
            result.as_baseline().len(),
            if result.as_baseline().len() == 1 {
                "y"
            } else {
                "ies"
            },
            config_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let rendered = if args.json {
        render_json(&result)
    } else {
        render_table(&result)
    };
    if let Some(out) = &args.out {
        if let Err(e) = std::fs::write(out, &rendered) {
            eprintln!("detlint: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
    } else {
        print!("{rendered}");
    }
    if result.new_findings().is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
