//! The scanner: walks a source tree deterministically, applies the
//! lint rules with their region conditions (`#[cfg(test)]`,
//! `// detlint: hot`), honors `// detlint: allow(...)` annotations and
//! the committed baseline, and produces a sorted finding list.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::Path;

use crate::config::{BaselineEntry, Config};
use crate::lexer::{lex, Line, Tok};
use crate::lints::{matches_at, LintId, RULES};

/// One lint violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The violated lint.
    pub lint: LintId,
    /// Workspace-relative file (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The matched construct (`HashMap`, `.unwrap()`, …) or, for
    /// annotation findings, what is wrong with the annotation.
    pub what: String,
    /// The trimmed source line, for rendering.
    pub source: String,
    /// Whether the finding exceeds the committed baseline.
    pub is_new: bool,
}

/// A region opened by `// detlint: hot` (recorded so the self-scan can
/// pin that the contracted hot paths actually carry their markers).
#[derive(Clone, Debug)]
pub struct HotRegion {
    /// Workspace-relative file (forward slashes).
    pub file: String,
    /// 1-based line of the region's opening brace.
    pub line: usize,
}

/// A baseline entry tolerating more findings than the tree contains —
/// the allowance should be tightened.
#[derive(Clone, Debug)]
pub struct StaleEntry {
    /// The over-generous entry.
    pub entry: BaselineEntry,
    /// How many findings actually exist.
    pub found: usize,
}

impl fmt::Display for StaleEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "baseline entry \"{}\" is stale: only {} finding(s) remain",
            self.entry, self.found
        )
    }
}

/// Everything one scan produced.
#[derive(Clone, Debug, Default)]
pub struct ScanResult {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings (baselined and new), sorted by file, line, lint.
    pub findings: Vec<Finding>,
    /// Every `// detlint: hot` region in the tree.
    pub hot_regions: Vec<HotRegion>,
    /// Baseline entries tolerating more than the tree contains.
    pub stale: Vec<StaleEntry>,
}

impl ScanResult {
    /// Findings not covered by the baseline — the CI-failing set.
    #[must_use]
    pub fn new_findings(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.is_new).collect()
    }

    /// The exact baseline that would make the current tree green
    /// (the `--write-baseline` payload).
    #[must_use]
    pub fn as_baseline(&self) -> Vec<BaselineEntry> {
        let mut groups: BTreeMap<(LintId, &str), usize> = BTreeMap::new();
        for f in &self.findings {
            *groups.entry((f.lint, f.file.as_str())).or_default() += 1;
        }
        groups
            .into_iter()
            .map(|((lint, file), count)| BaselineEntry {
                lint,
                file: file.to_string(),
                count,
            })
            .collect()
    }

    /// Hot regions recorded for `file`.
    #[must_use]
    pub fn hot_regions_in(&self, file: &str) -> usize {
        self.hot_regions.iter().filter(|h| h.file == file).count()
    }
}

/// Scans every `.rs` file under `root` (minus the config's excludes)
/// and applies `config`'s baseline.
///
/// # Errors
///
/// I/O errors reading the tree.
pub fn scan_workspace(root: &Path, config: &Config) -> std::io::Result<ScanResult> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &config.exclude, &mut files)?;
    files.sort();
    let mut result = ScanResult {
        files_scanned: files.len(),
        ..ScanResult::default()
    };
    for rel in &files {
        let text = fs::read_to_string(root.join(rel))?;
        scan_file(rel, &text, &mut result);
    }
    result.findings.sort_by(|a, b| {
        (&a.file, a.line, a.lint, &a.what).cmp(&(&b.file, b.line, b.lint, &b.what))
    });
    apply_baseline(config, &mut result);
    Ok(result)
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    exclude: &[String],
    out: &mut Vec<String>,
) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    // Byte-wise name order: the scan (and so every report) is
    // independent of readdir order — detlint obeys its own contract.
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .expect("walked paths live under root")
            .to_string_lossy()
            .replace('\\', "/");
        if exclude
            .iter()
            .any(|ex| rel == *ex || rel.starts_with(&format!("{ex}/")))
        {
            continue;
        }
        let ty = entry.file_type()?;
        if ty.is_dir() {
            collect_rs_files(root, &path, exclude, out)?;
        } else if ty.is_file() && rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// What a `detlint:` comment asks for.
enum Directive {
    /// `detlint: hot` — the next brace block is a zero-alloc region.
    Hot,
    /// `detlint: allow(<lint>, <reason>)`.
    Allow { lint: LintId },
    /// Recognized `detlint:` marker but unparseable payload; `what`
    /// says why.
    Bad { what: String },
}

fn parse_directive(comment: &str) -> Option<Directive> {
    // Directives are plain `//` comments whose text *starts* with
    // `detlint:`. Doc comments (`///` — text begins with `/`; `//!` —
    // begins with `!`) are prose: mentioning `detlint: hot` there must
    // not create a region or a finding.
    if comment.starts_with('/') || comment.starts_with('!') {
        return None;
    }
    let rest = comment.trim_start().strip_prefix("detlint:")?.trim();
    if rest == "hot" {
        return Some(Directive::Hot);
    }
    let Some(inner) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.strip_suffix(')'))
    else {
        return Some(Directive::Bad {
            what: format!("unrecognized directive {rest:?}"),
        });
    };
    let (id, reason) = match inner.split_once(',') {
        Some((id, reason)) => (id.trim(), reason.trim()),
        None => (inner.trim(), ""),
    };
    let Some(lint) = LintId::parse(id) else {
        return Some(Directive::Bad {
            what: format!("unknown lint {id:?} in allow"),
        });
    };
    if reason.is_empty() {
        return Some(Directive::Bad {
            what: format!("allow({id}) without a reason"),
        });
    }
    Some(Directive::Allow { lint })
}

/// A granted allowance: suppresses `lint` findings on `target_line`.
struct Allow {
    lint: LintId,
    /// 0-based line the allowance applies to.
    target_line: usize,
    /// 0-based line the annotation sits on (for unused-allow reports).
    ann_line: usize,
    used: bool,
}

/// Region kinds a `{` can open.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Region {
    Plain,
    Test,
    Hot,
}

fn scan_file(rel: &str, text: &str, result: &mut ScanResult) {
    let lines = lex(text);
    let mut allows: Vec<Allow> = Vec::new();
    let mut hot_marked = vec![false; lines.len()];
    for (li, line) in lines.iter().enumerate() {
        for comment in &line.comments {
            match parse_directive(comment) {
                None => {}
                Some(Directive::Hot) => hot_marked[li] = true,
                Some(Directive::Allow { lint }) => {
                    // A trailing annotation covers its own line; a
                    // standalone comment line covers the next line
                    // that carries code.
                    let target = if line.has_code() {
                        Some(li)
                    } else {
                        (li + 1..lines.len()).find(|&j| lines[j].has_code())
                    };
                    if let Some(target_line) = target {
                        allows.push(Allow {
                            lint,
                            target_line,
                            ann_line: li,
                            used: false,
                        });
                    } else {
                        push_annotation_finding(result, rel, li, line, "allow at end of file");
                    }
                }
                Some(Directive::Bad { what }) => {
                    push_annotation_finding(result, rel, li, line, &what);
                }
            }
        }
    }

    // Token walk: maintain the brace-region stack, record hot regions,
    // and match every rule with its region condition.
    let mut stack: Vec<Region> = Vec::new();
    let mut pending: Option<Region> = None;
    for (li, line) in lines.iter().enumerate() {
        if hot_marked[li] {
            pending = Some(Region::Hot);
        }
        if has_cfg_test_attr(&line.toks) {
            pending = Some(Region::Test);
        }
        for (ti, tok) in line.toks.iter().enumerate() {
            match tok {
                Tok::Punct('{') => {
                    let region = pending.take().unwrap_or(Region::Plain);
                    if region == Region::Hot {
                        result.hot_regions.push(HotRegion {
                            file: rel.to_string(),
                            line: li + 1,
                        });
                    }
                    stack.push(region);
                }
                Tok::Punct('}') => {
                    stack.pop();
                }
                Tok::Punct(';') if pending.is_some() => {
                    // Statement ended before any block opened: the
                    // pending marker applied to a braceless item.
                    pending = None;
                }
                _ => {}
            }
            let in_test = stack.contains(&Region::Test);
            let in_hot = stack.contains(&Region::Hot);
            for rule in RULES {
                if !rule.lint.in_scope(rel) {
                    continue;
                }
                match rule.lint {
                    LintId::HotAlloc if !in_hot => continue,
                    LintId::Panic if in_test => continue,
                    _ => {}
                }
                if !matches_at(rule, &line.toks).contains(&ti) {
                    continue;
                }
                if let Some(a) = allows
                    .iter_mut()
                    .find(|a| a.target_line == li && a.lint == rule.lint)
                {
                    a.used = true;
                    continue;
                }
                result.findings.push(Finding {
                    lint: rule.lint,
                    file: rel.to_string(),
                    line: li + 1,
                    what: rule.what.to_string(),
                    source: line.raw.trim().to_string(),
                    is_new: true,
                });
            }
        }
    }

    for a in &allows {
        if !a.used {
            push_annotation_finding(
                result,
                rel,
                a.ann_line,
                &lines[a.ann_line],
                &format!("unused allow({})", a.lint.as_str()),
            );
        }
    }
}

fn push_annotation_finding(result: &mut ScanResult, rel: &str, li: usize, line: &Line, what: &str) {
    result.findings.push(Finding {
        lint: LintId::Annotation,
        file: rel.to_string(),
        line: li + 1,
        what: what.to_string(),
        source: line.raw.trim().to_string(),
        is_new: true,
    });
}

/// Whether the line carries a `#[cfg(test)]`-style attribute (any
/// `cfg(...)` attribute mentioning the `test` predicate).
fn has_cfg_test_attr(toks: &[Tok]) -> bool {
    toks.windows(4).enumerate().any(|(i, w)| {
        matches!(
            (&w[0], &w[1], &w[2], &w[3]),
            (Tok::Punct('#'), Tok::Punct('['), Tok::Ident(id), Tok::Punct('(')) if id == "cfg"
        ) && toks[i + 4..]
            .iter()
            .any(|t| matches!(t, Tok::Ident(id) if id == "test"))
    })
}

fn apply_baseline(config: &Config, result: &mut ScanResult) {
    let mut groups: BTreeMap<(LintId, String), usize> = BTreeMap::new();
    for f in &result.findings {
        *groups.entry((f.lint, f.file.clone())).or_default() += 1;
    }
    for f in &mut result.findings {
        let found = groups[&(f.lint, f.file.clone())];
        f.is_new = found > config.allowance(f.lint, &f.file);
    }
    for entry in &config.baseline {
        let found = groups
            .get(&(entry.lint, entry.file.clone()))
            .copied()
            .unwrap_or(0);
        if found < entry.count {
            result.stale.push(StaleEntry {
                entry: entry.clone(),
                found,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_str(rel: &str, text: &str) -> ScanResult {
        let mut r = ScanResult::default();
        scan_file(rel, text, &mut r);
        r.findings.sort_by_key(|a| (a.line, a.lint));
        r
    }

    const CORE: &str = "crates/core/src/x.rs";

    #[test]
    fn panic_in_test_module_is_not_a_finding() {
        let r = scan_str(
            CORE,
            "fn lib() { x.unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n",
        );
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].line, 1);
    }

    #[test]
    fn hot_alloc_fires_only_inside_hot_regions() {
        let r = scan_str(
            CORE,
            "fn cold() { let v = vec![1]; }\n\
             // detlint: hot\nfn hot() {\n    let v = vec![1];\n    x.collect();\n}\n\
             fn cold2() { let b = Box::new(1); }\n",
        );
        let lints: Vec<&str> = r.findings.iter().map(|f| f.lint.as_str()).collect();
        assert_eq!(lints, vec!["hot-alloc", "hot-alloc"]);
        assert_eq!(r.findings[0].line, 4);
        assert_eq!(r.findings[1].line, 5);
        assert_eq!(r.hot_regions_in(CORE), 1);
        assert_eq!(r.hot_regions[0].line, 3);
    }

    #[test]
    fn allow_with_reason_suppresses_same_and_next_line() {
        let r = scan_str(
            CORE,
            "use std::collections::HashMap; // detlint: allow(nondet-map, keyed output sorted before use)\n\
             // detlint: allow(nondet-map, uniqueness check only)\n\
             let m: HashMap<u32, u32> = x;\n",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn reasonless_unknown_and_unused_allows_are_findings() {
        let r = scan_str(
            CORE,
            "x.unwrap(); // detlint: allow(panic)\n\
             y.foo(); // detlint: allow(bogus-lint, why)\n\
             z.bar(); // detlint: allow(wall-clock, nothing here uses clocks)\n",
        );
        let whats: Vec<&str> = r.findings.iter().map(|f| f.what.as_str()).collect();
        assert!(
            whats.contains(&".unwrap()"),
            "reason-less allow must not suppress"
        );
        assert!(whats.iter().any(|w| w.contains("without a reason")));
        assert!(whats.iter().any(|w| w.contains("unknown lint")));
        assert!(whats.iter().any(|w| w.contains("unused allow(wall-clock)")));
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let r = scan_str(
            CORE,
            "let s = \"HashMap and Instant::now and .unwrap()\";\n\
             // HashMap in a comment, thread_rng too\n\
             /* SystemTime in a block comment */\n\
             /// let x = map.unwrap();\n",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn scopes_gate_by_path() {
        let wallclock = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(
            scan_str("crates/cli/src/main.rs", wallclock).findings.len(),
            0
        );
        assert_eq!(
            scan_str("crates/core/src/x.rs", wallclock).findings.len(),
            1
        );
        let map = "use std::collections::HashMap;\n";
        assert_eq!(scan_str("crates/grid/src/grid.rs", map).findings.len(), 0);
        assert_eq!(scan_str("crates/walks/src/seeds.rs", map).findings.len(), 1);
    }

    #[test]
    fn unseeded_rng_fires_everywhere() {
        for p in ["crates/cli/src/main.rs", "examples/e.rs", "src/bin/exp.rs"] {
            let r = scan_str(p, "let mut rng = thread_rng();\n");
            assert_eq!(r.findings.len(), 1, "{p} should flag thread_rng");
        }
    }

    #[test]
    fn doc_comments_and_prose_mentions_are_not_directives() {
        let r = scan_str(
            CORE,
            "/// Regions marked `// detlint: hot` are special.\n\
             //! detlint: allow(panic, doc prose)\n\
             // see detlint: hot for details\n\
             fn f() { let v = vec![1]; }\n",
        );
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert!(r.hot_regions.is_empty(), "prose must not open hot regions");
    }

    #[test]
    fn pending_marker_cancelled_by_statement_end() {
        // The attribute applied to a braceless item; the next block is
        // NOT a test region.
        let r = scan_str(
            CORE,
            "#[cfg(test)]\nuse foo::bar;\nfn lib() { x.unwrap(); }\n",
        );
        assert_eq!(r.findings.len(), 1);
    }

    #[test]
    fn baseline_tolerates_exact_count_and_flags_growth() {
        let text = "fn a() { x.unwrap(); }\nfn b() { y.unwrap(); }\n";
        let config =
            Config::parse(&format!("[baseline]\nentries = [\"panic {CORE} 2\"]\n")).unwrap();
        let mut r = scan_str(CORE, text);
        apply_baseline(&config, &mut r);
        assert_eq!(r.new_findings().len(), 0);
        assert!(r.stale.is_empty());

        let mut r = scan_str(CORE, "fn a() { x.unwrap(); }\n");
        apply_baseline(&config, &mut r);
        assert_eq!(r.new_findings().len(), 0);
        assert_eq!(r.stale.len(), 1, "shrunk count is reported stale");

        let grown = format!("{text}fn c() {{ z.unwrap(); }}\n");
        let mut r = scan_str(CORE, &grown);
        apply_baseline(&config, &mut r);
        assert_eq!(
            r.new_findings().len(),
            3,
            "whole group reported once it grows"
        );
    }

    #[test]
    fn as_baseline_reproduces_the_tree() {
        let r = scan_str(
            CORE,
            "fn a() { x.unwrap(); }\nuse std::collections::HashSet;\n",
        );
        let entries = r.as_baseline();
        assert_eq!(entries.len(), 2);
        let rendered: Vec<String> = entries.iter().map(ToString::to_string).collect();
        assert_eq!(
            rendered,
            vec![format!("nondet-map {CORE} 1"), format!("panic {CORE} 1"),]
        );
    }
}
