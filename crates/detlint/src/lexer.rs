//! A deliberately small Rust lexer: enough to tell code from comments,
//! string/char literals and lifetimes, line by line — so lint patterns
//! never fire on `"HashMap"` in a string or `// HashMap` in a comment —
//! without pulling in `syn` (the workspace vendors no crates.io deps).
//!
//! The lexer makes no attempt to parse Rust. It classifies every byte
//! of a file as code, comment or literal, blanks everything that is not
//! code, and tokenizes the remainder into identifiers and single-byte
//! punctuation. That is exactly the granularity the lint patterns need
//! (`Instant :: now`, `.` `unwrap`, `vec` `!`, …) and it is trivially
//! robust: no macro, generics or edition subtleties can confuse it into
//! *missing* the forbidden identifiers, because those always lex as
//! identifiers.

/// One token of blanked line code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`HashMap`, `unwrap`, `fn`, …).
    Ident(String),
    /// Any other non-whitespace byte (`.`, `:`, `!`, `{`, …).
    Punct(char),
}

impl Tok {
    /// The identifier text, if this is an identifier token.
    #[must_use]
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s.as_str()),
            Tok::Punct(_) => None,
        }
    }
}

/// One source line, split into its code tokens and its line comments.
#[derive(Clone, Debug, Default)]
pub struct Line {
    /// The raw line, exactly as read (for rendering findings).
    pub raw: String,
    /// Tokens of the line with comments and literals blanked out.
    pub toks: Vec<Tok>,
    /// Text of every `//` comment on the line (without the slashes);
    /// block-comment text is dropped — annotations must use `//`.
    pub comments: Vec<String>,
}

impl Line {
    /// Whether the line carries any code at all (blank or comment-only
    /// lines do not).
    #[must_use]
    pub fn has_code(&self) -> bool {
        !self.toks.is_empty()
    }
}

/// Lexer state that survives line breaks (multi-line literals and
/// block comments).
enum Carry {
    Code,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Splits `text` into classified [`Line`]s.
#[must_use]
pub fn lex(text: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut carry = Carry::Code;
    for raw in text.lines() {
        let mut line = Line {
            raw: raw.to_string(),
            ..Line::default()
        };
        let mut code = String::new();
        let b: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        while i < b.len() {
            match carry {
                Carry::BlockComment(depth) => {
                    if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        carry = if depth == 1 {
                            Carry::Code
                        } else {
                            Carry::BlockComment(depth - 1)
                        };
                        i += 2;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        carry = Carry::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                Carry::Str => {
                    if b[i] == '\\' {
                        i += 2;
                    } else if b[i] == '"' {
                        carry = Carry::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                Carry::RawStr(hashes) => {
                    // `"` followed by exactly `hashes` hash marks closes
                    // the raw string; raw strings have no escapes.
                    if b[i] == '"' && (1..=hashes as usize).all(|h| b.get(i + h) == Some(&'#')) {
                        carry = Carry::Code;
                        i += 1 + hashes as usize;
                    } else {
                        i += 1;
                    }
                }
                Carry::Code => {
                    let c = b[i];
                    if c == '/' && b.get(i + 1) == Some(&'/') {
                        line.comments.push(b[i + 2..].iter().collect());
                        i = b.len();
                    } else if c == '/' && b.get(i + 1) == Some(&'*') {
                        carry = Carry::BlockComment(1);
                        i += 2;
                    } else if c == '"' {
                        carry = Carry::Str;
                        i += 1;
                    } else if (c == 'r' || c == 'b') && !prev_is_ident(&b, i) {
                        // Possible raw/byte string prefix: r"", r#""#,
                        // br"", b"".
                        let mut j = i + 1;
                        if c == 'b' && b.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while b.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if b.get(j) == Some(&'"') && (c == 'r' || j > i + 1 || hashes > 0) {
                            carry = if c == 'r' || b.get(i + 1) == Some(&'r') {
                                Carry::RawStr(hashes)
                            } else {
                                Carry::Str
                            };
                            i = j + 1;
                        } else if c == 'b' && b.get(i + 1) == Some(&'"') {
                            carry = Carry::Str;
                            i += 2;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // Char literal or lifetime. `'x'` / `'\n'` are
                        // literals; `'a` followed by anything but a
                        // closing quote is a lifetime label.
                        if b.get(i + 1) == Some(&'\\') {
                            i += 2; // skip the escape lead-in
                            while i < b.len() && b[i] != '\'' {
                                i += 1;
                            }
                            i += 1;
                        } else if b.get(i + 2) == Some(&'\'')
                            && b.get(i + 1).is_some_and(|&n| n != '\'')
                        {
                            i += 3;
                        } else {
                            // Lifetime: drop the quote, keep lexing.
                            code.push(' ');
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        line.toks = tokenize(&code);
        out.push(line);
    }
    out
}

fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

fn tokenize(code: &str) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut chars = code.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c.is_alphabetic() || c == '_' {
            let mut id = String::new();
            while let Some(&d) = chars.peek() {
                if d.is_alphanumeric() || d == '_' {
                    id.push(d);
                    chars.next();
                } else {
                    break;
                }
            }
            toks.push(Tok::Ident(id));
        } else if c.is_numeric() {
            // Numbers (incl. suffixed like 1u32) are irrelevant to every
            // pattern; consume the whole literal so its suffix does not
            // surface as an identifier.
            while let Some(&d) = chars.peek() {
                if d.is_alphanumeric() || d == '_' || d == '.' {
                    chars.next();
                } else {
                    break;
                }
            }
        } else {
            toks.push(Tok::Punct(c));
            chars.next();
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(line: &Line) -> Vec<&str> {
        line.toks.iter().filter_map(Tok::ident).collect()
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let lines = lex("let x = \"HashMap\"; // HashMap here\nuse std::collections::HashMap;\n");
        assert!(!idents(&lines[0]).contains(&"HashMap"));
        assert_eq!(lines[0].comments, vec![" HashMap here".to_string()]);
        assert!(idents(&lines[1]).contains(&"HashMap"));
    }

    #[test]
    fn raw_and_multiline_strings_are_blanked() {
        let text = "let a = r#\"Instant::now() \" quote\"#;\nlet b = \"multi\nline HashSet\";\nlet c = HashSet::new();\n";
        let lines = lex(text);
        assert!(idents(&lines[0]).is_empty() || !idents(&lines[0]).contains(&"Instant"));
        assert!(!idents(&lines[2]).contains(&"HashSet"), "{:?}", lines[2]);
        assert!(idents(&lines[3]).contains(&"HashSet"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lines = lex(
            "/* outer /* inner HashMap */ still out */ let x = 1;\n/* spans\nHashMap\n*/ vec![]\n",
        );
        assert!(!idents(&lines[0]).contains(&"HashMap"));
        assert!(idents(&lines[0]).contains(&"let"));
        assert!(idents(&lines[2]).is_empty());
        assert!(idents(&lines[3]).contains(&"vec"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lines = lex("fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; s.unwrap() }\n");
        let ids = idents(&lines[0]);
        assert!(ids.contains(&"a"), "lifetime label still lexes: {ids:?}");
        assert!(ids.contains(&"unwrap"), "code after char literals kept");
    }

    #[test]
    fn doc_comments_are_comments() {
        let lines = lex("/// let x = map.unwrap();\n//! HashMap in crate docs\nlet y = 1;\n");
        assert!(!lines[0].has_code());
        assert!(!lines[1].has_code());
        assert!(lines[2].has_code());
    }

    #[test]
    fn numeric_suffixes_do_not_become_idents() {
        let lines = lex("let x = 1u32 + 0xff_usize;\n");
        let ids = idents(&lines[0]);
        assert!(!ids.contains(&"u32"));
        assert!(ids.contains(&"let"));
    }
}
