//! Content-addressed seed derivation for sweep cells.
//!
//! The sweep engine used to seed replicate `j` of cell `i` as
//! `derive_seed(master, i · R + j)`, which ties every cell's RNG
//! stream to the grid *shape*: changing `--replicates` or inserting a
//! refinement cell renumbers every later cell and silently reshuffles
//! its draws. Content addressing removes the coupling: the seed is a
//! pure function of the cell's own coordinates
//! `(side, k, radius-bits, replicate)`, hashed with FNV-1a 64 (the
//! same hash discipline as the protocol crate's event log and the
//! analysis result store) and fed through
//! [`sparsegossip_walks::derive_seed`].
//!
//! Two consequences the adaptive sweep machinery relies on:
//!
//! * inserting cells (bisection midpoints, replicate top-ups) never
//!   changes any existing cell's draws, at any thread count;
//! * cells that share coordinates across network/world axis points
//!   share seeds — common random numbers, so axis contrasts are
//!   paired. Result caches must therefore key on
//!   `(spec content hash, seed)`, never on the seed alone.

use sparsegossip_walks::derive_seed;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a 64 over `bytes` (the workspace's shared hash discipline:
/// protocol event logs, sweep cell keys, result-store trailers).
///
/// # Examples
///
/// ```
/// use sparsegossip_core::cellkey::fnv1a;
///
/// assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325); // offset basis
/// assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
/// ```
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &byte in bytes {
        hash = (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The content-addressed seed of one replicate of one sweep cell:
/// `derive_seed(master, FNV-1a(side, k, radius, replicate))`.
///
/// Deterministic and independent of grid shape, replicate count and
/// thread count; distinct coordinates decorrelate (pinned by the
/// 10⁴-cell collision proptest in the analysis crate).
///
/// # Examples
///
/// ```
/// use sparsegossip_core::cellkey::cell_seed;
///
/// let a = cell_seed(2011, 32, 16, 8, 0);
/// assert_eq!(a, cell_seed(2011, 32, 16, 8, 0)); // pure function
/// assert_ne!(a, cell_seed(2011, 32, 16, 8, 1)); // replicate matters
/// assert_ne!(a, cell_seed(2011, 32, 16, 9, 0)); // radius matters
/// ```
#[must_use]
pub fn cell_seed(master: u64, side: u32, k: usize, radius: u32, replicate: u32) -> u64 {
    let mut key = [0u8; 20];
    key[0..4].copy_from_slice(&side.to_le_bytes());
    key[4..12].copy_from_slice(&(k as u64).to_le_bytes());
    key[12..16].copy_from_slice(&radius.to_le_bytes());
    key[16..20].copy_from_slice(&replicate.to_le_bytes());
    derive_seed(master, fnv1a(&key))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Classic FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_F739_67E8);
    }

    #[test]
    fn cell_seed_is_field_sensitive() {
        let base = cell_seed(1, 10, 5, 3, 0);
        assert_ne!(base, cell_seed(2, 10, 5, 3, 0), "master");
        assert_ne!(base, cell_seed(1, 11, 5, 3, 0), "side");
        assert_ne!(base, cell_seed(1, 10, 6, 3, 0), "k");
        assert_ne!(base, cell_seed(1, 10, 5, 4, 0), "radius");
        assert_ne!(base, cell_seed(1, 10, 5, 3, 1), "replicate");
    }

    #[test]
    fn cell_seed_ignores_grid_shape() {
        // The whole point: the seed is addressed by content, so it
        // cannot depend on how many replicates or cells surround it.
        let lone = cell_seed(7, 24, 8, 6, 2);
        // Recompute in a different "context" (no context to pass —
        // the signature itself proves shape independence).
        assert_eq!(lone, cell_seed(7, 24, 8, 6, 2));
    }
}
