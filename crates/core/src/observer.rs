use sparsegossip_conngraph::Components;
use sparsegossip_grid::Point;
use sparsegossip_walks::BitSet;

use crate::RumorSets;

/// The per-step snapshot handed to [`Observer`] implementations.
///
/// All references are valid only for the duration of the callback.
#[derive(Clone, Copy, Debug)]
pub struct StepContext<'a> {
    /// The step that just completed (1-based; step 0 is the initial
    /// exchange at placement time).
    pub time: u64,
    /// The grid side, for node indexing.
    pub side: u32,
    /// Agent positions after the move.
    pub positions: &'a [Point],
    /// Connected components of the visibility graph at this step.
    ///
    /// The full partition, unless the observer declared that it does
    /// not need one ([`Observer::wants_full_components`] is `false`)
    /// *and* the process runs under a
    /// [`Seeded`](crate::ComponentsScope::Seeded) scope — then only the
    /// seed-containing components are labelled (identically to the full
    /// build on those components).
    pub components: &'a Components,
    /// Informed-agent set after the exchange (empty for processes
    /// without a single-rumor informed notion, e.g. gossip).
    pub informed: &'a BitSet,
    /// Per-agent rumor sets after the exchange, for multi-rumor
    /// processes (`None` elsewhere).
    pub rumors: Option<&'a RumorSets>,
}

/// Hook invoked after every exchange of a broadcast-style simulation.
///
/// Observers compose with tuples: `(&mut a, &mut b)` is itself an
/// observer that invokes both.
pub trait Observer {
    /// Called once per completed step, after movement and exchange.
    fn on_step(&mut self, ctx: StepContext<'_>);

    /// Whether this observer reads [`StepContext::components`] and
    /// needs it to cover the *full* partition.
    ///
    /// Defaults to `true`: every observer sees the complete visibility
    /// partition, exactly as before the frontier-sparse engine existed.
    /// Observers that never look at the components (notably
    /// [`NullObserver`], i.e. every plain `run`) return `false`, which
    /// lets the driver use seed-restricted labelling for processes that
    /// declare a [`Seeded`](crate::ComponentsScope::Seeded) scope —
    /// outcome-identical, but with per-step cost proportional to the
    /// informed frontier instead of `k`.
    #[inline]
    fn wants_full_components(&self) -> bool {
        true
    }
}

/// The no-op observer.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline]
    fn on_step(&mut self, _ctx: StepContext<'_>) {}

    /// Reads nothing, so the driver may label from the frontier only.
    #[inline]
    fn wants_full_components(&self) -> bool {
        false
    }
}

impl<O: Observer + ?Sized> Observer for &mut O {
    #[inline]
    fn on_step(&mut self, ctx: StepContext<'_>) {
        (**self).on_step(ctx);
    }

    #[inline]
    fn wants_full_components(&self) -> bool {
        (**self).wants_full_components()
    }
}

impl<A: Observer, B: Observer> Observer for (A, B) {
    #[inline]
    fn on_step(&mut self, ctx: StepContext<'_>) {
        self.0.on_step(ctx);
        self.1.on_step(ctx);
    }

    #[inline]
    fn wants_full_components(&self) -> bool {
        self.0.wants_full_components() || self.1.wants_full_components()
    }
}

/// Records the number of informed agents after every step — the
/// "epidemic curve" of a run.
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use sparsegossip_core::{BroadcastSim, InformedCurve, SimConfig};
///
/// let config = SimConfig::builder(32, 16).build()?;
/// let mut rng = SmallRng::seed_from_u64(2);
/// let mut sim = BroadcastSim::new(&config, &mut rng)?;
/// let mut curve = InformedCurve::new();
/// sim.run_with(&mut rng, &mut curve);
/// // The curve is non-decreasing.
/// assert!(curve.counts().windows(2).all(|w| w[0] <= w[1]));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct InformedCurve {
    counts: Vec<u32>,
}

impl InformedCurve {
    /// Creates an empty curve.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The informed count after each observed step.
    #[must_use]
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// The first observed step index at which at least `threshold`
    /// agents were informed.
    #[must_use]
    pub fn time_to_reach(&self, threshold: u32) -> Option<usize> {
        self.counts.iter().position(|&c| c >= threshold)
    }
}

impl Observer for InformedCurve {
    fn on_step(&mut self, ctx: StepContext<'_>) {
        self.counts.push(ctx.informed.count_ones() as u32);
    }

    /// Reads only the informed set, so frontier-sparse labelling stays
    /// available.
    fn wants_full_components(&self) -> bool {
        false
    }
}

/// Records the minimum per-agent rumor count after every step — the
/// gossip analogue of the epidemic curve, so multi-rumor runs are as
/// inspectable as broadcast runs.
///
/// Steps whose context carries no rumor sets (single-rumor processes)
/// are ignored.
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use sparsegossip_core::{MinRumorsCurve, SimConfig, Simulation};
///
/// let config = SimConfig::builder(16, 6).build()?;
/// let mut rng = SmallRng::seed_from_u64(3);
/// let mut sim = Simulation::gossip(&config, &mut rng)?;
/// let mut curve = MinRumorsCurve::new();
/// sim.run_with(&mut rng, &mut curve);
/// // The curve is non-decreasing and ends at the full rumor count.
/// assert!(curve.counts().windows(2).all(|w| w[0] <= w[1]));
/// assert_eq!(*curve.counts().last().unwrap(), 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct MinRumorsCurve {
    counts: Vec<u32>,
}

impl MinRumorsCurve {
    /// Creates an empty curve.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The minimum per-agent rumor count after each observed step.
    #[must_use]
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// The first observed step index at which every agent knew at least
    /// `threshold` rumors.
    #[must_use]
    pub fn time_to_reach(&self, threshold: u32) -> Option<usize> {
        self.counts.iter().position(|&c| c >= threshold)
    }
}

impl Observer for MinRumorsCurve {
    fn on_step(&mut self, ctx: StepContext<'_>) {
        if let Some(rumors) = ctx.rumors {
            self.counts.push(rumors.min_count() as u32);
        }
    }

    /// Reads only the rumor sets, so frontier-sparse labelling stays
    /// available.
    fn wants_full_components(&self) -> bool {
        false
    }
}

/// Tracks the rightmost x-coordinate ever touched by an informed agent —
/// the frontier of the *informed area* `I(t)` whose advance rate
/// Theorem 2's lower-bound argument controls (≲ `γ log n / 2` per
/// `γ²/(144 log n)` steps).
#[derive(Clone, Debug, Default)]
pub struct FrontierTracker {
    frontier: Vec<u32>,
    rightmost: u32,
}

impl FrontierTracker {
    /// Creates a tracker with an empty history.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The frontier x-coordinate after each observed step.
    #[must_use]
    pub fn frontier(&self) -> &[u32] {
        &self.frontier
    }

    /// The rightmost x-coordinate touched by any informed agent so far.
    #[must_use]
    pub fn rightmost(&self) -> u32 {
        self.rightmost
    }
}

impl Observer for FrontierTracker {
    fn on_step(&mut self, ctx: StepContext<'_>) {
        for i in ctx.informed.iter_ones() {
            self.rightmost = self.rightmost.max(ctx.positions[i].x);
        }
        self.frontier.push(self.rightmost);
    }

    /// Reads only the informed set and positions, so frontier-sparse
    /// labelling stays available.
    fn wants_full_components(&self) -> bool {
        false
    }
}

/// Records the size of the largest visibility-graph component after
/// every step (the island-size series of Lemma 6, seen from inside a
/// dissemination run).
#[derive(Clone, Debug, Default)]
pub struct ComponentSizeCurve {
    max_sizes: Vec<u32>,
}

impl ComponentSizeCurve {
    /// Creates an empty curve.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The largest component size at each observed step.
    #[must_use]
    pub fn max_sizes(&self) -> &[u32] {
        &self.max_sizes
    }

    /// The largest component ever observed.
    #[must_use]
    pub fn peak(&self) -> u32 {
        self.max_sizes.iter().copied().max().unwrap_or(0)
    }
}

impl Observer for ComponentSizeCurve {
    fn on_step(&mut self, ctx: StepContext<'_>) {
        self.max_sizes.push(ctx.components.max_size() as u32);
    }
}

/// Records the step at which each agent first became informed.
///
/// Entry `i` is `None` until agent `i` is informed. The source is
/// recorded at step 0.
#[derive(Clone, Debug)]
pub struct InfectionTimes {
    times: Vec<Option<u64>>,
}

impl InfectionTimes {
    /// Creates a tracker for `k` agents.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self {
            times: vec![None; k],
        }
    }

    /// Per-agent infection times.
    #[must_use]
    pub fn times(&self) -> &[Option<u64>] {
        &self.times
    }

    /// Mean infection time over the agents infected so far.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        let infected: Vec<u64> = self.times.iter().flatten().copied().collect();
        if infected.is_empty() {
            None
        } else {
            Some(infected.iter().sum::<u64>() as f64 / infected.len() as f64)
        }
    }
}

impl Observer for InfectionTimes {
    fn on_step(&mut self, ctx: StepContext<'_>) {
        for i in ctx.informed.iter_ones() {
            if self.times[i].is_none() {
                self.times[i] = Some(ctx.time);
            }
        }
    }

    /// Reads only the informed set, so frontier-sparse labelling stays
    /// available.
    fn wants_full_components(&self) -> bool {
        false
    }
}

/// Records, per tessellation cell, the first step at which an informed
/// agent stood in the cell — the "cell reached at time `t_Q`" events
/// that drive the Theorem 1 upper-bound argument.
#[derive(Clone, Debug)]
pub struct CellReachTimes {
    tess: sparsegossip_grid::Tessellation,
    first_reach: Vec<Option<u64>>,
    unreached: usize,
    all_reached_at: Option<u64>,
}

impl CellReachTimes {
    /// Creates a tracker over the given tessellation.
    #[must_use]
    pub fn new(tess: sparsegossip_grid::Tessellation) -> Self {
        let cells = tess.num_cells() as usize;
        Self {
            tess,
            first_reach: vec![None; cells],
            unreached: cells,
            all_reached_at: None,
        }
    }

    /// Per-cell first-reach steps (row-major cell order).
    #[must_use]
    pub fn first_reach(&self) -> &[Option<u64>] {
        &self.first_reach
    }

    /// The first step at which every cell had been reached, if it
    /// happened.
    #[must_use]
    pub fn all_reached_at(&self) -> Option<u64> {
        self.all_reached_at
    }

    /// The number of cells not yet reached.
    #[must_use]
    pub fn unreached(&self) -> usize {
        self.unreached
    }

    /// The tessellation being tracked.
    #[must_use]
    pub fn tessellation(&self) -> &sparsegossip_grid::Tessellation {
        &self.tess
    }
}

impl Observer for CellReachTimes {
    fn on_step(&mut self, ctx: StepContext<'_>) {
        if self.unreached == 0 {
            return;
        }
        for i in ctx.informed.iter_ones() {
            let c = self.tess.cell_of(ctx.positions[i]).as_usize();
            if self.first_reach[c].is_none() {
                self.first_reach[c] = Some(ctx.time);
                self.unreached -= 1;
            }
        }
        if self.unreached == 0 {
            self.all_reached_at = Some(ctx.time);
        }
    }

    /// Reads only the informed set and positions, so frontier-sparse
    /// labelling stays available.
    fn wants_full_components(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsegossip_conngraph::components;

    fn ctx_at<'a>(
        time: u64,
        positions: &'a [Point],
        comps: &'a Components,
        informed: &'a BitSet,
    ) -> StepContext<'a> {
        StepContext {
            time,
            side: 16,
            positions,
            components: comps,
            informed,
            rumors: None,
        }
    }

    #[test]
    fn informed_curve_records_counts() {
        let positions = [Point::new(0, 0), Point::new(5, 5)];
        let comps = components(&positions, 0, 16);
        let mut informed = BitSet::new(2);
        informed.insert(0);
        let mut curve = InformedCurve::new();
        curve.on_step(ctx_at(0, &positions, &comps, &informed));
        informed.insert(1);
        curve.on_step(ctx_at(1, &positions, &comps, &informed));
        assert_eq!(curve.counts(), &[1, 2]);
        assert_eq!(curve.time_to_reach(2), Some(1));
        assert_eq!(curve.time_to_reach(3), None);
    }

    #[test]
    fn frontier_tracks_informed_only() {
        let positions = [Point::new(2, 0), Point::new(9, 0)];
        let comps = components(&positions, 0, 16);
        let mut informed = BitSet::new(2);
        informed.insert(0);
        let mut f = FrontierTracker::new();
        f.on_step(ctx_at(0, &positions, &comps, &informed));
        assert_eq!(f.rightmost(), 2, "uninformed agent at x=9 must not count");
        informed.insert(1);
        f.on_step(ctx_at(1, &positions, &comps, &informed));
        assert_eq!(f.frontier(), &[2, 9]);
    }

    #[test]
    fn infection_times_record_first_step_only() {
        let positions = [Point::new(0, 0), Point::new(1, 1)];
        let comps = components(&positions, 0, 16);
        let mut informed = BitSet::new(2);
        informed.insert(0);
        let mut t = InfectionTimes::new(2);
        t.on_step(ctx_at(0, &positions, &comps, &informed));
        t.on_step(ctx_at(5, &positions, &comps, &informed));
        informed.insert(1);
        t.on_step(ctx_at(9, &positions, &comps, &informed));
        assert_eq!(t.times(), &[Some(0), Some(9)]);
        assert_eq!(t.mean(), Some(4.5));
    }

    #[test]
    fn component_curve_and_tuple_composition() {
        let positions = [Point::new(0, 0), Point::new(0, 1), Point::new(9, 9)];
        let comps = components(&positions, 1, 16);
        let informed = BitSet::new(3);
        let mut c = ComponentSizeCurve::new();
        let mut n = NullObserver;
        let mut pair = (&mut c, &mut n);
        pair.on_step(ctx_at(0, &positions, &comps, &informed));
        assert_eq!(c.max_sizes(), &[2]);
        assert_eq!(c.peak(), 2);
    }

    #[test]
    fn min_rumors_curve_reads_rumor_contexts_only() {
        let positions = [Point::new(0, 0), Point::new(1, 1)];
        let comps = components(&positions, 0, 16);
        let informed = BitSet::new(2);
        let mut curve = MinRumorsCurve::new();
        // A context without rumor sets is ignored.
        curve.on_step(ctx_at(0, &positions, &comps, &informed));
        assert!(curve.counts().is_empty());
        let rumors = crate::RumorSets::distinct(2);
        curve.on_step(StepContext {
            time: 1,
            side: 16,
            positions: &positions,
            components: &comps,
            informed: &informed,
            rumors: Some(&rumors),
        });
        assert_eq!(curve.counts(), &[1]);
        assert_eq!(curve.time_to_reach(1), Some(0));
        assert_eq!(curve.time_to_reach(2), None);
    }

    #[test]
    fn empty_infection_mean_is_none() {
        let t = InfectionTimes::new(3);
        assert_eq!(t.mean(), None);
    }

    #[test]
    fn cell_reach_records_informed_cells_only() {
        use sparsegossip_grid::Tessellation;
        let tess = Tessellation::new(16, 8).unwrap(); // 2×2 cells
        let mut cr = CellReachTimes::new(tess);
        assert_eq!(cr.unreached(), 4);
        let positions = [Point::new(1, 1), Point::new(9, 9)];
        let comps = components(&positions, 0, 16);
        let mut informed = BitSet::new(2);
        informed.insert(0); // only the agent in cell (0,0)
        cr.on_step(ctx_at(3, &positions, &comps, &informed));
        assert_eq!(cr.first_reach()[0], Some(3));
        assert_eq!(cr.first_reach()[3], None);
        assert_eq!(cr.unreached(), 3);
        assert_eq!(cr.all_reached_at(), None);
        // Inform the second agent; move agents through remaining cells.
        informed.insert(1);
        let positions = [Point::new(9, 1), Point::new(1, 9)];
        let comps = components(&positions, 0, 16);
        cr.on_step(ctx_at(7, &positions, &comps, &informed));
        let positions = [Point::new(9, 9), Point::new(1, 9)];
        let comps = components(&positions, 0, 16);
        cr.on_step(ctx_at(9, &positions, &comps, &informed));
        assert_eq!(cr.all_reached_at(), Some(9));
        assert_eq!(cr.unreached(), 0);
        assert_eq!(cr.tessellation().num_cells(), 4);
    }

    #[test]
    fn cell_reach_first_time_is_sticky() {
        use sparsegossip_grid::Tessellation;
        let tess = Tessellation::new(8, 8).unwrap(); // single cell
        let mut cr = CellReachTimes::new(tess);
        let positions = [Point::new(0, 0)];
        let comps = components(&positions, 0, 8);
        let mut informed = BitSet::new(1);
        informed.insert(0);
        cr.on_step(ctx_at(2, &positions, &comps, &informed));
        cr.on_step(ctx_at(5, &positions, &comps, &informed));
        assert_eq!(cr.first_reach()[0], Some(2));
        assert_eq!(cr.all_reached_at(), Some(2));
    }
}
