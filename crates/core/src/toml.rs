//! Self-contained parser for the TOML subset used by scenario and
//! sweep specification files.
//!
//! The workspace's only external dependencies are the vendored crates,
//! so spec files are read with this minimal parser instead of a real
//! TOML implementation. The supported subset is exactly what the spec
//! formats need:
//!
//! * `[section]` headers;
//! * `key = value` pairs, where a value is an integer, a float, a
//!   boolean, a double-quoted string, or a single-line array of those
//!   scalars;
//! * `#` comments (whole-line or trailing) and blank lines.
//!
//! Nested tables, multi-line arrays, datetimes and string escapes other
//! than `\"` and `\\` are out of scope and rejected with a line-numbered
//! error.
//!
//! # Examples
//!
//! ```
//! use sparsegossip_core::toml::TomlDoc;
//!
//! let doc = TomlDoc::parse(
//!     "[scenario]\nprocess = \"broadcast\"\nside = 64\n\n[sweep]\nr_factors = [0.5, 1.0, 2.0]\n",
//! )?;
//! let scenario = doc.section("scenario")?;
//! assert_eq!(scenario.need_str("process")?, "broadcast");
//! assert_eq!(scenario.need_u32("side")?, 64);
//! let sweep = doc.section("sweep")?;
//! assert_eq!(sweep.opt_f64_array("r_factors")?, Some(vec![0.5, 1.0, 2.0]));
//! # Ok::<(), sparsegossip_core::toml::TomlError>(())
//! ```

use core::fmt;
use std::collections::BTreeMap;

/// A scalar or array value of the supported TOML subset.
#[derive(Clone, Debug, PartialEq)]
pub enum TomlValue {
    /// An integer literal (`42`, `-3`).
    Integer(i64),
    /// A float literal (`0.5`, `1e3`).
    Float(f64),
    /// A boolean literal (`true`, `false`).
    Bool(bool),
    /// A double-quoted string.
    Str(String),
    /// A single-line array of scalars.
    Array(Vec<TomlValue>),
}

impl TomlValue {
    /// The subset's name for this value's type, used in error messages.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Self::Integer(_) => "integer",
            Self::Float(_) => "float",
            Self::Bool(_) => "boolean",
            Self::Str(_) => "string",
            Self::Array(_) => "array",
        }
    }
}

/// Errors from parsing or interrogating a spec document.
#[derive(Clone, Debug, PartialEq)]
pub enum TomlError {
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A required `[section]` is absent.
    MissingSection(String),
    /// A required key is absent from its section.
    MissingKey {
        /// The section name.
        section: String,
        /// The missing key.
        key: String,
    },
    /// A key exists but holds a value of the wrong type or range.
    BadValue {
        /// The section name.
        section: String,
        /// The offending key.
        key: String,
        /// What the caller expected (e.g. `"u32"`).
        expected: &'static str,
    },
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Syntax { line, message } => write!(f, "spec line {line}: {message}"),
            Self::MissingSection(s) => write!(f, "spec is missing the [{s}] section"),
            Self::MissingKey { section, key } => {
                write!(f, "spec section [{section}] is missing key {key:?}")
            }
            Self::BadValue {
                section,
                key,
                expected,
            } => write!(f, "spec key {key:?} in [{section}] must be a {expected}"),
        }
    }
}

impl std::error::Error for TomlError {}

/// One `[section]` of a parsed document: a named map of keys to values
/// with typed accessors.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TomlTable {
    name: String,
    entries: BTreeMap<String, TomlValue>,
}

macro_rules! opt_scalar {
    ($(#[$doc:meta])* $fn_name:ident, $ty:ty, $expected:literal) => {
        $(#[$doc])*
        ///
        /// # Errors
        ///
        /// [`TomlError::BadValue`] if present but of the wrong type or
        /// out of range.
        pub fn $fn_name(&self, key: &str) -> Result<Option<$ty>, TomlError> {
            self.entries
                .get(key)
                .map(|v| {
                    Self::integer_of(v)
                        .and_then(|i| <$ty>::try_from(i).ok())
                        .ok_or_else(|| self.bad(key, $expected))
                })
                .transpose()
        }
    };
}

impl TomlTable {
    /// The section name (the text inside the brackets).
    #[inline]
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The raw value of `key`, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&TomlValue> {
        self.entries.get(key)
    }

    /// The keys present in this section, sorted.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    fn bad(&self, key: &str, expected: &'static str) -> TomlError {
        TomlError::BadValue {
            section: self.name.clone(),
            key: key.to_string(),
            expected,
        }
    }

    fn missing(&self, key: &str) -> TomlError {
        TomlError::MissingKey {
            section: self.name.clone(),
            key: key.to_string(),
        }
    }

    fn integer_of(v: &TomlValue) -> Option<i64> {
        match v {
            TomlValue::Integer(i) => Some(*i),
            _ => None,
        }
    }

    opt_scalar!(
        /// Reads `key` as a `u32`, if present.
        opt_u32,
        u32,
        "non-negative integer fitting u32"
    );
    opt_scalar!(
        /// Reads `key` as a `u64`, if present.
        opt_u64,
        u64,
        "non-negative integer"
    );
    opt_scalar!(
        /// Reads `key` as a `usize`, if present.
        opt_usize,
        usize,
        "non-negative integer"
    );

    /// Reads `key` as an `f64`, if present (integers widen).
    ///
    /// # Errors
    ///
    /// [`TomlError::BadValue`] if present but not numeric.
    pub fn opt_f64(&self, key: &str) -> Result<Option<f64>, TomlError> {
        self.entries
            .get(key)
            .map(|v| match v {
                TomlValue::Float(x) => Ok(*x),
                TomlValue::Integer(i) => Ok(*i as f64),
                _ => Err(self.bad(key, "number")),
            })
            .transpose()
    }

    /// Reads `key` as a string slice, if present.
    ///
    /// # Errors
    ///
    /// [`TomlError::BadValue`] if present but not a string.
    pub fn opt_str(&self, key: &str) -> Result<Option<&str>, TomlError> {
        self.entries
            .get(key)
            .map(|v| match v {
                TomlValue::Str(s) => Ok(s.as_str()),
                _ => Err(self.bad(key, "string")),
            })
            .transpose()
    }

    /// Reads `key` as a boolean, if present.
    ///
    /// # Errors
    ///
    /// [`TomlError::BadValue`] if present but not a boolean.
    pub fn opt_bool(&self, key: &str) -> Result<Option<bool>, TomlError> {
        self.entries
            .get(key)
            .map(|v| match v {
                TomlValue::Bool(b) => Ok(*b),
                _ => Err(self.bad(key, "boolean")),
            })
            .transpose()
    }

    /// Reads `key` as an array of `f64` (integers widen), if present.
    ///
    /// # Errors
    ///
    /// [`TomlError::BadValue`] if present but not a numeric array.
    pub fn opt_f64_array(&self, key: &str) -> Result<Option<Vec<f64>>, TomlError> {
        self.entries
            .get(key)
            .map(|v| match v {
                TomlValue::Array(items) => items
                    .iter()
                    .map(|item| match item {
                        TomlValue::Float(x) => Ok(*x),
                        TomlValue::Integer(i) => Ok(*i as f64),
                        _ => Err(self.bad(key, "array of numbers")),
                    })
                    .collect(),
                _ => Err(self.bad(key, "array of numbers")),
            })
            .transpose()
    }

    /// Reads `key` as an array of `u32`, if present.
    ///
    /// # Errors
    ///
    /// [`TomlError::BadValue`] if present but not an array of
    /// non-negative integers fitting `u32`.
    pub fn opt_u32_array(&self, key: &str) -> Result<Option<Vec<u32>>, TomlError> {
        self.typed_int_array(key, "array of non-negative integers fitting u32")
    }

    /// Reads `key` as an array of `usize`, if present.
    ///
    /// # Errors
    ///
    /// [`TomlError::BadValue`] if present but not an array of
    /// non-negative integers.
    pub fn opt_usize_array(&self, key: &str) -> Result<Option<Vec<usize>>, TomlError> {
        self.typed_int_array(key, "array of non-negative integers")
    }

    /// Reads `key` as an array of strings, if present.
    ///
    /// # Errors
    ///
    /// [`TomlError::BadValue`] if present but not an array of strings.
    pub fn opt_str_array(&self, key: &str) -> Result<Option<Vec<String>>, TomlError> {
        self.entries
            .get(key)
            .map(|v| match v {
                TomlValue::Array(items) => items
                    .iter()
                    .map(|item| match item {
                        TomlValue::Str(s) => Ok(s.clone()),
                        _ => Err(self.bad(key, "array of strings")),
                    })
                    .collect(),
                _ => Err(self.bad(key, "array of strings")),
            })
            .transpose()
    }

    fn typed_int_array<T: TryFrom<i64>>(
        &self,
        key: &str,
        expected: &'static str,
    ) -> Result<Option<Vec<T>>, TomlError> {
        self.entries
            .get(key)
            .map(|v| match v {
                TomlValue::Array(items) => items
                    .iter()
                    .map(|item| {
                        Self::integer_of(item)
                            .and_then(|i| T::try_from(i).ok())
                            .ok_or_else(|| self.bad(key, expected))
                    })
                    .collect(),
                _ => Err(self.bad(key, expected)),
            })
            .transpose()
    }

    /// As [`opt_u32`](Self::opt_u32), but the key must be present.
    ///
    /// # Errors
    ///
    /// [`TomlError::MissingKey`] when absent; [`TomlError::BadValue`] on
    /// type mismatch.
    pub fn need_u32(&self, key: &str) -> Result<u32, TomlError> {
        self.opt_u32(key)?.ok_or_else(|| self.missing(key))
    }

    /// As [`opt_usize`](Self::opt_usize), but the key must be present.
    ///
    /// # Errors
    ///
    /// As [`need_u32`](Self::need_u32).
    pub fn need_usize(&self, key: &str) -> Result<usize, TomlError> {
        self.opt_usize(key)?.ok_or_else(|| self.missing(key))
    }

    /// As [`opt_str`](Self::opt_str), but the key must be present.
    ///
    /// # Errors
    ///
    /// As [`need_u32`](Self::need_u32).
    pub fn need_str(&self, key: &str) -> Result<&str, TomlError> {
        self.opt_str(key)?.ok_or_else(|| self.missing(key))
    }
}

/// A parsed spec document: `[section]`s in file order, each a
/// [`TomlTable`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TomlDoc {
    sections: Vec<TomlTable>,
}

impl TomlDoc {
    /// Parses `text` into sections.
    ///
    /// # Errors
    ///
    /// [`TomlError::Syntax`] (with a 1-based line number) on anything
    /// outside the supported subset, including keys before the first
    /// section header and duplicate sections or keys.
    pub fn parse(text: &str) -> Result<Self, TomlError> {
        let mut doc = Self::default();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw, line_no)?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let name = header
                    .strip_suffix(']')
                    .ok_or_else(|| syntax(line_no, "unterminated section header"))?
                    .trim();
                if name.is_empty() || !name.chars().all(is_key_char) {
                    return Err(syntax(line_no, "invalid section name"));
                }
                if doc.sections.iter().any(|s| s.name == name) {
                    return Err(syntax(line_no, &format!("duplicate section [{name}]")));
                }
                doc.sections.push(TomlTable {
                    name: name.to_string(),
                    entries: BTreeMap::new(),
                });
                continue;
            }
            let (key, value_text) = line
                .split_once('=')
                .ok_or_else(|| syntax(line_no, "expected `key = value` or `[section]`"))?;
            let key = key.trim();
            if key.is_empty() || !key.chars().all(is_key_char) {
                return Err(syntax(line_no, &format!("invalid key {key:?}")));
            }
            let value = parse_value(value_text.trim(), line_no)?;
            let section = doc
                .sections
                .last_mut()
                .ok_or_else(|| syntax(line_no, "key before any [section] header"))?;
            if section.entries.insert(key.to_string(), value).is_some() {
                return Err(syntax(line_no, &format!("duplicate key {key:?}")));
            }
        }
        Ok(doc)
    }

    /// The named section.
    ///
    /// # Errors
    ///
    /// [`TomlError::MissingSection`] when absent.
    pub fn section(&self, name: &str) -> Result<&TomlTable, TomlError> {
        self.opt_section(name)
            .ok_or_else(|| TomlError::MissingSection(name.to_string()))
    }

    /// The named section, if present.
    #[must_use]
    pub fn opt_section(&self, name: &str) -> Option<&TomlTable> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// The sections in file order.
    pub fn sections(&self) -> impl Iterator<Item = &TomlTable> {
        self.sections.iter()
    }
}

fn syntax(line: usize, message: &str) -> TomlError {
    TomlError::Syntax {
        line,
        message: message.to_string(),
    }
}

fn is_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Removes a trailing `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str, line_no: usize) -> Result<&str, TomlError> {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return Ok(&line[..i]),
            _ => {}
        }
    }
    if in_string {
        return Err(syntax(line_no, "unterminated string"));
    }
    Ok(line)
}

fn parse_value(text: &str, line_no: usize) -> Result<TomlValue, TomlError> {
    if text.is_empty() {
        return Err(syntax(line_no, "missing value after `=`"));
    }
    if let Some(body) = text.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| syntax(line_no, "unterminated array (arrays are single-line)"))?;
        let mut items = Vec::new();
        for part in split_array_items(body, line_no)? {
            if part.starts_with('[') {
                return Err(syntax(line_no, "nested arrays are not supported"));
            }
            items.push(parse_scalar(&part, line_no)?);
        }
        return Ok(TomlValue::Array(items));
    }
    parse_scalar(text, line_no)
}

/// Splits an array body on top-level commas, respecting strings; a
/// trailing comma is allowed.
fn split_array_items(body: &str, line_no: usize) -> Result<Vec<String>, TomlError> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    let mut escaped = false;
    for c in body.chars() {
        match c {
            _ if escaped => {
                escaped = false;
                current.push(c);
            }
            '\\' if in_string => {
                escaped = true;
                current.push(c);
            }
            '"' => {
                in_string = !in_string;
                current.push(c);
            }
            ',' if !in_string => {
                items.push(core::mem::take(&mut current));
                continue;
            }
            _ => current.push(c),
        }
    }
    if in_string {
        return Err(syntax(line_no, "unterminated string in array"));
    }
    items.push(current);
    let mut trimmed: Vec<String> = items.into_iter().map(|s| s.trim().to_string()).collect();
    if trimmed.last().is_some_and(String::is_empty) {
        trimmed.pop();
    }
    if trimmed.iter().any(String::is_empty) {
        return Err(syntax(line_no, "empty array element"));
    }
    Ok(trimmed)
}

fn parse_scalar(text: &str, line_no: usize) -> Result<TomlValue, TomlError> {
    if let Some(body) = text.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| syntax(line_no, "unterminated string"))?;
        let mut out = String::with_capacity(body.len());
        let mut escaped = false;
        for c in body.chars() {
            match c {
                _ if escaped => {
                    if c != '"' && c != '\\' {
                        return Err(syntax(line_no, &format!("unsupported escape `\\{c}`")));
                    }
                    escaped = false;
                    out.push(c);
                }
                '\\' => escaped = true,
                '"' => return Err(syntax(line_no, "unescaped quote inside string")),
                _ => out.push(c),
            }
        }
        if escaped {
            return Err(syntax(line_no, "dangling escape at end of string"));
        }
        return Ok(TomlValue::Str(out));
    }
    match text {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    if text.contains(['.', 'e', 'E']) {
        if let Ok(x) = text.parse::<f64>() {
            if x.is_finite() {
                return Ok(TomlValue::Float(x));
            }
        }
    } else if let Ok(i) = text.parse::<i64>() {
        return Ok(TomlValue::Integer(i));
    }
    Err(syntax(line_no, &format!("unparsable value {text:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_scalars_and_arrays() {
        let doc = TomlDoc::parse(
            "# file comment\n\
             [scenario]\n\
             process = \"broadcast\" # trailing comment\n\
             side = 64\n\
             frac = 0.5\n\
             flag = true\n\
             neg = -3\n\
             \n\
             [sweep]\n\
             sides = [32, 48, 64]\n\
             r_factors = [0.25, 1.0, 2.5,]\n\
             names = [\"a\", \"b\"]\n",
        )
        .unwrap();
        let s = doc.section("scenario").unwrap();
        assert_eq!(s.need_str("process").unwrap(), "broadcast");
        assert_eq!(s.need_u32("side").unwrap(), 64);
        assert_eq!(s.opt_f64("frac").unwrap(), Some(0.5));
        assert_eq!(s.opt_f64("side").unwrap(), Some(64.0), "integers widen");
        assert_eq!(s.opt_bool("flag").unwrap(), Some(true));
        assert_eq!(s.get("neg"), Some(&TomlValue::Integer(-3)));
        let w = doc.section("sweep").unwrap();
        assert_eq!(w.opt_u32_array("sides").unwrap(), Some(vec![32, 48, 64]));
        assert_eq!(
            w.opt_f64_array("r_factors").unwrap(),
            Some(vec![0.25, 1.0, 2.5])
        );
        assert_eq!(
            w.get("names"),
            Some(&TomlValue::Array(vec![
                TomlValue::Str("a".into()),
                TomlValue::Str("b".into())
            ]))
        );
        assert_eq!(
            w.opt_str_array("names").unwrap(),
            Some(vec!["a".to_string(), "b".to_string()])
        );
        assert_eq!(w.opt_str_array("absent").unwrap(), None);
        assert!(
            w.opt_str_array("sides").is_err(),
            "integers are not strings"
        );
        assert_eq!(doc.sections().count(), 2);
    }

    #[test]
    fn absent_keys_and_sections_are_reported() {
        let doc = TomlDoc::parse("[a]\nx = 1\n").unwrap();
        assert_eq!(
            doc.section("b").unwrap_err(),
            TomlError::MissingSection("b".into())
        );
        let a = doc.section("a").unwrap();
        assert_eq!(a.opt_u32("y").unwrap(), None);
        assert_eq!(
            a.need_u32("y").unwrap_err(),
            TomlError::MissingKey {
                section: "a".into(),
                key: "y".into()
            }
        );
    }

    #[test]
    fn type_and_range_mismatches_are_reported() {
        let doc = TomlDoc::parse("[a]\nx = \"hi\"\nneg = -1\nbig = 5000000000\n").unwrap();
        let a = doc.section("a").unwrap();
        assert!(matches!(
            a.opt_u32("x").unwrap_err(),
            TomlError::BadValue { .. }
        ));
        assert!(a.opt_u32("neg").is_err(), "negative rejected for u32");
        assert!(a.opt_u32("big").is_err(), "overflow rejected for u32");
        assert_eq!(a.opt_u64("big").unwrap(), Some(5_000_000_000));
        assert!(a.opt_f64("x").is_err());
        assert!(a.opt_bool("x").is_err());
        assert!(a.opt_f64_array("x").is_err());
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        for (text, line) in [
            ("[a]\nx 1\n", 2),
            ("x = 1\n", 1),
            ("[a\n", 1),
            ("[a]\n[a]\n", 2),
            ("[a]\nx = 1\nx = 2\n", 3),
            ("[a]\nx = \"unterminated\n", 2),
            ("[a]\nx = [1, 2\n", 2),
            ("[a]\nx = [[1]]\n", 2),
            ("[a]\nx = [1,,2]\n", 2),
            ("[a]\nx = zzz\n", 2),
            ("[a]\nx =\n", 2),
            ("[a]\nx = \"bad\\q\"\n", 2),
        ] {
            match TomlDoc::parse(text) {
                Err(TomlError::Syntax { line: l, .. }) => {
                    assert_eq!(l, line, "wrong line for {text:?}")
                }
                other => panic!("{text:?}: expected syntax error, got {other:?}"),
            }
        }
    }

    #[test]
    fn floats_reject_non_finite_and_ints_reject_float_syntax() {
        assert!(TomlDoc::parse("[a]\nx = inf\n").is_err());
        let doc = TomlDoc::parse("[a]\nx = 1e3\n").unwrap();
        let a = doc.section("a").unwrap();
        assert_eq!(a.opt_f64("x").unwrap(), Some(1000.0));
        assert!(a.opt_u32("x").is_err(), "float does not narrow to u32");
    }

    #[test]
    fn error_display_is_informative() {
        for e in [
            TomlError::Syntax {
                line: 3,
                message: "boom".into(),
            },
            TomlError::MissingSection("s".into()),
            TomlError::MissingKey {
                section: "s".into(),
                key: "k".into(),
            },
            TomlError::BadValue {
                section: "s".into(),
                key: "k".into(),
                expected: "u32",
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
