//! The protocol twin as a pluggable [`Process`]: real message passing
//! over the simulator's own seeded trajectory.
//!
//! [`ProtocolBroadcast`] wraps `sparsegossip_protocol`'s
//! [`NodeRuntime`] so the generic [`Simulation`] driver supplies
//! exactly what it supplies the analytic broadcast — the same uniform
//! placement draws and the same per-step lazy-walk draws — while the
//! rumor spreads by explicit `Gossip`/`GossipAck` messages instead of
//! component flooding. Because the process opts out of component
//! labelling (`NEEDS_COMPONENTS = false` and no mobility mask), the
//! driver's RNG consumption is identical draw-for-draw to
//! [`Simulation::broadcast`]'s, so simulator and twin literally share a
//! trajectory when given the same seed; all protocol-level randomness
//! (loss, delay) lives in the runtime's private per-node streams.

use core::fmt;
use core::ops::ControlFlow;

use rand::RngExt;
use sparsegossip_grid::Grid;
use sparsegossip_protocol::{
    FaultPlan, NetworkConfig, NodeRuntime, RecoveryConfig, RuntimeError, RuntimeStats,
};
use sparsegossip_walks::BitSet;

use crate::process::{ComponentsScope, ExchangeCtx, Process, SimScratch, Simulation};
use crate::{SimConfig, SimError};

/// Message-passing broadcast: each agent is a protocol node.
///
/// Construction mirrors [`Broadcast`](crate::Broadcast) — same agent
/// count and source validation — plus a [`NetworkConfig`] for fault
/// injection and a `protocol_seed` rooting the nodes' private RNG
/// streams (conventionally the run's master seed; the streams are
/// salted so they never collide with the mobility stream).
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use sparsegossip_core::{NetworkConfig, ProtocolBroadcast, SimConfig, Simulation};
///
/// let config = SimConfig::builder(16, 4).radius(2).build()?;
/// let mut rng = SmallRng::seed_from_u64(11);
/// let mut sim = Simulation::protocol_broadcast(&config, NetworkConfig::IDEAL, 11, &mut rng)?;
/// let out = sim.run(&mut rng);
/// assert_eq!(out.k, 4);
/// # Ok::<(), sparsegossip_core::SimError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ProtocolBroadcast {
    runtime: NodeRuntime,
    k: usize,
    error: Option<RuntimeError>,
}

impl ProtocolBroadcast {
    /// Creates the process for `k` nodes with one informed `source`.
    ///
    /// # Errors
    ///
    /// * [`SimError::TooFewAgents`] if `k < 2`;
    /// * [`SimError::SourceOutOfRange`] if `source ≥ k`.
    pub fn new(
        k: usize,
        source: usize,
        net: NetworkConfig,
        protocol_seed: u64,
    ) -> Result<Self, SimError> {
        if k < 2 {
            return Err(SimError::TooFewAgents { k });
        }
        if source >= k {
            return Err(SimError::SourceOutOfRange { source, k });
        }
        Ok(Self {
            runtime: NodeRuntime::new(k, source, net, protocol_seed, 1),
            k,
            error: None,
        })
    }

    /// Creates the process described by `config` (agent count, source).
    ///
    /// # Errors
    ///
    /// As [`ProtocolBroadcast::new`].
    pub fn from_config(
        config: &SimConfig,
        net: NetworkConfig,
        protocol_seed: u64,
    ) -> Result<Self, SimError> {
        Self::new(config.k(), config.source(), net, protocol_seed)
    }

    /// Sets the scheduler worker-thread count (`≥ 1`). Purely a
    /// wall-clock knob: results are identical for every value.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.runtime.set_workers(workers);
        self
    }

    /// Enables full event-record keeping (the log hash is always on).
    #[must_use]
    pub fn record_events(mut self, on: bool) -> Self {
        self.runtime.set_recording(on);
        self
    }

    /// Installs a fault plan (seeded crashes/restarts and scheduled
    /// partitions). The default, [`FaultPlan::NONE`], injects nothing
    /// and leaves the event log byte-identical to the fault-free twin.
    #[must_use]
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.runtime.set_fault_plan(plan);
        self
    }

    /// Installs a recovery configuration (retransmission with backoff,
    /// periodic anti-entropy digests). The default is
    /// [`RecoveryConfig::OFF`].
    #[must_use]
    pub fn recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.runtime.set_recovery(recovery);
        self
    }

    /// The underlying node runtime (event log, stats, per-node state).
    #[must_use]
    pub fn runtime(&self) -> &NodeRuntime {
        &self.runtime
    }
}

impl Process for ProtocolBroadcast {
    type Outcome = ProtocolOutcome;

    /// The runtime finds neighbors itself (through the same
    /// `SpatialHash`), so the driver never labels components — which
    /// also keeps its RNG draws identical to the analytic broadcast's.
    const NEEDS_COMPONENTS: bool = false;

    fn agent_count(&self) -> Option<usize> {
        Some(self.k)
    }

    fn components_scope(&self) -> ComponentsScope<'_> {
        ComponentsScope::None
    }

    fn exchange(&mut self, ctx: ExchangeCtx<'_>) -> ControlFlow<()> {
        match self
            .runtime
            .tick(ctx.time, ctx.positions, ctx.radius, ctx.side)
        {
            Ok(true) => ControlFlow::Break(()),
            Ok(false) => ControlFlow::Continue(()),
            Err(e) => {
                // The runtime is unusable; end the run and surface the
                // failure on the outcome instead of panicking the
                // driver.
                self.error = Some(e);
                ControlFlow::Break(())
            }
        }
    }

    fn informed(&self) -> Option<&BitSet> {
        Some(self.runtime.informed())
    }

    fn outcome(&self, _time: u64) -> ProtocolOutcome {
        ProtocolOutcome {
            completion_time: self.runtime.completed_at(),
            informed: self.runtime.informed_count(),
            k: self.k,
            stats: *self.runtime.stats(),
            log_hash: self.runtime.log().hash(),
            error: self.error,
        }
    }
}

/// The result of a protocol-twin broadcast run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProtocolOutcome {
    /// The tick on which the last node learned the rumor (`T_B`), or
    /// `None` if the run hit its step cap first.
    pub completion_time: Option<u64>,
    /// Number of informed nodes when the run ended.
    pub informed: usize,
    /// Total number of nodes.
    pub k: usize,
    /// Message counters (sends, deliveries, drops, timer firings).
    pub stats: RuntimeStats,
    /// Rolling hash of the full event log — byte-reproducibility in
    /// one comparable word.
    pub log_hash: u64,
    /// A runtime failure that aborted the run (worker panic), if any.
    pub error: Option<RuntimeError>,
}

impl ProtocolOutcome {
    /// Whether every node was informed.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.completion_time.is_some()
    }

    /// Informed nodes as a fraction of all nodes.
    #[must_use]
    pub fn informed_fraction(&self) -> f64 {
        self.informed as f64 / self.k as f64
    }
}

impl fmt::Display for ProtocolOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.completion_time {
            Some(t) => write!(f, "protocol broadcast completed at tick {t}"),
            None => write!(
                f,
                "protocol broadcast incomplete ({}/{} informed)",
                self.informed, self.k
            ),
        }
    }
}

impl Simulation<ProtocolBroadcast, Grid> {
    /// Builds a protocol-twin broadcast on the bounded grid described
    /// by `config`, with agents placed uniformly at random.
    ///
    /// `rng` drives placement and mobility exactly as in
    /// [`Simulation::broadcast`]; `protocol_seed` roots the nodes'
    /// private message-level streams.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors ([`SimError::Grid`],
    /// [`SimError::Walk`], [`SimError::TooFewAgents`],
    /// [`SimError::SourceOutOfRange`], [`SimError::ZeroStepCap`]).
    pub fn protocol_broadcast<R: RngExt>(
        config: &SimConfig,
        net: NetworkConfig,
        protocol_seed: u64,
        rng: &mut R,
    ) -> Result<Self, SimError> {
        Self::protocol_broadcast_with_scratch(config, net, protocol_seed, rng, SimScratch::new())
    }

    /// As [`Simulation::protocol_broadcast`], reusing a recycled
    /// [`SimScratch`] so repeated runs share hot-path buffers.
    ///
    /// # Errors
    ///
    /// As [`Simulation::protocol_broadcast`].
    pub fn protocol_broadcast_with_scratch<R: RngExt>(
        config: &SimConfig,
        net: NetworkConfig,
        protocol_seed: u64,
        rng: &mut R,
        scratch: SimScratch,
    ) -> Result<Self, SimError> {
        Self::protocol_broadcast_with_faults_with_scratch(
            config,
            net,
            &crate::FaultConfig::DEFAULT,
            protocol_seed,
            rng,
            scratch,
        )
    }

    /// As [`Simulation::protocol_broadcast_with_scratch`], additionally
    /// installing the fault-injection and recovery axes of `faults`
    /// (validated by the caller; a trivial config is exactly the
    /// fault-free twin, byte for byte).
    ///
    /// # Errors
    ///
    /// As [`Simulation::protocol_broadcast`], plus
    /// [`SimError::InvalidFaultSetting`] for out-of-range fault axes.
    pub fn protocol_broadcast_with_faults_with_scratch<R: RngExt>(
        config: &SimConfig,
        net: NetworkConfig,
        faults: &crate::FaultConfig,
        protocol_seed: u64,
        rng: &mut R,
        scratch: SimScratch,
    ) -> Result<Self, SimError> {
        faults.validate()?;
        let grid = Grid::new(config.side())?;
        Simulation::new_with_scratch(
            grid,
            config.k(),
            config.radius(),
            config.max_steps(),
            ProtocolBroadcast::from_config(config, net, protocol_seed)?
                .faults(faults.to_plan())
                .recovery(faults.to_recovery()),
            rng,
            scratch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_like_broadcast() {
        assert_eq!(
            ProtocolBroadcast::new(1, 0, NetworkConfig::IDEAL, 1).unwrap_err(),
            SimError::TooFewAgents { k: 1 }
        );
        assert_eq!(
            ProtocolBroadcast::new(4, 4, NetworkConfig::IDEAL, 1).unwrap_err(),
            SimError::SourceOutOfRange { source: 4, k: 4 }
        );
        assert!(ProtocolBroadcast::new(4, 3, NetworkConfig::IDEAL, 1).is_ok());
    }

    #[test]
    fn twin_matches_simulator_broadcast_time_on_ideal_network() {
        let config = SimConfig::builder(24, 8).radius(3).build().unwrap();
        for seed in [1u64, 5, 9] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let sim_time = Simulation::broadcast(&config, &mut rng)
                .unwrap()
                .run(&mut rng)
                .broadcast_time;
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut twin =
                Simulation::protocol_broadcast(&config, NetworkConfig::IDEAL, seed, &mut rng)
                    .unwrap();
            let out = twin.run(&mut rng);
            assert_eq!(out.completion_time, sim_time, "seed {seed}");
            assert!(out.completed());
            assert_eq!(out.informed_fraction(), 1.0);
        }
    }

    #[test]
    fn runs_reproduce_and_ignore_worker_count() {
        let config = SimConfig::builder(20, 6).radius(2).build().unwrap();
        let run = |workers: usize| {
            let mut rng = SmallRng::seed_from_u64(3);
            let process = ProtocolBroadcast::from_config(&config, NetworkConfig::IDEAL, 3)
                .unwrap()
                .workers(workers);
            let mut sim = Simulation::new(
                Grid::new(config.side()).unwrap(),
                config.k(),
                config.radius(),
                config.max_steps(),
                process,
                &mut rng,
            )
            .unwrap();
            sim.run(&mut rng)
        };
        let reference = run(1);
        for workers in [1usize, 2, 8] {
            assert_eq!(run(workers), reference, "workers = {workers}");
        }
    }

    #[test]
    fn outcome_display_covers_both_arms() {
        let done = ProtocolOutcome {
            completion_time: Some(9),
            informed: 4,
            k: 4,
            stats: RuntimeStats::default(),
            log_hash: 0,
            error: None,
        };
        assert!(done.to_string().contains("tick 9"));
        let capped = ProtocolOutcome {
            completion_time: None,
            informed: 2,
            k: 4,
            stats: RuntimeStats::default(),
            log_hash: 0,
            error: None,
        };
        assert!(capped.to_string().contains("2/4"));
        assert_eq!(capped.informed_fraction(), 0.5);
    }
}
