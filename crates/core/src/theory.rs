//! Closed-form reference curves for every bound in the paper.
//!
//! These are *shapes*: the asymptotic notation hides constants that
//! depend on the model details, so experiments compare measured data to
//! these functions with the multiplicative constant profiled out (see
//! [`crate::baseline::fit_error_against`]).

/// The paper's headline upper/lower-bound shape `n/√k` (Theorem 1 and
/// Corollary 1 up, Theorem 2 down to polylogs).
///
/// # Examples
///
/// ```
/// use sparsegossip_core::theory::broadcast_time_shape;
/// assert_eq!(broadcast_time_shape(10_000.0, 100.0), 1_000.0);
/// ```
#[must_use]
pub fn broadcast_time_shape(n: f64, k: f64) -> f64 {
    n / k.sqrt()
}

/// The explicit lower bound of Theorem 2: `n / (√k · log² n)` (natural
/// logs; the proof's constant `1/(1152·e³)` is dropped).
#[must_use]
pub fn broadcast_lower_bound_shape(n: f64, k: f64) -> f64 {
    let l = n.ln().max(1.0);
    n / (k.sqrt() * l * l)
}

/// The percolation radius `r_c = √(n/k)` (§1, §2).
#[must_use]
pub fn critical_radius(n: f64, k: f64) -> f64 {
    (n / k).sqrt()
}

/// The island parameter `γ = √(n/(4e⁶k))` of Lemma 6, below which no
/// island exceeds `log n` agents w.h.p. over `8n log²n` steps.
#[must_use]
pub fn island_gamma(n: f64, k: f64) -> f64 {
    (n / (4.0 * (6.0f64).exp() * k)).sqrt()
}

/// The maximum transmission radius for which Theorem 2's lower bound is
/// proven: `r ≤ √(n/(64e⁶k))`.
#[must_use]
pub fn lower_bound_radius(n: f64, k: f64) -> f64 {
    (n / (64.0 * (6.0f64).exp() * k)).sqrt()
}

/// The multi-walk cover-time upper bound of §4:
/// `n·log²n / k + n·log n` (natural logs).
#[must_use]
pub fn cover_time_shape(n: f64, k: f64) -> f64 {
    let l = n.ln().max(1.0);
    n * l * l / k + n * l
}

/// The predator–prey extinction-time bound of §4: `n·log²n / k`.
#[must_use]
pub fn extinction_time_shape(n: f64, k: f64) -> f64 {
    let l = n.ln().max(1.0);
    n * l * l / k
}

/// The dense-MANET baseline shape `√n / R` of Clementi et al. \[7\]
/// (valid for `k = Θ(n)`, `ρ = O(R)`).
#[must_use]
pub fn clementi_time_shape(n: f64, big_r: f64) -> f64 {
    n.sqrt() / big_r.max(1.0)
}

/// The Dimitriou et al. general infection bound `O(t* log k)`
/// specialized to the grid: `n·log n·log k`.
#[must_use]
pub fn dimitriou_bound_shape(n: f64, k: f64) -> f64 {
    n * n.ln().max(1.0) * k.ln().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_have_expected_monotonicity() {
        let n = 65_536.0;
        // More agents ⇒ faster broadcast, smaller r_c, faster cover.
        assert!(broadcast_time_shape(n, 64.0) > broadcast_time_shape(n, 256.0));
        assert!(critical_radius(n, 64.0) > critical_radius(n, 256.0));
        assert!(cover_time_shape(n, 64.0) > cover_time_shape(n, 256.0));
        assert!(extinction_time_shape(n, 64.0) > extinction_time_shape(n, 256.0));
        // Bigger grid ⇒ slower everything.
        assert!(broadcast_time_shape(4.0 * n, 64.0) > broadcast_time_shape(n, 64.0));
    }

    #[test]
    fn lower_bound_is_below_upper_shape() {
        let n = 1_000_000.0;
        let k = 100.0;
        assert!(broadcast_lower_bound_shape(n, k) < broadcast_time_shape(n, k));
    }

    #[test]
    fn lower_bound_radius_is_below_critical() {
        let n = 65_536.0;
        let k = 64.0;
        assert!(lower_bound_radius(n, k) < critical_radius(n, k));
    }

    #[test]
    fn clementi_shape_decays_in_radius() {
        assert!(clementi_time_shape(10_000.0, 2.0) > clementi_time_shape(10_000.0, 8.0));
    }

    #[test]
    fn cover_time_has_additive_floor() {
        // For huge k the n·log n term dominates: cover time stops
        // improving.
        let n = 65_536.0;
        let big_k = cover_time_shape(n, 1e9);
        assert!(big_k >= n * n.ln());
    }
}
