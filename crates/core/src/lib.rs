//! Information-dissemination processes of Pettarin, Pietracaprina,
//! Pucci and Upfal, *"Tight Bounds on Information Dissemination in
//! Sparse Mobile Networks"* (PODC 2011).
//!
//! The model (§2 of the paper): `k` agents perform independent lazy
//! random walks on an `n`-node square grid, starting from a uniform
//! placement. At each step the **visibility graph** `G_t(r)` connects
//! agents within Manhattan distance `r`, and — because radio
//! transmission is much faster than motion — every rumor floods its
//! whole connected component before the graph changes. The paper proves
//! that below the percolation radius `r_c ≈ √(n/k)` the broadcast time
//! is `Θ̃(n/√k)`, *independently of `r`*.
//!
//! This crate implements:
//!
//! * [`BroadcastSim`] — single-rumor broadcast, the object of
//!   Theorems 1 and 2 ([`FrogSim`] gives the Frog-model variant of §4);
//! * [`GossipSim`] — all-to-all gossip (Corollary 2);
//! * [`coverage`] — joint broadcast/coverage runs (`T_C ≈ T_B`, §4);
//! * [`PredatorPreySim`] — the predator–prey extinction process (§4);
//! * [`InfectionSim`] — the `r = 0` infection-time framing
//!   (Dimitriou et al.) with per-agent infection times;
//! * [`baseline`] — the dense-MANET comparison model of Clementi et
//!   al. and the (refuted) analytic bound of Wang et al.;
//! * [`theory`] — closed-form reference curves for every bound.
//!
//! # Examples
//!
//! Measure one broadcast time below the percolation point:
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! use sparsegossip_core::{BroadcastSim, SimConfig};
//!
//! let config = SimConfig::builder(64, 32).radius(0).build()?;
//! let mut rng = SmallRng::seed_from_u64(1);
//! let mut sim = BroadcastSim::new(&config, &mut rng)?;
//! let outcome = sim.run(&mut rng);
//! assert!(outcome.completed());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod baseline;
mod broadcast;
mod config;
pub mod coverage;
mod error;
mod frog;
mod gossip;
mod infection;
mod observer;
mod predator_prey;
mod rumor;
pub mod theory;

pub use broadcast::{BroadcastOutcome, BroadcastSim};
pub use config::{ExchangeRule, Mobility, SimConfig, SimConfigBuilder};
pub use coverage::{broadcast_with_coverage, CoverageOutcome};
pub use error::SimError;
pub use frog::FrogSim;
pub use gossip::{GossipOutcome, GossipSim};
pub use infection::{InfectionOutcome, InfectionSim};
pub use observer::{
    CellReachTimes, ComponentSizeCurve, FrontierTracker, InfectionTimes, InformedCurve,
    NullObserver, Observer, StepContext,
};
pub use predator_prey::{ExtinctionOutcome, PredatorPreySim};
pub use rumor::RumorSets;
