//! Information-dissemination processes of Pettarin, Pietracaprina,
//! Pucci and Upfal, *"Tight Bounds on Information Dissemination in
//! Sparse Mobile Networks"* (PODC 2011).
//!
//! The model (§2 of the paper): `k` agents perform independent lazy
//! random walks on an `n`-node square grid, starting from a uniform
//! placement. At each step the **visibility graph** `G_t(r)` connects
//! agents within Manhattan distance `r`, and — because radio
//! transmission is much faster than motion — every rumor floods its
//! whole connected component before the graph changes. The paper proves
//! that below the percolation radius `r_c ≈ √(n/k)` the broadcast time
//! is `Θ̃(n/√k)`, *independently of `r`*.
//!
//! Every process is one [`Process`] implementation run by the generic
//! [`Simulation`] driver, which owns the shared per-step pipeline
//! (mobility rule → walk step → visibility components → exchange →
//! observer):
//!
//! * [`Broadcast`] — single-rumor broadcast, the object of Theorems 1
//!   and 2 (with [`Mobility::InformedOnly`], the Frog model of §4);
//! * [`Gossip`] — all-to-all gossip (Corollary 2);
//! * [`Coverage`] — joint broadcast/coverage runs (`T_C ≈ T_B`, §4);
//! * [`PredatorPrey`] — the predator–prey extinction process (§4);
//! * [`Infection`] — the `r = 0` infection-time framing
//!   (Dimitriou et al.) with per-agent infection times;
//! * [`ProtocolBroadcast`] — the *protocol twin*: the same broadcast
//!   run as real `Gossip`/`GossipAck` message passing over the same
//!   seeded trajectory (the `sparsegossip_protocol` node runtime),
//!   with [`NetworkConfig`] fault injection — loss, delay, send caps,
//!   gossip intervals;
//! * [`baseline`] — the dense-MANET comparison model of Clementi et
//!   al. and the (refuted) analytic bound of Wang et al.;
//! * [`theory`] — closed-form reference curves for every bound;
//! * [`ScenarioSpec`] — declarative scenario specifications (process
//!   kind + grid + agents + radius + metric as *data*, with TOML
//!   round-tripping via [`toml`]) that instantiate any of the above
//!   into the driver — the unit the `sparsegossip_analysis`
//!   `ScenarioSweep` engine fans out over {side, k, r} axes.
//!
//! The pre-redesign per-process structs ([`BroadcastSim`],
//! [`GossipSim`], [`InfectionSim`], [`FrogSim`], [`PredatorPreySim`])
//! remain as thin shims over the driver.
//!
//! # Examples
//!
//! Measure one broadcast time below the percolation point:
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! use sparsegossip_core::{SimConfig, Simulation};
//!
//! let config = SimConfig::builder(64, 32).radius(0).build()?;
//! let mut rng = SmallRng::seed_from_u64(1);
//! let mut sim = Simulation::broadcast(&config, &mut rng)?;
//! let outcome = sim.run(&mut rng);
//! assert!(outcome.completed());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod baseline;
mod broadcast;
pub mod cellkey;
mod config;
pub mod coverage;
mod error;
mod fault_config;
mod frog;
mod gossip;
mod infection;
mod observer;
mod predator_prey;
mod process;
mod protocol_broadcast;
mod rumor;
mod scenario;
pub mod theory;
pub mod toml;
mod world;

pub use broadcast::{Broadcast, BroadcastOutcome, BroadcastSim};
pub use cellkey::{cell_seed, fnv1a};
pub use config::{ExchangeRule, Mobility, SimConfig, SimConfigBuilder};
pub use coverage::{broadcast_with_coverage, Coverage, CoverageOutcome};
pub use error::SimError;
pub use fault_config::FaultConfig;
pub use frog::FrogSim;
pub use gossip::{Gossip, GossipOutcome, GossipSim};
pub use infection::{Infection, InfectionOutcome, InfectionSim};
pub use observer::{
    CellReachTimes, ComponentSizeCurve, FrontierTracker, InfectionTimes, InformedCurve,
    MinRumorsCurve, NullObserver, Observer, StepContext,
};
pub use predator_prey::{ExtinctionOutcome, PredatorPrey, PredatorPreySim};
pub use process::{ComponentsScope, ExchangeCtx, Process, SimScratch, Simulation};
pub use protocol_broadcast::{ProtocolBroadcast, ProtocolOutcome};
pub use rumor::RumorSets;
// Re-exported so spec-level consumers need not depend on the protocol
// crate directly.
pub use scenario::{Metric, ProcessKind, ScenarioSpec, ScenarioSpecBuilder, SpecError};
pub use sparsegossip_protocol::{
    FaultError, FaultPlan, NetworkConfig, NetworkError, PartitionSchedule, PartitionWindow,
    RecoveryConfig, RuntimeError, RuntimeStats,
};
pub use world::{WorldConfig, WorldContact, WorldSim};
