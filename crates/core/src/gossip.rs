use core::fmt;
use core::ops::ControlFlow;

use rand::RngExt;
use sparsegossip_grid::{Grid, Point, Topology};

use crate::{
    ExchangeCtx, NullObserver, Observer, Process, RumorSets, SimConfig, SimError, Simulation,
};

/// Outcome of a gossip run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use]
pub struct GossipOutcome {
    /// The gossip time `T_G`: first step at which every agent knew
    /// every rumor, or `None` if the cap was reached first.
    pub gossip_time: Option<u64>,
    /// Minimum per-agent rumor count when the run ended.
    pub min_rumors: usize,
    /// Number of rumors in the system.
    pub num_rumors: usize,
}

impl GossipOutcome {
    /// Whether gossip completed within the cap.
    #[inline]
    #[must_use]
    pub fn completed(&self) -> bool {
        self.gossip_time.is_some()
    }
}

impl fmt::Display for GossipOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.gossip_time {
            Some(t) => write!(f, "T_G = {t} ({} rumors everywhere)", self.num_rumors),
            None => write!(
                f,
                "incomplete (min {}/{} rumors per agent)",
                self.min_rumors, self.num_rumors
            ),
        }
    }
}

/// All-to-all gossip — the [`Process`] of Corollary 2: every agent
/// must learn every rumor (`T_G = Õ(n/√k)` w.h.p.).
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use sparsegossip_core::{SimConfig, Simulation};
///
/// let config = SimConfig::builder(32, 8).radius(1).build()?;
/// let mut rng = SmallRng::seed_from_u64(9);
/// let mut sim = Simulation::gossip(&config, &mut rng)?;
/// let outcome = sim.run(&mut rng);
/// assert!(outcome.completed());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Gossip {
    rumors: RumorSets,
}

impl Gossip {
    /// One distinct rumor per agent (the Corollary 2 initial
    /// condition).
    ///
    /// # Errors
    ///
    /// [`SimError::TooFewAgents`] if `k < 2`.
    pub fn distinct(k: usize) -> Result<Self, SimError> {
        if k < 2 {
            return Err(SimError::TooFewAgents { k });
        }
        Ok(Self {
            rumors: RumorSets::distinct(k),
        })
    }

    /// `num_rumors` rumors held by the first `num_rumors` agents — the
    /// paper's general setting where the number of rumors is at most
    /// the number of agents.
    ///
    /// # Errors
    ///
    /// * [`SimError::TooFewAgents`] if `k < 2`;
    /// * [`SimError::SourceOutOfRange`] if `num_rumors` is zero or
    ///   exceeds `k`.
    pub fn with_rumors(k: usize, num_rumors: usize) -> Result<Self, SimError> {
        if k < 2 {
            return Err(SimError::TooFewAgents { k });
        }
        if num_rumors == 0 || num_rumors > k {
            return Err(SimError::SourceOutOfRange {
                source: num_rumors,
                k,
            });
        }
        Ok(Self {
            rumors: RumorSets::with_rumors(k, num_rumors),
        })
    }

    /// The per-agent rumor sets.
    #[inline]
    #[must_use]
    pub fn rumor_sets(&self) -> &RumorSets {
        &self.rumors
    }

    /// Whether every agent knows every rumor.
    #[inline]
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.rumors.all_complete()
    }
}

impl Process for Gossip {
    type Outcome = GossipOutcome;

    fn agent_count(&self) -> Option<usize> {
        Some(self.rumors.k())
    }

    // detlint: hot
    fn exchange(&mut self, ctx: ExchangeCtx<'_>) -> ControlFlow<()> {
        self.rumors.exchange(ctx.components);
        if self.rumors.all_complete() {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }

    fn rumors(&self) -> Option<&RumorSets> {
        Some(&self.rumors)
    }

    fn outcome(&self, time: u64) -> GossipOutcome {
        GossipOutcome {
            gossip_time: self.rumors.all_complete().then_some(time),
            min_rumors: self.rumors.min_count(),
            num_rumors: self.rumors.num_rumors(),
        }
    }
}

impl Simulation<Gossip, Grid> {
    /// Builds an all-to-all gossip simulation per `config` (one rumor
    /// per agent, uniform placement). The configured source is ignored
    /// — gossip is symmetric.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors, as [`Simulation::broadcast`].
    pub fn gossip<R: RngExt>(config: &SimConfig, rng: &mut R) -> Result<Self, SimError> {
        Self::gossip_with_scratch(config, rng, crate::SimScratch::new())
    }

    /// As [`Simulation::gossip`], reusing a recycled
    /// [`SimScratch`](crate::SimScratch) so repeated runs share one set
    /// of hot-path buffers.
    ///
    /// # Errors
    ///
    /// As [`Simulation::gossip`].
    pub fn gossip_with_scratch<R: RngExt>(
        config: &SimConfig,
        rng: &mut R,
        scratch: crate::SimScratch,
    ) -> Result<Self, SimError> {
        let grid = Grid::new(config.side())?;
        Simulation::new_with_scratch(
            grid,
            config.k(),
            config.radius(),
            config.max_steps(),
            Gossip::distinct(config.k())?,
            rng,
            scratch,
        )
    }
}

/// Pre-redesign all-to-all gossip simulator; now a thin shim over
/// [`Simulation<Gossip, T>`] — and, through it, gossip runs gained
/// observer hooks ([`run_with`](GossipSim::run_with)).
///
/// Prefer [`Simulation::gossip`] / [`Simulation::new`] in new code.
///
/// # Examples
///
/// ```
/// # #![allow(deprecated)]
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use sparsegossip_core::{GossipSim, SimConfig};
///
/// let config = SimConfig::builder(32, 8).radius(1).build()?;
/// let mut rng = SmallRng::seed_from_u64(9);
/// let mut sim = GossipSim::new(&config, &mut rng)?;
/// let outcome = sim.run(&mut rng);
/// assert!(outcome.completed());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct GossipSim<T> {
    sim: Simulation<Gossip, T>,
}

impl GossipSim<Grid> {
    /// Creates a gossip simulation per `config` (one rumor per agent,
    /// uniform placement). The configured source is ignored — gossip is
    /// symmetric.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors, as [`BroadcastSim::new`].
    ///
    /// [`BroadcastSim::new`]: crate::BroadcastSim::new
    #[deprecated(
        since = "0.1.0",
        note = "use the unified `Simulation` driver (`Simulation::gossip`); \
                see the migration table in README.md"
    )]
    pub fn new<R: RngExt>(config: &SimConfig, rng: &mut R) -> Result<Self, SimError> {
        Simulation::gossip(config, rng).map(|sim| Self { sim })
    }
}

impl<T: Topology> GossipSim<T> {
    /// Creates a gossip simulation on an arbitrary topology.
    ///
    /// # Errors
    ///
    /// * [`SimError::TooFewAgents`] if `k < 2`;
    /// * [`SimError::ZeroStepCap`] if `max_steps == 0`;
    /// * [`SimError::Walk`] on placement failure.
    #[deprecated(
        since = "0.1.0",
        note = "use the unified `Simulation` driver (`Simulation::new`); \
                see the migration table in README.md"
    )]
    pub fn on_topology<R: RngExt>(
        topo: T,
        k: usize,
        radius: u32,
        max_steps: u64,
        rng: &mut R,
    ) -> Result<Self, SimError> {
        let process = Gossip::distinct(k)?;
        Simulation::new(topo, k, radius, max_steps, process, rng).map(|sim| Self { sim })
    }

    /// Creates a gossip simulation where only the first `num_rumors`
    /// agents start with a (distinct) rumor — the paper's general
    /// setting where the number of rumors is at most the number of
    /// agents.
    ///
    /// # Errors
    ///
    /// As [`GossipSim::on_topology`], plus
    /// [`SimError::SourceOutOfRange`] if `num_rumors` is zero or
    /// exceeds `k`.
    #[deprecated(
        since = "0.1.0",
        note = "use the unified `Simulation` driver (`Simulation::new`); \
                see the migration table in README.md"
    )]
    pub fn with_rumors<R: RngExt>(
        topo: T,
        k: usize,
        num_rumors: usize,
        radius: u32,
        max_steps: u64,
        rng: &mut R,
    ) -> Result<Self, SimError> {
        let process = Gossip::with_rumors(k, num_rumors)?;
        Simulation::new(topo, k, radius, max_steps, process, rng).map(|sim| Self { sim })
    }

    /// The underlying generic simulation.
    #[inline]
    #[must_use]
    pub fn as_simulation(&self) -> &Simulation<Gossip, T> {
        &self.sim
    }

    /// The number of agents.
    #[inline]
    #[must_use]
    pub fn k(&self) -> usize {
        self.sim.k()
    }

    /// Steps taken so far.
    #[inline]
    #[must_use]
    pub fn time(&self) -> u64 {
        self.sim.time()
    }

    /// Current agent positions.
    #[inline]
    #[must_use]
    pub fn positions(&self) -> &[Point] {
        self.sim.positions()
    }

    /// The per-agent rumor sets.
    #[inline]
    #[must_use]
    pub fn rumors(&self) -> &RumorSets {
        self.sim.process().rumor_sets()
    }

    /// Whether gossip is complete.
    #[inline]
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.sim.is_complete()
    }

    /// Advances one step (move, rebuild graph, exchange).
    pub fn step<R: RngExt>(&mut self, rng: &mut R) {
        let _ = self.sim.step(rng, &mut NullObserver);
    }

    /// Advances one step, invoking the observer with the post-exchange
    /// snapshot (the rumor sets arrive via
    /// [`StepContext::rumors`](crate::StepContext::rumors)).
    pub fn step_with<R: RngExt, O: Observer>(&mut self, rng: &mut R, observer: &mut O) {
        let _ = self.sim.step(rng, observer);
    }

    /// Runs until completion or the step cap.
    pub fn run<R: RngExt>(&mut self, rng: &mut R) -> GossipOutcome {
        self.sim.run(rng)
    }

    /// Runs until completion or the step cap with an observer — e.g.
    /// [`MinRumorsCurve`](crate::MinRumorsCurve) for the gossip
    /// analogue of the epidemic curve.
    pub fn run_with<R: RngExt, O: Observer>(
        &mut self,
        rng: &mut R,
        observer: &mut O,
    ) -> GossipOutcome {
        self.sim.run_with(rng, observer)
    }

    /// The outcome at the current state.
    pub fn outcome(&self) -> GossipOutcome {
        self.sim.outcome()
    }
}

#[cfg(test)]
mod tests {
    // The legacy-shim tests exercise the deprecated constructors on
    // purpose: they are the compatibility surface under test.
    #![allow(deprecated)]

    use super::*;
    use crate::MinRumorsCurve;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gossip_completes_on_small_grid() {
        let cfg = SimConfig::builder(16, 6).radius(0).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut sim = GossipSim::new(&cfg, &mut rng).unwrap();
        let out = sim.run(&mut rng);
        assert!(out.completed());
        assert_eq!(out.min_rumors, 6);
        assert_eq!(out.num_rumors, 6);
    }

    #[test]
    fn gossip_dominates_broadcast_time_in_law() {
        // T_G ≥ T_B for the rumor of any fixed agent, pathwise under a
        // shared seed is not guaranteed (different sims), so check in
        // expectation with matched configs.
        let reps = 8;
        let mut tb = 0u64;
        let mut tg = 0u64;
        for i in 0..reps {
            let cfg = SimConfig::builder(20, 8).radius(0).build().unwrap();
            let mut rng = SmallRng::seed_from_u64(1000 + i);
            let mut b = crate::BroadcastSim::new(&cfg, &mut rng).unwrap();
            tb += b.run(&mut rng).broadcast_time.unwrap();
            let mut rng = SmallRng::seed_from_u64(1000 + i);
            let mut g = GossipSim::new(&cfg, &mut rng).unwrap();
            tg += g.run(&mut rng).gossip_time.unwrap();
        }
        assert!(tg >= tb, "mean T_G {tg} below mean T_B {tb}");
    }

    #[test]
    fn min_rumors_is_monotone() {
        let cfg = SimConfig::builder(24, 8).radius(1).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(12);
        let mut sim = GossipSim::new(&cfg, &mut rng).unwrap();
        let mut prev = sim.rumors().min_count();
        for _ in 0..300 {
            sim.step(&mut rng);
            let cur = sim.rumors().min_count();
            assert!(cur >= prev, "an agent forgot rumors");
            prev = cur;
            if sim.is_complete() {
                break;
            }
        }
    }

    #[test]
    fn observer_sees_min_rumors_curve() {
        let cfg = SimConfig::builder(16, 6).radius(0).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(17);
        let mut sim = GossipSim::new(&cfg, &mut rng).unwrap();
        let mut curve = MinRumorsCurve::new();
        let out = sim.run_with(&mut rng, &mut curve);
        assert!(out.completed());
        assert!(!curve.counts().is_empty());
        assert!(curve.counts().windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*curve.counts().last().unwrap() as usize, out.num_rumors);
        assert!(curve.time_to_reach(6).is_some());
    }

    #[test]
    fn cap_reports_partial_progress() {
        let cfg = SimConfig::builder(64, 4).max_steps(1).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(13);
        let mut sim = GossipSim::new(&cfg, &mut rng).unwrap();
        let out = sim.run(&mut rng);
        assert!(!out.completed());
        assert!(out.min_rumors >= 1);
    }

    #[test]
    fn partial_rumor_gossip_completes_and_validates() {
        use sparsegossip_grid::Grid;
        let g = Grid::new(12).unwrap();
        let mut rng = SmallRng::seed_from_u64(15);
        let mut sim = GossipSim::with_rumors(g, 6, 2, 0, 1_000_000, &mut rng).unwrap();
        let out = sim.run(&mut rng);
        assert!(out.completed());
        assert_eq!(out.num_rumors, 2);
        assert_eq!(out.min_rumors, 2);
        // Validation errors.
        let mut rng = SmallRng::seed_from_u64(16);
        assert!(GossipSim::with_rumors(g, 6, 0, 0, 10, &mut rng).is_err());
        assert!(GossipSim::with_rumors(g, 6, 7, 0, 10, &mut rng).is_err());
    }

    #[test]
    fn whole_grid_radius_completes_at_zero() {
        let cfg = SimConfig::builder(8, 4).radius(16).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(14);
        let mut sim = GossipSim::new(&cfg, &mut rng).unwrap();
        assert!(sim.is_complete());
        assert_eq!(sim.run(&mut rng).gossip_time, Some(0));
    }

    #[test]
    fn outcome_display_reports_both_states() {
        let done = GossipOutcome {
            gossip_time: Some(9),
            min_rumors: 4,
            num_rumors: 4,
        };
        assert_eq!(done.to_string(), "T_G = 9 (4 rumors everywhere)");
        let capped = GossipOutcome {
            gossip_time: None,
            min_rumors: 1,
            num_rumors: 4,
        };
        assert_eq!(capped.to_string(), "incomplete (min 1/4 rumors per agent)");
    }
}
