use rand::RngExt;
use sparsegossip_conngraph::components;
use sparsegossip_grid::{Grid, Point, Topology};
use sparsegossip_walks::WalkEngine;

use crate::{RumorSets, SimConfig, SimError};

/// Outcome of a gossip run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GossipOutcome {
    /// The gossip time `T_G`: first step at which every agent knew
    /// every rumor, or `None` if the cap was reached first.
    pub gossip_time: Option<u64>,
    /// Minimum per-agent rumor count when the run ended.
    pub min_rumors: usize,
    /// Number of rumors in the system.
    pub num_rumors: usize,
}

impl GossipOutcome {
    /// Whether gossip completed within the cap.
    #[inline]
    #[must_use]
    pub fn completed(&self) -> bool {
        self.gossip_time.is_some()
    }
}

/// All-to-all gossip: every agent starts with a distinct rumor and all
/// agents must learn all rumors (Corollary 2: `T_G = Õ(n/√k)` w.h.p.).
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use sparsegossip_core::{GossipSim, SimConfig};
///
/// let config = SimConfig::builder(32, 8).radius(1).build()?;
/// let mut rng = SmallRng::seed_from_u64(9);
/// let mut sim = GossipSim::new(&config, &mut rng)?;
/// let outcome = sim.run(&mut rng);
/// assert!(outcome.completed());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct GossipSim<T> {
    engine: WalkEngine<T>,
    radius: u32,
    max_steps: u64,
    rumors: RumorSets,
}

impl GossipSim<Grid> {
    /// Creates a gossip simulation per `config` (one rumor per agent,
    /// uniform placement). The configured source is ignored — gossip is
    /// symmetric.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors, as [`BroadcastSim::new`].
    ///
    /// [`BroadcastSim::new`]: crate::BroadcastSim::new
    pub fn new<R: RngExt>(config: &SimConfig, rng: &mut R) -> Result<Self, SimError> {
        let grid = Grid::new(config.side())?;
        Self::on_topology(grid, config.k(), config.radius(), config.max_steps(), rng)
    }
}

impl<T: Topology> GossipSim<T> {
    /// Creates a gossip simulation on an arbitrary topology.
    ///
    /// # Errors
    ///
    /// * [`SimError::TooFewAgents`] if `k < 2`;
    /// * [`SimError::ZeroStepCap`] if `max_steps == 0`;
    /// * [`SimError::Walk`] on placement failure.
    pub fn on_topology<R: RngExt>(
        topo: T,
        k: usize,
        radius: u32,
        max_steps: u64,
        rng: &mut R,
    ) -> Result<Self, SimError> {
        if k < 2 {
            return Err(SimError::TooFewAgents { k });
        }
        if max_steps == 0 {
            return Err(SimError::ZeroStepCap);
        }
        let engine = WalkEngine::uniform(topo, k, rng)?;
        let mut sim = Self {
            engine,
            radius,
            max_steps,
            rumors: RumorSets::distinct(k),
        };
        sim.exchange();
        Ok(sim)
    }

    /// Creates a gossip simulation where only the first `num_rumors`
    /// agents start with a (distinct) rumor — the paper's general
    /// setting where the number of rumors is at most the number of
    /// agents.
    ///
    /// # Errors
    ///
    /// As [`GossipSim::on_topology`], plus
    /// [`SimError::SourceOutOfRange`] if `num_rumors` is zero or
    /// exceeds `k`.
    pub fn with_rumors<R: RngExt>(
        topo: T,
        k: usize,
        num_rumors: usize,
        radius: u32,
        max_steps: u64,
        rng: &mut R,
    ) -> Result<Self, SimError> {
        if k < 2 {
            return Err(SimError::TooFewAgents { k });
        }
        if num_rumors == 0 || num_rumors > k {
            return Err(SimError::SourceOutOfRange {
                source: num_rumors,
                k,
            });
        }
        if max_steps == 0 {
            return Err(SimError::ZeroStepCap);
        }
        let engine = WalkEngine::uniform(topo, k, rng)?;
        let mut sim = Self {
            engine,
            radius,
            max_steps,
            rumors: RumorSets::with_rumors(k, num_rumors),
        };
        sim.exchange();
        Ok(sim)
    }

    /// The number of agents.
    #[inline]
    #[must_use]
    pub fn k(&self) -> usize {
        self.engine.len()
    }

    /// Steps taken so far.
    #[inline]
    #[must_use]
    pub fn time(&self) -> u64 {
        self.engine.time()
    }

    /// Current agent positions.
    #[inline]
    #[must_use]
    pub fn positions(&self) -> &[Point] {
        self.engine.positions()
    }

    /// The per-agent rumor sets.
    #[inline]
    #[must_use]
    pub fn rumors(&self) -> &RumorSets {
        &self.rumors
    }

    /// Whether gossip is complete.
    #[inline]
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.rumors.all_complete()
    }

    /// Advances one step (move, rebuild graph, exchange).
    pub fn step<R: RngExt>(&mut self, rng: &mut R) {
        self.engine.step_all(rng);
        self.exchange();
    }

    /// Runs until completion or the step cap.
    pub fn run<R: RngExt>(&mut self, rng: &mut R) -> GossipOutcome {
        while !self.is_complete() && self.engine.time() < self.max_steps {
            self.step(rng);
        }
        self.outcome()
    }

    /// The outcome at the current state.
    #[must_use]
    pub fn outcome(&self) -> GossipOutcome {
        GossipOutcome {
            gossip_time: self.is_complete().then(|| self.engine.time()),
            min_rumors: self.rumors.min_count(),
            num_rumors: self.rumors.num_rumors(),
        }
    }

    fn exchange(&mut self) {
        let comps = components(
            self.engine.positions(),
            self.radius,
            self.engine.topology().side(),
        );
        self.rumors.exchange(&comps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gossip_completes_on_small_grid() {
        let cfg = SimConfig::builder(16, 6).radius(0).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut sim = GossipSim::new(&cfg, &mut rng).unwrap();
        let out = sim.run(&mut rng);
        assert!(out.completed());
        assert_eq!(out.min_rumors, 6);
        assert_eq!(out.num_rumors, 6);
    }

    #[test]
    fn gossip_dominates_broadcast_time_in_law() {
        // T_G ≥ T_B for the rumor of any fixed agent, pathwise under a
        // shared seed is not guaranteed (different sims), so check in
        // expectation with matched configs.
        let reps = 8;
        let mut tb = 0u64;
        let mut tg = 0u64;
        for i in 0..reps {
            let cfg = SimConfig::builder(20, 8).radius(0).build().unwrap();
            let mut rng = SmallRng::seed_from_u64(1000 + i);
            let mut b = crate::BroadcastSim::new(&cfg, &mut rng).unwrap();
            tb += b.run(&mut rng).broadcast_time.unwrap();
            let mut rng = SmallRng::seed_from_u64(1000 + i);
            let mut g = GossipSim::new(&cfg, &mut rng).unwrap();
            tg += g.run(&mut rng).gossip_time.unwrap();
        }
        assert!(tg >= tb, "mean T_G {tg} below mean T_B {tb}");
    }

    #[test]
    fn min_rumors_is_monotone() {
        let cfg = SimConfig::builder(24, 8).radius(1).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(12);
        let mut sim = GossipSim::new(&cfg, &mut rng).unwrap();
        let mut prev = sim.rumors().min_count();
        for _ in 0..300 {
            sim.step(&mut rng);
            let cur = sim.rumors().min_count();
            assert!(cur >= prev, "an agent forgot rumors");
            prev = cur;
            if sim.is_complete() {
                break;
            }
        }
    }

    #[test]
    fn cap_reports_partial_progress() {
        let cfg = SimConfig::builder(64, 4).max_steps(1).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(13);
        let mut sim = GossipSim::new(&cfg, &mut rng).unwrap();
        let out = sim.run(&mut rng);
        assert!(!out.completed());
        assert!(out.min_rumors >= 1);
    }

    #[test]
    fn partial_rumor_gossip_completes_and_validates() {
        use sparsegossip_grid::Grid;
        let g = Grid::new(12).unwrap();
        let mut rng = SmallRng::seed_from_u64(15);
        let mut sim = GossipSim::with_rumors(g, 6, 2, 0, 1_000_000, &mut rng).unwrap();
        let out = sim.run(&mut rng);
        assert!(out.completed());
        assert_eq!(out.num_rumors, 2);
        assert_eq!(out.min_rumors, 2);
        // Validation errors.
        let mut rng = SmallRng::seed_from_u64(16);
        assert!(GossipSim::with_rumors(g, 6, 0, 0, 10, &mut rng).is_err());
        assert!(GossipSim::with_rumors(g, 6, 7, 0, 10, &mut rng).is_err());
    }

    #[test]
    fn whole_grid_radius_completes_at_zero() {
        let cfg = SimConfig::builder(8, 4).radius(16).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(14);
        let mut sim = GossipSim::new(&cfg, &mut rng).unwrap();
        assert!(sim.is_complete());
        assert_eq!(sim.run(&mut rng).gossip_time, Some(0));
    }
}
