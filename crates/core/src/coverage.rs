//! Joint broadcast/coverage runs: the coverage time `T_C` is the first
//! time every grid node has been visited by an *informed* agent. §4 of
//! the paper argues `T_C ≈ T_B = Õ(n/√k)` in the dynamic model.

use core::fmt;
use core::ops::ControlFlow;

use rand::RngExt;
use sparsegossip_grid::{Grid, Topology};
use sparsegossip_walks::{BitSet, CoverTracker};

use crate::{Broadcast, ExchangeCtx, NullObserver, Process, SimConfig, SimError, Simulation};

/// Outcome of a joint broadcast + coverage run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use]
pub struct CoverageOutcome {
    /// Broadcast time `T_B` (first step all agents informed).
    pub broadcast_time: Option<u64>,
    /// Coverage time `T_C` (first step all nodes visited by informed
    /// agents).
    pub coverage_time: Option<u64>,
    /// Nodes covered when the run ended.
    pub covered: u64,
    /// Total nodes.
    pub num_nodes: u64,
}

impl CoverageOutcome {
    /// Whether both broadcast and coverage completed.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.broadcast_time.is_some() && self.coverage_time.is_some()
    }

    /// The ratio `T_C / T_B` when both completed.
    #[must_use]
    pub fn ratio(&self) -> Option<f64> {
        match (self.coverage_time, self.broadcast_time) {
            (Some(tc), Some(tb)) if tb > 0 => Some(tc as f64 / tb as f64),
            (Some(_), Some(_)) => None, // degenerate T_B = 0
            _ => None,
        }
    }
}

impl fmt::Display for CoverageOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.broadcast_time, self.coverage_time) {
            (Some(tb), Some(tc)) => write!(f, "T_B = {tb}, T_C = {tc}"),
            _ => write!(
                f,
                "incomplete (T_B = {:?}, T_C = {:?}, {}/{} nodes covered)",
                self.broadcast_time, self.coverage_time, self.covered, self.num_nodes
            ),
        }
    }
}

/// Joint broadcast + informed-coverage — the [`Process`] behind §4's
/// `T_C ≈ T_B` claim: a [`Broadcast`] that keeps walking past `T_B`
/// until informed agents have visited every node.
#[derive(Clone, Debug)]
pub struct Coverage {
    inner: Broadcast,
    grid: Grid,
    tracker: CoverTracker,
    broadcast_time: Option<u64>,
    coverage_time: Option<u64>,
}

impl Coverage {
    /// Creates the process state for `k` agents on `grid` with one
    /// informed `source`.
    ///
    /// # Errors
    ///
    /// As [`Broadcast::new`].
    pub fn new(grid: Grid, k: usize, source: usize) -> Result<Self, SimError> {
        Broadcast::new(k, source).map(|inner| Self::around(grid, inner))
    }

    /// Creates the process described by `config` (mobility, exchange
    /// rule, source) on `grid`.
    ///
    /// # Errors
    ///
    /// As [`Broadcast::new`].
    pub fn from_config(grid: Grid, config: &SimConfig) -> Result<Self, SimError> {
        Broadcast::from_config(config).map(|inner| Self::around(grid, inner))
    }

    fn around(grid: Grid, inner: Broadcast) -> Self {
        Self {
            inner,
            grid,
            tracker: CoverTracker::new(&grid),
            broadcast_time: None,
            coverage_time: None,
        }
    }

    /// Marks the nodes currently occupied by informed agents; records
    /// the coverage time when the last node is reached.
    fn record(&mut self, ctx: ExchangeCtx<'_>) {
        if self.coverage_time.is_some() {
            return;
        }
        for i in self.inner.informed_set().iter_ones() {
            self.tracker.record(&self.grid, ctx.positions[i]);
        }
        if self.tracker.is_complete() {
            self.coverage_time = Some(ctx.time);
        }
    }

    fn flow(&self) -> ControlFlow<()> {
        if self.broadcast_time.is_some() && self.coverage_time.is_some() {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }
}

impl Process for Coverage {
    type Outcome = CoverageOutcome;

    fn agent_count(&self) -> Option<usize> {
        self.inner.agent_count()
    }

    fn on_placement(&mut self, ctx: ExchangeCtx<'_>) -> ControlFlow<()> {
        if self.inner.on_placement(ctx).is_break() {
            self.broadcast_time = Some(ctx.time);
        }
        self.record(ctx);
        self.flow()
    }

    fn mobility_mask(&self) -> Option<&BitSet> {
        self.inner.mobility_mask()
    }

    fn exchange(&mut self, ctx: ExchangeCtx<'_>) -> ControlFlow<()> {
        if self.inner.exchange(ctx).is_break() && self.broadcast_time.is_none() {
            self.broadcast_time = Some(ctx.time);
        }
        self.record(ctx);
        self.flow()
    }

    fn informed(&self) -> Option<&BitSet> {
        self.inner.informed()
    }

    fn outcome(&self, _time: u64) -> CoverageOutcome {
        CoverageOutcome {
            broadcast_time: self.broadcast_time,
            coverage_time: self.coverage_time,
            covered: self.tracker.covered(),
            num_nodes: self.grid.num_nodes(),
        }
    }
}

impl Simulation<Coverage, Grid> {
    /// Builds a joint broadcast + coverage simulation per `config`.
    ///
    /// # Errors
    ///
    /// As [`Simulation::broadcast`].
    pub fn coverage<R: RngExt>(config: &SimConfig, rng: &mut R) -> Result<Self, SimError> {
        let grid = Grid::new(config.side())?;
        Simulation::new(
            grid,
            config.k(),
            config.radius(),
            config.max_steps(),
            Coverage::from_config(grid, config)?,
            rng,
        )
    }
}

/// Runs a broadcast while tracking the coverage of informed agents,
/// continuing past `T_B` until coverage completes or the cap is hit.
///
/// # Errors
///
/// Propagates construction errors from [`Simulation::coverage`].
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use sparsegossip_core::{broadcast_with_coverage, SimConfig};
///
/// let config = SimConfig::builder(16, 8).build()?;
/// let mut rng = SmallRng::seed_from_u64(3);
/// let out = broadcast_with_coverage(&config, &mut rng)?;
/// assert!(out.completed());
/// // Coverage cannot precede the broadcast by construction of the model
/// // here: informed agents must physically visit every node.
/// assert!(out.covered == out.num_nodes);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn broadcast_with_coverage<R: RngExt>(
    config: &SimConfig,
    rng: &mut R,
) -> Result<CoverageOutcome, SimError> {
    let mut sim = Simulation::coverage(config, rng)?;
    Ok(sim.run(rng))
}

/// Runs only the broadcast part (convenience for matched comparisons).
///
/// # Errors
///
/// Propagates construction errors from [`Simulation::broadcast`].
pub fn broadcast_only<R: RngExt>(
    config: &SimConfig,
    rng: &mut R,
) -> Result<crate::BroadcastOutcome, SimError> {
    let mut sim = Simulation::broadcast(config, rng)?;
    Ok(sim.run_with(rng, &mut NullObserver))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn coverage_completes_and_dominates_broadcast() {
        let cfg = SimConfig::builder(12, 8).radius(0).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(21);
        let out = broadcast_with_coverage(&cfg, &mut rng).unwrap();
        assert!(out.completed());
        let tb = out.broadcast_time.unwrap();
        let tc = out.coverage_time.unwrap();
        // T_C counts *informed* visits: full coverage requires at least
        // as much time as informing everyone on this small grid is not
        // strictly guaranteed, but coverage can never beat the time the
        // last *node* is reached, which is ≥ the time the source's own
        // component formed; sanity: both are positive and finite.
        assert!(tc > 0);
        assert!(tb <= cfg.max_steps());
        assert_eq!(out.covered, 144);
    }

    #[test]
    fn tiny_cap_reports_partial_coverage() {
        let cfg = SimConfig::builder(32, 4).max_steps(2).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(22);
        let out = broadcast_with_coverage(&cfg, &mut rng).unwrap();
        assert!(!out.completed());
        assert!(out.covered < out.num_nodes);
        assert!(out.ratio().is_none());
    }

    #[test]
    fn ratio_requires_both_times() {
        let o = CoverageOutcome {
            broadcast_time: Some(10),
            coverage_time: Some(25),
            covered: 100,
            num_nodes: 100,
        };
        assert_eq!(o.ratio(), Some(2.5));
        assert_eq!(o.to_string(), "T_B = 10, T_C = 25");
        let o = CoverageOutcome {
            broadcast_time: None,
            coverage_time: None,
            covered: 7,
            num_nodes: 100,
        };
        assert_eq!(o.ratio(), None);
        assert_eq!(
            o.to_string(),
            "incomplete (T_B = None, T_C = None, 7/100 nodes covered)"
        );
    }

    #[test]
    fn broadcast_only_matches_sim_api() {
        let cfg = SimConfig::builder(16, 8).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(23);
        let out = broadcast_only(&cfg, &mut rng).unwrap();
        assert!(out.completed());
    }

    #[test]
    fn coverage_honors_frog_mobility_from_config() {
        use sparsegossip_grid::Point;
        let cfg = SimConfig::builder(32, 10)
            .mobility(crate::Mobility::InformedOnly)
            .max_steps(40)
            .build()
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(25);
        let mut sim = Simulation::coverage(&cfg, &mut rng).unwrap();
        let initial: Vec<Point> = sim.positions().to_vec();
        for _ in 0..40 {
            let _ = sim.step(&mut rng, &mut crate::NullObserver);
        }
        let informed = sim.process().informed().unwrap();
        for (i, start) in initial.iter().enumerate() {
            if !informed.contains(i) {
                assert_eq!(sim.positions()[i], *start, "dormant agent {i} moved");
            }
        }
    }

    #[test]
    fn coverage_runs_stepwise_through_the_driver() {
        let cfg = SimConfig::builder(10, 6).radius(0).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(24);
        let mut sim = Simulation::coverage(&cfg, &mut rng).unwrap();
        let mut steps = 0u64;
        while !sim.is_complete() && sim.time() < cfg.max_steps() {
            let _ = sim.step(&mut rng, &mut NullObserver);
            steps += 1;
        }
        let out = sim.outcome();
        assert!(out.completed());
        assert_eq!(steps, sim.time());
    }
}
