//! Joint broadcast/coverage runs: the coverage time `T_C` is the first
//! time every grid node has been visited by an *informed* agent. §4 of
//! the paper argues `T_C ≈ T_B = Õ(n/√k)` in the dynamic model.

use rand::RngExt;
use sparsegossip_grid::Grid;
use sparsegossip_walks::CoverTracker;

use crate::{BroadcastSim, NullObserver, Observer, SimConfig, SimError, StepContext};

/// Outcome of a joint broadcast + coverage run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoverageOutcome {
    /// Broadcast time `T_B` (first step all agents informed).
    pub broadcast_time: Option<u64>,
    /// Coverage time `T_C` (first step all nodes visited by informed
    /// agents).
    pub coverage_time: Option<u64>,
    /// Nodes covered when the run ended.
    pub covered: u64,
    /// Total nodes.
    pub num_nodes: u64,
}

impl CoverageOutcome {
    /// Whether both broadcast and coverage completed.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.broadcast_time.is_some() && self.coverage_time.is_some()
    }

    /// The ratio `T_C / T_B` when both completed.
    #[must_use]
    pub fn ratio(&self) -> Option<f64> {
        match (self.coverage_time, self.broadcast_time) {
            (Some(tc), Some(tb)) if tb > 0 => Some(tc as f64 / tb as f64),
            (Some(_), Some(_)) => None, // degenerate T_B = 0
            _ => None,
        }
    }
}

/// Observer that marks the nodes visited by informed agents.
struct InformedCoverage {
    grid: Grid,
    tracker: CoverTracker,
    coverage_time: Option<u64>,
}

impl Observer for InformedCoverage {
    fn on_step(&mut self, ctx: StepContext<'_>) {
        if self.coverage_time.is_some() {
            return;
        }
        for i in ctx.informed.iter_ones() {
            self.tracker.record(&self.grid, ctx.positions[i]);
        }
        if self.tracker.is_complete() {
            self.coverage_time = Some(ctx.time);
        }
    }
}

/// Runs a broadcast while tracking the coverage of informed agents,
/// continuing past `T_B` until coverage completes or the cap is hit.
///
/// # Errors
///
/// Propagates construction errors from [`BroadcastSim::new`].
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use sparsegossip_core::{broadcast_with_coverage, SimConfig};
///
/// let config = SimConfig::builder(16, 8).build()?;
/// let mut rng = SmallRng::seed_from_u64(3);
/// let out = broadcast_with_coverage(&config, &mut rng)?;
/// assert!(out.completed());
/// // Coverage cannot precede the broadcast by construction of the model
/// // here: informed agents must physically visit every node.
/// assert!(out.covered == out.num_nodes);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn broadcast_with_coverage<R: RngExt>(
    config: &SimConfig,
    rng: &mut R,
) -> Result<CoverageOutcome, SimError> {
    let grid = Grid::new(config.side())?;
    let mut sim = BroadcastSim::new(config, rng)?;
    let mut cov = InformedCoverage {
        grid,
        tracker: CoverTracker::new(&grid),
        coverage_time: None,
    };
    // Record the initial informed positions (step 0).
    {
        let comps = sim.current_components();
        let ctx = StepContext {
            time: 0,
            side: config.side(),
            positions: sim.positions(),
            components: &comps,
            informed: sim.informed(),
        };
        cov.on_step(ctx);
    }
    let mut broadcast_time = sim.is_complete().then(|| sim.time());
    while sim.time() < config.max_steps() {
        if broadcast_time.is_some() && cov.coverage_time.is_some() {
            break;
        }
        if broadcast_time.is_none() {
            sim.step(rng, &mut cov);
            if sim.is_complete() {
                broadcast_time = Some(sim.time());
            }
        } else {
            // Broadcast done: keep walking for coverage only.
            sim.step(rng, &mut cov);
        }
    }
    // A final wrap-up in case completion happened exactly at the cap.
    if broadcast_time.is_none() && sim.is_complete() {
        broadcast_time = Some(sim.time());
    }
    Ok(CoverageOutcome {
        broadcast_time,
        coverage_time: cov.coverage_time,
        covered: cov.tracker.covered(),
        num_nodes: config.n(),
    })
}

/// Runs only the broadcast part (convenience for matched comparisons).
///
/// # Errors
///
/// Propagates construction errors from [`BroadcastSim::new`].
pub fn broadcast_only<R: RngExt>(
    config: &SimConfig,
    rng: &mut R,
) -> Result<crate::BroadcastOutcome, SimError> {
    let mut sim = BroadcastSim::new(config, rng)?;
    Ok(sim.run_with(rng, &mut NullObserver))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn coverage_completes_and_dominates_broadcast() {
        let cfg = SimConfig::builder(12, 8).radius(0).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(21);
        let out = broadcast_with_coverage(&cfg, &mut rng).unwrap();
        assert!(out.completed());
        let tb = out.broadcast_time.unwrap();
        let tc = out.coverage_time.unwrap();
        // T_C counts *informed* visits: full coverage requires at least
        // as much time as informing everyone on this small grid is not
        // strictly guaranteed, but coverage can never beat the time the
        // last *node* is reached, which is ≥ the time the source's own
        // component formed; sanity: both are positive and finite.
        assert!(tc > 0);
        assert!(tb <= cfg.max_steps());
        assert_eq!(out.covered, 144);
    }

    #[test]
    fn tiny_cap_reports_partial_coverage() {
        let cfg = SimConfig::builder(32, 4).max_steps(2).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(22);
        let out = broadcast_with_coverage(&cfg, &mut rng).unwrap();
        assert!(!out.completed());
        assert!(out.covered < out.num_nodes);
        assert!(out.ratio().is_none());
    }

    #[test]
    fn ratio_requires_both_times() {
        let o = CoverageOutcome {
            broadcast_time: Some(10),
            coverage_time: Some(25),
            covered: 100,
            num_nodes: 100,
        };
        assert_eq!(o.ratio(), Some(2.5));
        let o = CoverageOutcome {
            broadcast_time: None,
            coverage_time: None,
            covered: 7,
            num_nodes: 100,
        };
        assert_eq!(o.ratio(), None);
    }

    #[test]
    fn broadcast_only_matches_sim_api() {
        let cfg = SimConfig::builder(16, 8).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(23);
        let out = broadcast_only(&cfg, &mut rng).unwrap();
        assert!(out.completed());
    }
}
