use sparsegossip_conngraph::Components;
use sparsegossip_walks::BitSet;

/// Per-agent rumor sets for multi-rumor (gossip) runs.
///
/// Agent `a`'s set `M_a(t)` holds the rumor ids `0..num_rumors` that
/// `a` knows. The exchange rule of the paper (§2) is
/// `M_a(t) = ⋃_{a' ∈ C} M_{a'}(t − 1)` over `a`'s component `C`;
/// [`RumorSets::exchange`] applies it for all components at once.
///
/// # Examples
///
/// ```
/// use sparsegossip_conngraph::components;
/// use sparsegossip_grid::Point;
/// use sparsegossip_core::RumorSets;
///
/// // Three agents, each with its own rumor; agents 0 and 1 meet.
/// let mut sets = RumorSets::distinct(3);
/// let positions = [Point::new(4, 4), Point::new(4, 4), Point::new(0, 0)];
/// let comps = components(&positions, 0, 8);
/// sets.exchange(&comps);
/// assert_eq!(sets.count(0), 2);
/// assert_eq!(sets.count(2), 1);
/// assert!(!sets.all_complete());
/// ```
#[derive(Clone, Debug)]
pub struct RumorSets {
    sets: Vec<BitSet>,
    num_rumors: usize,
    /// Reused union accumulator for [`RumorSets::exchange`], so the
    /// per-step exchange never allocates.
    union_scratch: BitSet,
}

impl RumorSets {
    /// One distinct rumor per agent: agent `i` starts knowing rumor `i`
    /// (the gossip initial condition of Corollary 2).
    #[must_use]
    pub fn distinct(k: usize) -> Self {
        let sets = (0..k)
            .map(|i| {
                let mut s = BitSet::new(k);
                s.insert(i);
                s
            })
            .collect();
        Self {
            sets,
            num_rumors: k,
            union_scratch: BitSet::new(k),
        }
    }

    /// `num_rumors` rumors held by the first `num_rumors` agents
    /// (agent `i < num_rumors` starts with rumor `i`; the paper allows
    /// any number of rumors up to `k`).
    ///
    /// # Panics
    ///
    /// Panics if `num_rumors > k` or `num_rumors == 0`.
    #[must_use]
    pub fn with_rumors(k: usize, num_rumors: usize) -> Self {
        assert!(num_rumors > 0 && num_rumors <= k, "need 1..=k rumors");
        let sets = (0..k)
            .map(|i| {
                let mut s = BitSet::new(num_rumors);
                if i < num_rumors {
                    s.insert(i);
                }
                s
            })
            .collect();
        Self {
            sets,
            num_rumors,
            union_scratch: BitSet::new(num_rumors),
        }
    }

    /// The number of agents.
    #[inline]
    #[must_use]
    pub fn k(&self) -> usize {
        self.sets.len()
    }

    /// The number of rumors in the system.
    #[inline]
    #[must_use]
    pub fn num_rumors(&self) -> usize {
        self.num_rumors
    }

    /// The number of rumors agent `a` knows.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    #[inline]
    #[must_use]
    pub fn count(&self, a: usize) -> usize {
        self.sets[a].count_ones()
    }

    /// Whether agent `a` knows rumor `m`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    #[inline]
    #[must_use]
    pub fn knows(&self, a: usize, m: usize) -> bool {
        self.sets[a].contains(m)
    }

    /// Whether every agent knows every rumor (the gossip completion
    /// condition).
    #[must_use]
    pub fn all_complete(&self) -> bool {
        self.sets.iter().all(|s| s.count_ones() == self.num_rumors)
    }

    /// The minimum rumor count over agents (progress metric).
    #[must_use]
    pub fn min_count(&self) -> usize {
        self.sets.iter().map(BitSet::count_ones).min().unwrap_or(0)
    }

    /// Applies one synchronous exchange: within each component, every
    /// agent's set becomes the union of the members' sets.
    ///
    /// Allocation-free: the union accumulator is a persistent scratch
    /// and member sets are overwritten in place.
    // detlint: hot
    pub fn exchange(&mut self, comps: &Components) {
        let union = &mut self.union_scratch;
        for c in 0..comps.count() {
            let members = comps.members(c);
            if members.len() == 1 {
                continue;
            }
            union.clear();
            for &m in members {
                union.union_with(&self.sets[m as usize]);
            }
            for &m in members {
                self.sets[m as usize].copy_from(union);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsegossip_conngraph::components;
    use sparsegossip_grid::Point;

    #[test]
    fn distinct_initial_condition() {
        let s = RumorSets::distinct(4);
        assert_eq!(s.k(), 4);
        assert_eq!(s.num_rumors(), 4);
        for i in 0..4 {
            assert_eq!(s.count(i), 1);
            assert!(s.knows(i, i));
        }
        assert!(!s.all_complete());
        assert_eq!(s.min_count(), 1);
    }

    #[test]
    fn exchange_unions_components() {
        let mut s = RumorSets::distinct(3);
        // All three at one node.
        let positions = [Point::new(1, 1); 3];
        let comps = components(&positions, 0, 4);
        s.exchange(&comps);
        assert!(s.all_complete());
        assert_eq!(s.min_count(), 3);
    }

    #[test]
    fn exchange_is_idempotent_on_fixed_components() {
        let mut s = RumorSets::distinct(3);
        let positions = [Point::new(0, 0), Point::new(0, 0), Point::new(3, 3)];
        let comps = components(&positions, 0, 4);
        s.exchange(&comps);
        let counts: Vec<usize> = (0..3).map(|i| s.count(i)).collect();
        s.exchange(&comps);
        assert_eq!(counts, (0..3).map(|i| s.count(i)).collect::<Vec<_>>());
    }

    #[test]
    fn partial_rumor_population() {
        let s = RumorSets::with_rumors(5, 2);
        assert_eq!(s.num_rumors(), 2);
        assert_eq!(s.count(0), 1);
        assert_eq!(s.count(4), 0);
        assert_eq!(s.min_count(), 0);
    }

    #[test]
    #[should_panic(expected = "need 1..=k rumors")]
    fn rejects_too_many_rumors() {
        let _ = RumorSets::with_rumors(2, 3);
    }
}
