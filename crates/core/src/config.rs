use sparsegossip_grid::Grid;

use crate::SimError;

/// Which agents move at each step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Mobility {
    /// Every agent walks — the paper's main model.
    #[default]
    All,
    /// Only informed agents walk — the Frog model of §4.
    InformedOnly,
}

/// How far a rumor travels within one time step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExchangeRule {
    /// The rumor floods the whole connected component of `G_t(r)` —
    /// the paper's model (radio ≫ motion speed).
    #[default]
    Component,
    /// The rumor travels a single hop of `G_t(r)` per step — the
    /// ablation showing that below percolation (islands of `O(log)`
    /// size) the distinction barely matters.
    OneHop,
}

/// Parameters of a dissemination simulation on the bounded grid.
///
/// Built with [`SimConfig::builder`]; validation happens at
/// [`SimConfigBuilder::build`].
///
/// # Examples
///
/// ```
/// use sparsegossip_core::SimConfig;
///
/// let config = SimConfig::builder(128, 64)
///     .radius(3)
///     .source(10)
///     .max_steps(500_000)
///     .build()?;
/// assert_eq!(config.n(), 128 * 128);
/// assert!(config.radius() < config.critical_radius() as u32);
/// # Ok::<(), sparsegossip_core::SimError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimConfig {
    side: u32,
    k: usize,
    radius: u32,
    source: usize,
    max_steps: u64,
    mobility: Mobility,
    exchange_rule: ExchangeRule,
}

impl SimConfig {
    /// Starts building a configuration for `k` agents on a `side × side`
    /// grid.
    #[must_use]
    pub fn builder(side: u32, k: usize) -> SimConfigBuilder {
        SimConfigBuilder {
            side,
            k,
            radius: 0,
            source: 0,
            max_steps: None,
            mobility: Mobility::All,
            exchange_rule: ExchangeRule::Component,
        }
    }

    /// The grid side.
    #[inline]
    #[must_use]
    pub fn side(&self) -> u32 {
        self.side
    }

    /// The number of grid nodes `n = side²`.
    #[inline]
    #[must_use]
    pub fn n(&self) -> u64 {
        u64::from(self.side) * u64::from(self.side)
    }

    /// The number of agents `k`.
    #[inline]
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The transmission radius `r`.
    #[inline]
    #[must_use]
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// The index of the initially informed agent.
    #[inline]
    #[must_use]
    pub fn source(&self) -> usize {
        self.source
    }

    /// The step cap after which a run reports non-completion.
    #[inline]
    #[must_use]
    pub fn max_steps(&self) -> u64 {
        self.max_steps
    }

    /// The mobility rule.
    #[inline]
    #[must_use]
    pub fn mobility(&self) -> Mobility {
        self.mobility
    }

    /// The exchange rule.
    #[inline]
    #[must_use]
    pub fn exchange_rule(&self) -> ExchangeRule {
        self.exchange_rule
    }

    /// The percolation radius `r_c = √(n/k)` for this configuration.
    #[must_use]
    pub fn critical_radius(&self) -> f64 {
        (self.n() as f64 / self.k as f64).sqrt()
    }

    /// The default step cap: `64 · (n/√k) · log₂²(n)`, a generous
    /// multiple of the paper's `Θ̃(n/√k)` upper bound, floored at
    /// `10⁴` so tiny systems still get room to finish.
    #[must_use]
    pub fn default_step_cap(side: u32, k: usize) -> u64 {
        let n = f64::from(side) * f64::from(side);
        let log2n = n.log2().max(1.0);
        let cap = 64.0 * (n / (k.max(1) as f64).sqrt()) * log2n * log2n;
        (cap as u64).max(10_000)
    }
}

/// Builder for [`SimConfig`].
#[derive(Clone, Copy, Debug)]
pub struct SimConfigBuilder {
    side: u32,
    k: usize,
    radius: u32,
    source: usize,
    max_steps: Option<u64>,
    mobility: Mobility,
    exchange_rule: ExchangeRule,
}

impl SimConfigBuilder {
    /// Sets the transmission radius `r` (default 0: contact-only, the
    /// paper's most restricted case).
    #[must_use]
    pub fn radius(mut self, r: u32) -> Self {
        self.radius = r;
        self
    }

    /// Sets the initially informed agent (default 0; by symmetry of the
    /// uniform placement the choice is irrelevant in law).
    #[must_use]
    pub fn source(mut self, source: usize) -> Self {
        self.source = source;
        self
    }

    /// Sets the step cap (default [`SimConfig::default_step_cap`]).
    #[must_use]
    pub fn max_steps(mut self, cap: u64) -> Self {
        self.max_steps = Some(cap);
        self
    }

    /// Sets the mobility rule (default [`Mobility::All`]).
    #[must_use]
    pub fn mobility(mut self, mobility: Mobility) -> Self {
        self.mobility = mobility;
        self
    }

    /// Sets the exchange rule (default [`ExchangeRule::Component`]).
    #[must_use]
    pub fn exchange_rule(mut self, rule: ExchangeRule) -> Self {
        self.exchange_rule = rule;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// * [`SimError::Grid`] if the side is zero or too large;
    /// * [`SimError::TooFewAgents`] if `k < 2`;
    /// * [`SimError::SourceOutOfRange`] if the source index exceeds `k`;
    /// * [`SimError::ZeroStepCap`] if an explicit zero cap was set.
    pub fn build(self) -> Result<SimConfig, SimError> {
        // Validate the side through the Grid constructor.
        let _ = Grid::new(self.side)?;
        if self.k < 2 {
            return Err(SimError::TooFewAgents { k: self.k });
        }
        if self.source >= self.k {
            return Err(SimError::SourceOutOfRange {
                source: self.source,
                k: self.k,
            });
        }
        let max_steps = self
            .max_steps
            .unwrap_or_else(|| SimConfig::default_step_cap(self.side, self.k));
        if max_steps == 0 {
            return Err(SimError::ZeroStepCap);
        }
        Ok(SimConfig {
            side: self.side,
            k: self.k,
            radius: self.radius,
            source: self.source,
            max_steps,
            mobility: self.mobility,
            exchange_rule: self.exchange_rule,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsegossip_grid::GridError;

    #[test]
    fn builder_applies_defaults() {
        let c = SimConfig::builder(32, 8).build().unwrap();
        assert_eq!(c.radius(), 0);
        assert_eq!(c.source(), 0);
        assert_eq!(c.mobility(), Mobility::All);
        assert_eq!(c.max_steps(), SimConfig::default_step_cap(32, 8));
        assert_eq!(c.n(), 1024);
        assert_eq!(c.k(), 8);
    }

    #[test]
    fn builder_rejects_bad_inputs() {
        assert_eq!(
            SimConfig::builder(0, 8).build().unwrap_err(),
            SimError::Grid(GridError::ZeroSide)
        );
        assert_eq!(
            SimConfig::builder(8, 1).build().unwrap_err(),
            SimError::TooFewAgents { k: 1 }
        );
        assert_eq!(
            SimConfig::builder(8, 4).source(4).build().unwrap_err(),
            SimError::SourceOutOfRange { source: 4, k: 4 }
        );
        assert_eq!(
            SimConfig::builder(8, 4).max_steps(0).build().unwrap_err(),
            SimError::ZeroStepCap
        );
    }

    #[test]
    fn critical_radius_matches_formula() {
        let c = SimConfig::builder(100, 25).build().unwrap();
        assert!((c.critical_radius() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn default_cap_scales_with_n_over_sqrt_k() {
        let small = SimConfig::default_step_cap(64, 16);
        let bigger_grid = SimConfig::default_step_cap(128, 16);
        let more_agents = SimConfig::default_step_cap(64, 256);
        assert!(bigger_grid > small);
        assert!(more_agents < small);
        assert!(SimConfig::default_step_cap(2, 4) >= 10_000);
    }
}
