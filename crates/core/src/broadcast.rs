use core::fmt;
use core::ops::ControlFlow;

use rand::RngExt;
use sparsegossip_conngraph::{Components, SpatialHash, SpatialScratch};
use sparsegossip_grid::{Grid, Point, Topology};
use sparsegossip_walks::BitSet;

use crate::{
    ExchangeCtx, ExchangeRule, Mobility, NullObserver, Observer, Process, SimConfig, SimError,
    Simulation,
};

/// Outcome of a broadcast run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use]
pub struct BroadcastOutcome {
    /// The broadcast time `T_B`: first step at which every agent knew
    /// the rumor, or `None` if the step cap was reached first.
    pub broadcast_time: Option<u64>,
    /// Number of informed agents when the run ended.
    pub informed: usize,
    /// Total number of agents.
    pub k: usize,
}

impl BroadcastOutcome {
    /// Whether every agent was informed within the cap.
    #[inline]
    #[must_use]
    pub fn completed(&self) -> bool {
        self.broadcast_time.is_some()
    }

    /// Fraction of agents informed when the run ended.
    #[must_use]
    pub fn informed_fraction(&self) -> f64 {
        self.informed as f64 / self.k as f64
    }
}

impl fmt::Display for BroadcastOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.broadcast_time {
            Some(t) => write!(f, "T_B = {t} ({}/{} informed)", self.informed, self.k),
            None => write!(f, "incomplete ({}/{} informed)", self.informed, self.k),
        }
    }
}

/// Single-rumor broadcast among mobile agents — the [`Process`] of
/// Theorems 1 and 2.
///
/// Dynamics per step (run by [`Simulation`]): (1) agents move according
/// to the mobility rule; (2) the visibility graph `G_t(r)` is rebuilt;
/// (3) the rumor floods every component containing an informed agent
/// (the paper's instantaneous in-component spreading). An initial
/// exchange happens at placement time (step 0), since `G_0(r)` already
/// exists.
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use sparsegossip_core::{SimConfig, Simulation};
///
/// let config = SimConfig::builder(48, 24).radius(1).build()?;
/// let mut rng = SmallRng::seed_from_u64(7);
/// let mut sim = Simulation::broadcast(&config, &mut rng)?;
/// let outcome = sim.run(&mut rng);
/// assert!(outcome.completed());
/// assert_eq!(outcome.informed, 24);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Broadcast {
    mobility: Mobility,
    exchange_rule: ExchangeRule,
    informed: BitSet,
    informed_count: usize,
    /// Reused buffers for the one-hop exchange rule (the spatial hash
    /// over agents and the start-of-step informed snapshot), so the
    /// ablation path is as allocation-free as the component path.
    one_hop_spatial: SpatialScratch,
    one_hop_snapshot: BitSet,
}

impl Broadcast {
    /// Creates the process state for `k` agents with one informed
    /// `source`.
    ///
    /// # Errors
    ///
    /// * [`SimError::TooFewAgents`] if `k < 2`;
    /// * [`SimError::SourceOutOfRange`] if `source ≥ k`.
    pub fn new(k: usize, source: usize) -> Result<Self, SimError> {
        if k < 2 {
            return Err(SimError::TooFewAgents { k });
        }
        if source >= k {
            return Err(SimError::SourceOutOfRange { source, k });
        }
        let mut informed = BitSet::new(k);
        informed.insert(source);
        Ok(Self {
            mobility: Mobility::All,
            exchange_rule: ExchangeRule::Component,
            informed,
            informed_count: 1,
            one_hop_spatial: SpatialScratch::new(),
            one_hop_snapshot: BitSet::new(k),
        })
    }

    /// Creates the process state for `k` agents with the first
    /// `sources` agents informed (multi-source broadcast).
    ///
    /// # Errors
    ///
    /// * [`SimError::TooFewAgents`] if `k < 2`;
    /// * [`SimError::SourceOutOfRange`] if `sources == 0` or
    ///   `sources > k`.
    pub fn with_sources(k: usize, sources: usize) -> Result<Self, SimError> {
        if k < 2 {
            return Err(SimError::TooFewAgents { k });
        }
        if sources == 0 || sources > k {
            return Err(SimError::SourceOutOfRange {
                source: sources.saturating_sub(1),
                k,
            });
        }
        let mut informed = BitSet::new(k);
        for s in 0..sources {
            informed.insert(s);
        }
        Ok(Self {
            mobility: Mobility::All,
            exchange_rule: ExchangeRule::Component,
            informed,
            informed_count: sources,
            one_hop_spatial: SpatialScratch::new(),
            one_hop_snapshot: BitSet::new(k),
        })
    }

    /// Creates the process described by `config` (mobility, exchange
    /// rule, source).
    ///
    /// # Errors
    ///
    /// As [`Broadcast::new`].
    pub fn from_config(config: &SimConfig) -> Result<Self, SimError> {
        Ok(Self::new(config.k(), config.source())?
            .mobility(config.mobility())
            .exchange_rule(config.exchange_rule()))
    }

    /// Sets the mobility rule (default [`Mobility::All`]).
    #[must_use]
    pub fn mobility(mut self, mobility: Mobility) -> Self {
        self.mobility = mobility;
        self
    }

    /// Sets the exchange rule (default [`ExchangeRule::Component`]).
    #[must_use]
    pub fn exchange_rule(mut self, rule: ExchangeRule) -> Self {
        self.exchange_rule = rule;
        self
    }

    /// The exchange rule in force.
    #[inline]
    #[must_use]
    pub fn rule(&self) -> ExchangeRule {
        self.exchange_rule
    }

    /// Switches the exchange rule (used by the hop-count ablation).
    pub fn set_exchange_rule(&mut self, rule: ExchangeRule) {
        self.exchange_rule = rule;
    }

    /// The informed-agent set.
    #[inline]
    #[must_use]
    pub fn informed_set(&self) -> &BitSet {
        &self.informed
    }

    /// The number of informed agents.
    #[inline]
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.informed_count
    }

    /// Whether every agent is informed.
    #[inline]
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.informed_count == self.informed.len()
    }

    /// One-hop exchange: every agent within `r` of a currently informed
    /// agent becomes informed; returns the number of newly informed.
    ///
    /// Both the spatial hash and the start-of-step snapshot refill
    /// persistent buffers, so the step allocates nothing.
    // detlint: hot
    fn exchange_one_hop(&mut self, positions: &[Point], radius: u32, side: u32) -> usize {
        let hash = SpatialHash::build_into(&mut self.one_hop_spatial, positions, radius, side);
        self.one_hop_snapshot.copy_from(&self.informed);
        let mut fresh = 0;
        for i in self.one_hop_snapshot.iter_ones() {
            let p = positions[i];
            for j in hash.candidates(p) {
                let j = j as usize;
                if !self.informed.contains(j)
                    && positions[j].manhattan(p) <= radius
                    && self.informed.insert(j)
                {
                    fresh += 1;
                }
            }
        }
        self.informed_count += fresh;
        fresh
    }

    /// Floods every component containing an informed agent; returns the
    /// number of newly informed agents.
    // detlint: hot
    fn exchange_components(&mut self, comps: &Components) -> usize {
        let mut fresh = 0;
        for c in 0..comps.count() {
            let members = comps.members(c);
            if members.len() == 1 {
                continue;
            }
            if members.iter().any(|&m| self.informed.contains(m as usize)) {
                for &m in members {
                    if self.informed.insert(m as usize) {
                        fresh += 1;
                    }
                }
            }
        }
        self.informed_count += fresh;
        fresh
    }
}

impl Process for Broadcast {
    type Outcome = BroadcastOutcome;

    fn agent_count(&self) -> Option<usize> {
        Some(self.informed.len())
    }

    fn mobility_mask(&self) -> Option<&BitSet> {
        match self.mobility {
            Mobility::All => None,
            Mobility::InformedOnly => Some(&self.informed),
        }
    }

    /// A churned-out agent is replaced by a fresh arrival that has not
    /// heard the rumor: its informed bit is dropped.
    fn reset_agent(&mut self, i: usize) {
        if self.informed.remove(i) {
            self.informed_count -= 1;
        }
    }

    /// Only components containing an informed agent can change the
    /// informed set (a component without one floods nothing), so the
    /// driver may label from the informed frontier only. This covers
    /// the Frog configuration too — [`Mobility::InformedOnly`] is the
    /// same process with a mask. The one-hop ablation rule never reads
    /// components at all (its exchange scans positions through its own
    /// hash), so it lets the driver skip labelling outright.
    fn components_scope(&self) -> crate::ComponentsScope<'_> {
        match self.exchange_rule {
            ExchangeRule::Component => crate::ComponentsScope::Seeded(&self.informed),
            ExchangeRule::OneHop => crate::ComponentsScope::None,
        }
    }

    fn exchange(&mut self, ctx: ExchangeCtx<'_>) -> ControlFlow<()> {
        match self.exchange_rule {
            ExchangeRule::Component => self.exchange_components(ctx.components),
            ExchangeRule::OneHop => self.exchange_one_hop(ctx.positions, ctx.radius, ctx.side),
        };
        if self.is_complete() {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }

    fn informed(&self) -> Option<&BitSet> {
        Some(&self.informed)
    }

    fn outcome(&self, time: u64) -> BroadcastOutcome {
        BroadcastOutcome {
            broadcast_time: self.is_complete().then_some(time),
            informed: self.informed_count,
            k: self.informed.len(),
        }
    }
}

impl Simulation<Broadcast, Grid> {
    /// Builds a broadcast simulation on the bounded grid described by
    /// `config`, with agents placed uniformly at random.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors ([`SimError::Grid`],
    /// [`SimError::Walk`], [`SimError::TooFewAgents`],
    /// [`SimError::SourceOutOfRange`], [`SimError::ZeroStepCap`]).
    pub fn broadcast<R: RngExt>(config: &SimConfig, rng: &mut R) -> Result<Self, SimError> {
        Self::broadcast_with_scratch(config, rng, crate::SimScratch::new())
    }

    /// As [`Simulation::broadcast`], reusing a recycled
    /// [`SimScratch`](crate::SimScratch) (see
    /// [`Simulation::into_scratch`]) so repeated runs share one set of
    /// hot-path buffers.
    ///
    /// # Errors
    ///
    /// As [`Simulation::broadcast`].
    pub fn broadcast_with_scratch<R: RngExt>(
        config: &SimConfig,
        rng: &mut R,
        scratch: crate::SimScratch,
    ) -> Result<Self, SimError> {
        let grid = Grid::new(config.side())?;
        Simulation::new_with_scratch(
            grid,
            config.k(),
            config.radius(),
            config.max_steps(),
            Broadcast::from_config(config)?,
            rng,
            scratch,
        )
    }

    /// Builds a Frog-model broadcast (§4): the `config`'s mobility rule
    /// is overridden to [`Mobility::InformedOnly`].
    ///
    /// Unlike the legacy `FrogSim::new` (which always flooded
    /// components), the configured
    /// [`exchange_rule`](SimConfig::exchange_rule) is honored — with a
    /// non-default rule the two constructors produce different runs.
    ///
    /// # Errors
    ///
    /// As [`Simulation::broadcast`].
    pub fn frog<R: RngExt>(config: &SimConfig, rng: &mut R) -> Result<Self, SimError> {
        let grid = Grid::new(config.side())?;
        Simulation::new(
            grid,
            config.k(),
            config.radius(),
            config.max_steps(),
            Broadcast::from_config(config)?.mobility(Mobility::InformedOnly),
            rng,
        )
    }
}

/// Pre-redesign single-rumor broadcast simulator; now a thin shim over
/// [`Simulation<Broadcast, T>`].
///
/// Prefer [`Simulation::broadcast`] / [`Simulation::new`] in new code:
/// the generic driver exposes the same pipeline for every process.
///
/// # Examples
///
/// ```
/// # #![allow(deprecated)]
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use sparsegossip_core::{BroadcastSim, SimConfig};
///
/// let config = SimConfig::builder(48, 24).radius(1).build()?;
/// let mut rng = SmallRng::seed_from_u64(7);
/// let mut sim = BroadcastSim::new(&config, &mut rng)?;
/// let outcome = sim.run(&mut rng);
/// assert!(outcome.completed());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct BroadcastSim<T> {
    sim: Simulation<Broadcast, T>,
}

impl BroadcastSim<Grid> {
    /// Creates a broadcast simulation on the bounded grid described by
    /// `config`, with agents placed uniformly at random.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors ([`SimError::Grid`],
    /// [`SimError::Walk`]).
    #[deprecated(
        since = "0.1.0",
        note = "use the unified `Simulation` driver (`Simulation::broadcast`); \
                see the migration table in README.md"
    )]
    pub fn new<R: RngExt>(config: &SimConfig, rng: &mut R) -> Result<Self, SimError> {
        Simulation::broadcast(config, rng).map(|sim| Self { sim })
    }
}

impl<T: Topology> BroadcastSim<T> {
    /// Creates a broadcast simulation on an arbitrary topology with
    /// uniform random placement.
    ///
    /// # Errors
    ///
    /// * [`SimError::TooFewAgents`] if `k < 2`;
    /// * [`SimError::SourceOutOfRange`] if `source ≥ k`;
    /// * [`SimError::ZeroStepCap`] if `max_steps == 0`;
    /// * [`SimError::Walk`] if the engine rejects the placement.
    #[deprecated(
        since = "0.1.0",
        note = "use the unified `Simulation` driver (`Simulation::new`); \
                see the migration table in README.md"
    )]
    pub fn on_topology<R: RngExt>(
        topo: T,
        k: usize,
        radius: u32,
        source: usize,
        mobility: Mobility,
        max_steps: u64,
        rng: &mut R,
    ) -> Result<Self, SimError> {
        let process = Broadcast::new(k, source)?.mobility(mobility);
        Simulation::new(topo, k, radius, max_steps, process, rng).map(|sim| Self { sim })
    }

    /// Creates a simulation from explicit starting positions (useful
    /// for worst-case placements in lower-bound experiments).
    ///
    /// # Errors
    ///
    /// As [`BroadcastSim::on_topology`], plus [`SimError::Walk`] if any
    /// position is outside the topology.
    #[deprecated(
        since = "0.1.0",
        note = "use the unified `Simulation` driver (`Simulation::from_positions`); \
                see the migration table in README.md"
    )]
    pub fn from_positions(
        topo: T,
        positions: Vec<Point>,
        radius: u32,
        source: usize,
        mobility: Mobility,
        max_steps: u64,
    ) -> Result<Self, SimError> {
        let process = Broadcast::new(positions.len(), source)?.mobility(mobility);
        Simulation::from_positions(topo, positions, radius, max_steps, process)
            .map(|sim| Self { sim })
    }

    /// The underlying generic simulation.
    #[inline]
    #[must_use]
    pub fn as_simulation(&self) -> &Simulation<Broadcast, T> {
        &self.sim
    }

    /// Consumes the shim, yielding the generic simulation.
    #[inline]
    #[must_use]
    pub fn into_simulation(self) -> Simulation<Broadcast, T> {
        self.sim
    }

    /// The number of agents.
    #[inline]
    #[must_use]
    pub fn k(&self) -> usize {
        self.sim.k()
    }

    /// The transmission radius.
    #[inline]
    #[must_use]
    pub fn radius(&self) -> u32 {
        self.sim.radius()
    }

    /// Steps taken so far.
    #[inline]
    #[must_use]
    pub fn time(&self) -> u64 {
        self.sim.time()
    }

    /// Current agent positions.
    #[inline]
    #[must_use]
    pub fn positions(&self) -> &[Point] {
        self.sim.positions()
    }

    /// The informed-agent set.
    #[inline]
    #[must_use]
    pub fn informed(&self) -> &BitSet {
        self.sim.process().informed_set()
    }

    /// The number of informed agents.
    #[inline]
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.sim.process().informed_count()
    }

    /// Whether every agent is informed.
    #[inline]
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.sim.is_complete()
    }

    /// The visibility-graph components at the current positions.
    #[must_use]
    pub fn current_components(&self) -> Components {
        self.sim.current_components()
    }

    /// The exchange rule in force.
    #[inline]
    #[must_use]
    pub fn exchange_rule(&self) -> ExchangeRule {
        self.sim.process().rule()
    }

    /// Switches the exchange rule (used by the hop-count ablation).
    pub fn set_exchange_rule(&mut self, rule: ExchangeRule) {
        self.sim.process_mut().set_exchange_rule(rule);
    }

    /// Advances one step (move, rebuild `G_t(r)`, exchange), invoking
    /// the observer with the post-exchange snapshot. Returns the number
    /// of newly informed agents.
    pub fn step<R: RngExt, O: Observer>(&mut self, rng: &mut R, observer: &mut O) -> usize {
        let before = self.sim.process().informed_count();
        let _ = self.sim.step(rng, observer);
        self.sim.process().informed_count() - before
    }

    /// Runs to completion or the step cap; equivalent to
    /// [`run_with`](Self::run_with) with a [`NullObserver`].
    pub fn run<R: RngExt>(&mut self, rng: &mut R) -> BroadcastOutcome {
        self.run_with(rng, &mut NullObserver)
    }

    /// Runs to completion or the step cap with an observer.
    pub fn run_with<R: RngExt, O: Observer>(
        &mut self,
        rng: &mut R,
        observer: &mut O,
    ) -> BroadcastOutcome {
        self.sim.run_with(rng, observer)
    }

    /// The outcome at the current state.
    pub fn outcome(&self) -> BroadcastOutcome {
        self.sim.outcome()
    }
}

#[cfg(test)]
mod tests {
    // The legacy-shim tests exercise the deprecated constructors on
    // purpose: they are the compatibility surface under test.
    #![allow(deprecated)]

    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn config(side: u32, k: usize, r: u32) -> SimConfig {
        SimConfig::builder(side, k).radius(r).build().unwrap()
    }

    #[test]
    fn completes_on_small_grid() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sim = BroadcastSim::new(&config(16, 8, 0), &mut rng).unwrap();
        let out = sim.run(&mut rng);
        assert!(out.completed(), "informed only {}", out.informed);
        assert_eq!(out.informed, 8);
        assert!((out.informed_fraction() - 1.0).abs() < 1e-12);
        assert!(sim.is_complete());
    }

    #[test]
    fn informed_set_is_monotone() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sim = BroadcastSim::new(&config(32, 16, 1), &mut rng).unwrap();
        let mut prev = sim.informed().clone();
        for _ in 0..500 {
            sim.step(&mut rng, &mut NullObserver);
            assert!(prev.is_subset(sim.informed()), "an agent forgot the rumor");
            prev = sim.informed().clone();
            if sim.is_complete() {
                break;
            }
        }
    }

    #[test]
    fn step_cap_yields_incomplete_outcome() {
        let mut rng = SmallRng::seed_from_u64(3);
        let cfg = SimConfig::builder(64, 4).max_steps(1).build().unwrap();
        let mut sim = BroadcastSim::new(&cfg, &mut rng).unwrap();
        let out = sim.run(&mut rng);
        // With k=4 on a 64-grid, one step almost surely does not finish.
        assert!(!out.completed());
        assert!(out.informed >= 1);
        assert!(out.informed_fraction() <= 1.0);
    }

    #[test]
    fn radius_as_large_as_grid_finishes_at_step_zero() {
        let mut rng = SmallRng::seed_from_u64(4);
        let cfg = SimConfig::builder(16, 8).radius(32).build().unwrap();
        let mut sim = BroadcastSim::new(&cfg, &mut rng).unwrap();
        assert!(
            sim.is_complete(),
            "radius ≥ diameter must flood at placement"
        );
        let out = sim.run(&mut rng);
        assert_eq!(out.broadcast_time, Some(0));
    }

    #[test]
    fn source_choice_is_respected() {
        let mut rng = SmallRng::seed_from_u64(5);
        let cfg = SimConfig::builder(32, 8)
            .source(5)
            .max_steps(1)
            .build()
            .unwrap();
        let sim = BroadcastSim::new(&cfg, &mut rng).unwrap();
        assert!(sim.informed().contains(5));
    }

    #[test]
    fn from_positions_lower_bound_layout() {
        // Source far left, receiver far right, contact-only: cannot
        // finish in a handful of steps (distance ≫ steps).
        let g = Grid::new(64).unwrap();
        let positions = vec![Point::new(0, 32), Point::new(63, 32)];
        let mut sim = BroadcastSim::from_positions(g, positions, 0, 0, Mobility::All, 20).unwrap();
        let mut rng = SmallRng::seed_from_u64(6);
        let out = sim.run(&mut rng);
        assert!(!out.completed(), "agents 63 apart cannot meet in 20 steps");
    }

    #[test]
    fn constructor_validation() {
        let g = Grid::new(8).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        assert!(matches!(
            BroadcastSim::on_topology(g, 1, 0, 0, Mobility::All, 10, &mut rng),
            Err(SimError::TooFewAgents { k: 1 })
        ));
        assert!(matches!(
            BroadcastSim::on_topology(g, 4, 0, 9, Mobility::All, 10, &mut rng),
            Err(SimError::SourceOutOfRange { source: 9, k: 4 })
        ));
        assert!(matches!(
            BroadcastSim::on_topology(g, 4, 0, 0, Mobility::All, 0, &mut rng),
            Err(SimError::ZeroStepCap)
        ));
    }

    #[test]
    fn larger_radius_is_never_slower_in_distribution() {
        // Corollary 1 direction: mean T_B at r=4 ≤ mean T_B at r=0 on
        // matched sizes (generous replication to damp noise).
        let reps = 12u64;
        let mean_tb = |r: u32, seed: u64| {
            let mut total = 0u64;
            for i in 0..reps {
                let mut rng = SmallRng::seed_from_u64(seed + i);
                let mut sim = BroadcastSim::new(&config(24, 12, r), &mut rng).unwrap();
                total += sim.run(&mut rng).broadcast_time.expect("must finish");
            }
            total as f64 / reps as f64
        };
        let slow = mean_tb(0, 100);
        let fast = mean_tb(4, 200);
        assert!(fast <= slow * 1.2, "r=4 mean {fast} ≫ r=0 mean {slow}");
    }

    #[test]
    fn outcome_display_reports_both_states() {
        let done = BroadcastOutcome {
            broadcast_time: Some(42),
            informed: 8,
            k: 8,
        };
        assert_eq!(done.to_string(), "T_B = 42 (8/8 informed)");
        let capped = BroadcastOutcome {
            broadcast_time: None,
            informed: 3,
            k: 8,
        };
        assert_eq!(capped.to_string(), "incomplete (3/8 informed)");
    }
}
