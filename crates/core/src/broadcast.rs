use rand::RngExt;
use sparsegossip_conngraph::{components, Components};
use sparsegossip_grid::{Grid, Point, Topology};
use sparsegossip_walks::{BitSet, WalkEngine};

use crate::{ExchangeRule, Mobility, NullObserver, Observer, SimConfig, SimError, StepContext};

/// Outcome of a broadcast run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BroadcastOutcome {
    /// The broadcast time `T_B`: first step at which every agent knew
    /// the rumor, or `None` if the step cap was reached first.
    pub broadcast_time: Option<u64>,
    /// Number of informed agents when the run ended.
    pub informed: usize,
    /// Total number of agents.
    pub k: usize,
}

impl BroadcastOutcome {
    /// Whether every agent was informed within the cap.
    #[inline]
    #[must_use]
    pub fn completed(&self) -> bool {
        self.broadcast_time.is_some()
    }

    /// Fraction of agents informed when the run ended.
    #[must_use]
    pub fn informed_fraction(&self) -> f64 {
        self.informed as f64 / self.k as f64
    }
}

/// Single-rumor broadcast among mobile agents — the process of
/// Theorems 1 and 2.
///
/// Dynamics per step: (1) agents move according to the mobility rule;
/// (2) the visibility graph `G_t(r)` is rebuilt; (3) the rumor floods
/// every component containing an informed agent (the paper's
/// instantaneous in-component spreading). An initial exchange happens at
/// placement time (step 0), since `G_0(r)` already exists.
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use sparsegossip_core::{BroadcastSim, SimConfig};
///
/// let config = SimConfig::builder(48, 24).radius(1).build()?;
/// let mut rng = SmallRng::seed_from_u64(7);
/// let mut sim = BroadcastSim::new(&config, &mut rng)?;
/// let outcome = sim.run(&mut rng);
/// assert!(outcome.completed());
/// assert_eq!(outcome.informed, 24);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct BroadcastSim<T> {
    engine: WalkEngine<T>,
    radius: u32,
    mobility: Mobility,
    exchange_rule: ExchangeRule,
    max_steps: u64,
    informed: BitSet,
    informed_count: usize,
}

impl BroadcastSim<Grid> {
    /// Creates a broadcast simulation on the bounded grid described by
    /// `config`, with agents placed uniformly at random.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors ([`SimError::Grid`],
    /// [`SimError::Walk`]).
    pub fn new<R: RngExt>(config: &SimConfig, rng: &mut R) -> Result<Self, SimError> {
        let grid = Grid::new(config.side())?;
        Self::on_topology(
            grid,
            config.k(),
            config.radius(),
            config.source(),
            config.mobility(),
            config.max_steps(),
            rng,
        )
        .map(|mut sim| {
            sim.exchange_rule = config.exchange_rule();
            // Re-run the step-0 exchange under the configured rule; the
            // component rule applied at construction is a superset, so
            // only OneHop needs a fresh start.
            if config.exchange_rule() == ExchangeRule::OneHop {
                sim.informed.clear();
                sim.informed.insert(config.source());
                sim.informed_count = 1;
                sim.exchange_one_hop();
            }
            sim
        })
    }
}

impl<T: Topology> BroadcastSim<T> {
    /// Creates a broadcast simulation on an arbitrary topology with
    /// uniform random placement.
    ///
    /// # Errors
    ///
    /// * [`SimError::TooFewAgents`] if `k < 2`;
    /// * [`SimError::SourceOutOfRange`] if `source ≥ k`;
    /// * [`SimError::ZeroStepCap`] if `max_steps == 0`;
    /// * [`SimError::Walk`] if the engine rejects the placement.
    pub fn on_topology<R: RngExt>(
        topo: T,
        k: usize,
        radius: u32,
        source: usize,
        mobility: Mobility,
        max_steps: u64,
        rng: &mut R,
    ) -> Result<Self, SimError> {
        if k < 2 {
            return Err(SimError::TooFewAgents { k });
        }
        if source >= k {
            return Err(SimError::SourceOutOfRange { source, k });
        }
        if max_steps == 0 {
            return Err(SimError::ZeroStepCap);
        }
        let engine = WalkEngine::uniform(topo, k, rng)?;
        let mut informed = BitSet::new(k);
        informed.insert(source);
        let mut sim = Self {
            engine,
            radius,
            mobility,
            exchange_rule: ExchangeRule::Component,
            max_steps,
            informed,
            informed_count: 1,
        };
        // Step-0 exchange: the source's component at placement time.
        let comps = sim.current_components();
        sim.exchange(&comps);
        Ok(sim)
    }

    /// Creates a simulation from explicit starting positions (useful
    /// for worst-case placements in lower-bound experiments).
    ///
    /// # Errors
    ///
    /// As [`BroadcastSim::on_topology`], plus [`SimError::Walk`] if any
    /// position is outside the topology.
    pub fn from_positions(
        topo: T,
        positions: Vec<Point>,
        radius: u32,
        source: usize,
        mobility: Mobility,
        max_steps: u64,
    ) -> Result<Self, SimError> {
        let k = positions.len();
        if k < 2 {
            return Err(SimError::TooFewAgents { k });
        }
        if source >= k {
            return Err(SimError::SourceOutOfRange { source, k });
        }
        if max_steps == 0 {
            return Err(SimError::ZeroStepCap);
        }
        let engine = WalkEngine::from_positions(topo, positions)?;
        let mut informed = BitSet::new(k);
        informed.insert(source);
        let mut sim = Self {
            engine,
            radius,
            mobility,
            exchange_rule: ExchangeRule::Component,
            max_steps,
            informed,
            informed_count: 1,
        };
        let comps = sim.current_components();
        sim.exchange(&comps);
        Ok(sim)
    }

    /// The number of agents.
    #[inline]
    #[must_use]
    pub fn k(&self) -> usize {
        self.engine.len()
    }

    /// The transmission radius.
    #[inline]
    #[must_use]
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Steps taken so far.
    #[inline]
    #[must_use]
    pub fn time(&self) -> u64 {
        self.engine.time()
    }

    /// Current agent positions.
    #[inline]
    #[must_use]
    pub fn positions(&self) -> &[Point] {
        self.engine.positions()
    }

    /// The informed-agent set.
    #[inline]
    #[must_use]
    pub fn informed(&self) -> &BitSet {
        &self.informed
    }

    /// The number of informed agents.
    #[inline]
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.informed_count
    }

    /// Whether every agent is informed.
    #[inline]
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.informed_count == self.k()
    }

    /// The visibility-graph components at the current positions.
    #[must_use]
    pub fn current_components(&self) -> Components {
        components(
            self.engine.positions(),
            self.radius,
            self.engine.topology().side(),
        )
    }

    /// The exchange rule in force.
    #[inline]
    #[must_use]
    pub fn exchange_rule(&self) -> ExchangeRule {
        self.exchange_rule
    }

    /// Switches the exchange rule (used by the hop-count ablation).
    pub fn set_exchange_rule(&mut self, rule: ExchangeRule) {
        self.exchange_rule = rule;
    }

    /// Advances one step (move, rebuild `G_t(r)`, exchange), invoking
    /// the observer with the post-exchange snapshot. Returns the number
    /// of newly informed agents.
    pub fn step<R: RngExt, O: Observer>(&mut self, rng: &mut R, observer: &mut O) -> usize {
        match self.mobility {
            Mobility::All => self.engine.step_all(rng),
            Mobility::InformedOnly => {
                // Clone the informed mask so the borrow checker allows
                // stepping the engine; k bits is negligible.
                let mask = self.informed.clone();
                self.engine.step_masked(&mask, rng);
            }
        }
        let comps = self.current_components();
        let fresh = match self.exchange_rule {
            ExchangeRule::Component => self.exchange(&comps),
            ExchangeRule::OneHop => self.exchange_one_hop(),
        };
        observer.on_step(StepContext {
            time: self.engine.time(),
            side: self.engine.topology().side(),
            positions: self.engine.positions(),
            components: &comps,
            informed: &self.informed,
        });
        fresh
    }

    /// Runs to completion or the step cap; equivalent to
    /// [`run_with`](Self::run_with) with a [`NullObserver`].
    pub fn run<R: RngExt>(&mut self, rng: &mut R) -> BroadcastOutcome {
        self.run_with(rng, &mut NullObserver)
    }

    /// Runs to completion or the step cap with an observer.
    pub fn run_with<R: RngExt, O: Observer>(
        &mut self,
        rng: &mut R,
        observer: &mut O,
    ) -> BroadcastOutcome {
        if self.is_complete() {
            return self.outcome();
        }
        while self.engine.time() < self.max_steps {
            self.step(rng, observer);
            if self.is_complete() {
                break;
            }
        }
        self.outcome()
    }

    /// The outcome at the current state.
    #[must_use]
    pub fn outcome(&self) -> BroadcastOutcome {
        BroadcastOutcome {
            broadcast_time: self.is_complete().then(|| self.engine.time()),
            informed: self.informed_count,
            k: self.k(),
        }
    }

    /// One-hop exchange: every agent within `r` of a currently informed
    /// agent becomes informed; returns the number of newly informed.
    fn exchange_one_hop(&mut self) -> usize {
        use sparsegossip_conngraph::SpatialHash;
        let side = self.engine.topology().side();
        let hash = SpatialHash::build(self.engine.positions(), self.radius, side);
        let bps = hash.buckets_per_side();
        let snapshot = self.informed.clone();
        let mut fresh = 0;
        for i in snapshot.iter_ones() {
            let p = self.engine.position(i);
            let (bx, by) = hash.bucket_of(p);
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let nx = bx as i64 + dx;
                    let ny = by as i64 + dy;
                    if nx < 0 || ny < 0 || nx >= i64::from(bps) || ny >= i64::from(bps) {
                        continue;
                    }
                    for &j in hash.bucket_agents(nx as u32, ny as u32) {
                        let j = j as usize;
                        if !self.informed.contains(j)
                            && self.engine.position(j).manhattan(p) <= self.radius
                            && self.informed.insert(j)
                        {
                            fresh += 1;
                        }
                    }
                }
            }
        }
        self.informed_count += fresh;
        fresh
    }

    /// Floods every component containing an informed agent; returns the
    /// number of newly informed agents.
    fn exchange(&mut self, comps: &Components) -> usize {
        let mut fresh = 0;
        for c in 0..comps.count() {
            let members = comps.members(c);
            if members.len() == 1 {
                continue;
            }
            if members.iter().any(|&m| self.informed.contains(m as usize)) {
                for &m in members {
                    if self.informed.insert(m as usize) {
                        fresh += 1;
                    }
                }
            }
        }
        self.informed_count += fresh;
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn config(side: u32, k: usize, r: u32) -> SimConfig {
        SimConfig::builder(side, k).radius(r).build().unwrap()
    }

    #[test]
    fn completes_on_small_grid() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sim = BroadcastSim::new(&config(16, 8, 0), &mut rng).unwrap();
        let out = sim.run(&mut rng);
        assert!(out.completed(), "informed only {}", out.informed);
        assert_eq!(out.informed, 8);
        assert!((out.informed_fraction() - 1.0).abs() < 1e-12);
        assert!(sim.is_complete());
    }

    #[test]
    fn informed_set_is_monotone() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sim = BroadcastSim::new(&config(32, 16, 1), &mut rng).unwrap();
        let mut prev = sim.informed().clone();
        for _ in 0..500 {
            sim.step(&mut rng, &mut NullObserver);
            assert!(prev.is_subset(sim.informed()), "an agent forgot the rumor");
            prev = sim.informed().clone();
            if sim.is_complete() {
                break;
            }
        }
    }

    #[test]
    fn step_cap_yields_incomplete_outcome() {
        let mut rng = SmallRng::seed_from_u64(3);
        let cfg = SimConfig::builder(64, 4).max_steps(1).build().unwrap();
        let mut sim = BroadcastSim::new(&cfg, &mut rng).unwrap();
        let out = sim.run(&mut rng);
        // With k=4 on a 64-grid, one step almost surely does not finish.
        assert!(!out.completed());
        assert!(out.informed >= 1);
        assert!(out.informed_fraction() <= 1.0);
    }

    #[test]
    fn radius_as_large_as_grid_finishes_at_step_zero() {
        let mut rng = SmallRng::seed_from_u64(4);
        let cfg = SimConfig::builder(16, 8).radius(32).build().unwrap();
        let mut sim = BroadcastSim::new(&cfg, &mut rng).unwrap();
        assert!(
            sim.is_complete(),
            "radius ≥ diameter must flood at placement"
        );
        let out = sim.run(&mut rng);
        assert_eq!(out.broadcast_time, Some(0));
    }

    #[test]
    fn source_choice_is_respected() {
        let mut rng = SmallRng::seed_from_u64(5);
        let cfg = SimConfig::builder(32, 8)
            .source(5)
            .max_steps(1)
            .build()
            .unwrap();
        let sim = BroadcastSim::new(&cfg, &mut rng).unwrap();
        assert!(sim.informed().contains(5));
    }

    #[test]
    fn from_positions_lower_bound_layout() {
        // Source far left, receiver far right, contact-only: cannot
        // finish in a handful of steps (distance ≫ steps).
        let g = Grid::new(64).unwrap();
        let positions = vec![Point::new(0, 32), Point::new(63, 32)];
        let mut sim = BroadcastSim::from_positions(g, positions, 0, 0, Mobility::All, 20).unwrap();
        let mut rng = SmallRng::seed_from_u64(6);
        let out = sim.run(&mut rng);
        assert!(!out.completed(), "agents 63 apart cannot meet in 20 steps");
    }

    #[test]
    fn constructor_validation() {
        let g = Grid::new(8).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        assert!(matches!(
            BroadcastSim::on_topology(g, 1, 0, 0, Mobility::All, 10, &mut rng),
            Err(SimError::TooFewAgents { k: 1 })
        ));
        assert!(matches!(
            BroadcastSim::on_topology(g, 4, 0, 9, Mobility::All, 10, &mut rng),
            Err(SimError::SourceOutOfRange { source: 9, k: 4 })
        ));
        assert!(matches!(
            BroadcastSim::on_topology(g, 4, 0, 0, Mobility::All, 0, &mut rng),
            Err(SimError::ZeroStepCap)
        ));
    }

    #[test]
    fn larger_radius_is_never_slower_in_distribution() {
        // Corollary 1 direction: mean T_B at r=4 ≤ mean T_B at r=0 on
        // matched sizes (generous replication to damp noise).
        let reps = 12u64;
        let mean_tb = |r: u32, seed: u64| {
            let mut total = 0u64;
            for i in 0..reps {
                let mut rng = SmallRng::seed_from_u64(seed + i);
                let mut sim = BroadcastSim::new(&config(24, 12, r), &mut rng).unwrap();
                total += sim.run(&mut rng).broadcast_time.expect("must finish");
            }
            total as f64 / reps as f64
        };
        let slow = mean_tb(0, 100);
        let fast = mean_tb(4, 200);
        assert!(fast <= slow * 1.2, "r=4 mean {fast} ≫ r=0 mean {slow}");
    }
}
