use rand::RngExt;
use sparsegossip_grid::{Grid, Point, Topology};
use sparsegossip_walks::{lazy_step, BitSet, WalkEngine};

use crate::SimError;

/// Outcome of a predator–prey run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExtinctionOutcome {
    /// First step at which no prey survived, or `None` at the cap.
    pub extinction_time: Option<u64>,
    /// Surviving preys when the run ended.
    pub survivors: usize,
    /// Initial prey count.
    pub num_preys: usize,
}

impl ExtinctionOutcome {
    /// Whether all preys were caught within the cap.
    #[inline]
    #[must_use]
    pub fn completed(&self) -> bool {
        self.extinction_time.is_some()
    }
}

/// The random predator–prey system of §4: `k` predators perform
/// independent lazy walks; a prey is caught when a predator comes
/// within the catch radius. The paper's techniques give an
/// `O(n log²n / k)` high-probability bound on the extinction time for
/// `k = Ω(log n)` predators.
///
/// Preys may be mobile (walking like the predators) or static.
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use sparsegossip_core::PredatorPreySim;
/// use sparsegossip_grid::Grid;
///
/// let grid = Grid::new(16)?;
/// let mut rng = SmallRng::seed_from_u64(2);
/// let mut sim = PredatorPreySim::new(grid, 8, 4, 0, true, 1_000_000, &mut rng)?;
/// let out = sim.run(&mut rng);
/// assert!(out.completed());
/// assert_eq!(out.survivors, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct PredatorPreySim<T> {
    predators: WalkEngine<T>,
    prey_positions: Vec<Point>,
    prey_alive: BitSet,
    alive_count: usize,
    catch_radius: u32,
    preys_mobile: bool,
    max_steps: u64,
    num_preys: usize,
}

impl<T: Topology> PredatorPreySim<T> {
    /// Creates a system of `k` predators and `m` preys, both uniformly
    /// placed. Preys within `catch_radius` of a predator at placement
    /// are caught at step 0.
    ///
    /// # Errors
    ///
    /// * [`SimError::TooFewAgents`] if `k == 0` or `m == 0`;
    /// * [`SimError::ZeroStepCap`] if `max_steps == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: RngExt>(
        topo: T,
        k: usize,
        m: usize,
        catch_radius: u32,
        preys_mobile: bool,
        max_steps: u64,
        rng: &mut R,
    ) -> Result<Self, SimError> {
        if k == 0 {
            return Err(SimError::TooFewAgents { k });
        }
        if m == 0 {
            return Err(SimError::TooFewAgents { k: m });
        }
        if max_steps == 0 {
            return Err(SimError::ZeroStepCap);
        }
        let prey_positions = (0..m).map(|_| topo.random_point(rng)).collect();
        let predators = WalkEngine::uniform(topo, k, rng)?;
        let mut prey_alive = BitSet::new(m);
        prey_alive.set_all();
        let mut sim = Self {
            predators,
            prey_positions,
            prey_alive,
            alive_count: m,
            catch_radius,
            preys_mobile,
            max_steps,
            num_preys: m,
        };
        sim.catch_preys();
        Ok(sim)
    }

    /// The number of predators.
    #[inline]
    #[must_use]
    pub fn num_predators(&self) -> usize {
        self.predators.len()
    }

    /// The number of surviving preys.
    #[inline]
    #[must_use]
    pub fn survivors(&self) -> usize {
        self.alive_count
    }

    /// Steps taken so far.
    #[inline]
    #[must_use]
    pub fn time(&self) -> u64 {
        self.predators.time()
    }

    /// Whether every prey has been caught.
    #[inline]
    #[must_use]
    pub fn is_extinct(&self) -> bool {
        self.alive_count == 0
    }

    /// Advances one step: predators (and mobile preys) walk, then
    /// catches are resolved. Returns the number of preys caught.
    pub fn step<R: RngExt>(&mut self, rng: &mut R) -> usize {
        self.predators.step_all(rng);
        if self.preys_mobile {
            // Walk only the living preys; carcasses stay put.
            let topo = self.predators.topology();
            for i in self.prey_alive.clone().iter_ones() {
                self.prey_positions[i] = lazy_step(topo, self.prey_positions[i], rng);
            }
        }
        self.catch_preys()
    }

    /// Runs until extinction or the step cap.
    pub fn run<R: RngExt>(&mut self, rng: &mut R) -> ExtinctionOutcome {
        while !self.is_extinct() && self.predators.time() < self.max_steps {
            self.step(rng);
        }
        self.outcome()
    }

    /// The outcome at the current state.
    #[must_use]
    pub fn outcome(&self) -> ExtinctionOutcome {
        ExtinctionOutcome {
            extinction_time: self.is_extinct().then(|| self.predators.time()),
            survivors: self.alive_count,
            num_preys: self.num_preys,
        }
    }

    /// Kills every living prey within the catch radius of a predator;
    /// returns the kill count.
    fn catch_preys(&mut self) -> usize {
        use sparsegossip_conngraph::SpatialHash;
        let side = self.predators.topology().side();
        let hash = SpatialHash::build(self.predators.positions(), self.catch_radius, side);
        let bps = hash.buckets_per_side();
        let mut caught = 0;
        for i in self.prey_alive.clone().iter_ones() {
            let p = self.prey_positions[i];
            let (bx, by) = hash.bucket_of(p);
            let mut dead = false;
            'scan: for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let nx = bx as i64 + dx;
                    let ny = by as i64 + dy;
                    if nx < 0 || ny < 0 || nx >= i64::from(bps) || ny >= i64::from(bps) {
                        continue;
                    }
                    for &pred in hash.bucket_agents(nx as u32, ny as u32) {
                        if self.predators.position(pred as usize).manhattan(p) <= self.catch_radius
                        {
                            dead = true;
                            break 'scan;
                        }
                    }
                }
            }
            if dead {
                self.prey_alive.remove(i);
                self.alive_count -= 1;
                caught += 1;
            }
        }
        caught
    }
}

impl<T: Topology> PredatorPreySim<T> {
    /// Convenience constructor on a bounded grid.
    ///
    /// # Errors
    ///
    /// As [`PredatorPreySim::new`], plus [`SimError::Grid`] on a bad
    /// side.
    pub fn on_grid<R: RngExt>(
        side: u32,
        k: usize,
        m: usize,
        catch_radius: u32,
        preys_mobile: bool,
        max_steps: u64,
        rng: &mut R,
    ) -> Result<PredatorPreySim<Grid>, SimError> {
        let grid = Grid::new(side)?;
        PredatorPreySim::new(grid, k, m, catch_radius, preys_mobile, max_steps, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn extinction_on_small_grid() {
        let mut rng = SmallRng::seed_from_u64(41);
        let mut sim =
            PredatorPreySim::<Grid>::on_grid(12, 6, 4, 0, true, 2_000_000, &mut rng).unwrap();
        assert_eq!(sim.num_predators(), 6);
        let out = sim.run(&mut rng);
        assert!(out.completed());
        assert_eq!(out.survivors, 0);
        assert_eq!(out.num_preys, 4);
    }

    #[test]
    fn survivor_count_is_monotone_nonincreasing() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut sim =
            PredatorPreySim::<Grid>::on_grid(24, 4, 8, 1, false, 10_000, &mut rng).unwrap();
        let mut prev = sim.survivors();
        for _ in 0..200 {
            sim.step(&mut rng);
            assert!(sim.survivors() <= prev, "a prey resurrected");
            prev = sim.survivors();
            if sim.is_extinct() {
                break;
            }
        }
    }

    #[test]
    fn large_catch_radius_is_instant_extinction() {
        let mut rng = SmallRng::seed_from_u64(43);
        let sim = PredatorPreySim::<Grid>::on_grid(8, 2, 4, 16, true, 100, &mut rng).unwrap();
        assert!(
            sim.is_extinct(),
            "radius covering the grid must catch at placement"
        );
        assert_eq!(sim.outcome().extinction_time, Some(0));
    }

    #[test]
    fn static_preys_match_frog_style_dynamics() {
        let mut rng = SmallRng::seed_from_u64(44);
        let mut sim =
            PredatorPreySim::<Grid>::on_grid(10, 4, 3, 0, false, 1_000_000, &mut rng).unwrap();
        let out = sim.run(&mut rng);
        assert!(
            out.completed(),
            "static preys on a tiny grid must be caught"
        );
    }

    #[test]
    fn constructor_validation() {
        let mut rng = SmallRng::seed_from_u64(45);
        assert!(PredatorPreySim::<Grid>::on_grid(8, 0, 4, 0, true, 10, &mut rng).is_err());
        assert!(PredatorPreySim::<Grid>::on_grid(8, 4, 0, 0, true, 10, &mut rng).is_err());
        assert!(PredatorPreySim::<Grid>::on_grid(8, 4, 4, 0, true, 0, &mut rng).is_err());
    }

    #[test]
    fn more_predators_kill_faster_on_average() {
        let mean = |k: usize, seed: u64| {
            let reps = 8;
            let mut total = 0u64;
            for i in 0..reps {
                let mut rng = SmallRng::seed_from_u64(seed + i);
                let mut sim =
                    PredatorPreySim::<Grid>::on_grid(16, k, 4, 0, true, 5_000_000, &mut rng)
                        .unwrap();
                total += sim.run(&mut rng).extinction_time.unwrap();
            }
            total as f64 / 8.0
        };
        let few = mean(2, 777);
        let many = mean(16, 888);
        assert!(many < few, "k=16 mean {many} not below k=2 mean {few}");
    }
}
