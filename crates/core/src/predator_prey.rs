use core::fmt;
use core::ops::ControlFlow;

use rand::RngExt;
use sparsegossip_conngraph::{SpatialHash, SpatialScratch};
use sparsegossip_grid::{Grid, Point, Topology};
use sparsegossip_walks::{lazy_step, BitSet};

use crate::{ExchangeCtx, NullObserver, Observer, Process, SimError, Simulation};

/// Outcome of a predator–prey run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use]
pub struct ExtinctionOutcome {
    /// First step at which no prey survived, or `None` at the cap.
    pub extinction_time: Option<u64>,
    /// Surviving preys when the run ended.
    pub survivors: usize,
    /// Initial prey count.
    pub num_preys: usize,
}

impl ExtinctionOutcome {
    /// Whether all preys were caught within the cap.
    #[inline]
    #[must_use]
    pub fn completed(&self) -> bool {
        self.extinction_time.is_some()
    }
}

impl fmt::Display for ExtinctionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.extinction_time {
            Some(t) => write!(f, "extinct at {t} ({} preys)", self.num_preys),
            None => write!(
                f,
                "incomplete ({}/{} preys surviving)",
                self.survivors, self.num_preys
            ),
        }
    }
}

/// The random predator–prey system of §4 as a [`Process`]: the driven
/// agents are `k` predators performing independent lazy walks; a prey
/// is caught when a predator comes within the catch radius. The paper's
/// techniques give an `O(n log²n / k)` high-probability bound on the
/// extinction time for `k = Ω(log n)` predators.
///
/// Preys may be mobile (walking like the predators, via
/// [`Process::post_move`]) or static. Catch resolution does not use the
/// visibility components, so the process opts out of the rebuild
/// ([`Process::NEEDS_COMPONENTS`] is `false`).
#[derive(Clone, Debug)]
pub struct PredatorPrey {
    prey_positions: Vec<Point>,
    prey_alive: BitSet,
    alive_count: usize,
    catch_radius: u32,
    preys_mobile: bool,
    num_preys: usize,
    /// Reused buffers for the per-step predator hash, so catch
    /// resolution never allocates.
    spatial: SpatialScratch,
}

impl PredatorPrey {
    /// Creates `m` preys placed uniformly at random on `topo`.
    ///
    /// # Errors
    ///
    /// [`SimError::TooFewAgents`] if `m == 0`.
    pub fn uniform<T: Topology, R: RngExt>(
        topo: &T,
        m: usize,
        catch_radius: u32,
        preys_mobile: bool,
        rng: &mut R,
    ) -> Result<Self, SimError> {
        if m == 0 {
            return Err(SimError::TooFewAgents { k: m });
        }
        let prey_positions = (0..m).map(|_| topo.random_point(rng)).collect();
        Ok(Self::from_prey_positions(
            prey_positions,
            catch_radius,
            preys_mobile,
        ))
    }

    /// Creates the process from explicit prey positions.
    #[must_use]
    pub fn from_prey_positions(
        prey_positions: Vec<Point>,
        catch_radius: u32,
        preys_mobile: bool,
    ) -> Self {
        let m = prey_positions.len();
        let mut prey_alive = BitSet::new(m);
        prey_alive.set_all();
        Self {
            prey_positions,
            prey_alive,
            alive_count: m,
            catch_radius,
            preys_mobile,
            num_preys: m,
            spatial: SpatialScratch::new(),
        }
    }

    /// The number of surviving preys.
    #[inline]
    #[must_use]
    pub fn survivors(&self) -> usize {
        self.alive_count
    }

    /// Whether every prey has been caught.
    #[inline]
    #[must_use]
    pub fn is_extinct(&self) -> bool {
        self.alive_count == 0
    }

    /// Current prey positions (dead preys stay where they were caught).
    #[inline]
    #[must_use]
    pub fn prey_positions(&self) -> &[Point] {
        &self.prey_positions
    }

    /// Kills every living prey within the catch radius of a predator;
    /// returns the kill count. Allocation-free: the predator hash
    /// refills a persistent scratch and preys are scanned by index.
    fn catch_preys(&mut self, predators: &[Point], side: u32) -> usize {
        let hash = SpatialHash::build_into(&mut self.spatial, predators, self.catch_radius, side);
        let mut caught = 0;
        for i in 0..self.prey_positions.len() {
            if !self.prey_alive.contains(i) {
                continue;
            }
            let p = self.prey_positions[i];
            let dead = hash
                .candidates(p)
                .any(|pred| predators[pred as usize].manhattan(p) <= self.catch_radius);
            if dead {
                self.prey_alive.remove(i);
                self.alive_count -= 1;
                caught += 1;
            }
        }
        caught
    }
}

impl Process for PredatorPrey {
    type Outcome = ExtinctionOutcome;

    /// Catches are resolved against prey positions directly; no
    /// predator-to-predator visibility graph is needed.
    const NEEDS_COMPONENTS: bool = false;

    fn post_move<T: Topology, R: RngExt>(&mut self, topo: &T, rng: &mut R) {
        if self.preys_mobile {
            // Walk only the living preys; carcasses stay put. The index
            // scan visits living preys in the same increasing order as
            // the old snapshot-clone did, so RNG draws are unchanged —
            // just without the per-step allocation.
            for i in 0..self.prey_positions.len() {
                if self.prey_alive.contains(i) {
                    self.prey_positions[i] = lazy_step(topo, self.prey_positions[i], rng);
                }
            }
        }
    }

    fn exchange(&mut self, ctx: ExchangeCtx<'_>) -> ControlFlow<()> {
        self.catch_preys(ctx.positions, ctx.side);
        if self.is_extinct() {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }

    fn outcome(&self, time: u64) -> ExtinctionOutcome {
        ExtinctionOutcome {
            extinction_time: self.is_extinct().then_some(time),
            survivors: self.alive_count,
            num_preys: self.num_preys,
        }
    }
}

/// Pre-redesign predator–prey simulator; now a thin shim over
/// [`Simulation<PredatorPrey, T>`].
///
/// # Examples
///
/// ```
/// # #![allow(deprecated)]
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use sparsegossip_core::PredatorPreySim;
/// use sparsegossip_grid::Grid;
///
/// let grid = Grid::new(16)?;
/// let mut rng = SmallRng::seed_from_u64(2);
/// let mut sim = PredatorPreySim::new(grid, 8, 4, 0, true, 1_000_000, &mut rng)?;
/// let out = sim.run(&mut rng);
/// assert!(out.completed());
/// assert_eq!(out.survivors, 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct PredatorPreySim<T> {
    sim: Simulation<PredatorPrey, T>,
}

impl<T: Topology> PredatorPreySim<T> {
    /// Creates a system of `k` predators and `m` preys, both uniformly
    /// placed. Preys within `catch_radius` of a predator at placement
    /// are caught at step 0.
    ///
    /// # Errors
    ///
    /// * [`SimError::TooFewAgents`] if `k == 0` or `m == 0`;
    /// * [`SimError::ZeroStepCap`] if `max_steps == 0`.
    #[deprecated(
        since = "0.1.0",
        note = "use the unified `Simulation` driver (`Simulation::new`); \
                see the migration table in README.md"
    )]
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: RngExt>(
        topo: T,
        k: usize,
        m: usize,
        catch_radius: u32,
        preys_mobile: bool,
        max_steps: u64,
        rng: &mut R,
    ) -> Result<Self, SimError> {
        if k == 0 {
            return Err(SimError::TooFewAgents { k });
        }
        if m == 0 {
            return Err(SimError::TooFewAgents { k: m });
        }
        if max_steps == 0 {
            return Err(SimError::ZeroStepCap);
        }
        // Prey placement draws first, then the predator engine — the
        // pre-redesign draw order, preserved for seed equivalence.
        let process = PredatorPrey::uniform(&topo, m, catch_radius, preys_mobile, rng)?;
        Simulation::new(topo, k, catch_radius, max_steps, process, rng).map(|sim| Self { sim })
    }

    /// The underlying generic simulation.
    #[inline]
    #[must_use]
    pub fn as_simulation(&self) -> &Simulation<PredatorPrey, T> {
        &self.sim
    }

    /// The number of predators.
    #[inline]
    #[must_use]
    pub fn num_predators(&self) -> usize {
        self.sim.k()
    }

    /// The number of surviving preys.
    #[inline]
    #[must_use]
    pub fn survivors(&self) -> usize {
        self.sim.process().survivors()
    }

    /// Steps taken so far.
    #[inline]
    #[must_use]
    pub fn time(&self) -> u64 {
        self.sim.time()
    }

    /// Whether every prey has been caught.
    #[inline]
    #[must_use]
    pub fn is_extinct(&self) -> bool {
        self.sim.is_complete()
    }

    /// Advances one step: predators (and mobile preys) walk, then
    /// catches are resolved. Returns the number of preys caught.
    pub fn step<R: RngExt>(&mut self, rng: &mut R) -> usize {
        let before = self.sim.process().survivors();
        let _ = self.sim.step(rng, &mut NullObserver);
        before - self.sim.process().survivors()
    }

    /// Advances one step with an observer (positions and step index;
    /// predator–prey has no informed set or components).
    pub fn step_with<R: RngExt, O: Observer>(&mut self, rng: &mut R, observer: &mut O) -> usize {
        let before = self.sim.process().survivors();
        let _ = self.sim.step(rng, observer);
        before - self.sim.process().survivors()
    }

    /// Runs until extinction or the step cap.
    pub fn run<R: RngExt>(&mut self, rng: &mut R) -> ExtinctionOutcome {
        self.sim.run(rng)
    }

    /// The outcome at the current state.
    pub fn outcome(&self) -> ExtinctionOutcome {
        self.sim.outcome()
    }
}

impl<T: Topology> PredatorPreySim<T> {
    /// Convenience constructor on a bounded grid.
    ///
    /// # Errors
    ///
    /// As [`PredatorPreySim::new`], plus [`SimError::Grid`] on a bad
    /// side.
    #[deprecated(
        since = "0.1.0",
        note = "use the unified `Simulation` driver (`Simulation::new`); \
                see the migration table in README.md"
    )]
    #[allow(deprecated)]
    pub fn on_grid<R: RngExt>(
        side: u32,
        k: usize,
        m: usize,
        catch_radius: u32,
        preys_mobile: bool,
        max_steps: u64,
        rng: &mut R,
    ) -> Result<PredatorPreySim<Grid>, SimError> {
        let grid = Grid::new(side)?;
        PredatorPreySim::new(grid, k, m, catch_radius, preys_mobile, max_steps, rng)
    }
}

#[cfg(test)]
mod tests {
    // The legacy-shim tests exercise the deprecated constructors on
    // purpose: they are the compatibility surface under test.
    #![allow(deprecated)]

    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn extinction_on_small_grid() {
        let mut rng = SmallRng::seed_from_u64(41);
        let mut sim =
            PredatorPreySim::<Grid>::on_grid(12, 6, 4, 0, true, 2_000_000, &mut rng).unwrap();
        assert_eq!(sim.num_predators(), 6);
        let out = sim.run(&mut rng);
        assert!(out.completed());
        assert_eq!(out.survivors, 0);
        assert_eq!(out.num_preys, 4);
    }

    #[test]
    fn survivor_count_is_monotone_nonincreasing() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut sim =
            PredatorPreySim::<Grid>::on_grid(24, 4, 8, 1, false, 10_000, &mut rng).unwrap();
        let mut prev = sim.survivors();
        for _ in 0..200 {
            sim.step(&mut rng);
            assert!(sim.survivors() <= prev, "a prey resurrected");
            prev = sim.survivors();
            if sim.is_extinct() {
                break;
            }
        }
    }

    #[test]
    fn large_catch_radius_is_instant_extinction() {
        let mut rng = SmallRng::seed_from_u64(43);
        let sim = PredatorPreySim::<Grid>::on_grid(8, 2, 4, 16, true, 100, &mut rng).unwrap();
        assert!(
            sim.is_extinct(),
            "radius covering the grid must catch at placement"
        );
        assert_eq!(sim.outcome().extinction_time, Some(0));
    }

    #[test]
    fn static_preys_match_frog_style_dynamics() {
        let mut rng = SmallRng::seed_from_u64(44);
        let mut sim =
            PredatorPreySim::<Grid>::on_grid(10, 4, 3, 0, false, 1_000_000, &mut rng).unwrap();
        let out = sim.run(&mut rng);
        assert!(
            out.completed(),
            "static preys on a tiny grid must be caught"
        );
    }

    #[test]
    fn constructor_validation() {
        let mut rng = SmallRng::seed_from_u64(45);
        assert!(PredatorPreySim::<Grid>::on_grid(8, 0, 4, 0, true, 10, &mut rng).is_err());
        assert!(PredatorPreySim::<Grid>::on_grid(8, 4, 0, 0, true, 10, &mut rng).is_err());
        assert!(PredatorPreySim::<Grid>::on_grid(8, 4, 4, 0, true, 0, &mut rng).is_err());
    }

    #[test]
    fn more_predators_kill_faster_on_average() {
        let mean = |k: usize, seed: u64| {
            let reps = 8;
            let mut total = 0u64;
            for i in 0..reps {
                let mut rng = SmallRng::seed_from_u64(seed + i);
                let mut sim =
                    PredatorPreySim::<Grid>::on_grid(16, k, 4, 0, true, 5_000_000, &mut rng)
                        .unwrap();
                total += sim.run(&mut rng).extinction_time.unwrap();
            }
            total as f64 / 8.0
        };
        let few = mean(2, 777);
        let many = mean(16, 888);
        assert!(many < few, "k=16 mean {many} not below k=2 mean {few}");
    }

    #[test]
    fn outcome_display_reports_both_states() {
        let done = ExtinctionOutcome {
            extinction_time: Some(7),
            survivors: 0,
            num_preys: 4,
        };
        assert_eq!(done.to_string(), "extinct at 7 (4 preys)");
        let capped = ExtinctionOutcome {
            extinction_time: None,
            survivors: 2,
            num_preys: 4,
        };
        assert_eq!(capped.to_string(), "incomplete (2/4 preys surviving)");
    }
}
