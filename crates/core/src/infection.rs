use core::fmt;
use core::ops::ControlFlow;

use rand::RngExt;
use sparsegossip_grid::Grid;
use sparsegossip_walks::BitSet;

use crate::{Broadcast, ExchangeCtx, Observer, Process, SimConfig, SimError, Simulation};

/// Outcome of an infection run: broadcast at `r = 0` with per-agent
/// infection times, the quantity studied by Dimitriou, Nikoletseas and
/// Spirakis (general bound `O(t* log k)`) and mis-estimated by Wang et
/// al. as `Θ((n log n log k)/k)` — the bound the paper refutes.
#[derive(Clone, Debug, PartialEq)]
#[must_use]
pub struct InfectionOutcome {
    /// First step at which every agent was infected, if reached.
    pub infection_time: Option<u64>,
    /// Per-agent first-infection steps (`None` if never infected;
    /// entry `source` is `Some(0)`).
    pub per_agent: Vec<Option<u64>>,
    /// Mean infection time over infected agents.
    pub mean_time: Option<f64>,
}

impl InfectionOutcome {
    /// Whether every agent was infected within the cap.
    #[inline]
    #[must_use]
    pub fn completed(&self) -> bool {
        self.infection_time.is_some()
    }
}

impl fmt::Display for InfectionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let infected = self.per_agent.iter().filter(|t| t.is_some()).count();
        match (self.infection_time, self.mean_time) {
            (Some(t), Some(mean)) => write!(f, "T_I = {t} (mean {mean:.1})"),
            _ => write!(
                f,
                "incomplete ({infected}/{} infected)",
                self.per_agent.len()
            ),
        }
    }
}

/// The infection-time [`Process`]: broadcast with transmission on
/// contact (`r = 0` — agents meeting at a node), recording the step at
/// which each agent was first infected.
///
/// This is exactly [`Broadcast`] plus per-agent bookkeeping; the
/// wrapper exists because the infection literature reports *per-agent*
/// and *mean* infection times rather than just the completion time.
#[derive(Clone, Debug)]
pub struct Infection {
    inner: Broadcast,
    times: Vec<Option<u64>>,
}

impl Infection {
    /// Creates the process state for `k` agents with infected `source`.
    ///
    /// # Errors
    ///
    /// As [`Broadcast::new`].
    pub fn new(k: usize, source: usize) -> Result<Self, SimError> {
        Ok(Self {
            inner: Broadcast::new(k, source)?,
            times: vec![None; k],
        })
    }

    /// Creates the process state for `k` agents with the first
    /// `sources` agents infected.
    ///
    /// # Errors
    ///
    /// As [`Broadcast::with_sources`](crate::Broadcast::with_sources).
    pub fn with_sources(k: usize, sources: usize) -> Result<Self, SimError> {
        Ok(Self {
            inner: Broadcast::with_sources(k, sources)?,
            times: vec![None; k],
        })
    }

    /// Sets the mobility rule of the underlying broadcast (default
    /// [`Mobility`](crate::Mobility)`::All`; `InformedOnly` gives
    /// Frog-style infection where only carriers walk).
    #[must_use]
    pub fn mobility(mut self, mobility: crate::Mobility) -> Self {
        self.inner = self.inner.mobility(mobility);
        self
    }

    /// Per-agent first-infection steps recorded so far.
    #[inline]
    #[must_use]
    pub fn times(&self) -> &[Option<u64>] {
        &self.times
    }

    fn record(&mut self, time: u64) {
        for i in self.inner.informed_set().iter_ones() {
            if self.times[i].is_none() {
                self.times[i] = Some(time);
            }
        }
    }
}

impl Process for Infection {
    type Outcome = InfectionOutcome;

    fn agent_count(&self) -> Option<usize> {
        Some(self.times.len())
    }

    fn on_placement(&mut self, ctx: ExchangeCtx<'_>) -> ControlFlow<()> {
        let flow = self.inner.on_placement(ctx);
        self.record(ctx.time);
        flow
    }

    fn mobility_mask(&self) -> Option<&BitSet> {
        self.inner.mobility_mask()
    }

    /// The replacement arrival is uninfected and carries no recorded
    /// infection time.
    fn reset_agent(&mut self, i: usize) {
        self.inner.reset_agent(i);
        self.times[i] = None;
    }

    /// Infection is broadcast plus bookkeeping over the informed set,
    /// so the same frontier scope applies (the per-agent time recorder
    /// reads only the informed bits, never the components).
    fn components_scope(&self) -> crate::ComponentsScope<'_> {
        self.inner.components_scope()
    }

    // detlint: hot
    fn exchange(&mut self, ctx: ExchangeCtx<'_>) -> ControlFlow<()> {
        let flow = self.inner.exchange(ctx);
        self.record(ctx.time);
        flow
    }

    fn informed(&self) -> Option<&BitSet> {
        self.inner.informed()
    }

    fn outcome(&self, time: u64) -> InfectionOutcome {
        let infected: Vec<u64> = self.times.iter().flatten().copied().collect();
        let mean_time = if infected.is_empty() {
            None
        } else {
            Some(infected.iter().sum::<u64>() as f64 / infected.len() as f64)
        };
        InfectionOutcome {
            infection_time: self.inner.is_complete().then_some(time),
            per_agent: self.times.clone(),
            mean_time,
        }
    }
}

impl Simulation<Infection, Grid> {
    /// Builds an infection simulation per `config`. The transmission
    /// radius is forced to 0 — infection is contact-only by definition.
    ///
    /// # Errors
    ///
    /// As [`Simulation::broadcast`].
    pub fn infection<R: RngExt>(config: &SimConfig, rng: &mut R) -> Result<Self, SimError> {
        Self::infection_with_scratch(config, rng, crate::SimScratch::new())
    }

    /// As [`Simulation::infection`], reusing a recycled
    /// [`SimScratch`](crate::SimScratch) so repeated runs share one set
    /// of hot-path buffers.
    ///
    /// # Errors
    ///
    /// As [`Simulation::infection`].
    pub fn infection_with_scratch<R: RngExt>(
        config: &SimConfig,
        rng: &mut R,
        scratch: crate::SimScratch,
    ) -> Result<Self, SimError> {
        let grid = Grid::new(config.side())?;
        Simulation::new_with_scratch(
            grid,
            config.k(),
            0,
            config.max_steps(),
            Infection::new(config.k(), config.source())?.mobility(config.mobility()),
            rng,
            scratch,
        )
    }
}

/// The infection-time framing of the dynamic model: `k` walking agents,
/// one initially infected, transmission on contact (`r = 0`).
///
/// Constructed then run like every other simulator (the pre-redesign
/// static one-shot survives as the deprecated
/// [`run_once`](InfectionSim::run_once)).
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use sparsegossip_core::{InfectionSim, SimConfig};
///
/// let config = SimConfig::builder(24, 8).build()?;
/// let mut rng = SmallRng::seed_from_u64(4);
/// let mut sim = InfectionSim::new(&config, &mut rng)?;
/// let out = sim.run(&mut rng);
/// assert!(out.completed());
/// assert_eq!(out.per_agent.len(), 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct InfectionSim {
    sim: Simulation<Infection, Grid>,
}

impl InfectionSim {
    /// Creates an infection simulation per `config` (radius forced
    /// to 0), with agents placed uniformly at random.
    ///
    /// # Errors
    ///
    /// As [`BroadcastSim::new`](crate::BroadcastSim::new).
    pub fn new<R: RngExt>(config: &SimConfig, rng: &mut R) -> Result<Self, SimError> {
        Simulation::infection(config, rng).map(|sim| Self { sim })
    }

    /// The underlying generic simulation.
    #[inline]
    #[must_use]
    pub fn as_simulation(&self) -> &Simulation<Infection, Grid> {
        &self.sim
    }

    /// Steps taken so far.
    #[inline]
    #[must_use]
    pub fn time(&self) -> u64 {
        self.sim.time()
    }

    /// Whether every agent is infected.
    #[inline]
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.sim.is_complete()
    }

    /// Advances one step (move, contact detection, infection spread).
    pub fn step<R: RngExt, O: Observer>(&mut self, rng: &mut R, observer: &mut O) {
        let _ = self.sim.step(rng, observer);
    }

    /// Runs until every agent is infected or the step cap.
    pub fn run<R: RngExt>(&mut self, rng: &mut R) -> InfectionOutcome {
        self.sim.run(rng)
    }

    /// The outcome at the current state.
    pub fn outcome(&self) -> InfectionOutcome {
        self.sim.outcome()
    }

    /// Pre-redesign one-shot API: runs an infection process per
    /// `config` and reports per-agent infection times.
    ///
    /// # Errors
    ///
    /// As [`InfectionSim::new`].
    #[deprecated(
        since = "0.1.0",
        note = "use `InfectionSim::new` + `run` instead; see the migration table in README.md"
    )]
    pub fn run_once<R: RngExt>(
        config: &SimConfig,
        rng: &mut R,
    ) -> Result<InfectionOutcome, SimError> {
        let mut sim = Self::new(config, rng)?;
        Ok(sim.run(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn per_agent_times_are_recorded_and_bounded() {
        let cfg = SimConfig::builder(16, 6).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(51);
        let mut sim = InfectionSim::new(&cfg, &mut rng).unwrap();
        let out = sim.run(&mut rng);
        assert!(out.completed());
        let t_total = out.infection_time.unwrap();
        for (i, t) in out.per_agent.iter().enumerate() {
            let t = t.unwrap_or_else(|| panic!("agent {i} never infected"));
            assert!(t <= t_total);
        }
        assert_eq!(out.per_agent[cfg.source()], Some(0));
        assert!(out.mean_time.unwrap() <= t_total as f64);
    }

    #[test]
    fn radius_in_config_is_ignored() {
        // Infection is contact-only by definition; a huge configured
        // radius must not make it instantaneous.
        let cfg = SimConfig::builder(32, 4)
            .radius(64)
            .max_steps(3)
            .build()
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(52);
        let mut sim = InfectionSim::new(&cfg, &mut rng).unwrap();
        let out = sim.run(&mut rng);
        assert!(!out.completed(), "r must be forced to 0");
    }

    #[test]
    fn mean_is_none_only_if_nobody_infected() {
        // The source is always infected at step 0, so mean is Some.
        let cfg = SimConfig::builder(32, 4).max_steps(1).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(53);
        let mut sim = InfectionSim::new(&cfg, &mut rng).unwrap();
        let out = sim.run(&mut rng);
        assert!(out.mean_time.is_some());
    }

    #[test]
    fn informed_only_mobility_freezes_uninfected_agents() {
        use sparsegossip_grid::Point;
        let cfg = SimConfig::builder(32, 10)
            .mobility(crate::Mobility::InformedOnly)
            .max_steps(40)
            .build()
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(55);
        let mut sim = Simulation::infection(&cfg, &mut rng).unwrap();
        let initial: Vec<Point> = sim.positions().to_vec();
        for _ in 0..40 {
            let _ = sim.step(&mut rng, &mut crate::NullObserver);
        }
        for (i, start) in initial.iter().enumerate() {
            if sim.process().times()[i].is_none() {
                assert_eq!(sim.positions()[i], *start, "uninfected agent {i} moved");
            }
        }
    }

    #[test]
    fn deprecated_one_shot_matches_constructed_run() {
        let cfg = SimConfig::builder(16, 6).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(54);
        #[allow(deprecated)]
        let once = InfectionSim::run_once(&cfg, &mut rng).unwrap();
        let mut rng = SmallRng::seed_from_u64(54);
        let mut sim = InfectionSim::new(&cfg, &mut rng).unwrap();
        assert_eq!(once, sim.run(&mut rng));
    }

    #[test]
    fn outcome_display_reports_both_states() {
        let done = InfectionOutcome {
            infection_time: Some(10),
            per_agent: vec![Some(0), Some(10)],
            mean_time: Some(5.0),
        };
        assert_eq!(done.to_string(), "T_I = 10 (mean 5.0)");
        let capped = InfectionOutcome {
            infection_time: None,
            per_agent: vec![Some(0), None],
            mean_time: Some(0.0),
        };
        assert_eq!(capped.to_string(), "incomplete (1/2 infected)");
    }
}
