use rand::RngExt;
use sparsegossip_grid::Grid;

use crate::{BroadcastSim, InfectionTimes, SimConfig, SimError};

/// Outcome of an infection run: broadcast at `r = 0` with per-agent
/// infection times, the quantity studied by Dimitriou, Nikoletseas and
/// Spirakis (general bound `O(t* log k)`) and mis-estimated by Wang et
/// al. as `Θ((n log n log k)/k)` — the bound the paper refutes.
#[derive(Clone, Debug, PartialEq)]
pub struct InfectionOutcome {
    /// First step at which every agent was infected, if reached.
    pub infection_time: Option<u64>,
    /// Per-agent first-infection steps (`None` if never infected;
    /// entry `source` is `Some(0)`).
    pub per_agent: Vec<Option<u64>>,
    /// Mean infection time over infected agents.
    pub mean_time: Option<f64>,
}

impl InfectionOutcome {
    /// Whether every agent was infected within the cap.
    #[inline]
    #[must_use]
    pub fn completed(&self) -> bool {
        self.infection_time.is_some()
    }
}

/// The infection-time framing of the dynamic model: `k` walking agents,
/// one initially infected, transmission on contact (`r = 0` — agents
/// meeting at a node).
///
/// This is exactly [`BroadcastSim`] with radius zero plus the
/// [`InfectionTimes`] observer; the wrapper exists because the
/// infection literature reports *per-agent* and *mean* infection times
/// rather than just the completion time.
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use sparsegossip_core::{InfectionSim, SimConfig};
///
/// let config = SimConfig::builder(24, 8).build()?;
/// let mut rng = SmallRng::seed_from_u64(4);
/// let out = InfectionSim::run(&config, &mut rng)?;
/// assert!(out.completed());
/// assert_eq!(out.per_agent.len(), 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct InfectionSim;

impl InfectionSim {
    /// Runs an infection process per `config` (radius forced to 0) and
    /// reports per-agent infection times.
    ///
    /// # Errors
    ///
    /// As [`BroadcastSim::new`].
    pub fn run<R: RngExt>(config: &SimConfig, rng: &mut R) -> Result<InfectionOutcome, SimError> {
        let grid = Grid::new(config.side())?;
        let mut sim = BroadcastSim::on_topology(
            grid,
            config.k(),
            0,
            config.source(),
            config.mobility(),
            config.max_steps(),
            rng,
        )?;
        let mut times = InfectionTimes::new(config.k());
        // Record step-0 infections (source plus its co-located cluster).
        {
            let comps = sim.current_components();
            let ctx = crate::StepContext {
                time: 0,
                side: config.side(),
                positions: sim.positions(),
                components: &comps,
                informed: sim.informed(),
            };
            use crate::Observer;
            times.on_step(ctx);
        }
        let outcome = sim.run_with(rng, &mut times);
        Ok(InfectionOutcome {
            infection_time: outcome.broadcast_time,
            mean_time: times.mean(),
            per_agent: times.times().to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn per_agent_times_are_recorded_and_bounded() {
        let cfg = SimConfig::builder(16, 6).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(51);
        let out = InfectionSim::run(&cfg, &mut rng).unwrap();
        assert!(out.completed());
        let t_total = out.infection_time.unwrap();
        for (i, t) in out.per_agent.iter().enumerate() {
            let t = t.unwrap_or_else(|| panic!("agent {i} never infected"));
            assert!(t <= t_total);
        }
        assert_eq!(out.per_agent[cfg.source()], Some(0));
        assert!(out.mean_time.unwrap() <= t_total as f64);
    }

    #[test]
    fn radius_in_config_is_ignored() {
        // Infection is contact-only by definition; a huge configured
        // radius must not make it instantaneous.
        let cfg = SimConfig::builder(32, 4)
            .radius(64)
            .max_steps(3)
            .build()
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(52);
        let out = InfectionSim::run(&cfg, &mut rng).unwrap();
        assert!(!out.completed(), "r must be forced to 0");
    }

    #[test]
    fn mean_is_none_only_if_nobody_infected() {
        // The source is always infected at step 0, so mean is Some.
        let cfg = SimConfig::builder(32, 4).max_steps(1).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(53);
        let out = InfectionSim::run(&cfg, &mut rng).unwrap();
        assert!(out.mean_time.is_some());
    }
}
