use rand::RngExt;
use sparsegossip_grid::Grid;

use crate::{Broadcast, BroadcastSim, Mobility, SimConfig, SimError};

/// The Frog model of §4: only informed agents walk; uninformed agents
/// sit at their initial positions until an informed agent comes within
/// the transmission radius, at which point they activate.
///
/// The paper shows the same `Θ̃(n/√k)` bounds hold here (with Lemma 3
/// replaced by Lemma 1 in the upper-bound argument).
///
/// The Frog model is [`Broadcast`] with [`Mobility::InformedOnly`]:
/// `Broadcast::new(k, source)?.mobility(Mobility::InformedOnly)` run by
/// [`Simulation`](crate::Simulation), or
/// [`Simulation::frog`](crate::Simulation::frog) on a grid. `FrogSim` is
/// the pre-redesign constructor kept as a shim.
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use sparsegossip_core::{SimConfig, Simulation};
///
/// let config = SimConfig::builder(24, 12).radius(0).build()?;
/// let mut rng = SmallRng::seed_from_u64(5);
/// let mut sim = Simulation::frog(&config, &mut rng)?;
/// let outcome = sim.run(&mut rng);
/// assert!(outcome.completed());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct FrogSim;

impl FrogSim {
    /// Creates a Frog-model broadcast simulation: the `config`'s
    /// mobility rule is overridden to [`Mobility::InformedOnly`].
    ///
    /// # Errors
    ///
    /// As [`BroadcastSim::new`].
    #[deprecated(
        since = "0.1.0",
        note = "use the unified `Simulation` driver (`Simulation::frog`); \
                see the migration table in README.md"
    )]
    #[allow(deprecated, clippy::new_ret_no_self)]
    pub fn new<R: RngExt>(config: &SimConfig, rng: &mut R) -> Result<BroadcastSim<Grid>, SimError> {
        let grid = Grid::new(config.side())?;
        BroadcastSim::on_topology(
            grid,
            config.k(),
            config.radius(),
            config.source(),
            Mobility::InformedOnly,
            config.max_steps(),
            rng,
        )
    }

    /// The Frog-model [`Process`](crate::Process) for `k` agents — a
    /// [`Broadcast`] restricted to informed-only mobility.
    ///
    /// # Errors
    ///
    /// As [`Broadcast::new`].
    pub fn process(k: usize, source: usize) -> Result<Broadcast, SimError> {
        Broadcast::new(k, source).map(|b| b.mobility(Mobility::InformedOnly))
    }
}

#[cfg(test)]
mod tests {
    // The legacy-shim tests exercise the deprecated constructors on
    // purpose: they are the compatibility surface under test.
    #![allow(deprecated)]

    use super::*;
    use crate::{NullObserver, Simulation};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use sparsegossip_grid::Point;

    #[test]
    fn frog_completes_on_small_grid() {
        let cfg = SimConfig::builder(12, 8).radius(0).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(31);
        let mut sim = FrogSim::new(&cfg, &mut rng).unwrap();
        let out = sim.run(&mut rng);
        assert!(out.completed(), "informed only {}", out.informed);
    }

    #[test]
    fn frog_constructor_matches_generic_driver() {
        let cfg = SimConfig::builder(16, 8).radius(0).build().unwrap();
        let mut rng_a = SmallRng::seed_from_u64(35);
        let mut rng_b = SmallRng::seed_from_u64(35);
        let mut shim = FrogSim::new(&cfg, &mut rng_a).unwrap();
        let mut generic = Simulation::frog(&cfg, &mut rng_b).unwrap();
        assert_eq!(shim.run(&mut rng_a), generic.run(&mut rng_b));
    }

    #[test]
    fn uninformed_agents_do_not_move() {
        let cfg = SimConfig::builder(32, 10)
            .radius(0)
            .max_steps(50)
            .build()
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(32);
        let mut sim = FrogSim::new(&cfg, &mut rng).unwrap();
        let initial: Vec<Point> = sim.positions().to_vec();
        let informed_at_start = sim.informed().clone();
        for _ in 0..20 {
            sim.step(&mut rng, &mut NullObserver);
        }
        for (i, start) in initial.iter().enumerate() {
            if !sim.informed().contains(i) {
                assert_eq!(sim.positions()[i], *start, "dormant frog {i} moved");
            }
            // Agents informed at start may have moved; don't constrain.
            let _ = &informed_at_start;
        }
    }

    #[test]
    fn frog_is_slower_than_free_mobility_on_average() {
        // With fewer walkers active, meetings are rarer; the Frog model
        // should not beat the fully mobile model by a large margin. We
        // check only the direction on averages (noise-tolerant).
        let reps = 10;
        let mean = |frog: bool| {
            let mut total = 0u64;
            for i in 0..reps {
                let cfg = SimConfig::builder(16, 8).radius(0).build().unwrap();
                let mut rng = SmallRng::seed_from_u64(5000 + i);
                let mut sim = if frog {
                    FrogSim::new(&cfg, &mut rng).unwrap()
                } else {
                    crate::BroadcastSim::new(&cfg, &mut rng).unwrap()
                };
                total += sim.run(&mut rng).broadcast_time.unwrap();
            }
            total as f64 / reps as f64
        };
        let frog = mean(true);
        let free = mean(false);
        assert!(
            frog >= free * 0.8,
            "frog mean {frog} suspiciously below free {free}"
        );
    }
}
