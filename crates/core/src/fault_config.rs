//! Scalar fault/recovery axes for scenario specs.
//!
//! [`FaultConfig`] is the spec-level face of the protocol crate's
//! [`FaultPlan`]/[`RecoveryConfig`]: plain `Copy` scalars (so
//! [`ScenarioSpec`](crate::ScenarioSpec) stays `Copy`) that validate
//! with the same rules the protocol constructors enforce and lower into
//! the real plan at run time. A default config is *trivial*: it builds
//! [`FaultPlan::NONE`] + [`RecoveryConfig::OFF`], which the runtime
//! guarantees is event-log-hash-identical to the fault-free twin.

use sparsegossip_protocol::{FaultPlan, PartitionSchedule, PartitionWindow, RecoveryConfig};

use crate::SimError;

/// Fault-injection and recovery axes of a protocol-twin scenario.
///
/// The partition axis is a single `[partition_start,
/// partition_start + partition_len)` window — the sweepable shape; the
/// protocol layer accepts arbitrary window lists for programmatic use.
///
/// # Examples
///
/// ```
/// use sparsegossip_core::FaultConfig;
///
/// let faults = FaultConfig {
///     crash_prob: 0.01,
///     retransmit: true,
///     anti_entropy_interval: 4,
///     ..FaultConfig::DEFAULT
/// };
/// faults.validate()?;
/// assert!(!faults.is_trivial());
/// # Ok::<(), sparsegossip_core::SimError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Per-node, per-tick crash probability (state loss; the source is
    /// exempt). Default 0: no crashes.
    pub crash_prob: f64,
    /// Ticks a crashed node stays down before restarting (≥ 1).
    pub restart_delay: u64,
    /// First tick of the partition window (inclusive).
    pub partition_start: u64,
    /// Length of the partition window in ticks. Default 0: no
    /// partition.
    pub partition_len: u64,
    /// Whether unacked offers are retransmitted with exponential
    /// backoff.
    pub retransmit: bool,
    /// Ticks between anti-entropy digest rounds. Default 0: no
    /// anti-entropy.
    pub anti_entropy_interval: u64,
}

impl FaultConfig {
    /// The trivial config: no faults, no recovery — the twin behaves
    /// exactly as before the fault layer existed.
    pub const DEFAULT: Self = Self {
        crash_prob: 0.0,
        restart_delay: 1,
        partition_start: 0,
        partition_len: 0,
        retransmit: false,
        anti_entropy_interval: 0,
    };

    /// Whether every axis holds its default: nothing injected, nothing
    /// recovered, event log byte-identical to the fault-free twin.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        *self == Self::DEFAULT
    }

    /// Checks every axis against the protocol constructors' rules.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFaultSetting`] naming the offending key.
    pub fn validate(&self) -> Result<(), SimError> {
        if !(self.crash_prob.is_finite() && (0.0..=1.0).contains(&self.crash_prob)) {
            return Err(SimError::InvalidFaultSetting {
                key: "crash_prob",
                expected: "finite number in [0, 1]",
            });
        }
        if self.restart_delay == 0 {
            return Err(SimError::InvalidFaultSetting {
                key: "restart_delay",
                expected: "integer >= 1",
            });
        }
        Ok(())
    }

    /// Lowers the injection axes into a protocol [`FaultPlan`].
    ///
    /// Call [`validate`](Self::validate) first (spec building always
    /// does); the lowering itself cannot fail on a validated config.
    #[must_use]
    pub fn to_plan(&self) -> FaultPlan {
        let partitions = if self.partition_len == 0 {
            PartitionSchedule::EMPTY
        } else {
            PartitionSchedule::new(vec![PartitionWindow {
                start: self.partition_start,
                end: self.partition_start.saturating_add(self.partition_len),
            }])
            .expect("nonzero-length window is valid") // detlint: allow(panic, len > 0 makes start < end by construction)
        };
        FaultPlan::new(self.crash_prob, self.restart_delay, partitions)
            .expect("validated fault config") // detlint: allow(panic, validate() mirrors FaultPlan::new's rules)
    }

    /// Lowers the recovery axes into a protocol [`RecoveryConfig`].
    #[must_use]
    pub fn to_recovery(&self) -> RecoveryConfig {
        RecoveryConfig::new(self.retransmit, self.anti_entropy_interval)
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_trivial_and_lowers_to_none() {
        let f = FaultConfig::default();
        assert!(f.is_trivial());
        f.validate().unwrap();
        assert!(f.to_plan().is_none());
        assert!(f.to_recovery().is_off());
    }

    #[test]
    fn validation_pins_the_constructor_rules() {
        let f = FaultConfig {
            crash_prob: 1.5,
            ..FaultConfig::DEFAULT
        };
        assert_eq!(
            f.validate().unwrap_err(),
            SimError::InvalidFaultSetting {
                key: "crash_prob",
                expected: "finite number in [0, 1]",
            }
        );
        let f = FaultConfig {
            crash_prob: f64::NAN,
            ..FaultConfig::DEFAULT
        };
        assert!(f.validate().is_err());
        let f = FaultConfig {
            restart_delay: 0,
            ..FaultConfig::DEFAULT
        };
        assert_eq!(
            f.validate().unwrap_err(),
            SimError::InvalidFaultSetting {
                key: "restart_delay",
                expected: "integer >= 1",
            }
        );
    }

    #[test]
    fn lowering_builds_the_declared_window() {
        let f = FaultConfig {
            crash_prob: 0.25,
            restart_delay: 3,
            partition_start: 10,
            partition_len: 5,
            ..FaultConfig::DEFAULT
        };
        f.validate().unwrap();
        let plan = f.to_plan();
        assert_eq!(plan.crash_prob(), 0.25);
        assert_eq!(plan.restart_delay(), 3);
        let windows = plan.partitions().windows();
        assert_eq!(windows.len(), 1);
        assert_eq!((windows[0].start, windows[0].end), (10, 15));
        assert!(!f.is_trivial());
    }

    #[test]
    fn recovery_axes_lower_independently() {
        let f = FaultConfig {
            retransmit: true,
            anti_entropy_interval: 8,
            ..FaultConfig::DEFAULT
        };
        let rec = f.to_recovery();
        assert!(rec.retransmit());
        assert_eq!(rec.anti_entropy_interval(), 8);
        assert!(!rec.is_off());
        assert!(!f.is_trivial());
    }
}
