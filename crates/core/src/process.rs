//! The unified process API: every dissemination dynamic of the paper —
//! broadcast, gossip, the Frog model, infection, coverage,
//! predator–prey — is one [`Process`] run by one generic [`Simulation`]
//! driver.
//!
//! The shared dynamic (paper §2): agents move one lazy step, the
//! visibility graph `G_t(r)` is rebuilt, and state is exchanged across
//! its components. A [`Process`] supplies only the parts that differ —
//! which agents move, what state is exchanged, and when the run is
//! over — while [`Simulation`] owns the per-step pipeline
//! (mobility → [`WalkEngine::step_all`] → [`components`] → exchange →
//! [`Observer`]). Every process therefore gets observers, explicit
//! stepping, arbitrary [`Topology`] support and deterministic seeding
//! for free.
//!
//! # Examples
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! use sparsegossip_core::{Broadcast, SimConfig, Simulation};
//!
//! let config = SimConfig::builder(32, 16).radius(1).build()?;
//! let mut rng = SmallRng::seed_from_u64(7);
//! let mut sim = Simulation::broadcast(&config, &mut rng)?;
//! let outcome = sim.run(&mut rng);
//! assert!(outcome.completed());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use core::ops::ControlFlow;

use rand::RngExt;
use sparsegossip_conngraph::{
    components, components_brute_by, components_from_seeds_on_by, components_into_by, Components,
    ComponentsScratch, SeededScratch, SpatialHash,
};
use sparsegossip_grid::{BarrierGrid, Point, Topology};
use sparsegossip_walks::{BitSet, WalkEngine};

use crate::{Observer, RumorSets, SimError, StepContext, WorldConfig, WorldContact};

/// Reusable hot-path buffers for a [`Simulation`]: the spatial hash,
/// union–find and component arrays behind the per-step visibility
/// rebuild.
///
/// Every simulation owns one (construction creates it implicitly), so
/// after the first few steps warm the buffers a steady-state step
/// performs **zero heap allocations**. To amortize the warm-up across
/// many runs — one scratch per worker thread for a whole seed batch —
/// recycle it explicitly:
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use sparsegossip_core::{SimConfig, SimScratch, Simulation};
///
/// let config = SimConfig::builder(24, 12).radius(1).build()?;
/// let mut scratch = SimScratch::new();
/// for seed in 0..4u64 {
///     let mut rng = SmallRng::seed_from_u64(seed);
///     let mut sim = Simulation::broadcast_with_scratch(&config, &mut rng, scratch)?;
///     let outcome = sim.run(&mut rng);
///     assert!(outcome.completed());
///     scratch = sim.into_scratch();
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// Scratch contents never influence results: a recycled scratch is
/// draw-for-draw identical to a fresh one (the `tests/scratch_reuse.rs`
/// regression suite and the conngraph property tests pin this).
#[derive(Clone, Debug, Default)]
pub struct SimScratch {
    /// Full-partition labelling buffers (spatial hash, union–find,
    /// grouped components).
    comps: ComponentsScratch,
    /// Seed-restricted labelling buffers (the frontier-sparse path).
    /// Deliberately separate from `comps` (whose internals are private
    /// to `conngraph`): the full and frontier paths warm disjoint
    /// buffers, which the scratch-reuse allocation tests rely on.
    seeded: SeededScratch,
    /// The incrementally maintained spatial hash of the frontier-sparse
    /// path, relocated bucket by bucket from the engine's move log.
    hash: SpatialHash,
    /// Per-step move log filled by the tracking walk steps.
    moves: Vec<(u32, Point, Point)>,
    /// Whether `hash` currently mirrors the engine's positions. Cleared
    /// whenever positions change without a move log (full-path steps,
    /// re-placement, scratch recycling into a new simulation).
    hash_live: bool,
}

impl SimScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// How much of the visibility partition a [`Process::exchange`]
/// actually consumes — the declaration that lets [`Simulation::step`]
/// pick a work-proportional labelling strategy.
///
/// Declaring anything but `Full` is a promise: the exchange (and
/// [`on_placement`](Process::on_placement)) outcome must depend only on
/// the components of `G_t(r)` that contain a set bit of the `Seeded`
/// seed set — or on no components at all for `None`. For
/// broadcast-style processes the `Seeded` promise holds by
/// construction — a component without an informed agent cannot change
/// the informed set — so [`Broadcast`](crate::Broadcast) and
/// [`Infection`](crate::Infection) (and therefore the Frog
/// configuration) declare `Seeded(informed)` under the component
/// exchange rule and `None` under the one-hop ablation rule (whose
/// exchange scans the positions directly); [`Gossip`](crate::Gossip)
/// (every rumor set matters), [`Coverage`](crate::Coverage) and
/// [`PredatorPrey`](crate::PredatorPrey) keep `Full`.
///
/// The scope is consulted only when the observer does not demand the
/// full partition ([`Observer::wants_full_components`]); an observer
/// that reads [`StepContext::components`](crate::StepContext) always
/// sees the complete labelling.
#[derive(Clone, Copy, Debug)]
pub enum ComponentsScope<'a> {
    /// The exchange consumes the entire partition.
    Full,
    /// The exchange only reads components containing a set bit of the
    /// given seed set (typically the informed agents).
    Seeded(&'a BitSet),
    /// The exchange reads no components at all in its current
    /// configuration (e.g. the one-hop rule); the driver may skip
    /// labelling entirely and hand out [`Components::EMPTY`].
    None,
}

/// The per-step snapshot handed to [`Process::exchange`].
///
/// Unlike [`StepContext`] (the observer view, which includes the
/// process's own informed/rumor state), this carries only the driver's
/// state: the step index, the domain, the post-move positions, and the
/// visibility components — everything the process does *not* own.
#[derive(Clone, Copy, Debug)]
pub struct ExchangeCtx<'a> {
    /// The step that just completed (0 at placement time).
    pub time: u64,
    /// The domain side, for node indexing.
    pub side: u32,
    /// The visibility radius `r` the components were built with.
    pub radius: u32,
    /// Agent positions after the move.
    pub positions: &'a [Point],
    /// Connected components of `G_t(r)` at these positions. Empty when
    /// the process opts out via [`Process::NEEDS_COMPONENTS`] or
    /// declares [`ComponentsScope::None`]; restricted to the
    /// seed-containing components under an active
    /// [`ComponentsScope::Seeded`] scope.
    pub components: &'a Components,
}

/// One dissemination dynamic, pluggable into [`Simulation`].
///
/// Implementations hold the process-specific state (informed set, rumor
/// sets, surviving preys, …) and answer four questions: who moves
/// ([`mobility_mask`](Process::mobility_mask)), what happens after the
/// move but before the exchange ([`post_move`](Process::post_move)),
/// how state spreads ([`exchange`](Process::exchange)), and what the
/// result is ([`outcome`](Process::outcome)).
///
/// # Examples
///
/// A complete custom process: "first contact" — the run ends the first
/// time any two agents can see each other (share a non-singleton
/// component). Only `exchange` and `outcome` are mandatory; mobility,
/// placement and observer wiring come from the driver:
///
/// ```
/// use core::ops::ControlFlow;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use sparsegossip_core::{ExchangeCtx, Process, Simulation};
/// use sparsegossip_grid::Grid;
///
/// struct FirstContact {
///     met: bool,
/// }
///
/// impl Process for FirstContact {
///     /// The step at which the first meeting happened, if any.
///     type Outcome = Option<u64>;
///
///     fn exchange(&mut self, ctx: ExchangeCtx<'_>) -> ControlFlow<()> {
///         // `ctx` carries the post-move positions and the components
///         // of G_t(r); a non-singleton component is a meeting.
///         self.met = ctx.components.max_size() >= 2;
///         if self.met {
///             ControlFlow::Break(())
///         } else {
///             ControlFlow::Continue(())
///         }
///     }
///
///     fn outcome(&self, time: u64) -> Option<u64> {
///         self.met.then_some(time)
///     }
/// }
///
/// let grid = Grid::new(16)?;
/// let mut rng = SmallRng::seed_from_u64(3);
/// let process = FirstContact { met: false };
/// let mut sim = Simulation::new(grid, 4, 1, 1_000_000, process, &mut rng)?;
/// let meeting_time = sim.run(&mut rng);
/// assert!(meeting_time.is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub trait Process {
    /// The result type of a completed (or capped) run.
    type Outcome;

    /// Whether the driver must rebuild the visibility components each
    /// step. Processes that resolve interactions themselves (e.g.
    /// predator–prey catches) opt out and receive empty components.
    const NEEDS_COMPONENTS: bool = true;

    /// The number of walking agents this process was sized for, if it
    /// has a fixed size; [`Simulation::new`] verifies it against the
    /// engine. `None` disables the check.
    fn agent_count(&self) -> Option<usize> {
        None
    }

    /// Called once at placement time (step 0) with the initial
    /// components; returns [`ControlFlow::Break`] if the run is already
    /// complete. Defaults to a plain [`exchange`](Process::exchange) —
    /// `G_0(r)` already exists, so the paper's step-0 exchange applies.
    fn on_placement(&mut self, ctx: ExchangeCtx<'_>) -> ControlFlow<()> {
        self.exchange(ctx)
    }

    /// Which agents walk this step: `None` means all of them (the
    /// paper's main model), `Some(mask)` restricts movement to the set
    /// bits (the Frog model).
    fn mobility_mask(&self) -> Option<&BitSet> {
        None
    }

    /// How much of the visibility partition
    /// [`exchange`](Process::exchange) consumes (see
    /// [`ComponentsScope`]). Defaults to [`ComponentsScope::Full`] —
    /// always correct. Processes whose exchange provably ignores
    /// components without a seed declare
    /// [`Seeded`](ComponentsScope::Seeded) and get frontier-
    /// proportional per-step labelling whenever the observer does not
    /// demand the full partition
    /// ([`Observer::wants_full_components`]).
    fn components_scope(&self) -> ComponentsScope<'_> {
        ComponentsScope::Full
    }

    /// Hook between the engine step and the component rebuild, for
    /// auxiliary random state (e.g. mobile preys walking). Draws must
    /// come from `rng` so runs stay seed-reproducible.
    fn post_move<T: Topology, R: RngExt>(&mut self, _topo: &T, _rng: &mut R) {}

    /// Called when agent `i` churns out of the system and is replaced
    /// by a fresh arrival at a new position: the process must clear any
    /// state the departed agent carried (informed bit, rumor set, …).
    /// The default keeps state — correct only for processes never
    /// driven with churn.
    fn reset_agent(&mut self, _i: usize) {}

    /// Exchanges state across the visibility graph; returns
    /// [`ControlFlow::Break`] once the process has reached its
    /// completion condition.
    fn exchange(&mut self, ctx: ExchangeCtx<'_>) -> ControlFlow<()>;

    /// The informed-agent set, if the process has one (shown to
    /// observers via [`StepContext::informed`]).
    fn informed(&self) -> Option<&BitSet> {
        None
    }

    /// The per-agent rumor sets, if the process has them (shown to
    /// observers via [`StepContext::rumors`]).
    fn rumors(&self) -> Option<&RumorSets> {
        None
    }

    /// The outcome at the current state; `time` is the number of steps
    /// taken so far.
    fn outcome(&self, time: u64) -> Self::Outcome;
}

/// The generic driver: owns the walk engine, the step cap and the
/// shared per-step pipeline, and runs any [`Process`] on any
/// [`Topology`].
///
/// # Examples
///
/// Run gossip on a torus — a combination the old per-process structs
/// never exposed:
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use sparsegossip_core::{Gossip, Simulation};
/// use sparsegossip_grid::Torus;
///
/// let torus = Torus::new(16)?;
/// let mut rng = SmallRng::seed_from_u64(3);
/// let mut sim = Simulation::new(torus, 6, 0, 1_000_000, Gossip::distinct(6)?, &mut rng)?;
/// assert!(sim.run(&mut rng).completed());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Simulation<P: Process, T> {
    engine: WalkEngine<T>,
    radius: u32,
    max_steps: u64,
    process: P,
    complete: bool,
    /// Persistent hot-path buffers: the per-step component rebuild
    /// clears and refills these instead of allocating.
    scratch: SimScratch,
    /// Reused empty informed set for processes without one, so
    /// `StepContext` can always hand out references (a zero-capacity
    /// bitset holds no heap allocation).
    empty_informed: BitSet,
    /// World-model state (per-agent radii/speeds, churn, walls);
    /// trivial for every plain constructor.
    world: WorldState,
}

/// Derived per-simulation world state, resolved once at construction
/// from a [`WorldConfig`] so the step loop never re-derives anything.
#[derive(Clone, Debug, Default)]
struct WorldState {
    /// Per-agent radii under the `min(r_i, r_j)` contact rule; empty
    /// means homogeneous (use the global radius).
    radii: Vec<u32>,
    /// Per-agent lazy sub-steps per time step; empty means unit speeds.
    speeds: Vec<u32>,
    /// Spatial-hash bucket radius: the maximum effective radius, so the
    /// 3×3 candidate scan covers every acceptable pair.
    bucket_radius: u32,
    /// Per-agent, per-step replacement probability (0 disables churn).
    churn_rate: f64,
    /// Agents `0..immortal` never churn (the rumor sources).
    immortal: usize,
    /// Wall map obstructing radio contact (mobility obstruction comes
    /// from running on the matching [`BarrierGrid`] topology).
    walls: Option<BarrierGrid>,
}

impl WorldState {
    /// The trivial world: homogeneous radius, unit speeds, no churn, no
    /// walls — byte-for-byte the pre-world driver behavior.
    fn trivial(radius: u32) -> Self {
        Self {
            bucket_radius: radius,
            ..Self::default()
        }
    }

    /// Resolves a validated [`WorldConfig`] into per-agent state.
    fn resolve(world: &WorldConfig, k: usize, radius: u32, walls: Option<BarrierGrid>) -> Self {
        let radii = world.radii(k, radius).unwrap_or_default();
        let bucket_radius = radii.iter().copied().max().unwrap_or(radius);
        Self {
            radii,
            speeds: world.speeds(k).unwrap_or_default(),
            bucket_radius,
            churn_rate: world.churn_rate,
            immortal: world.num_sources,
            walls,
        }
    }

    /// The per-agent radius slice, if heterogeneous.
    #[inline]
    fn radii_opt(&self) -> Option<&[u32]> {
        (!self.radii.is_empty()).then_some(self.radii.as_slice())
    }
}

impl<P: Process, T: Topology> Simulation<P, T> {
    /// Places `k` agents uniformly at random on `topo` and runs the
    /// step-0 exchange.
    ///
    /// # Errors
    ///
    /// * [`SimError::ZeroStepCap`] if `max_steps == 0`;
    /// * [`SimError::AgentCountMismatch`] if the process was sized for
    ///   a different `k`;
    /// * [`SimError::Walk`] if the engine rejects the placement.
    pub fn new<R: RngExt>(
        topo: T,
        k: usize,
        radius: u32,
        max_steps: u64,
        process: P,
        rng: &mut R,
    ) -> Result<Self, SimError> {
        Self::new_with_scratch(topo, k, radius, max_steps, process, rng, SimScratch::new())
    }

    /// As [`Simulation::new`], but reusing the hot-path buffers of a
    /// previous simulation (see [`SimScratch`]) so even the placement
    /// exchange avoids allocating. Results are identical to a fresh
    /// construction.
    ///
    /// # Errors
    ///
    /// As [`Simulation::new`].
    pub fn new_with_scratch<R: RngExt>(
        topo: T,
        k: usize,
        radius: u32,
        max_steps: u64,
        process: P,
        rng: &mut R,
        scratch: SimScratch,
    ) -> Result<Self, SimError> {
        Self::validate(&process, k, max_steps)?;
        let engine = WalkEngine::uniform(topo, k, rng)?;
        Ok(Self::on_engine(engine, radius, max_steps, process, scratch))
    }

    /// Builds a simulation from explicit starting positions (worst-case
    /// placements for lower-bound experiments).
    ///
    /// # Errors
    ///
    /// As [`Simulation::new`], plus [`SimError::Walk`] if any position
    /// lies outside the topology.
    pub fn from_positions(
        topo: T,
        positions: Vec<Point>,
        radius: u32,
        max_steps: u64,
        process: P,
    ) -> Result<Self, SimError> {
        Self::from_positions_with_scratch(
            topo,
            positions,
            radius,
            max_steps,
            process,
            SimScratch::new(),
        )
    }

    /// As [`Simulation::from_positions`], reusing the hot-path buffers
    /// of a previous simulation. With a warmed-up scratch (and the
    /// caller-provided position buffer and process state), construction
    /// performs **no heap allocation at all** — the property the
    /// scratch-reuse regression suite pins with a counting allocator.
    ///
    /// # Errors
    ///
    /// As [`Simulation::from_positions`].
    pub fn from_positions_with_scratch(
        topo: T,
        positions: Vec<Point>,
        radius: u32,
        max_steps: u64,
        process: P,
        scratch: SimScratch,
    ) -> Result<Self, SimError> {
        Self::validate(&process, positions.len(), max_steps)?;
        let engine = WalkEngine::from_positions(topo, positions)?;
        Ok(Self::on_engine(engine, radius, max_steps, process, scratch))
    }

    /// As [`Simulation::new_with_scratch`], additionally installing the
    /// world-model axes of `world`: per-agent heterogeneous radii and
    /// speed classes, churn, and wall-aware radio contact. When the
    /// world declares barriers, `topo` should be the matching
    /// [`BarrierGrid::city_blocks`] map so mobility respects the same
    /// walls as contact (the [`WorldSim`](crate::WorldSim) front door
    /// guarantees this).
    ///
    /// A [trivial](WorldConfig::is_trivial) world reproduces the plain
    /// constructor draw for draw.
    ///
    /// # Errors
    ///
    /// As [`Simulation::new_with_scratch`], plus
    /// [`SimError::InvalidWorldSetting`] for out-of-range axes and
    /// [`SimError::Grid`] if the barrier layout is invalid.
    #[allow(clippy::too_many_arguments)] // the full constructor axis set; WorldSim is the ergonomic front door
    pub fn new_in_world_with_scratch<R: RngExt>(
        topo: T,
        k: usize,
        radius: u32,
        max_steps: u64,
        process: P,
        world: &WorldConfig,
        rng: &mut R,
        scratch: SimScratch,
    ) -> Result<Self, SimError> {
        world.validate()?;
        Self::validate(&process, k, max_steps)?;
        let walls = world.build_barriers(topo.side())?;
        let engine = WalkEngine::uniform(topo, k, rng)?;
        Ok(Self::on_engine_world(
            engine,
            radius,
            max_steps,
            process,
            scratch,
            WorldState::resolve(world, k, radius, walls),
        ))
    }

    /// As [`Simulation::from_positions_with_scratch`], additionally
    /// installing the world-model axes of `world` (see
    /// [`Simulation::new_in_world_with_scratch`]); the explicit
    /// placement serves adversarial source layouts.
    ///
    /// # Errors
    ///
    /// As [`Simulation::from_positions_with_scratch`], plus
    /// [`SimError::InvalidWorldSetting`] for out-of-range axes and
    /// [`SimError::Grid`] if the barrier layout is invalid.
    pub fn from_positions_in_world_with_scratch(
        topo: T,
        positions: Vec<Point>,
        radius: u32,
        max_steps: u64,
        process: P,
        world: &WorldConfig,
        scratch: SimScratch,
    ) -> Result<Self, SimError> {
        world.validate()?;
        Self::validate(&process, positions.len(), max_steps)?;
        let walls = world.build_barriers(topo.side())?;
        let k = positions.len();
        let engine = WalkEngine::from_positions(topo, positions)?;
        Ok(Self::on_engine_world(
            engine,
            radius,
            max_steps,
            process,
            scratch,
            WorldState::resolve(world, k, radius, walls),
        ))
    }

    fn validate(process: &P, k: usize, max_steps: u64) -> Result<(), SimError> {
        if max_steps == 0 {
            return Err(SimError::ZeroStepCap);
        }
        if let Some(expected) = process.agent_count() {
            if expected != k {
                return Err(SimError::AgentCountMismatch {
                    process: expected,
                    k,
                });
            }
        }
        Ok(())
    }

    fn on_engine(
        engine: WalkEngine<T>,
        radius: u32,
        max_steps: u64,
        process: P,
        scratch: SimScratch,
    ) -> Self {
        let world = WorldState::trivial(radius);
        Self::on_engine_world(engine, radius, max_steps, process, scratch, world)
    }

    fn on_engine_world(
        engine: WalkEngine<T>,
        radius: u32,
        max_steps: u64,
        process: P,
        mut scratch: SimScratch,
        world: WorldState,
    ) -> Self {
        // A recycled scratch may carry another simulation's maintained
        // hash; it does not mirror this engine's positions.
        scratch.hash_live = false;
        let mut sim = Self {
            engine,
            radius,
            max_steps,
            process,
            complete: false,
            scratch,
            empty_informed: BitSet::new(0),
            world,
        };
        sim.placement_exchange();
        sim
    }

    /// Runs the paper's step-0 exchange on `G_0(r)` — the placement
    /// already forms a visibility graph — and records completion.
    ///
    /// Processes with a [`Seeded`](ComponentsScope::Seeded) scope get
    /// seed-restricted labelling here too (the freshly built hash then
    /// seeds the incremental maintenance of subsequent steps), and a
    /// [`None`](ComponentsScope::None) scope skips labelling outright.
    fn placement_exchange(&mut self) {
        let side = self.engine.topology().side();
        let contact = WorldContact::new(
            self.radius,
            self.world.radii_opt(),
            self.world.walls.as_ref(),
        );
        let comps: &Components = if !P::NEEDS_COMPONENTS {
            Components::EMPTY
        } else {
            match self.process.components_scope() {
                ComponentsScope::None => Components::EMPTY,
                ComponentsScope::Seeded(seeds) => {
                    self.scratch.hash.rebuild(
                        self.engine.positions(),
                        self.world.bucket_radius,
                        side,
                    );
                    self.scratch.hash_live = true;
                    components_from_seeds_on_by(
                        &self.scratch.hash,
                        &mut self.scratch.seeded,
                        self.engine.positions(),
                        seeds,
                        &contact,
                    )
                }
                ComponentsScope::Full => components_into_by(
                    &mut self.scratch.comps,
                    self.engine.positions(),
                    &contact,
                    self.world.bucket_radius,
                    side,
                ),
            }
        };
        let flow = self.process.on_placement(ExchangeCtx {
            time: 0,
            side,
            radius: self.radius,
            positions: self.engine.positions(),
            components: comps,
        });
        self.complete = flow.is_break();
    }

    /// The number of walking agents.
    #[inline]
    #[must_use]
    pub fn k(&self) -> usize {
        self.engine.len()
    }

    /// The visibility radius `r`.
    #[inline]
    #[must_use]
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// The step cap.
    #[inline]
    #[must_use]
    pub fn max_steps(&self) -> u64 {
        self.max_steps
    }

    /// Steps taken so far.
    #[inline]
    #[must_use]
    pub fn time(&self) -> u64 {
        self.engine.time()
    }

    /// Current agent positions.
    #[inline]
    #[must_use]
    pub fn positions(&self) -> &[Point] {
        self.engine.positions()
    }

    /// The underlying topology.
    #[inline]
    #[must_use]
    pub fn topology(&self) -> &T {
        self.engine.topology()
    }

    /// The process state (informed sets, rumor sets, …).
    #[inline]
    #[must_use]
    pub fn process(&self) -> &P {
        &self.process
    }

    /// Mutable access to the process state (e.g. to switch the exchange
    /// rule mid-run in ablations).
    #[inline]
    pub fn process_mut(&mut self) -> &mut P {
        &mut self.process
    }

    /// Whether the process has reached its completion condition.
    #[inline]
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Consumes the simulation, yielding its warmed-up hot-path buffers
    /// for reuse by the next one (via
    /// [`new_with_scratch`](Simulation::new_with_scratch) or a
    /// `*_with_scratch` convenience constructor).
    #[must_use]
    pub fn into_scratch(self) -> SimScratch {
        self.scratch
    }

    /// Restarts the simulation in place for a fresh run: re-places the
    /// agents uniformly at random (reusing the engine's position
    /// buffer), installs `process` as the new process state, rewinds
    /// time to 0 and re-runs the step-0 placement exchange — all while
    /// keeping the warmed-up scratch.
    ///
    /// Draw-for-draw identical to constructing a new simulation with
    /// [`Simulation::new`] from the same RNG state, but allocation-free:
    /// one simulation per worker thread serves a whole seed batch.
    ///
    /// ```
    /// use rand::rngs::SmallRng;
    /// use rand::SeedableRng;
    /// use sparsegossip_core::{Broadcast, SimConfig, Simulation};
    ///
    /// let config = SimConfig::builder(20, 10).radius(1).build()?;
    /// let mut rng = SmallRng::seed_from_u64(1);
    /// let mut sim = Simulation::broadcast(&config, &mut rng)?;
    /// let first = sim.run(&mut rng);
    ///
    /// // Second seed: same simulation object, fresh process state.
    /// let mut rng = SmallRng::seed_from_u64(2);
    /// sim.reset(Broadcast::from_config(&config)?, &mut rng)?;
    /// let second = sim.run(&mut rng);
    /// assert!(first.completed() && second.completed());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`SimError::AgentCountMismatch`] if `process` was sized for a
    /// different number of agents than the engine holds.
    pub fn reset<R: RngExt>(&mut self, process: P, rng: &mut R) -> Result<(), SimError> {
        Self::validate(&process, self.engine.len(), self.max_steps)?;
        self.engine.reset_uniform(rng);
        // Re-placement is untracked movement; the maintained hash is
        // stale until the placement exchange rebuilds it.
        self.scratch.hash_live = false;
        self.process = process;
        self.placement_exchange();
        Ok(())
    }

    /// The visibility-graph components at the current positions, under
    /// the world's contact model (heterogeneous radii and walls
    /// included). A diagnostic accessor — it allocates.
    #[must_use]
    pub fn current_components(&self) -> Components {
        let side = self.engine.topology().side();
        if self.world.radii.is_empty() && self.world.walls.is_none() {
            components(self.engine.positions(), self.radius, side)
        } else {
            let contact = WorldContact::new(
                self.radius,
                self.world.radii_opt(),
                self.world.walls.as_ref(),
            );
            components_brute_by(self.engine.positions(), &contact, side)
        }
    }

    /// Advances one step of the shared pipeline: mobility rule →
    /// engine step → [`Process::post_move`] → component labelling (into
    /// the owned [`SimScratch`], allocation-free at steady state) →
    /// [`Process::exchange`] → observer. Returns
    /// [`ControlFlow::Break`] once the process completes.
    ///
    /// The labelling strategy is picked from the process's
    /// [`ComponentsScope`]: under a [`Seeded`](ComponentsScope::Seeded)
    /// scope — and an observer content without the full partition
    /// ([`Observer::wants_full_components`]) — the engine reports its
    /// move log, the spatial hash is maintained incrementally
    /// ([`SpatialHash::apply_moves`]) instead of rebuilt, and only the
    /// components containing a seed are labelled. Outcomes are
    /// draw-for-draw identical either way; per-step cost scales with
    /// the moved set and the informed frontier instead of `k`.
    ///
    /// # Examples
    ///
    /// Step-level driving with an observer — here recording the largest
    /// visibility component over the first 50 steps:
    ///
    /// ```
    /// use core::ops::ControlFlow;
    /// use rand::rngs::SmallRng;
    /// use rand::SeedableRng;
    /// use sparsegossip_core::{Observer, SimConfig, Simulation, StepContext};
    ///
    /// #[derive(Default)]
    /// struct MaxIsland(usize);
    /// impl Observer for MaxIsland {
    ///     fn on_step(&mut self, ctx: StepContext<'_>) {
    ///         self.0 = self.0.max(ctx.components.max_size());
    ///     }
    /// }
    ///
    /// let config = SimConfig::builder(24, 12).radius(1).build()?;
    /// let mut rng = SmallRng::seed_from_u64(5);
    /// let mut sim = Simulation::broadcast(&config, &mut rng)?;
    /// let mut obs = MaxIsland::default();
    /// for _ in 0..50 {
    ///     if sim.step(&mut rng, &mut obs) == ControlFlow::Break(()) {
    ///         break;
    ///     }
    /// }
    /// assert!(obs.0 >= 1);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    // detlint: hot
    pub fn step<R: RngExt, O: Observer>(
        &mut self,
        rng: &mut R,
        observer: &mut O,
    ) -> ControlFlow<()> {
        // The observer gate: a scope below Full applies only when the
        // observer does not demand the complete partition.
        let scope_sparse = P::NEEDS_COMPONENTS && !observer.wants_full_components();
        let frontier_sparse =
            scope_sparse && matches!(self.process.components_scope(), ComponentsScope::Seeded(_));
        let skip_components =
            scope_sparse && matches!(self.process.components_scope(), ComponentsScope::None);
        let speeds_active = !self.world.speeds.is_empty();
        if frontier_sparse {
            // Track the moves so the maintained hash can relocate only
            // the agents whose bucket changed.
            match (speeds_active, self.process.mobility_mask()) {
                (false, None) => self.engine.step_all_into(rng, &mut self.scratch.moves),
                (false, Some(mask)) => {
                    self.engine
                        .step_masked_into(mask, rng, &mut self.scratch.moves)
                }
                (true, None) => {
                    self.engine
                        .step_speeds_into(&self.world.speeds, rng, &mut self.scratch.moves)
                }
                (true, Some(mask)) => self.engine.step_speeds_masked_into(
                    &self.world.speeds,
                    mask,
                    rng,
                    &mut self.scratch.moves,
                ),
            }
        } else {
            match (speeds_active, self.process.mobility_mask()) {
                (false, None) => self.engine.step_all(rng),
                (false, Some(mask)) => self.engine.step_masked(mask, rng),
                // The speeds steppers log moves; the full path simply
                // ignores the log.
                (true, None) => {
                    self.engine
                        .step_speeds_into(&self.world.speeds, rng, &mut self.scratch.moves)
                }
                (true, Some(mask)) => self.engine.step_speeds_masked_into(
                    &self.world.speeds,
                    mask,
                    rng,
                    &mut self.scratch.moves,
                ),
            }
            // Positions changed without a usable move log: the
            // maintained hash no longer mirrors them.
            self.scratch.hash_live = false;
        }
        self.process.post_move(self.engine.topology(), rng);
        if self.world.churn_rate > 0.0 {
            self.churn_agents(rng);
        }
        let side = self.engine.topology().side();
        let contact = WorldContact::new(
            self.radius,
            self.world.radii_opt(),
            self.world.walls.as_ref(),
        );
        let comps: &Components = if !P::NEEDS_COMPONENTS || skip_components {
            Components::EMPTY
        } else if frontier_sparse {
            if let ComponentsScope::Seeded(seeds) = self.process.components_scope() {
                if self.scratch.hash_live {
                    self.scratch.hash.apply_moves(&self.scratch.moves);
                } else {
                    self.scratch.hash.rebuild(
                        self.engine.positions(),
                        self.world.bucket_radius,
                        side,
                    );
                    self.scratch.hash_live = true;
                }
                components_from_seeds_on_by(
                    &self.scratch.hash,
                    &mut self.scratch.seeded,
                    self.engine.positions(),
                    seeds,
                    &contact,
                )
            } else {
                // A custom process switched scope between the move and
                // the labelling (no built-in process does): fall back to
                // the always-correct full build.
                self.scratch.hash_live = false;
                components_into_by(
                    &mut self.scratch.comps,
                    self.engine.positions(),
                    &contact,
                    self.world.bucket_radius,
                    side,
                )
            }
        } else {
            components_into_by(
                &mut self.scratch.comps,
                self.engine.positions(),
                &contact,
                self.world.bucket_radius,
                side,
            )
        };
        let flow = self.process.exchange(ExchangeCtx {
            time: self.engine.time(),
            side,
            radius: self.radius,
            positions: self.engine.positions(),
            components: comps,
        });
        if flow.is_break() {
            self.complete = true;
        }
        observer.on_step(StepContext {
            time: self.engine.time(),
            side,
            positions: self.engine.positions(),
            components: comps,
            informed: self.process.informed().unwrap_or(&self.empty_informed),
            rumors: self.process.rumors(),
        });
        flow
    }

    /// The churn phase: each agent independently departs with
    /// probability `churn_rate` and is replaced by a fresh uninformed
    /// arrival at a uniform node, keeping the population at `k`. The
    /// first [`WorldState::immortal`] agents (the sources) draw but
    /// never depart, so the per-step draw layout is one Bernoulli per
    /// agent regardless of the source count.
    // detlint: hot
    fn churn_agents<R: RngExt>(&mut self, rng: &mut R) {
        let rate = self.world.churn_rate;
        for i in 0..self.engine.len() {
            let hit = rng.random_bool(rate);
            if !hit || i < self.world.immortal {
                continue;
            }
            let from = self.engine.positions()[i];
            let to = self.engine.topology().random_point(rng);
            if to != from {
                self.engine.set_position(i, to);
                // Log the teleport alongside the walk moves so the
                // maintained hash relocates the replacement too.
                self.scratch.moves.push((i as u32, from, to));
            }
            self.process.reset_agent(i);
        }
    }

    /// Runs to completion or the step cap; equivalent to
    /// [`run_with`](Self::run_with) with a
    /// [`NullObserver`](crate::NullObserver).
    pub fn run<R: RngExt>(&mut self, rng: &mut R) -> P::Outcome {
        self.run_with(rng, &mut crate::NullObserver)
    }

    /// Runs to completion or the step cap, invoking `observer` after
    /// every exchange.
    pub fn run_with<R: RngExt, O: Observer>(
        &mut self,
        rng: &mut R,
        observer: &mut O,
    ) -> P::Outcome {
        while !self.complete && self.engine.time() < self.max_steps {
            let _ = self.step(rng, observer);
        }
        self.outcome()
    }

    /// The outcome at the current state.
    #[must_use]
    pub fn outcome(&self) -> P::Outcome {
        self.process.outcome(self.engine.time())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Broadcast, Gossip, NullObserver, SimConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use sparsegossip_grid::{Grid, Torus};

    #[test]
    fn generic_driver_runs_broadcast_to_completion() {
        let cfg = SimConfig::builder(16, 8).radius(0).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sim = Simulation::broadcast(&cfg, &mut rng).unwrap();
        let out = sim.run(&mut rng);
        assert!(out.completed());
        assert!(sim.is_complete());
        assert_eq!(out.informed, 8);
    }

    #[test]
    fn step_reports_break_exactly_at_completion() {
        let cfg = SimConfig::builder(12, 6).radius(0).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sim = Simulation::broadcast(&cfg, &mut rng).unwrap();
        let mut broke = false;
        for _ in 0..cfg.max_steps() {
            if sim.step(&mut rng, &mut NullObserver).is_break() {
                broke = true;
                break;
            }
        }
        assert!(broke, "tiny grid must complete");
        assert!(sim.is_complete());
    }

    #[test]
    fn any_process_runs_on_any_topology() {
        let torus = Torus::new(12).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sim = Simulation::new(
            torus,
            6,
            0,
            1_000_000,
            Gossip::distinct(6).unwrap(),
            &mut rng,
        )
        .unwrap();
        assert!(sim.run(&mut rng).completed());
    }

    #[test]
    fn agent_count_mismatch_is_rejected() {
        let g = Grid::new(8).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let err =
            Simulation::new(g, 5, 0, 10, Broadcast::new(4, 0).unwrap(), &mut rng).unwrap_err();
        assert_eq!(err, SimError::AgentCountMismatch { process: 4, k: 5 });
    }

    #[test]
    fn zero_cap_is_rejected() {
        let g = Grid::new(8).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(
            Simulation::new(g, 4, 0, 0, Broadcast::new(4, 0).unwrap(), &mut rng).unwrap_err(),
            SimError::ZeroStepCap
        );
    }

    #[test]
    fn accessors_expose_driver_state() {
        let cfg = SimConfig::builder(16, 8).radius(2).build().unwrap();
        let mut rng = SmallRng::seed_from_u64(6);
        let sim = Simulation::broadcast(&cfg, &mut rng).unwrap();
        assert_eq!(sim.k(), 8);
        assert_eq!(sim.radius(), 2);
        assert_eq!(sim.max_steps(), cfg.max_steps());
        assert_eq!(sim.time(), 0);
        assert_eq!(sim.positions().len(), 8);
        assert_eq!(sim.topology().side(), 16);
        assert!(sim.process().informed_count() >= 1);
        let comps = sim.current_components();
        assert_eq!(comps.num_agents(), 8);
    }
}
