//! Declarative scenario specifications: an experiment as *data*.
//!
//! A [`ScenarioSpec`] names one dissemination experiment — which
//! [`Process`](crate::Process) to run, on what grid, with how many
//! agents, at what radius, under which mobility/exchange rules, and
//! what scalar [`Metric`] to report — and can instantiate it into the
//! generic [`Simulation`] driver for any seed. Specs validate at build
//! time with **exactly** the rules the `Simulation` constructors
//! enforce (a buildable spec can always be run), plus one stricter
//! check: a setting the chosen kind would silently ignore (e.g. gossip
//! with a mobility rule) is rejected, so a spec always describes the
//! run that actually happens. Specs round-trip through the
//! TOML subset of [`crate::toml`], and are the unit the
//! `sparsegossip_analysis::ScenarioSweep` engine fans out over the
//! {side, k, r} axes.
//!
//! # Examples
//!
//! ```
//! use sparsegossip_core::{Metric, ProcessKind, ScenarioSpec};
//!
//! let spec = ScenarioSpec::builder(ProcessKind::Broadcast, 32, 16)
//!     .radius(2)
//!     .metric(Metric::Time)
//!     .build()?;
//! let t = spec.run_seed(2011);
//! assert!(t >= 0.0 && t <= spec.config().max_steps() as f64);
//!
//! // Specs are data: they serialize to the TOML subset and back.
//! let round_tripped = ScenarioSpec::from_toml_str(&spec.to_toml())?;
//! assert_eq!(spec, round_tripped);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use core::fmt;
use core::mem;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_grid::{Grid, Point, Topology};

use crate::toml::{TomlDoc, TomlError};
use crate::{
    Coverage, ExchangeRule, FaultConfig, Infection, Mobility, NetworkConfig, NetworkError,
    SimConfig, SimError, SimScratch, Simulation, WorldConfig, WorldSim,
};

/// Which dissemination [`Process`](crate::Process) a scenario runs.
///
/// The Frog model is not a separate kind: it is
/// [`Broadcast`](ProcessKind::Broadcast) with
/// [`Mobility::InformedOnly`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ProcessKind {
    /// Single-rumor broadcast (Theorems 1 and 2).
    #[default]
    Broadcast,
    /// All-to-all gossip with one distinct rumor per agent
    /// (Corollary 2). Implements neither mobility rules nor one-hop
    /// exchange; declaring them is a build error.
    Gossip,
    /// Contact infection with per-agent infection times. The process is
    /// contact-only by definition ([`Simulation::infection`] always
    /// runs at `r = 0`), so a nonzero radius — like one-hop exchange —
    /// is a build error rather than a silently ignored setting.
    Infection,
    /// Joint broadcast + informed-agent coverage (§4).
    Coverage,
    /// The protocol twin: broadcast run as real message passing
    /// ([`ProtocolBroadcast`](crate::ProtocolBroadcast)) over the same
    /// seeded trajectory, with
    /// [`NetworkConfig`](crate::NetworkConfig) fault injection. The
    /// twin defines its own network semantics, so mobility rules and
    /// one-hop exchange are build errors.
    ProtocolBroadcast,
}

impl ProcessKind {
    /// The spec-file name of this kind.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Broadcast => "broadcast",
            Self::Gossip => "gossip",
            Self::Infection => "infection",
            Self::Coverage => "coverage",
            Self::ProtocolBroadcast => "protocol-broadcast",
        }
    }

    /// All kinds, in spec-file order.
    pub const ALL: [Self; 5] = [
        Self::Broadcast,
        Self::Gossip,
        Self::Infection,
        Self::Coverage,
        Self::ProtocolBroadcast,
    ];
}

impl fmt::Display for ProcessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The scalar a scenario run reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Metric {
    /// The process's completion time in steps ( `T_B`, `T_G`, `T_I` or
    /// `T_C` depending on the kind), or the step cap if the run did not
    /// finish — the paper's phase-transition observable.
    #[default]
    Time,
    /// The fraction of the process's goal reached when the run ended,
    /// in `[0, 1]`: informed agents (broadcast), minimum rumor fraction
    /// (gossip), infected agents (infection) or covered nodes
    /// (coverage).
    Fraction,
}

impl Metric {
    /// The spec-file name of this metric.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Time => "time",
            Self::Fraction => "fraction",
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Errors from reading a scenario or sweep spec file.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// The file is not valid spec TOML.
    Toml(TomlError),
    /// The spec parsed but describes an invalid simulation.
    Sim(SimError),
    /// A key is not part of the section's schema (typo guard).
    UnknownKey {
        /// The section name.
        section: String,
        /// The unrecognized key.
        key: String,
    },
    /// An enum-valued key holds an unrecognized name.
    UnknownName {
        /// The offending key.
        key: String,
        /// The unrecognized value.
        value: String,
        /// The accepted names.
        allowed: &'static str,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Toml(e) => write!(f, "{e}"),
            Self::Sim(e) => write!(f, "{e}"),
            Self::UnknownKey { section, key } => {
                write!(f, "spec section [{section}] has unknown key {key:?}")
            }
            Self::UnknownName {
                key,
                value,
                allowed,
            } => write!(
                f,
                "spec key {key:?} has unknown value {value:?} (one of: {allowed})"
            ),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Toml(e) => Some(e),
            Self::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TomlError> for SpecError {
    fn from(e: TomlError) -> Self {
        Self::Toml(e)
    }
}

impl From<SimError> for SpecError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}

/// A validated, runnable scenario: process kind + simulation
/// configuration + reported metric.
///
/// Built with [`ScenarioSpec::builder`] or parsed with
/// [`ScenarioSpec::from_toml_str`]; validation happens once at build
/// time (mirroring the [`Simulation`] constructors exactly), so every
/// spec value can instantiate and run a simulation for any seed.
///
/// # Examples
///
/// A gossip scenario, run for two seeds with one recycled scratch:
///
/// ```
/// use sparsegossip_core::{ProcessKind, ScenarioSpec, SimScratch};
///
/// let spec = ScenarioSpec::builder(ProcessKind::Gossip, 24, 8).radius(1).build()?;
/// let mut scratch = SimScratch::new();
/// let a = spec.run_seed_with_scratch(&mut scratch, 1);
/// let b = spec.run_seed_with_scratch(&mut scratch, 2);
/// // Scratch reuse never changes outcomes.
/// assert_eq!(a, spec.run_seed(1));
/// assert_eq!(b, spec.run_seed(2));
/// # Ok::<(), sparsegossip_core::SimError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioSpec {
    kind: ProcessKind,
    config: SimConfig,
    metric: Metric,
    /// Network fault axes, honored by the protocol twin (other kinds
    /// require the default ideal network).
    network: NetworkConfig,
    /// World-model axes (barriers, churn, heterogeneity, sources);
    /// the default reproduces the paper's world exactly.
    world: WorldConfig,
    /// Fault-injection and recovery axes, honored by the protocol twin
    /// (other kinds require the trivial default).
    faults: FaultConfig,
    /// Whether the step cap was given explicitly (kept so
    /// [`with_axes`](Self::with_axes) re-derives the default cap for
    /// resized cells instead of freezing the base spec's).
    explicit_max_steps: bool,
}

impl ScenarioSpec {
    /// Starts building a scenario of `kind` with `k` agents on a
    /// `side × side` grid.
    #[must_use]
    pub fn builder(kind: ProcessKind, side: u32, k: usize) -> ScenarioSpecBuilder {
        ScenarioSpecBuilder {
            kind,
            side,
            k,
            radius: 0,
            source: 0,
            max_steps: None,
            mobility: Mobility::All,
            exchange_rule: ExchangeRule::Component,
            metric: Metric::Time,
            network: NetworkConfig::IDEAL,
            world: WorldConfig::DEFAULT,
            faults: FaultConfig::DEFAULT,
        }
    }

    /// The process kind.
    #[inline]
    #[must_use]
    pub fn kind(&self) -> ProcessKind {
        self.kind
    }

    /// The reported metric.
    #[inline]
    #[must_use]
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The validated simulation configuration.
    #[inline]
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The network fault configuration (the ideal network unless the
    /// spec set any of the `drop_prob`/`delay_max`/`send_cap`/
    /// `gossip_interval` axes).
    #[inline]
    #[must_use]
    pub fn network(&self) -> &NetworkConfig {
        &self.network
    }

    /// The world-model axes ([`WorldConfig::DEFAULT`] unless the spec
    /// set any barrier/churn/heterogeneity/source key).
    #[inline]
    #[must_use]
    pub fn world(&self) -> &WorldConfig {
        &self.world
    }

    /// The fault-injection and recovery axes ([`FaultConfig::DEFAULT`]
    /// unless the spec set any crash/partition/recovery key).
    #[inline]
    #[must_use]
    pub fn faults(&self) -> &FaultConfig {
        &self.faults
    }

    /// Re-derives this spec with a different network configuration,
    /// re-validating: the sweep engine's way of expanding a network
    /// axis.
    ///
    /// # Errors
    ///
    /// As [`ScenarioSpecBuilder::build`] (non-twin kinds reject any
    /// non-ideal network).
    pub fn with_network(&self, network: NetworkConfig) -> Result<Self, SimError> {
        let mut b = Self::builder(self.kind, self.config.side(), self.config.k())
            .radius(self.config.radius())
            .source(self.config.source())
            .mobility(self.config.mobility())
            .exchange_rule(self.config.exchange_rule())
            .metric(self.metric)
            .network(network)
            .world(self.world)
            .faults(self.faults);
        if self.explicit_max_steps {
            b = b.max_steps(self.config.max_steps());
        }
        b.build()
    }

    /// Re-derives this spec with different fault-injection/recovery
    /// axes, re-validating: the sweep engine's way of expanding a fault
    /// axis (crash probabilities, partition lengths).
    ///
    /// # Errors
    ///
    /// As [`ScenarioSpecBuilder::build`] (non-twin kinds reject any
    /// non-trivial fault config).
    pub fn with_faults(&self, faults: FaultConfig) -> Result<Self, SimError> {
        let mut b = Self::builder(self.kind, self.config.side(), self.config.k())
            .radius(self.config.radius())
            .source(self.config.source())
            .mobility(self.config.mobility())
            .exchange_rule(self.config.exchange_rule())
            .metric(self.metric)
            .network(self.network)
            .world(self.world)
            .faults(faults);
        if self.explicit_max_steps {
            b = b.max_steps(self.config.max_steps());
        }
        b.build()
    }

    /// Re-derives this spec with different world-model axes,
    /// re-validating: the sweep engine's way of expanding a world axis
    /// (barrier densities, churn rates, radius mixes).
    ///
    /// # Errors
    ///
    /// As [`ScenarioSpecBuilder::build`] (kinds other than broadcast —
    /// and infection, for the source axes — reject active world axes).
    pub fn with_world(&self, world: WorldConfig) -> Result<Self, SimError> {
        let mut b = Self::builder(self.kind, self.config.side(), self.config.k())
            .radius(self.config.radius())
            .source(self.config.source())
            .mobility(self.config.mobility())
            .exchange_rule(self.config.exchange_rule())
            .metric(self.metric)
            .network(self.network)
            .world(world)
            .faults(self.faults);
        if self.explicit_max_steps {
            b = b.max_steps(self.config.max_steps());
        }
        b.build()
    }

    /// Re-derives this spec at different axis values (grid side, agent
    /// count, radius), re-validating: the sweep engine's way of turning
    /// one base spec into a grid of cells. A spec built without an
    /// explicit step cap gets the cell's own default cap; an explicit
    /// cap is kept verbatim.
    ///
    /// # Errors
    ///
    /// As [`ScenarioSpecBuilder::build`] (e.g. the base source index
    /// can be out of range for a smaller `k`).
    pub fn with_axes(&self, side: u32, k: usize, radius: u32) -> Result<Self, SimError> {
        let mut b = Self::builder(self.kind, side, k)
            .radius(radius)
            .source(self.config.source())
            .mobility(self.config.mobility())
            .exchange_rule(self.config.exchange_rule())
            .metric(self.metric)
            .network(self.network)
            .world(self.world)
            .faults(self.faults);
        if self.explicit_max_steps {
            b = b.max_steps(self.config.max_steps());
        }
        b.build()
    }

    /// Runs the scenario once with a fresh RNG seeded from `seed` and
    /// returns the configured metric. Deterministic: the result is a
    /// pure function of the spec and the seed.
    #[must_use]
    pub fn run_seed(&self, seed: u64) -> f64 {
        let mut scratch = SimScratch::new();
        self.run_seed_with_scratch(&mut scratch, seed)
    }

    /// As [`run_seed`](Self::run_seed), recycling the caller's
    /// [`SimScratch`] across runs (one scratch per worker thread in
    /// sweeps). Scratch contents never influence the result.
    #[must_use]
    pub fn run_seed_with_scratch(&self, scratch: &mut SimScratch, seed: u64) -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cfg = &self.config;
        // The spec was validated with the same rules the constructors
        // apply, so construction cannot fail here.
        match self.kind {
            ProcessKind::Broadcast => {
                let out = if self.world.is_trivial() {
                    let mut sim =
                        Simulation::broadcast_with_scratch(cfg, &mut rng, mem::take(scratch))
                            .expect("validated spec"); // detlint: allow(panic, spec was validated with the constructor's own rules)
                    let out = sim.run(&mut rng);
                    *scratch = sim.into_scratch();
                    out
                } else {
                    let mut sim =
                        WorldSim::from_spec_with_scratch(self, &mut rng, mem::take(scratch))
                            .expect("validated spec"); // detlint: allow(panic, spec was validated with the constructor's own rules)
                    let out = sim.run(&mut rng);
                    *scratch = sim.into_scratch();
                    out
                };
                match self.metric {
                    Metric::Time => out.broadcast_time.unwrap_or(cfg.max_steps()) as f64,
                    Metric::Fraction => out.informed_fraction(),
                }
            }
            ProcessKind::Gossip => {
                let mut sim = Simulation::gossip_with_scratch(cfg, &mut rng, mem::take(scratch))
                    .expect("validated spec"); // detlint: allow(panic, spec was validated with the constructor's own rules)
                let out = sim.run(&mut rng);
                *scratch = sim.into_scratch();
                match self.metric {
                    Metric::Time => out.gossip_time.unwrap_or(cfg.max_steps()) as f64,
                    Metric::Fraction => out.min_rumors as f64 / out.num_rumors as f64,
                }
            }
            ProcessKind::Infection => {
                let out = if self.world.is_trivial() {
                    let mut sim =
                        Simulation::infection_with_scratch(cfg, &mut rng, mem::take(scratch))
                            .expect("validated spec"); // detlint: allow(panic, spec was validated with the constructor's own rules)
                    let out = sim.run(&mut rng);
                    *scratch = sim.into_scratch();
                    out
                } else {
                    // Infection honors only the source axes (the build
                    // gate rejects every other world axis for it):
                    // multi-source and adversarial placement, inline
                    // because infection is contact-only (`r = 0`) and
                    // needs no topology dispatch.
                    let grid = Grid::new(cfg.side()).expect("validated spec"); // detlint: allow(panic, spec validation checked side >= 1)
                    let process = Infection::with_sources(cfg.k(), self.world.num_sources)
                        .expect("validated spec") // detlint: allow(panic, spec validation mirrors Infection::with_sources)
                        .mobility(cfg.mobility());
                    let mut sim = if self.world.adversarial_sources {
                        let mut positions: Vec<Point> =
                            (0..cfg.k()).map(|_| grid.random_point(&mut rng)).collect();
                        for p in positions.iter_mut().take(self.world.num_sources) {
                            *p = Point::new(0, 0);
                        }
                        Simulation::from_positions_with_scratch(
                            grid,
                            positions,
                            0,
                            cfg.max_steps(),
                            process,
                            mem::take(scratch),
                        )
                    } else {
                        Simulation::new_with_scratch(
                            grid,
                            cfg.k(),
                            0,
                            cfg.max_steps(),
                            process,
                            &mut rng,
                            mem::take(scratch),
                        )
                    }
                    .expect("validated spec"); // detlint: allow(panic, spec was validated with the constructor's own rules)
                    let out = sim.run(&mut rng);
                    *scratch = sim.into_scratch();
                    out
                };
                match self.metric {
                    Metric::Time => out.infection_time.unwrap_or(cfg.max_steps()) as f64,
                    Metric::Fraction => {
                        let infected = out.per_agent.iter().filter(|t| t.is_some()).count();
                        infected as f64 / out.per_agent.len() as f64
                    }
                }
            }
            ProcessKind::ProtocolBroadcast => {
                let mut sim = Simulation::protocol_broadcast_with_faults_with_scratch(
                    cfg,
                    self.network,
                    &self.faults,
                    seed,
                    &mut rng,
                    mem::take(scratch),
                )
                .expect("validated spec"); // detlint: allow(panic, spec was validated with the constructor's own rules)
                let out = sim.run(&mut rng);
                *scratch = sim.into_scratch();
                match self.metric {
                    Metric::Time => out.completion_time.unwrap_or(cfg.max_steps()) as f64,
                    Metric::Fraction => out.informed_fraction(),
                }
            }
            ProcessKind::Coverage => {
                let grid = Grid::new(cfg.side()).expect("validated spec"); // detlint: allow(panic, spec validation checked side >= 1)
                let process = Coverage::from_config(grid, cfg).expect("validated spec"); // detlint: allow(panic, spec validation mirrors Coverage::from_config)
                let mut sim = Simulation::new_with_scratch(
                    grid,
                    cfg.k(),
                    cfg.radius(),
                    cfg.max_steps(),
                    process,
                    &mut rng,
                    mem::take(scratch),
                )
                .expect("validated spec"); // detlint: allow(panic, spec was validated with the constructor's own rules)
                let out = sim.run(&mut rng);
                *scratch = sim.into_scratch();
                match self.metric {
                    Metric::Time => out.coverage_time.unwrap_or(cfg.max_steps()) as f64,
                    Metric::Fraction => out.covered as f64 / out.num_nodes as f64,
                }
            }
        }
    }

    /// FNV-1a 64 hash of the spec's canonical TOML rendering
    /// ([`to_toml`](Self::to_toml)): two specs hash equal exactly when
    /// they are equal, so the hash is a stable content address for
    /// result caches (the analysis result store keys records by
    /// `(content_hash, seed)`).
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        crate::cellkey::fnv1a(self.to_toml().as_bytes())
    }

    /// Renders the spec as a `[scenario]` section in the TOML subset of
    /// [`crate::toml`]. [`from_toml_str`](Self::from_toml_str) parses
    /// it back to an equal spec.
    #[must_use]
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str("[scenario]\n");
        out.push_str(&format!("process = \"{}\"\n", self.kind));
        out.push_str(&format!("side = {}\n", self.config.side()));
        out.push_str(&format!("k = {}\n", self.config.k()));
        out.push_str(&format!("radius = {}\n", self.config.radius()));
        out.push_str(&format!("source = {}\n", self.config.source()));
        let mobility = match self.config.mobility() {
            Mobility::All => "all",
            Mobility::InformedOnly => "informed-only",
        };
        out.push_str(&format!("mobility = \"{mobility}\"\n"));
        let exchange = match self.config.exchange_rule() {
            ExchangeRule::Component => "component",
            ExchangeRule::OneHop => "one-hop",
        };
        out.push_str(&format!("exchange = \"{exchange}\"\n"));
        if self.explicit_max_steps {
            out.push_str(&format!("max_steps = {}\n", self.config.max_steps()));
        }
        if self.network.drop_prob() != 0.0 {
            out.push_str(&format!(
                "drop_prob = {}\n",
                format_toml_f64(self.network.drop_prob())
            ));
        }
        if self.network.delay_max() != 0 {
            out.push_str(&format!("delay_max = {}\n", self.network.delay_max()));
        }
        if self.network.send_cap() != 0 {
            out.push_str(&format!("send_cap = {}\n", self.network.send_cap()));
        }
        if self.network.gossip_interval() != 1 {
            out.push_str(&format!(
                "gossip_interval = {}\n",
                self.network.gossip_interval()
            ));
        }
        // World axes, non-default values only, so pre-world spec files
        // stay byte-identical.
        let w = &self.world;
        if w.barrier_density != 0.0 {
            out.push_str(&format!(
                "barrier_density = {}\n",
                format_toml_f64(w.barrier_density)
            ));
        }
        if w.churn_rate != 0.0 {
            out.push_str(&format!("churn_rate = {}\n", format_toml_f64(w.churn_rate)));
        }
        if w.hetero_fraction != 0.0 {
            out.push_str(&format!(
                "hetero_fraction = {}\n",
                format_toml_f64(w.hetero_fraction)
            ));
        }
        if w.hetero_factor != 1.0 {
            out.push_str(&format!(
                "hetero_factor = {}\n",
                format_toml_f64(w.hetero_factor)
            ));
        }
        if w.speed_fraction != 0.0 {
            out.push_str(&format!(
                "speed_fraction = {}\n",
                format_toml_f64(w.speed_fraction)
            ));
        }
        if w.speed_factor != 1 {
            out.push_str(&format!("speed_factor = {}\n", w.speed_factor));
        }
        if w.num_sources != 1 {
            out.push_str(&format!("num_sources = {}\n", w.num_sources));
        }
        if w.adversarial_sources {
            out.push_str("adversarial_sources = true\n");
        }
        // Fault axes, non-default values only, so pre-fault spec files
        // stay byte-identical (and so do their content hashes).
        let fc = &self.faults;
        if fc.crash_prob != 0.0 {
            out.push_str(&format!(
                "crash_prob = {}\n",
                format_toml_f64(fc.crash_prob)
            ));
        }
        if fc.restart_delay != 1 {
            out.push_str(&format!("restart_delay = {}\n", fc.restart_delay));
        }
        if fc.partition_start != 0 {
            out.push_str(&format!("partition_start = {}\n", fc.partition_start));
        }
        if fc.partition_len != 0 {
            out.push_str(&format!("partition_len = {}\n", fc.partition_len));
        }
        if fc.retransmit {
            out.push_str("retransmit = true\n");
        }
        if fc.anti_entropy_interval != 0 {
            out.push_str(&format!(
                "anti_entropy_interval = {}\n",
                fc.anti_entropy_interval
            ));
        }
        out.push_str(&format!("metric = \"{}\"\n", self.metric));
        out
    }

    /// Parses a spec from text holding a `[scenario]` section.
    ///
    /// # Errors
    ///
    /// [`SpecError::Toml`] on malformed text or a missing section,
    /// [`SpecError::UnknownKey`]/[`SpecError::UnknownName`] on schema
    /// violations, and [`SpecError::Sim`] when the described simulation
    /// is invalid (same rules as [`ScenarioSpecBuilder::build`]).
    pub fn from_toml_str(text: &str) -> Result<Self, SpecError> {
        Self::from_toml_doc(&TomlDoc::parse(text)?)
    }

    /// As [`from_toml_str`](Self::from_toml_str), reading the
    /// `[scenario]` section of an already-parsed document (so sweep
    /// files can carry both `[scenario]` and `[sweep]`).
    ///
    /// # Errors
    ///
    /// As [`from_toml_str`](Self::from_toml_str).
    pub fn from_toml_doc(doc: &TomlDoc) -> Result<Self, SpecError> {
        let table = doc.section("scenario")?;
        const KNOWN: [&str; 27] = [
            "process",
            "side",
            "k",
            "radius",
            "source",
            "mobility",
            "exchange",
            "max_steps",
            "drop_prob",
            "delay_max",
            "send_cap",
            "gossip_interval",
            "barrier_density",
            "churn_rate",
            "hetero_fraction",
            "hetero_factor",
            "speed_fraction",
            "speed_factor",
            "num_sources",
            "adversarial_sources",
            "crash_prob",
            "restart_delay",
            "partition_start",
            "partition_len",
            "retransmit",
            "anti_entropy_interval",
            "metric",
        ];
        for key in table.keys() {
            if !KNOWN.contains(&key) {
                return Err(SpecError::UnknownKey {
                    section: "scenario".to_string(),
                    key: key.to_string(),
                });
            }
        }
        let kind_name = table.need_str("process")?;
        let kind = ProcessKind::ALL
            .into_iter()
            .find(|k| k.as_str() == kind_name)
            .ok_or_else(|| SpecError::UnknownName {
                key: "process".to_string(),
                value: kind_name.to_string(),
                allowed: "broadcast, gossip, infection, coverage, protocol-broadcast",
            })?;
        let mut builder =
            ScenarioSpec::builder(kind, table.need_u32("side")?, table.need_usize("k")?)
                .radius(table.opt_u32("radius")?.unwrap_or(0))
                .source(table.opt_usize("source")?.unwrap_or(0));
        if let Some(cap) = table.opt_u64("max_steps")? {
            builder = builder.max_steps(cap);
        }
        let network = NetworkConfig::new(
            table.opt_f64("drop_prob")?.unwrap_or(0.0),
            table.opt_u64("delay_max")?.unwrap_or(0),
            table.opt_u32("send_cap")?.unwrap_or(0),
            table.opt_u64("gossip_interval")?.unwrap_or(1),
        )
        .map_err(bad_network_value)?;
        builder = builder.network(network);
        let world = WorldConfig {
            barrier_density: table.opt_f64("barrier_density")?.unwrap_or(0.0),
            churn_rate: table.opt_f64("churn_rate")?.unwrap_or(0.0),
            hetero_fraction: table.opt_f64("hetero_fraction")?.unwrap_or(0.0),
            hetero_factor: table.opt_f64("hetero_factor")?.unwrap_or(1.0),
            speed_fraction: table.opt_f64("speed_fraction")?.unwrap_or(0.0),
            speed_factor: table.opt_u32("speed_factor")?.unwrap_or(1),
            num_sources: table.opt_usize("num_sources")?.unwrap_or(1),
            adversarial_sources: table.opt_bool("adversarial_sources")?.unwrap_or(false),
        };
        builder = builder.world(world);
        let faults = FaultConfig {
            crash_prob: table.opt_f64("crash_prob")?.unwrap_or(0.0),
            restart_delay: table.opt_u64("restart_delay")?.unwrap_or(1),
            partition_start: table.opt_u64("partition_start")?.unwrap_or(0),
            partition_len: table.opt_u64("partition_len")?.unwrap_or(0),
            retransmit: table.opt_bool("retransmit")?.unwrap_or(false),
            anti_entropy_interval: table.opt_u64("anti_entropy_interval")?.unwrap_or(0),
        };
        builder = builder.faults(faults);
        if let Some(name) = table.opt_str("mobility")? {
            builder = builder.mobility(match name {
                "all" => Mobility::All,
                "informed-only" => Mobility::InformedOnly,
                other => {
                    return Err(SpecError::UnknownName {
                        key: "mobility".to_string(),
                        value: other.to_string(),
                        allowed: "all, informed-only",
                    })
                }
            });
        }
        if let Some(name) = table.opt_str("exchange")? {
            builder = builder.exchange_rule(match name {
                "component" => ExchangeRule::Component,
                "one-hop" => ExchangeRule::OneHop,
                other => {
                    return Err(SpecError::UnknownName {
                        key: "exchange".to_string(),
                        value: other.to_string(),
                        allowed: "component, one-hop",
                    })
                }
            });
        }
        if let Some(name) = table.opt_str("metric")? {
            builder = builder.metric(match name {
                "time" => Metric::Time,
                "fraction" => Metric::Fraction,
                other => {
                    return Err(SpecError::UnknownName {
                        key: "metric".to_string(),
                        value: other.to_string(),
                        allowed: "time, fraction",
                    })
                }
            });
        }
        Ok(builder.build()?)
    }
}

/// Maps a [`NetworkError`] from spec parsing onto the TOML error for
/// the offending key, so the report points at the right line of the
/// schema rather than inventing a new error variant.
fn bad_network_value(e: NetworkError) -> SpecError {
    let (key, expected) = match e {
        NetworkError::DropProbOutOfRange => ("drop_prob", "finite number in [0, 1]"),
        NetworkError::ZeroGossipInterval => ("gossip_interval", "integer >= 1"),
    };
    SpecError::Toml(TomlError::BadValue {
        section: "scenario".to_string(),
        key: key.to_string(),
        expected,
    })
}

/// Renders an `f64` so the TOML subset parses it back as a float
/// (integral values keep a trailing `.0`).
fn format_toml_f64(x: f64) -> String {
    if x == x.trunc() && x.is_finite() {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} side={} k={} r={} metric={}",
            self.kind,
            self.config.side(),
            self.config.k(),
            self.config.radius(),
            self.metric
        )
    }
}

/// Builder for [`ScenarioSpec`]; validation happens at
/// [`build`](ScenarioSpecBuilder::build).
#[derive(Clone, Copy, Debug)]
pub struct ScenarioSpecBuilder {
    kind: ProcessKind,
    side: u32,
    k: usize,
    radius: u32,
    source: usize,
    max_steps: Option<u64>,
    mobility: Mobility,
    exchange_rule: ExchangeRule,
    metric: Metric,
    network: NetworkConfig,
    world: WorldConfig,
    faults: FaultConfig,
}

impl ScenarioSpecBuilder {
    /// Sets the transmission radius `r` (default 0).
    #[must_use]
    pub fn radius(mut self, r: u32) -> Self {
        self.radius = r;
        self
    }

    /// Sets the initially informed agent (default 0).
    #[must_use]
    pub fn source(mut self, source: usize) -> Self {
        self.source = source;
        self
    }

    /// Sets an explicit step cap (default
    /// [`SimConfig::default_step_cap`], re-derived per cell by
    /// [`ScenarioSpec::with_axes`]).
    #[must_use]
    pub fn max_steps(mut self, cap: u64) -> Self {
        self.max_steps = Some(cap);
        self
    }

    /// Sets the mobility rule (default [`Mobility::All`]; with
    /// [`ProcessKind::Broadcast`], [`Mobility::InformedOnly`] is the
    /// Frog model).
    #[must_use]
    pub fn mobility(mut self, mobility: Mobility) -> Self {
        self.mobility = mobility;
        self
    }

    /// Sets the exchange rule (default [`ExchangeRule::Component`];
    /// honored by broadcast-family processes).
    #[must_use]
    pub fn exchange_rule(mut self, rule: ExchangeRule) -> Self {
        self.exchange_rule = rule;
        self
    }

    /// Sets the reported metric (default [`Metric::Time`]).
    #[must_use]
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the network fault configuration (default
    /// [`NetworkConfig::IDEAL`]; honored only by
    /// [`ProcessKind::ProtocolBroadcast`] — any other kind rejects a
    /// non-ideal network at build time).
    #[must_use]
    pub fn network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Sets every world-model axis at once (default
    /// [`WorldConfig::DEFAULT`]).
    #[must_use]
    pub fn world(mut self, world: WorldConfig) -> Self {
        self.world = world;
        self
    }

    /// Sets every fault-injection/recovery axis at once (default
    /// [`FaultConfig::DEFAULT`]; honored only by
    /// [`ProcessKind::ProtocolBroadcast`] — any other kind rejects a
    /// non-trivial config at build time).
    #[must_use]
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the per-node per-tick crash probability (default 0;
    /// protocol twin only).
    #[must_use]
    pub fn crash_prob(mut self, prob: f64) -> Self {
        self.faults.crash_prob = prob;
        self
    }

    /// Sets how many ticks a crashed node stays down (default 1;
    /// protocol twin only).
    #[must_use]
    pub fn restart_delay(mut self, delay: u64) -> Self {
        self.faults.restart_delay = delay;
        self
    }

    /// Declares a partition window of `len` ticks starting at `start`
    /// (default none; protocol twin only).
    #[must_use]
    pub fn partition(mut self, start: u64, len: u64) -> Self {
        self.faults.partition_start = start;
        self.faults.partition_len = len;
        self
    }

    /// Enables ack-driven retransmission with exponential backoff
    /// (default off; protocol twin only).
    #[must_use]
    pub fn retransmit(mut self, on: bool) -> Self {
        self.faults.retransmit = on;
        self
    }

    /// Sets the anti-entropy digest interval in ticks (default 0, off;
    /// protocol twin only).
    #[must_use]
    pub fn anti_entropy_interval(mut self, interval: u64) -> Self {
        self.faults.anti_entropy_interval = interval;
        self
    }

    /// Sets the city-block wall density (default 0, the open grid;
    /// broadcast only).
    #[must_use]
    pub fn barrier_density(mut self, density: f64) -> Self {
        self.world.barrier_density = density;
        self
    }

    /// Sets the per-agent per-step replacement probability (default 0,
    /// no churn; broadcast only).
    #[must_use]
    pub fn churn_rate(mut self, rate: f64) -> Self {
        self.world.churn_rate = rate;
        self
    }

    /// Sets the fraction of agents in the scaled-radius class
    /// (default 0; broadcast only).
    #[must_use]
    pub fn hetero_fraction(mut self, fraction: f64) -> Self {
        self.world.hetero_fraction = fraction;
        self
    }

    /// Sets the radius multiplier of the heterogeneous class
    /// (default 1; broadcast only).
    #[must_use]
    pub fn hetero_factor(mut self, factor: f64) -> Self {
        self.world.hetero_factor = factor;
        self
    }

    /// Sets the fraction of agents in the fast class (default 0).
    #[must_use]
    pub fn speed_fraction(mut self, fraction: f64) -> Self {
        self.world.speed_fraction = fraction;
        self
    }

    /// Sets the lazy sub-steps per step of the fast class (default 1).
    #[must_use]
    pub fn speed_factor(mut self, factor: u32) -> Self {
        self.world.speed_factor = factor;
        self
    }

    /// Sets the number of initially informed agents — the prefix
    /// `0..num_sources` (default 1; broadcast and infection).
    #[must_use]
    pub fn num_sources(mut self, sources: usize) -> Self {
        self.world.num_sources = sources;
        self
    }

    /// Anchors every source at the worst-case corner node instead of a
    /// uniform draw (default false; broadcast and infection).
    #[must_use]
    pub fn adversarial_sources(mut self, adversarial: bool) -> Self {
        self.world.adversarial_sources = adversarial;
        self
    }

    /// Validates and produces the spec.
    ///
    /// The core rules are exactly [`SimConfigBuilder::build`]'s — i.e.
    /// exactly what the [`Simulation`] constructors reject — so a spec
    /// that builds can always instantiate its simulation (pinned by the
    /// `scenario_proptests` suite). On top of those, a declared setting
    /// the chosen kind would silently ignore is rejected: gossip
    /// implements neither mobility rules nor one-hop exchange, and
    /// infection (contact-only by definition) implements neither
    /// one-hop exchange nor a nonzero radius — a spec must describe
    /// the run that actually happens.
    ///
    /// [`SimConfigBuilder::build`]: crate::SimConfigBuilder::build
    ///
    /// # Errors
    ///
    /// As [`SimConfigBuilder::build`] ([`SimError::Grid`],
    /// [`SimError::TooFewAgents`], [`SimError::SourceOutOfRange`],
    /// [`SimError::ZeroStepCap`]), plus
    /// [`SimError::UnsupportedSetting`] for kind/setting combinations
    /// the processes do not implement,
    /// [`SimError::InvalidWorldSetting`] for out-of-range world axes,
    /// and [`SimError::Grid`] when a declared barrier density cannot
    /// produce a connected map on this grid.
    pub fn build(self) -> Result<ScenarioSpec, SimError> {
        // Constructor-equivalent validation first, so the error for an
        // invalid configuration is identical to the Simulation path;
        // the stricter kind/setting checks apply only to otherwise
        // valid specs.
        let mut cb = SimConfig::builder(self.side, self.k)
            .radius(self.radius)
            .source(self.source)
            .mobility(self.mobility)
            .exchange_rule(self.exchange_rule);
        if let Some(cap) = self.max_steps {
            cb = cb.max_steps(cap);
        }
        let config = cb.build()?;
        let unsupported = |setting| SimError::UnsupportedSetting {
            kind: self.kind.as_str(),
            setting,
        };
        match self.kind {
            ProcessKind::Gossip => {
                if self.mobility != Mobility::All {
                    return Err(unsupported("mobility = \"informed-only\""));
                }
                if self.exchange_rule != ExchangeRule::Component {
                    return Err(unsupported("exchange = \"one-hop\""));
                }
            }
            ProcessKind::Infection => {
                if self.exchange_rule != ExchangeRule::Component {
                    return Err(unsupported("exchange = \"one-hop\""));
                }
                if self.radius != 0 {
                    return Err(unsupported("radius > 0 (infection is contact-only)"));
                }
            }
            ProcessKind::ProtocolBroadcast => {
                if self.mobility != Mobility::All {
                    return Err(unsupported("mobility = \"informed-only\""));
                }
                if self.exchange_rule != ExchangeRule::Component {
                    return Err(unsupported("exchange = \"one-hop\""));
                }
            }
            ProcessKind::Broadcast | ProcessKind::Coverage => {}
        }
        // Only the protocol twin implements network faults; any other
        // kind would silently ignore them.
        if self.kind != ProcessKind::ProtocolBroadcast && !self.network.is_ideal() {
            return Err(unsupported(
                "network settings (drop_prob / delay_max / send_cap / gossip_interval)",
            ));
        }
        // Same for node/partition faults and recovery: range checks
        // mirror the protocol constructors, then the combination check.
        self.faults.validate()?;
        if self.kind != ProcessKind::ProtocolBroadcast && !self.faults.is_trivial() {
            return Err(unsupported(
                "fault settings (crash_prob / restart_delay / partition_* / retransmit / anti_entropy_interval)",
            ));
        }
        // World axes: range checks mirror the world-aware constructors
        // exactly, then combination checks reject every axis the chosen
        // kind (or exchange rule) would silently ignore or mishandle.
        let w = &self.world;
        w.validate()?;
        let world_axes_active =
            w.has_barriers() || w.has_churn() || w.has_hetero_radii() || w.has_speed_classes();
        if world_axes_active && self.kind != ProcessKind::Broadcast {
            return Err(unsupported(
                "world axes (barrier_density / churn_rate / hetero_* / speed_*)",
            ));
        }
        if (w.num_sources > 1 || w.adversarial_sources)
            && !matches!(self.kind, ProcessKind::Broadcast | ProcessKind::Infection)
        {
            return Err(unsupported(
                "source axes (num_sources / adversarial_sources)",
            ));
        }
        // The one-hop exchange scans positions with a uniform radius
        // through its own unobstructed hash and never resets agents, so
        // it cannot honor walls, per-agent radii or churn.
        if self.exchange_rule == ExchangeRule::OneHop
            && (w.has_barriers() || w.has_churn() || w.has_hetero_radii())
        {
            return Err(unsupported(
                "exchange = \"one-hop\" with barrier/churn/hetero world axes",
            ));
        }
        // Sources live on the agent prefix: a non-zero source index
        // would either churn out (losing immortality) or contradict
        // the multi-source prefix.
        if self.source != 0 && (w.has_churn() || w.num_sources > 1) {
            return Err(unsupported(
                "source != 0 with churn_rate > 0 or num_sources > 1",
            ));
        }
        // Constructor-equivalent with Broadcast::with_sources.
        if w.num_sources > self.k {
            return Err(SimError::SourceOutOfRange {
                source: w.num_sources - 1,
                k: self.k,
            });
        }
        // The wall layout is part of validity: a density that closes
        // every door (or a grid too small for blocks) must fail at
        // build time, with the same GridError the constructors raise.
        w.build_barriers(self.side)?;
        Ok(ScenarioSpec {
            kind: self.kind,
            config,
            metric: self.metric,
            network: self.network,
            world: self.world,
            faults: self.faults,
            explicit_max_steps: self.max_steps.is_some(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_applies_defaults_and_validates() {
        let spec = ScenarioSpec::builder(ProcessKind::Broadcast, 32, 8)
            .build()
            .unwrap();
        assert_eq!(spec.kind(), ProcessKind::Broadcast);
        assert_eq!(spec.metric(), Metric::Time);
        assert_eq!(spec.config().radius(), 0);
        assert_eq!(
            spec.config().max_steps(),
            SimConfig::default_step_cap(32, 8)
        );
        assert_eq!(
            ScenarioSpec::builder(ProcessKind::Gossip, 8, 1)
                .build()
                .unwrap_err(),
            SimError::TooFewAgents { k: 1 }
        );
        assert_eq!(
            ScenarioSpec::builder(ProcessKind::Coverage, 8, 4)
                .source(4)
                .build()
                .unwrap_err(),
            SimError::SourceOutOfRange { source: 4, k: 4 }
        );
    }

    #[test]
    fn settings_a_kind_cannot_honor_are_rejected() {
        // Gossip implements neither mobility rules nor one-hop
        // exchange; infection implements no one-hop exchange. The run
        // would silently ignore the setting, so the build must fail.
        assert_eq!(
            ScenarioSpec::builder(ProcessKind::Gossip, 12, 6)
                .mobility(Mobility::InformedOnly)
                .build()
                .unwrap_err(),
            SimError::UnsupportedSetting {
                kind: "gossip",
                setting: "mobility = \"informed-only\"",
            }
        );
        assert_eq!(
            ScenarioSpec::builder(ProcessKind::Gossip, 12, 6)
                .exchange_rule(ExchangeRule::OneHop)
                .build()
                .unwrap_err(),
            SimError::UnsupportedSetting {
                kind: "gossip",
                setting: "exchange = \"one-hop\"",
            }
        );
        assert_eq!(
            ScenarioSpec::builder(ProcessKind::Infection, 12, 6)
                .exchange_rule(ExchangeRule::OneHop)
                .build()
                .unwrap_err(),
            SimError::UnsupportedSetting {
                kind: "infection",
                setting: "exchange = \"one-hop\"",
            }
        );
        assert_eq!(
            ScenarioSpec::builder(ProcessKind::Infection, 12, 6)
                .radius(1)
                .build()
                .unwrap_err(),
            SimError::UnsupportedSetting {
                kind: "infection",
                setting: "radius > 0 (infection is contact-only)",
            }
        );
        // Constructor-equivalent errors take precedence over the
        // stricter kind checks.
        assert_eq!(
            ScenarioSpec::builder(ProcessKind::Infection, 0, 6)
                .radius(1)
                .build()
                .unwrap_err(),
            SimError::Grid(sparsegossip_grid::GridError::ZeroSide)
        );
        // Broadcast and coverage honor both settings.
        for kind in [ProcessKind::Broadcast, ProcessKind::Coverage] {
            assert!(ScenarioSpec::builder(kind, 12, 6)
                .mobility(Mobility::InformedOnly)
                .exchange_rule(ExchangeRule::OneHop)
                .build()
                .is_ok());
        }
        // Infection still honors the mobility rule (it delegates to
        // the driver's mobility mask).
        assert!(ScenarioSpec::builder(ProcessKind::Infection, 12, 6)
            .mobility(Mobility::InformedOnly)
            .build()
            .is_ok());
    }

    /// The largest radius `kind` accepts on test grids (infection is
    /// contact-only).
    fn test_radius(kind: ProcessKind) -> u32 {
        match kind {
            ProcessKind::Infection => 0,
            _ => 1,
        }
    }

    #[test]
    fn every_kind_runs_deterministically() {
        for kind in ProcessKind::ALL {
            let spec = ScenarioSpec::builder(kind, 12, 6)
                .radius(test_radius(kind))
                .build()
                .unwrap();
            let a = spec.run_seed(7);
            let b = spec.run_seed(7);
            assert_eq!(a, b, "{kind}: same seed must reproduce");
            assert!(a >= 0.0, "{kind}: metric must be non-negative");
        }
    }

    #[test]
    fn fraction_metric_is_in_unit_interval() {
        for kind in ProcessKind::ALL {
            let spec = ScenarioSpec::builder(kind, 12, 6)
                .radius(test_radius(kind))
                .max_steps(3)
                .metric(Metric::Fraction)
                .build()
                .unwrap();
            let f = spec.run_seed(3);
            assert!(
                (0.0..=1.0).contains(&f),
                "{kind}: fraction {f} out of range"
            );
        }
    }

    #[test]
    fn time_metric_is_capped_by_max_steps() {
        // Two agents, huge grid, 5-step cap: cannot finish, so Time
        // reports the cap.
        let spec = ScenarioSpec::builder(ProcessKind::Broadcast, 256, 2)
            .max_steps(5)
            .build()
            .unwrap();
        assert_eq!(spec.run_seed(1), 5.0);
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs_across_kinds() {
        let mut scratch = SimScratch::new();
        for kind in ProcessKind::ALL {
            let spec = ScenarioSpec::builder(kind, 14, 7)
                .radius(test_radius(kind))
                .build()
                .unwrap();
            for seed in [1u64, 2, 3] {
                assert_eq!(
                    spec.run_seed_with_scratch(&mut scratch, seed),
                    spec.run_seed(seed),
                    "{kind} seed {seed}: recycled scratch changed the outcome"
                );
            }
        }
    }

    #[test]
    fn with_axes_rederives_default_cap_but_keeps_explicit() {
        let auto = ScenarioSpec::builder(ProcessKind::Broadcast, 32, 8)
            .build()
            .unwrap();
        let resized = auto.with_axes(64, 16, 3).unwrap();
        assert_eq!(
            resized.config().max_steps(),
            SimConfig::default_step_cap(64, 16)
        );
        assert_eq!(resized.config().radius(), 3);
        let pinned = ScenarioSpec::builder(ProcessKind::Broadcast, 32, 8)
            .max_steps(777)
            .build()
            .unwrap();
        assert_eq!(
            pinned.with_axes(64, 16, 3).unwrap().config().max_steps(),
            777
        );
        // Axis values re-validate: k below the base source fails.
        let sourced = ScenarioSpec::builder(ProcessKind::Broadcast, 32, 8)
            .source(5)
            .build()
            .unwrap();
        assert_eq!(
            sourced.with_axes(32, 4, 0).unwrap_err(),
            SimError::SourceOutOfRange { source: 5, k: 4 }
        );
    }

    #[test]
    fn protocol_twin_validates_like_its_process() {
        // The twin defines its own network semantics: mobility rules
        // and one-hop exchange are build errors, as for gossip.
        assert_eq!(
            ScenarioSpec::builder(ProcessKind::ProtocolBroadcast, 12, 6)
                .mobility(Mobility::InformedOnly)
                .build()
                .unwrap_err(),
            SimError::UnsupportedSetting {
                kind: "protocol-broadcast",
                setting: "mobility = \"informed-only\"",
            }
        );
        assert_eq!(
            ScenarioSpec::builder(ProcessKind::ProtocolBroadcast, 12, 6)
                .exchange_rule(ExchangeRule::OneHop)
                .build()
                .unwrap_err(),
            SimError::UnsupportedSetting {
                kind: "protocol-broadcast",
                setting: "exchange = \"one-hop\"",
            }
        );
        // Network faults are the twin's alone: every other kind would
        // silently ignore them, so declaring them is a build error.
        let lossy = NetworkConfig::new(0.5, 0, 0, 1).unwrap();
        for kind in [
            ProcessKind::Broadcast,
            ProcessKind::Gossip,
            ProcessKind::Infection,
            ProcessKind::Coverage,
        ] {
            assert!(
                matches!(
                    ScenarioSpec::builder(kind, 12, 6)
                        .network(lossy)
                        .build()
                        .unwrap_err(),
                    SimError::UnsupportedSetting { .. }
                ),
                "{kind} accepted a non-ideal network"
            );
        }
        let spec = ScenarioSpec::builder(ProcessKind::ProtocolBroadcast, 12, 6)
            .radius(1)
            .network(lossy)
            .build()
            .unwrap();
        assert_eq!(spec.network(), &lossy);
    }

    #[test]
    fn protocol_twin_time_matches_analytic_broadcast_per_seed() {
        // On the ideal network the spec-level twin reproduces the
        // analytic broadcast's T_B seed for seed.
        let twin = ScenarioSpec::builder(ProcessKind::ProtocolBroadcast, 16, 6)
            .radius(2)
            .build()
            .unwrap();
        let sim = ScenarioSpec::builder(ProcessKind::Broadcast, 16, 6)
            .radius(2)
            .build()
            .unwrap();
        for seed in [2u64, 4, 8] {
            assert_eq!(twin.run_seed(seed), sim.run_seed(seed), "seed {seed}");
        }
    }

    #[test]
    fn with_network_rederives_and_revalidates() {
        let base = ScenarioSpec::builder(ProcessKind::ProtocolBroadcast, 16, 6)
            .radius(1)
            .build()
            .unwrap();
        let lossy = NetworkConfig::new(0.25, 1, 2, 3).unwrap();
        let derived = base.with_network(lossy).unwrap();
        assert_eq!(derived.network(), &lossy);
        assert_eq!(derived.config(), base.config());
        let analytic = ScenarioSpec::builder(ProcessKind::Broadcast, 16, 6)
            .radius(1)
            .build()
            .unwrap();
        assert!(matches!(
            analytic.with_network(lossy).unwrap_err(),
            SimError::UnsupportedSetting { .. }
        ));
    }

    #[test]
    fn network_keys_round_trip_and_stay_out_of_default_toml() {
        let ideal = ScenarioSpec::builder(ProcessKind::ProtocolBroadcast, 16, 6)
            .radius(1)
            .build()
            .unwrap();
        // Default network values never appear in the rendering, so
        // pre-network spec files stay byte-identical.
        let text = ideal.to_toml();
        for key in ["drop_prob", "delay_max", "send_cap", "gossip_interval"] {
            assert!(!text.contains(key), "ideal spec rendered {key}:\n{text}");
        }
        let lossy = ideal
            .with_network(NetworkConfig::new(0.25, 2, 3, 4).unwrap())
            .unwrap();
        let text = lossy.to_toml();
        assert!(text.contains("drop_prob = 0.25\n"), "{text}");
        assert!(text.contains("delay_max = 2\n"), "{text}");
        assert!(text.contains("send_cap = 3\n"), "{text}");
        assert!(text.contains("gossip_interval = 4\n"), "{text}");
        assert_eq!(ScenarioSpec::from_toml_str(&text).unwrap(), lossy);
    }

    #[test]
    fn fault_keys_round_trip_and_stay_out_of_default_toml() {
        let plain = ScenarioSpec::builder(ProcessKind::ProtocolBroadcast, 16, 6)
            .radius(1)
            .build()
            .unwrap();
        let text = plain.to_toml();
        for key in [
            "crash_prob",
            "restart_delay",
            "partition_start",
            "partition_len",
            "retransmit",
            "anti_entropy_interval",
        ] {
            assert!(
                !text.contains(key),
                "trivial faults rendered {key}:\n{text}"
            );
        }
        let faulty = ScenarioSpec::builder(ProcessKind::ProtocolBroadcast, 16, 6)
            .radius(1)
            .crash_prob(0.05)
            .restart_delay(3)
            .partition(10, 5)
            .retransmit(true)
            .anti_entropy_interval(4)
            .build()
            .unwrap();
        let text = faulty.to_toml();
        assert!(text.contains("crash_prob = 0.05\n"), "{text}");
        assert!(text.contains("restart_delay = 3\n"), "{text}");
        assert!(text.contains("partition_start = 10\n"), "{text}");
        assert!(text.contains("partition_len = 5\n"), "{text}");
        assert!(text.contains("retransmit = true\n"), "{text}");
        assert!(text.contains("anti_entropy_interval = 4\n"), "{text}");
        assert_eq!(ScenarioSpec::from_toml_str(&text).unwrap(), faulty);
        assert_ne!(plain.content_hash(), faulty.content_hash());
    }

    #[test]
    fn fault_settings_are_the_twins_alone() {
        for kind in [
            ProcessKind::Broadcast,
            ProcessKind::Gossip,
            ProcessKind::Infection,
            ProcessKind::Coverage,
        ] {
            assert!(
                matches!(
                    ScenarioSpec::builder(kind, 12, 6)
                        .crash_prob(0.1)
                        .build()
                        .unwrap_err(),
                    SimError::UnsupportedSetting { .. }
                ),
                "{kind} accepted a fault config"
            );
            assert!(
                matches!(
                    ScenarioSpec::builder(kind, 12, 6)
                        .retransmit(true)
                        .build()
                        .unwrap_err(),
                    SimError::UnsupportedSetting { .. }
                ),
                "{kind} accepted a recovery config"
            );
        }
        // Out-of-range axes fail with the constructor-pinned error even
        // on the twin itself.
        assert_eq!(
            ScenarioSpec::builder(ProcessKind::ProtocolBroadcast, 12, 6)
                .crash_prob(1.5)
                .build()
                .unwrap_err(),
            SimError::InvalidFaultSetting {
                key: "crash_prob",
                expected: "finite number in [0, 1]",
            }
        );
        assert_eq!(
            ScenarioSpec::builder(ProcessKind::ProtocolBroadcast, 12, 6)
                .restart_delay(0)
                .build()
                .unwrap_err(),
            SimError::InvalidFaultSetting {
                key: "restart_delay",
                expected: "integer >= 1",
            }
        );
    }

    #[test]
    fn faulty_twin_runs_and_with_faults_rederives() {
        let base = ScenarioSpec::builder(ProcessKind::ProtocolBroadcast, 12, 6)
            .radius(2)
            .build()
            .unwrap();
        let faults = FaultConfig {
            crash_prob: 0.02,
            retransmit: true,
            anti_entropy_interval: 2,
            ..FaultConfig::DEFAULT
        };
        let faulty = base.with_faults(faults).unwrap();
        assert_eq!(faulty.faults(), &faults);
        assert_eq!(faulty.config(), base.config());
        let a = faulty.run_seed(5);
        assert_eq!(a, faulty.run_seed(5), "faulty runs must reproduce");
        // A trivial fault config leaves the metric untouched.
        assert_eq!(
            base.with_faults(FaultConfig::DEFAULT).unwrap().run_seed(5),
            base.run_seed(5)
        );
        // Non-twin kinds reject the axis at re-derivation.
        let analytic = ScenarioSpec::builder(ProcessKind::Broadcast, 12, 6)
            .build()
            .unwrap();
        assert!(matches!(
            analytic.with_faults(faults).unwrap_err(),
            SimError::UnsupportedSetting { .. }
        ));
    }

    #[test]
    fn parse_rejects_bad_network_values() {
        let base = "[scenario]\nprocess = \"protocol-broadcast\"\nside = 8\nk = 4\n";
        assert!(matches!(
            ScenarioSpec::from_toml_str(&format!("{base}drop_prob = 1.5\n")),
            Err(SpecError::Toml(TomlError::BadValue { ref key, .. })) if key == "drop_prob"
        ));
        assert!(matches!(
            ScenarioSpec::from_toml_str(&format!("{base}gossip_interval = 0\n")),
            Err(SpecError::Toml(TomlError::BadValue { ref key, .. })) if key == "gossip_interval"
        ));
    }

    #[test]
    fn toml_round_trip_is_identity() {
        let specs = [
            ScenarioSpec::builder(ProcessKind::Broadcast, 48, 24)
                .radius(3)
                .source(2)
                .mobility(Mobility::InformedOnly)
                .exchange_rule(ExchangeRule::OneHop)
                .max_steps(123_456)
                .metric(Metric::Fraction)
                .build()
                .unwrap(),
            ScenarioSpec::builder(ProcessKind::Infection, 20, 5)
                .build()
                .unwrap(),
        ];
        for spec in specs {
            let text = spec.to_toml();
            let parsed = ScenarioSpec::from_toml_str(&text).unwrap();
            assert_eq!(spec, parsed, "round trip changed the spec:\n{text}");
        }
    }

    #[test]
    fn toml_round_trip_preserves_every_world_key() {
        // Each world axis alone, then all eight keys at once: the
        // emitted TOML must parse back to the identical spec.
        let specs = [
            ScenarioSpec::builder(ProcessKind::Broadcast, 32, 16)
                .barrier_density(0.25)
                .build()
                .unwrap(),
            ScenarioSpec::builder(ProcessKind::Broadcast, 32, 16)
                .churn_rate(0.05)
                .build()
                .unwrap(),
            ScenarioSpec::builder(ProcessKind::Broadcast, 32, 16)
                .hetero_fraction(0.5)
                .hetero_factor(2.0)
                .build()
                .unwrap(),
            ScenarioSpec::builder(ProcessKind::Broadcast, 32, 16)
                .speed_fraction(0.25)
                .speed_factor(3)
                .build()
                .unwrap(),
            ScenarioSpec::builder(ProcessKind::Broadcast, 32, 16)
                .num_sources(4)
                .adversarial_sources(true)
                .build()
                .unwrap(),
            ScenarioSpec::builder(ProcessKind::Broadcast, 32, 16)
                .radius(2)
                .barrier_density(0.1)
                .churn_rate(0.02)
                .hetero_fraction(0.5)
                .hetero_factor(1.5)
                .speed_fraction(0.3)
                .speed_factor(2)
                .num_sources(2)
                .adversarial_sources(true)
                .build()
                .unwrap(),
            ScenarioSpec::builder(ProcessKind::Infection, 20, 5)
                .num_sources(3)
                .build()
                .unwrap(),
        ];
        for spec in specs {
            let text = spec.to_toml();
            let parsed = ScenarioSpec::from_toml_str(&text).unwrap();
            assert_eq!(spec, parsed, "round trip changed the spec:\n{text}");
        }
    }

    #[test]
    fn default_world_emits_no_world_keys() {
        // A trivial world must keep the emitted TOML byte-identical to
        // the pre-world format: none of the eight keys appear.
        let spec = ScenarioSpec::builder(ProcessKind::Broadcast, 32, 16)
            .radius(2)
            .build()
            .unwrap();
        let text = spec.to_toml();
        for key in [
            "barrier_density",
            "churn_rate",
            "hetero_fraction",
            "hetero_factor",
            "speed_fraction",
            "speed_factor",
            "num_sources",
            "adversarial_sources",
        ] {
            assert!(!text.contains(key), "default world leaked {key}:\n{text}");
        }
    }

    #[test]
    fn parse_rejects_schema_violations() {
        assert!(matches!(
            ScenarioSpec::from_toml_str("[scenario]\nprocess = \"warp\"\nside = 8\nk = 4\n"),
            Err(SpecError::UnknownName { .. })
        ));
        assert!(matches!(
            ScenarioSpec::from_toml_str(
                "[scenario]\nprocess = \"broadcast\"\nside = 8\nk = 4\ntypo = 1\n"
            ),
            Err(SpecError::UnknownKey { .. })
        ));
        assert!(matches!(
            ScenarioSpec::from_toml_str("[scenario]\nprocess = \"broadcast\"\nside = 8\nk = 1\n"),
            Err(SpecError::Sim(SimError::TooFewAgents { k: 1 }))
        ));
        assert!(matches!(
            ScenarioSpec::from_toml_str("[other]\nx = 1\n"),
            Err(SpecError::Toml(TomlError::MissingSection(_)))
        ));
        assert!(matches!(
            ScenarioSpec::from_toml_str(
                "[scenario]\nprocess = \"broadcast\"\nside = 8\nk = 4\nmetric = \"pace\"\n"
            ),
            Err(SpecError::UnknownName { .. })
        ));
        assert!(matches!(
            ScenarioSpec::from_toml_str(
                "[scenario]\nprocess = \"broadcast\"\nside = 8\nk = 4\nmobility = \"jets\"\n"
            ),
            Err(SpecError::UnknownName { .. })
        ));
        assert!(matches!(
            ScenarioSpec::from_toml_str(
                "[scenario]\nprocess = \"broadcast\"\nside = 8\nk = 4\nexchange = \"warp\"\n"
            ),
            Err(SpecError::UnknownName { .. })
        ));
    }

    #[test]
    fn content_hash_tracks_spec_equality() {
        let a = ScenarioSpec::builder(ProcessKind::Broadcast, 16, 8)
            .build()
            .unwrap();
        let b = ScenarioSpec::builder(ProcessKind::Broadcast, 16, 8)
            .build()
            .unwrap();
        assert_eq!(a.content_hash(), b.content_hash(), "equal specs hash equal");
        let c = a.with_axes(16, 8, 2).unwrap();
        assert_ne!(a.content_hash(), c.content_hash(), "radius is content");
        let d = ScenarioSpec::builder(ProcessKind::Broadcast, 16, 8)
            .metric(Metric::Fraction)
            .build()
            .unwrap();
        assert_ne!(a.content_hash(), d.content_hash(), "metric is content");
    }

    #[test]
    fn spec_error_display_and_source() {
        use std::error::Error;
        let e = SpecError::from(SimError::ZeroStepCap);
        assert!(e.to_string().contains("positive"));
        assert!(e.source().is_some());
        let e = SpecError::UnknownKey {
            section: "scenario".into(),
            key: "oops".into(),
        };
        assert!(e.to_string().contains("oops"));
        assert!(e.source().is_none());
    }
}
