//! Comparison models from the paper's related-work discussion (§1.1):
//! the dense-MANET model of Clementi, Monti, Pasquale and Silvestri
//! ([`clementi`]) and the refuted analytic infection-time bound of
//! Wang, Kapadia and Krishnamachari ([`wang`]).

pub mod clementi;
pub mod wang;

pub use clementi::{ClementiConfig, ClementiOutcome, ClementiSim};
pub use wang::{claimed_infection_time, fit_error_against};
