//! The analytic infection-time bound claimed by Wang, Kapadia and
//! Krishnamachari (SIGMOBILE MobilityModels 2008):
//! `T ≈ Θ((n log n log k) / k)`.
//!
//! Pettarin et al. prove this claim **incorrect**: the true broadcast
//! time below percolation is `Θ̃(n/√k)`, which decays like `k^{-1/2}`
//! rather than `k^{-1}` (up to logs). Experiment E12 fits both curves
//! against measured data and reports which one wins.

/// The claimed Wang et al. infection time `(n · ln n · ln k) / k`
/// (natural logarithms; the asymptotic constant is unknowable, so use
/// this only for *shape* fits).
///
/// # Examples
///
/// ```
/// use sparsegossip_core::baseline::claimed_infection_time;
/// let t = claimed_infection_time(10_000.0, 100.0);
/// assert!(t > 0.0);
/// // Quadrupling k roughly quarters the claimed bound (up to log k).
/// let t4 = claimed_infection_time(10_000.0, 400.0);
/// assert!(t4 < t / 2.0);
/// ```
#[must_use]
pub fn claimed_infection_time(n: f64, k: f64) -> f64 {
    n * n.ln().max(1.0) * k.ln().max(1.0) / k
}

/// Least-squares fit error (in log space) of measured times against a
/// reference curve, with the multiplicative constant profiled out.
///
/// For measurements `(kᵢ, tᵢ)` and curve `f`, computes the residual
/// variance of `ln tᵢ − ln f(kᵢ)` around its mean. A *shape-correct*
/// curve gives a small value regardless of constants; a wrong exponent
/// leaves a trend and a large value.
///
/// Returns `None` if fewer than two finite positive pairs exist.
///
/// # Examples
///
/// ```
/// use sparsegossip_core::baseline::fit_error_against;
/// // Data exactly on 7·k^{-1/2}: zero error against k^{-1/2}.
/// let ks = [4.0, 16.0, 64.0];
/// let ts = [3.5, 1.75, 0.875];
/// let err = fit_error_against(&ks, &ts, |k| k.powf(-0.5)).unwrap();
/// assert!(err < 1e-20);
/// ```
#[must_use]
pub fn fit_error_against<F: Fn(f64) -> f64>(ks: &[f64], ts: &[f64], curve: F) -> Option<f64> {
    let pairs: Vec<(f64, f64)> = ks
        .iter()
        .zip(ts)
        .filter(|(k, t)| k.is_finite() && t.is_finite() && **k > 0.0 && **t > 0.0)
        .map(|(k, t)| (*k, *t))
        .collect();
    if pairs.len() < 2 {
        return None;
    }
    let residuals: Vec<f64> = pairs
        .iter()
        .map(|(k, t)| {
            let c = curve(*k);
            t.ln() - c.ln()
        })
        .collect();
    let mean = residuals.iter().sum::<f64>() / residuals.len() as f64;
    let var = residuals.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / residuals.len() as f64;
    Some(var)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claimed_bound_decays_roughly_linearly_in_k() {
        let n = 65_536.0;
        let t1 = claimed_infection_time(n, 16.0);
        let t2 = claimed_infection_time(n, 64.0);
        // log k grows, so decay is slightly slower than 4×; between 2×
        // and 4× here.
        let ratio = t1 / t2;
        assert!(ratio > 2.0 && ratio < 4.5, "ratio {ratio}");
    }

    #[test]
    fn fit_error_prefers_the_true_exponent() {
        // Synthesize data with exponent −1/2 and compare fits.
        let ks: Vec<f64> = (2..10).map(|i| f64::from(1 << i)).collect();
        let ts: Vec<f64> = ks.iter().map(|k| 11.0 * k.powf(-0.5)).collect();
        let good = fit_error_against(&ks, &ts, |k| k.powf(-0.5)).unwrap();
        let bad = fit_error_against(&ks, &ts, |k| k.powf(-1.0)).unwrap();
        assert!(good < bad / 100.0, "good {good} vs bad {bad}");
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert!(fit_error_against(&[1.0], &[2.0], |k| k).is_none());
        assert!(fit_error_against(&[1.0, -1.0], &[2.0, 3.0], |k| k).is_none());
        assert!(fit_error_against(&[], &[], |k| k).is_none());
    }
}
