//! The dense-MANET information-spreading model of Clementi et al.
//! (IPDPS 2009 / ICALP 2009), the paper's main prior-work baseline.
//!
//! Differences from the Pettarin et al. model:
//!
//! * **density**: results apply only for `k = Θ(n)` agents;
//! * **motion**: at each step an agent *jumps* to a uniformly random
//!   node within L1 distance `ρ` of its position (not a nearest-
//!   neighbor walk);
//! * **exchange**: information travels **one hop per step** along the
//!   distance-`R` graph (no instantaneous in-component flooding).
//!
//! Their bounds: `T_B = Θ(√n / R)` w.h.p. when `ρ = O(R)`,
//! `R = Ω(√log n)`; and `T_B = O(√n/ρ + log n)` when
//! `ρ = Ω(max{R, √log n})`. Experiment E14 reproduces the `√n/R` shape.

use rand::RngExt;
use sparsegossip_conngraph::SpatialHash;
use sparsegossip_grid::{Grid, Point, Topology};
use sparsegossip_walks::BitSet;

use crate::SimError;

/// Parameters of a Clementi-model run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClementiConfig {
    /// Grid side (`n = side²` nodes).
    pub side: u32,
    /// Number of agents (the model's guarantees need `k = Θ(n)`).
    pub k: usize,
    /// Transmission radius `R` (one-hop exchange per step).
    pub exchange_radius: u32,
    /// Jump radius `ρ` (uniform jump within L1 distance ρ).
    pub jump_radius: u32,
    /// Step cap.
    pub max_steps: u64,
}

/// Outcome of a Clementi-model run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClementiOutcome {
    /// First step at which everyone was informed, if any.
    pub broadcast_time: Option<u64>,
    /// Informed count at the end.
    pub informed: usize,
    /// Agent count.
    pub k: usize,
}

impl ClementiOutcome {
    /// Whether the broadcast completed within the cap.
    #[inline]
    #[must_use]
    pub fn completed(&self) -> bool {
        self.broadcast_time.is_some()
    }
}

/// Simulator for the Clementi et al. dense-MANET model.
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use sparsegossip_core::baseline::{ClementiConfig, ClementiSim};
///
/// let config = ClementiConfig {
///     side: 32,
///     k: 512,                 // dense: k = n/2
///     exchange_radius: 4,
///     jump_radius: 2,
///     max_steps: 100_000,
/// };
/// let mut rng = SmallRng::seed_from_u64(8);
/// let mut sim = ClementiSim::new(&config, &mut rng)?;
/// let out = sim.run(&mut rng);
/// assert!(out.completed());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct ClementiSim {
    grid: Grid,
    positions: Vec<Point>,
    informed: BitSet,
    informed_count: usize,
    config: ClementiConfig,
    time: u64,
}

impl ClementiSim {
    /// Creates a simulation with agents placed uniformly at random and
    /// agent 0 informed. A step-0 one-hop exchange is applied.
    ///
    /// # Errors
    ///
    /// * [`SimError::Grid`] on a bad side;
    /// * [`SimError::TooFewAgents`] if `k < 2`;
    /// * [`SimError::ZeroStepCap`] if `max_steps == 0`.
    pub fn new<R: RngExt>(config: &ClementiConfig, rng: &mut R) -> Result<Self, SimError> {
        let grid = Grid::new(config.side)?;
        if config.k < 2 {
            return Err(SimError::TooFewAgents { k: config.k });
        }
        if config.max_steps == 0 {
            return Err(SimError::ZeroStepCap);
        }
        let positions = (0..config.k).map(|_| grid.random_point(rng)).collect();
        let mut informed = BitSet::new(config.k);
        informed.insert(0);
        let mut sim = Self {
            grid,
            positions,
            informed,
            informed_count: 1,
            config: *config,
            time: 0,
        };
        sim.exchange_one_hop();
        Ok(sim)
    }

    /// Steps taken so far.
    #[inline]
    #[must_use]
    pub fn time(&self) -> u64 {
        self.time
    }

    /// The number of informed agents.
    #[inline]
    #[must_use]
    pub fn informed_count(&self) -> usize {
        self.informed_count
    }

    /// Whether everyone is informed.
    #[inline]
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.informed_count == self.config.k
    }

    /// Advances one step: jump, then one-hop exchange.
    pub fn step<R: RngExt>(&mut self, rng: &mut R) {
        self.jump_all(rng);
        self.time += 1;
        self.exchange_one_hop();
    }

    /// Runs until completion or the step cap.
    pub fn run<R: RngExt>(&mut self, rng: &mut R) -> ClementiOutcome {
        while !self.is_complete() && self.time < self.config.max_steps {
            self.step(rng);
        }
        ClementiOutcome {
            broadcast_time: self.is_complete().then_some(self.time),
            informed: self.informed_count,
            k: self.config.k,
        }
    }

    /// Jumps every agent to a uniform node within L1 distance ρ
    /// (rejection-sampled; the boundary simply truncates the ball).
    fn jump_all<R: RngExt>(&mut self, rng: &mut R) {
        let rho = i64::from(self.config.jump_radius);
        let side = i64::from(self.grid.side());
        for p in &mut self.positions {
            loop {
                let dx = rng.random_range(-rho..=rho);
                let dy = rng.random_range(-rho..=rho);
                if dx.abs() + dy.abs() > rho {
                    continue;
                }
                let nx = i64::from(p.x) + dx;
                let ny = i64::from(p.y) + dy;
                if nx >= 0 && ny >= 0 && nx < side && ny < side {
                    *p = Point::new(nx as u32, ny as u32);
                    break;
                }
            }
        }
    }

    /// One synchronous hop: every agent within `R` of a currently
    /// informed agent becomes informed.
    fn exchange_one_hop(&mut self) {
        let r = self.config.exchange_radius;
        let hash = SpatialHash::build(&self.positions, r, self.grid.side());
        let bps = hash.buckets_per_side();
        let snapshot = self.informed.clone();
        for i in snapshot.iter_ones() {
            let p = self.positions[i];
            let (bx, by) = hash.bucket_of(p);
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let nx = bx as i64 + dx;
                    let ny = by as i64 + dy;
                    if nx < 0 || ny < 0 || nx >= i64::from(bps) || ny >= i64::from(bps) {
                        continue;
                    }
                    for &j in hash.bucket_agents(nx as u32, ny as u32) {
                        let j = j as usize;
                        if !self.informed.contains(j)
                            && self.positions[j].manhattan(p) <= r
                            && self.informed.insert(j)
                        {
                            self.informed_count += 1;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn cfg(side: u32, k: usize, big_r: u32, rho: u32) -> ClementiConfig {
        ClementiConfig {
            side,
            k,
            exchange_radius: big_r,
            jump_radius: rho,
            max_steps: 1_000_000,
        }
    }

    #[test]
    fn dense_run_completes() {
        let mut rng = SmallRng::seed_from_u64(61);
        let mut sim = ClementiSim::new(&cfg(16, 128, 3, 2), &mut rng).unwrap();
        let out = sim.run(&mut rng);
        assert!(out.completed());
        assert_eq!(out.informed, 128);
    }

    #[test]
    fn one_hop_is_slower_than_flooding_radius() {
        // With R as large as the grid everyone is within one hop:
        // completion at step 0.
        let mut rng = SmallRng::seed_from_u64(62);
        let sim = ClementiSim::new(&cfg(8, 16, 16, 1), &mut rng).unwrap();
        assert!(sim.is_complete());
    }

    #[test]
    fn jumps_stay_within_rho_and_grid() {
        let mut rng = SmallRng::seed_from_u64(63);
        let mut sim = ClementiSim::new(&cfg(32, 64, 1, 5), &mut rng).unwrap();
        for _ in 0..50 {
            let before = sim.positions.clone();
            sim.jump_all(&mut rng);
            for (b, a) in before.iter().zip(&sim.positions) {
                assert!(b.manhattan(*a) <= 5);
                assert!(a.x < 32 && a.y < 32);
            }
        }
    }

    #[test]
    fn informed_count_is_monotone() {
        let mut rng = SmallRng::seed_from_u64(64);
        let mut sim = ClementiSim::new(&cfg(24, 64, 2, 2), &mut rng).unwrap();
        let mut prev = sim.informed_count();
        for _ in 0..500 {
            sim.step(&mut rng);
            assert!(sim.informed_count() >= prev);
            prev = sim.informed_count();
            if sim.is_complete() {
                break;
            }
        }
    }

    #[test]
    fn larger_exchange_radius_is_faster_on_average() {
        let mean = |big_r: u32, seed: u64| {
            let reps = 6;
            let mut total = 0u64;
            for i in 0..reps {
                let mut rng = SmallRng::seed_from_u64(seed + i);
                let mut sim = ClementiSim::new(&cfg(24, 288, big_r, 1), &mut rng).unwrap();
                total += sim.run(&mut rng).broadcast_time.unwrap();
            }
            total as f64 / 6.0
        };
        let slow = mean(1, 70);
        let fast = mean(6, 80);
        assert!(fast < slow, "R=6 mean {fast} not below R=1 mean {slow}");
    }

    #[test]
    fn constructor_validation() {
        let mut rng = SmallRng::seed_from_u64(65);
        assert!(ClementiSim::new(&cfg(0, 8, 1, 1), &mut rng).is_err());
        assert!(ClementiSim::new(&cfg(8, 1, 1, 1), &mut rng).is_err());
        let mut c = cfg(8, 8, 1, 1);
        c.max_steps = 0;
        assert!(ClementiSim::new(&c, &mut rng).is_err());
    }
}
