use core::fmt;

use sparsegossip_grid::GridError;
use sparsegossip_walks::WalkError;

/// Errors arising when configuring or constructing simulations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The underlying grid could not be built.
    Grid(GridError),
    /// The walk engine could not be built.
    Walk(WalkError),
    /// Fewer than two agents were requested — dissemination needs a
    /// source and at least one receiver.
    TooFewAgents {
        /// The requested agent count.
        k: usize,
    },
    /// The rumor source index is not a valid agent index.
    SourceOutOfRange {
        /// The requested source.
        source: usize,
        /// The number of agents.
        k: usize,
    },
    /// A step cap of zero was requested.
    ZeroStepCap,
    /// A process sized for one agent count was driven with another.
    AgentCountMismatch {
        /// The agent count the process was built for.
        process: usize,
        /// The agent count handed to the driver.
        k: usize,
    },
    /// A scenario declared a setting its process kind does not
    /// implement (e.g. gossip with a mobility rule): running it would
    /// silently ignore the setting, so the spec is rejected instead.
    UnsupportedSetting {
        /// The process kind's spec-file name.
        kind: &'static str,
        /// The unsupported setting, in spec-file syntax.
        setting: &'static str,
    },
    /// A world-model setting ([`WorldConfig`](crate::WorldConfig))
    /// holds an out-of-range value, e.g. a churn rate above 1.
    InvalidWorldSetting {
        /// The offending setting, in spec-file syntax.
        key: &'static str,
        /// What the setting accepts.
        expected: &'static str,
    },
    /// A fault-model setting ([`FaultConfig`](crate::FaultConfig))
    /// holds an out-of-range value, e.g. a crash probability above 1.
    InvalidFaultSetting {
        /// The offending setting, in spec-file syntax.
        key: &'static str,
        /// What the setting accepts.
        expected: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Grid(e) => write!(f, "grid construction failed: {e}"),
            Self::Walk(e) => write!(f, "walk engine construction failed: {e}"),
            Self::TooFewAgents { k } => {
                write!(f, "dissemination requires at least 2 agents, got {k}")
            }
            Self::SourceOutOfRange { source, k } => {
                write!(f, "source agent {source} out of range for {k} agents")
            }
            Self::ZeroStepCap => write!(f, "step cap must be positive"),
            Self::AgentCountMismatch { process, k } => {
                write!(f, "process sized for {process} agents driven with {k}")
            }
            Self::UnsupportedSetting { kind, setting } => {
                write!(f, "process {kind:?} does not support {setting}")
            }
            Self::InvalidWorldSetting { key, expected } => {
                write!(f, "world setting {key:?} must be {expected}")
            }
            Self::InvalidFaultSetting { key, expected } => {
                write!(f, "fault setting {key:?} must be {expected}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Grid(e) => Some(e),
            Self::Walk(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GridError> for SimError {
    fn from(e: GridError) -> Self {
        Self::Grid(e)
    }
}

impl From<WalkError> for SimError {
    fn from(e: WalkError) -> Self {
        Self::Walk(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        use std::error::Error;
        let e = SimError::from(GridError::ZeroSide);
        assert!(e.to_string().contains("grid"));
        assert!(e.source().is_some());
        let e = SimError::TooFewAgents { k: 1 };
        assert!(e.to_string().contains("at least 2"));
        assert!(e.source().is_none());
        assert!(SimError::ZeroStepCap.to_string().contains("positive"));
        let e = SimError::UnsupportedSetting {
            kind: "gossip",
            setting: "exchange = \"one-hop\"",
        };
        assert!(e.to_string().contains("gossip"));
        assert!(e.to_string().contains("one-hop"));
        let e = SimError::InvalidWorldSetting {
            key: "churn_rate",
            expected: "finite number in [0, 1]",
        };
        assert!(e.to_string().contains("churn_rate"));
        assert!(e.to_string().contains("[0, 1]"));
        assert!(e.source().is_none());
        let e = SimError::InvalidFaultSetting {
            key: "crash_prob",
            expected: "finite number in [0, 1]",
        };
        assert!(e.to_string().contains("crash_prob"));
        assert!(e.to_string().contains("[0, 1]"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<E: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<SimError>();
    }
}
