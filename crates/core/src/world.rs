//! Richer world models beyond the paper's homogeneous open grid:
//! obstructed (city-block) maps, heterogeneous radio and speed classes,
//! agent churn, and multi-source / adversarial source placement.
//!
//! A [`WorldConfig`] declares the axes; a [`ScenarioSpec`] carries one
//! and gates invalid combinations at build time; the [`Simulation`]
//! driver's `*_in_world_*` constructors install the derived per-agent
//! state; and [`WorldSim`] packages the broadcast run over either
//! topology so sweeps and experiments can stay topology-agnostic.
//!
//! The axes deform the model of Pettarin, Pietracaprina, Pucci and
//! Upfal in ways the theory does not cover — the point is to measure
//! how far the `r_c = √(n/k)` phase transition survives:
//!
//! * **Barriers** ([`barrier_density`](WorldConfig::barrier_density)):
//!   agents walk a [`BarrierGrid::city_blocks`] map and two agents hear
//!   each other only if some axis-aligned L-path between them is fully
//!   open (walls block radio as well as motion).
//! * **Heterogeneous radii**
//!   ([`hetero_fraction`](WorldConfig::hetero_fraction) /
//!   [`hetero_factor`](WorldConfig::hetero_factor)): a leading class of
//!   agents has its radius scaled; contact follows the symmetric
//!   `min(r_i, r_j)` rule of [`WorldContact`].
//! * **Speed classes** ([`speed_fraction`](WorldConfig::speed_fraction)
//!   / [`speed_factor`](WorldConfig::speed_factor)): fast agents take
//!   several lazy sub-steps per time step.
//! * **Churn** ([`churn_rate`](WorldConfig::churn_rate)): each
//!   non-source agent is replaced by a fresh uninformed arrival at a
//!   uniform position with this per-step probability.
//! * **Sources** ([`num_sources`](WorldConfig::num_sources) /
//!   [`adversarial_sources`](WorldConfig::adversarial_sources)): the
//!   rumor starts on the agent prefix `0..num_sources`, optionally all
//!   anchored at the worst-case corner node.
//!
//! # Examples
//!
//! ```
//! use sparsegossip_core::{ProcessKind, ScenarioSpec, WorldSim};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let spec = ScenarioSpec::builder(ProcessKind::Broadcast, 16, 8)
//!     .radius(1)
//!     .barrier_density(0.5)
//!     .churn_rate(0.02)
//!     .build()?;
//! let mut rng = SmallRng::seed_from_u64(7);
//! let mut sim = WorldSim::from_spec(&spec, &mut rng)?;
//! let out = sim.run(&mut rng);
//! assert_eq!(out.k, 8);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use core::ops::ControlFlow;

use rand::RngExt;
use sparsegossip_conngraph::Contact;
use sparsegossip_grid::{BarrierGrid, Grid, Point, Topology};

use crate::{
    Broadcast, BroadcastOutcome, Observer, ProcessKind, ScenarioSpec, SimError, SimScratch,
    Simulation,
};

/// Declarative world-model axes of a scenario; all defaults reproduce
/// the paper's homogeneous open-grid model exactly.
///
/// `Copy` on purpose: a world rides inside every [`ScenarioSpec`] and
/// sweep cell. Multi-source broadcast is therefore a *count* (the
/// sources are the agent prefix `0..num_sources`), not a position list.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorldConfig {
    /// Fraction of each city-block wall that is closed, in `[0, 1]`
    /// (0 = fully open grid; see [`BarrierGrid::city_blocks`]). Walls
    /// obstruct both mobility and radio contact.
    pub barrier_density: f64,
    /// Per-agent, per-step probability of being replaced by a fresh
    /// uninformed arrival at a uniform position, in `[0, 1]`. Sources
    /// (`0..num_sources`) are immortal so the rumor cannot die out.
    pub churn_rate: f64,
    /// Fraction of agents (the leading `⌈f·k⌉`) whose radius is scaled
    /// by [`hetero_factor`](Self::hetero_factor), in `[0, 1]`.
    pub hetero_fraction: f64,
    /// Radius multiplier for the heterogeneous class (`0` makes them
    /// contact-only; must be finite and non-negative).
    pub hetero_factor: f64,
    /// Fraction of agents (the leading `⌈f·k⌉`) taking
    /// [`speed_factor`](Self::speed_factor) lazy sub-steps per step,
    /// in `[0, 1]`.
    pub speed_fraction: f64,
    /// Lazy sub-steps per time step for the fast class (≥ 1).
    pub speed_factor: u32,
    /// Number of initially informed agents — the prefix
    /// `0..num_sources` (≥ 1).
    pub num_sources: usize,
    /// Place every source at the worst-case anchor (the first open node
    /// in row-major order) instead of uniformly at random.
    pub adversarial_sources: bool,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self::DEFAULT
    }
}

impl WorldConfig {
    /// The paper's world: open grid, homogeneous radii, unit speeds, no
    /// churn, one uniformly placed source.
    pub const DEFAULT: Self = Self {
        barrier_density: 0.0,
        churn_rate: 0.0,
        hetero_fraction: 0.0,
        hetero_factor: 1.0,
        speed_fraction: 0.0,
        speed_factor: 1,
        num_sources: 1,
        adversarial_sources: false,
    };

    /// Whether this world is field-for-field the paper's default.
    #[must_use]
    pub fn is_default(&self) -> bool {
        *self == Self::DEFAULT
    }

    /// Whether every axis is semantically inactive (e.g. a declared
    /// hetero class with factor 1 changes nothing), so the driver can
    /// keep the plain homogeneous run path.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        !(self.has_barriers()
            || self.has_churn()
            || self.has_hetero_radii()
            || self.has_speed_classes()
            || self.num_sources > 1
            || self.adversarial_sources)
    }

    /// Whether the barrier axis is active.
    #[must_use]
    pub fn has_barriers(&self) -> bool {
        self.barrier_density > 0.0
    }

    /// Whether the churn axis is active.
    #[must_use]
    pub fn has_churn(&self) -> bool {
        self.churn_rate > 0.0
    }

    /// Whether the heterogeneous-radius axis changes any radius.
    #[must_use]
    pub fn has_hetero_radii(&self) -> bool {
        self.hetero_fraction > 0.0 && self.hetero_factor != 1.0
    }

    /// Whether the speed axis changes any agent's stepping.
    #[must_use]
    pub fn has_speed_classes(&self) -> bool {
        self.speed_fraction > 0.0 && self.speed_factor > 1
    }

    /// Range-checks every axis.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidWorldSetting`] naming the offending key.
    pub fn validate(&self) -> Result<(), SimError> {
        let unit = |key, x: f64| {
            if x.is_finite() && (0.0..=1.0).contains(&x) {
                Ok(())
            } else {
                Err(SimError::InvalidWorldSetting {
                    key,
                    expected: "finite number in [0, 1]",
                })
            }
        };
        unit("barrier_density", self.barrier_density)?;
        unit("churn_rate", self.churn_rate)?;
        unit("hetero_fraction", self.hetero_fraction)?;
        unit("speed_fraction", self.speed_fraction)?;
        if !(self.hetero_factor.is_finite() && self.hetero_factor >= 0.0) {
            return Err(SimError::InvalidWorldSetting {
                key: "hetero_factor",
                expected: "finite non-negative number",
            });
        }
        if self.speed_factor < 1 {
            return Err(SimError::InvalidWorldSetting {
                key: "speed_factor",
                expected: "integer >= 1",
            });
        }
        if self.num_sources < 1 {
            return Err(SimError::InvalidWorldSetting {
                key: "num_sources",
                expected: "integer >= 1",
            });
        }
        Ok(())
    }

    /// The size of the leading class selected by fraction `f` among `k`
    /// agents: `⌈f·k⌉`, clamped to `k`.
    #[must_use]
    pub fn class_size(f: f64, k: usize) -> usize {
        ((f * k as f64).ceil() as usize).min(k)
    }

    /// The per-agent radii under the heterogeneous axis, or `None` when
    /// the axis is inactive. The leading `⌈hetero_fraction·k⌉` agents
    /// get `round(hetero_factor · radius)`, the rest keep `radius`.
    #[must_use]
    pub fn radii(&self, k: usize, radius: u32) -> Option<Vec<u32>> {
        if !self.has_hetero_radii() {
            return None;
        }
        let m = Self::class_size(self.hetero_fraction, k);
        let scaled = (self.hetero_factor * f64::from(radius)).round() as u32;
        let mut radii = vec![radius; k];
        radii[..m].fill(scaled);
        Some(radii)
    }

    /// The per-agent sub-step counts under the speed axis, or `None`
    /// when the axis is inactive.
    #[must_use]
    pub fn speeds(&self, k: usize) -> Option<Vec<u32>> {
        if !self.has_speed_classes() {
            return None;
        }
        let m = Self::class_size(self.speed_fraction, k);
        let mut speeds = vec![1u32; k];
        speeds[..m].fill(self.speed_factor);
        Some(speeds)
    }

    /// Builds the city-block wall map for this world on a `side × side`
    /// grid, or `None` when the barrier axis is inactive.
    ///
    /// # Errors
    ///
    /// As [`BarrierGrid::city_blocks`].
    pub fn build_barriers(&self, side: u32) -> Result<Option<BarrierGrid>, SimError> {
        if !self.has_barriers() {
            return Ok(None);
        }
        Ok(Some(BarrierGrid::city_blocks(side, self.barrier_density)?))
    }
}

/// The world-aware contact model: the symmetric `min(r_i, r_j)` rule
/// over optional per-agent radii, with optional wall-aware
/// line-of-sight (an axis-aligned L-path must be fully open, see
/// [`BarrierGrid::l_path_open`]).
///
/// With neither radii nor walls this is exactly the paper's uniform
/// Manhattan-ball contact, so the driver uses it unconditionally. Build
/// the spatial hash with the **maximum** per-agent radius so the 3×3
/// candidate scan stays a superset of every acceptable pair.
#[derive(Clone, Copy, Debug)]
pub struct WorldContact<'a> {
    radius: u32,
    radii: Option<&'a [u32]>,
    walls: Option<&'a BarrierGrid>,
}

impl<'a> WorldContact<'a> {
    /// A contact model with global `radius`, overridden per agent by
    /// `radii` when present, obstructed by `walls` when present.
    #[must_use]
    pub fn new(radius: u32, radii: Option<&'a [u32]>, walls: Option<&'a BarrierGrid>) -> Self {
        Self {
            radius,
            radii,
            walls,
        }
    }
}

impl Contact for WorldContact<'_> {
    // detlint: hot
    #[inline]
    fn in_contact(&self, a: usize, b: usize, pa: Point, pb: Point) -> bool {
        let r = match self.radii {
            Some(radii) => radii[a].min(radii[b]),
            None => self.radius,
        };
        if pa.manhattan(pb) > r {
            return false;
        }
        match self.walls {
            Some(walls) => walls.l_path_open(pa, pb),
            None => true,
        }
    }
}

/// A broadcast simulation in a declared world, over whichever topology
/// the world requires: the open [`Grid`] or a city-block
/// [`BarrierGrid`]. Built from a validated [`ScenarioSpec`] of kind
/// [`ProcessKind::Broadcast`]; used by the sweep engine, the
/// `exp_worlds` experiment and the churn regression tests so callers
/// never branch on the topology type themselves.
#[derive(Clone, Debug)]
pub enum WorldSim {
    /// The world has no barriers: agents walk the open grid.
    Open(Simulation<Broadcast, Grid>),
    /// The world has city-block walls obstructing motion and contact.
    Walled(Simulation<Broadcast, BarrierGrid>),
}

impl WorldSim {
    /// As [`WorldSim::from_spec`], with a fresh scratch.
    ///
    /// # Errors
    ///
    /// As [`WorldSim::from_spec_with_scratch`].
    pub fn from_spec<R: RngExt>(spec: &ScenarioSpec, rng: &mut R) -> Result<Self, SimError> {
        Self::from_spec_with_scratch(spec, rng, SimScratch::new())
    }

    /// Instantiates the broadcast run a spec describes — topology,
    /// placement, process and world axes — for one seed.
    ///
    /// # Errors
    ///
    /// [`SimError::UnsupportedSetting`] if the spec's kind is not
    /// [`ProcessKind::Broadcast`]; otherwise as the world-aware
    /// [`Simulation`] constructors (a validated spec cannot fail them).
    pub fn from_spec_with_scratch<R: RngExt>(
        spec: &ScenarioSpec,
        rng: &mut R,
        scratch: SimScratch,
    ) -> Result<Self, SimError> {
        if spec.kind() != ProcessKind::Broadcast {
            return Err(SimError::UnsupportedSetting {
                kind: spec.kind().as_str(),
                setting: "WorldSim (broadcast only)",
            });
        }
        let cfg = spec.config();
        let world = spec.world();
        let process = if world.num_sources > 1 {
            Broadcast::with_sources(cfg.k(), world.num_sources)?
        } else {
            Broadcast::new(cfg.k(), cfg.source())?
        }
        .mobility(cfg.mobility())
        .exchange_rule(cfg.exchange_rule());
        if world.has_barriers() {
            let topo = BarrierGrid::city_blocks(cfg.side(), world.barrier_density)?;
            let anchor = topo.first_open().expect("city_blocks maps keep open nodes"); // detlint: allow(panic, NoOpenNodes is rejected at construction)
            build_world_sim(topo, cfg, world, process, anchor, rng, scratch).map(Self::Walled)
        } else {
            let topo = Grid::new(cfg.side())?;
            let anchor = Point::new(0, 0);
            build_world_sim(topo, cfg, world, process, anchor, rng, scratch).map(Self::Open)
        }
    }

    /// Advances one step; see [`Simulation::step`].
    pub fn step<R: RngExt, O: Observer>(
        &mut self,
        rng: &mut R,
        observer: &mut O,
    ) -> ControlFlow<()> {
        match self {
            Self::Open(sim) => sim.step(rng, observer),
            Self::Walled(sim) => sim.step(rng, observer),
        }
    }

    /// Runs to completion or the step cap; see [`Simulation::run`].
    pub fn run<R: RngExt>(&mut self, rng: &mut R) -> BroadcastOutcome {
        match self {
            Self::Open(sim) => sim.run(rng),
            Self::Walled(sim) => sim.run(rng),
        }
    }

    /// Runs with an observer; see [`Simulation::run_with`].
    pub fn run_with<R: RngExt, O: Observer>(
        &mut self,
        rng: &mut R,
        observer: &mut O,
    ) -> BroadcastOutcome {
        match self {
            Self::Open(sim) => sim.run_with(rng, observer),
            Self::Walled(sim) => sim.run_with(rng, observer),
        }
    }

    /// The outcome at the current state.
    pub fn outcome(&self) -> BroadcastOutcome {
        match self {
            Self::Open(sim) => sim.outcome(),
            Self::Walled(sim) => sim.outcome(),
        }
    }

    /// Whether every agent is informed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        match self {
            Self::Open(sim) => sim.is_complete(),
            Self::Walled(sim) => sim.is_complete(),
        }
    }

    /// Steps taken so far.
    #[must_use]
    pub fn time(&self) -> u64 {
        match self {
            Self::Open(sim) => sim.time(),
            Self::Walled(sim) => sim.time(),
        }
    }

    /// The number of agents.
    #[must_use]
    pub fn k(&self) -> usize {
        match self {
            Self::Open(sim) => sim.k(),
            Self::Walled(sim) => sim.k(),
        }
    }

    /// Current agent positions.
    #[must_use]
    pub fn positions(&self) -> &[Point] {
        match self {
            Self::Open(sim) => sim.positions(),
            Self::Walled(sim) => sim.positions(),
        }
    }

    /// The broadcast process state.
    #[must_use]
    pub fn process(&self) -> &Broadcast {
        match self {
            Self::Open(sim) => sim.process(),
            Self::Walled(sim) => sim.process(),
        }
    }

    /// Consumes the simulation, yielding its warmed-up buffers.
    #[must_use]
    pub fn into_scratch(self) -> SimScratch {
        match self {
            Self::Open(sim) => sim.into_scratch(),
            Self::Walled(sim) => sim.into_scratch(),
        }
    }
}

/// Shared topology-generic tail of [`WorldSim`] construction: uniform
/// or adversarial placement, then the world-aware constructor.
fn build_world_sim<T: Topology, R: RngExt>(
    topo: T,
    cfg: &crate::SimConfig,
    world: &WorldConfig,
    process: Broadcast,
    anchor: Point,
    rng: &mut R,
    scratch: SimScratch,
) -> Result<Simulation<Broadcast, T>, SimError> {
    if world.adversarial_sources {
        // Worst-case placement: draw the usual uniform positions (so
        // the non-source draws match the uniform run), then pin every
        // source to the anchor corner.
        let mut positions: Vec<Point> = (0..cfg.k()).map(|_| topo.random_point(rng)).collect();
        for p in positions.iter_mut().take(world.num_sources) {
            *p = anchor;
        }
        Simulation::from_positions_in_world_with_scratch(
            topo,
            positions,
            cfg.radius(),
            cfg.max_steps(),
            process,
            world,
            scratch,
        )
    } else {
        Simulation::new_in_world_with_scratch(
            topo,
            cfg.k(),
            cfg.radius(),
            cfg.max_steps(),
            process,
            world,
            rng,
            scratch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_world_is_trivial_and_valid() {
        let w = WorldConfig::DEFAULT;
        assert!(w.is_default());
        assert!(w.is_trivial());
        w.validate().unwrap();
        assert_eq!(w.radii(8, 3), None);
        assert_eq!(w.speeds(8), None);
        assert!(w.build_barriers(16).unwrap().is_none());
    }

    #[test]
    fn inactive_axes_stay_trivial_but_not_default() {
        // A declared hetero class with factor 1 changes no radius.
        let w = WorldConfig {
            hetero_fraction: 0.5,
            ..WorldConfig::DEFAULT
        };
        assert!(!w.is_default());
        assert!(w.is_trivial());
        assert_eq!(w.radii(8, 3), None);
        let w = WorldConfig {
            speed_fraction: 0.5,
            ..WorldConfig::DEFAULT
        };
        assert!(w.is_trivial());
        assert_eq!(w.speeds(8), None);
    }

    #[test]
    fn validation_rejects_out_of_range_axes() {
        let cases = [
            (
                WorldConfig {
                    barrier_density: 1.5,
                    ..WorldConfig::DEFAULT
                },
                "barrier_density",
            ),
            (
                WorldConfig {
                    churn_rate: -0.1,
                    ..WorldConfig::DEFAULT
                },
                "churn_rate",
            ),
            (
                WorldConfig {
                    hetero_fraction: f64::NAN,
                    ..WorldConfig::DEFAULT
                },
                "hetero_fraction",
            ),
            (
                WorldConfig {
                    hetero_factor: f64::INFINITY,
                    ..WorldConfig::DEFAULT
                },
                "hetero_factor",
            ),
            (
                WorldConfig {
                    speed_fraction: 2.0,
                    ..WorldConfig::DEFAULT
                },
                "speed_fraction",
            ),
            (
                WorldConfig {
                    speed_factor: 0,
                    ..WorldConfig::DEFAULT
                },
                "speed_factor",
            ),
            (
                WorldConfig {
                    num_sources: 0,
                    ..WorldConfig::DEFAULT
                },
                "num_sources",
            ),
        ];
        for (w, key) in cases {
            match w.validate().unwrap_err() {
                SimError::InvalidWorldSetting { key: k, .. } => assert_eq!(k, key),
                other => panic!("expected InvalidWorldSetting, got {other:?}"),
            }
        }
    }

    #[test]
    fn derived_classes_cover_the_leading_prefix() {
        let w = WorldConfig {
            hetero_fraction: 0.5,
            hetero_factor: 2.0,
            speed_fraction: 0.25,
            speed_factor: 3,
            ..WorldConfig::DEFAULT
        };
        assert_eq!(w.radii(4, 3), Some(vec![6, 6, 3, 3]));
        assert_eq!(w.speeds(4), Some(vec![3, 1, 1, 1]));
        // Ceiling: a fraction just above zero still selects one agent.
        let w = WorldConfig {
            hetero_fraction: 0.01,
            hetero_factor: 0.0,
            ..WorldConfig::DEFAULT
        };
        assert_eq!(w.radii(3, 5), Some(vec![0, 5, 5]));
    }

    #[test]
    fn world_contact_reduces_to_uniform_and_respects_walls() {
        let c = WorldContact::new(2, None, None);
        assert!(c.in_contact(0, 1, Point::new(0, 0), Point::new(1, 1)));
        assert!(!c.in_contact(0, 1, Point::new(0, 0), Point::new(2, 1)));
        let radii = [3u32, 0];
        let c = WorldContact::new(2, Some(&radii), None);
        assert!(!c.in_contact(0, 1, Point::new(0, 0), Point::new(0, 1)));
        let walls = BarrierGrid::city_blocks(16, 1.0).unwrap();
        let c = WorldContact::new(16, None, Some(&walls));
        // Find a closed wall node; its open neighbors on either side
        // cannot hear each other through it unless an L-path opens.
        let blocked = Point::new(4, 3); // wall column at x = 4, door at offset 1
        assert!(!walls.is_open(blocked));
        assert!(!c.in_contact(0, 1, Point::new(3, 3), blocked));
        // The door row (offset 1 within each block) stays open.
        assert!(c.in_contact(0, 1, Point::new(3, 1), Point::new(5, 1)));
    }

    #[test]
    fn world_sim_rejects_non_broadcast_kinds() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let spec = ScenarioSpec::builder(ProcessKind::Gossip, 12, 6)
            .build()
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(matches!(
            WorldSim::from_spec(&spec, &mut rng),
            Err(SimError::UnsupportedSetting { .. })
        ));
    }
}
