//! Error-path coverage for the TOML subset parser: unknown sections,
//! type mismatches and malformed arrays must fail with errors that
//! point at the offending section/key — and, for syntax errors, at the
//! exact 1-based line number — so a broken spec file is debuggable
//! from the message alone.

use sparsegossip_core::toml::{TomlDoc, TomlError};
use sparsegossip_core::{ScenarioSpec, SpecError};

#[test]
fn requesting_an_absent_section_reports_it_by_name() {
    let doc = TomlDoc::parse("[other]\nx = 1\n").unwrap();
    let err = doc.section("scenario").unwrap_err();
    assert_eq!(err, TomlError::MissingSection("scenario".to_string()));
    assert_eq!(err.to_string(), "spec is missing the [scenario] section");
    assert!(doc.opt_section("scenario").is_none());
    assert!(doc.opt_section("other").is_some());
}

#[test]
fn type_mismatches_report_section_key_and_expectation() {
    let doc =
        TomlDoc::parse("[scenario]\nside = \"eight\"\nk = 4.5\nname = 7\nflag = 3\nprobs = 1.0\n")
            .unwrap();
    let table = doc.section("scenario").unwrap();
    let cases: [(TomlError, &str); 5] = [
        (
            table.need_u32("side").unwrap_err(),
            "spec key \"side\" in [scenario] must be a non-negative integer fitting u32",
        ),
        (
            table.need_usize("k").unwrap_err(),
            "spec key \"k\" in [scenario] must be a non-negative integer",
        ),
        (
            table.need_str("name").unwrap_err(),
            "spec key \"name\" in [scenario] must be a string",
        ),
        (
            table.opt_bool("flag").unwrap_err(),
            "spec key \"flag\" in [scenario] must be a boolean",
        ),
        (
            table.opt_f64_array("probs").unwrap_err(),
            "spec key \"probs\" in [scenario] must be a array of numbers",
        ),
    ];
    for (err, display) in cases {
        assert!(
            matches!(err, TomlError::BadValue { .. }),
            "expected BadValue, got {err:?}"
        );
        assert_eq!(err.to_string(), display);
    }
    // Negative integers never fit unsigned accessors.
    let doc = TomlDoc::parse("[scenario]\nside = -3\n").unwrap();
    let table = doc.section("scenario").unwrap();
    assert!(matches!(
        table.opt_u32("side"),
        Err(TomlError::BadValue { .. })
    ));
}

#[test]
fn mixed_element_arrays_are_type_mismatches() {
    let doc = TomlDoc::parse("[sweep]\nsides = [1, \"two\", 3]\nprobs = [0.5, true]\n").unwrap();
    let table = doc.section("sweep").unwrap();
    assert!(matches!(
        table.opt_u32_array("sides"),
        Err(TomlError::BadValue { .. })
    ));
    assert!(matches!(
        table.opt_f64_array("probs"),
        Err(TomlError::BadValue { .. })
    ));
}

/// Malformed text must report the exact 1-based line it broke on.
#[test]
fn syntax_errors_carry_the_offending_line_number() {
    let cases = [
        // (spec text, expected failing line)
        ("[scenario]\nside = 8\nradii = [1, 2\n", 3),
        ("[scenario]\nk =\n", 2),
        ("side = 8\n", 1),
        ("[scenario]\nside = 8\n[scenario]\nk = 4\n", 3),
        ("[scenario]\nside = 8\nside = 9\n", 3),
        ("[scenario\nside = 8\n", 1),
        ("[scenario]\n\n\nvalue = \"unterminated\n", 4),
    ];
    for (text, expected_line) in cases {
        match TomlDoc::parse(text) {
            Err(TomlError::Syntax { line, message }) => {
                assert_eq!(
                    line, expected_line,
                    "{text:?} should fail on line {expected_line}, failed on {line}: {message}"
                );
                let rendered = TomlError::Syntax {
                    line,
                    message: message.clone(),
                }
                .to_string();
                assert!(
                    rendered.starts_with(&format!("spec line {expected_line}: ")),
                    "display must lead with the line number: {rendered}"
                );
            }
            other => panic!("{text:?} should be a syntax error, got {other:?}"),
        }
    }
}

/// Every world key rejects type mismatches by key name, out-of-range
/// values through spec validation, and malformed lines with the exact
/// 1-based line number.
#[test]
fn world_keys_report_bad_values_ranges_and_line_numbers() {
    let spec = |tail: &str| format!("[scenario]\nprocess = \"broadcast\"\nside = 8\nk = 4\n{tail}");
    // Type mismatches name the offending world key.
    for key in [
        "barrier_density",
        "churn_rate",
        "hetero_fraction",
        "hetero_factor",
        "speed_fraction",
    ] {
        let err = ScenarioSpec::from_toml_str(&spec(&format!("{key} = \"lots\"\n"))).unwrap_err();
        assert!(
            matches!(
                err,
                SpecError::Toml(TomlError::BadValue { key: ref k, .. }) if k == key
            ),
            "{key}: {err:?}"
        );
    }
    for (key, bad) in [
        ("speed_factor", "2.5"),
        ("num_sources", "-1"),
        ("adversarial_sources", "1"),
    ] {
        let err = ScenarioSpec::from_toml_str(&spec(&format!("{key} = {bad}\n"))).unwrap_err();
        assert!(
            matches!(
                err,
                SpecError::Toml(TomlError::BadValue { key: ref k, .. }) if k == key
            ),
            "{key}: {err:?}"
        );
    }
    // Out-of-range values surface as validation errors naming the key.
    for (tail, key) in [
        ("barrier_density = 1.5\n", "barrier_density"),
        ("churn_rate = -0.1\n", "churn_rate"),
        ("hetero_fraction = 2.0\n", "hetero_fraction"),
        ("hetero_factor = -1.0\n", "hetero_factor"),
        ("speed_factor = 0\n", "speed_factor"),
        ("num_sources = 0\n", "num_sources"),
    ] {
        let err = ScenarioSpec::from_toml_str(&spec(tail)).unwrap_err();
        assert!(err.to_string().contains(key), "{tail}: {err}");
    }
    // A sweep-only axis key in [scenario] is an unknown key.
    let err = ScenarioSpec::from_toml_str(&spec("churn_rates = [0.1]\n")).unwrap_err();
    assert!(
        matches!(err, SpecError::UnknownKey { ref key, .. } if key == "churn_rates"),
        "{err:?}"
    );
    // Malformed barrier/churn lines keep the 1-based line number.
    for (tail, line) in [
        ("barrier_density = [0.1,\n", 5),
        ("churn_rate =\n", 5),
        ("barrier_density = 0.1\nchurn_rate = \"unterminated\n", 6),
    ] {
        match ScenarioSpec::from_toml_str(&spec(tail)) {
            Err(SpecError::Toml(TomlError::Syntax { line: got, .. })) => {
                assert_eq!(got, line, "{tail:?}");
            }
            other => panic!("{tail:?} should be a syntax error, got {other:?}"),
        }
    }
}

/// The scenario layer surfaces parser errors verbatim, so the line
/// number survives up to the user-facing message.
#[test]
fn scenario_parsing_preserves_line_numbers_and_bad_values() {
    let err = ScenarioSpec::from_toml_str("[scenario]\nprocess = \"broadcast\"\nside = [8]\n")
        .unwrap_err();
    assert!(
        matches!(
            err,
            SpecError::Toml(TomlError::BadValue { ref key, .. }) if key == "side"
        ),
        "got {err:?}"
    );
    let err =
        ScenarioSpec::from_toml_str("[scenario]\nprocess = \"broadcast\"\nside 8\n").unwrap_err();
    match err {
        SpecError::Toml(TomlError::Syntax { line, .. }) => assert_eq!(line, 3),
        other => panic!("expected a line-numbered syntax error, got {other:?}"),
    }
    assert!(err.to_string().contains("line 3"));
}
