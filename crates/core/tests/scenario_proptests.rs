//! Property tests pinning the scenario layer's central contract: a
//! [`ScenarioSpec`] validates with **exactly** the rules the
//! [`Simulation`] constructors enforce — no spec can build an invalid
//! simulation, and no input the constructors accept is rejected by the
//! spec builder.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_core::{
    Broadcast, ExchangeRule, Infection, Metric, NetworkConfig, ProcessKind, ScenarioSpec,
    SimConfig, SimError, Simulation, WorldConfig, WorldSim,
};

fn arb_kind() -> impl Strategy<Value = ProcessKind> {
    (0usize..ProcessKind::ALL.len()).prop_map(|i| ProcessKind::ALL[i])
}

/// An optional explicit step cap; 0 encodes "builder default" and the
/// rest shift down so the invalid cap 0 stays reachable.
fn arb_cap() -> impl Strategy<Value = Option<u64>> {
    (0u64..42).prop_map(|x| if x == 0 { None } else { Some(x - 1) })
}

/// Raw, possibly-invalid scenario parameters: sides and agent counts
/// straddle the invalid boundary (0, 1) and sources often exceed `k`.
fn arb_params() -> impl Strategy<Value = (u32, usize, u32, usize)> {
    (0u32..24, 0usize..10, 0u32..60, 0usize..12)
}

/// Raw, possibly-invalid world settings: every numeric axis straddles
/// its valid range (unit intervals overshoot both ends, factors go
/// negative, counts reach 0) so invalid combinations are common.
fn arb_world() -> impl Strategy<Value = WorldConfig> {
    (
        0u32..21,
        0u32..21,
        0u32..21,
        0u32..26,
        0u32..21,
        0u32..4,
        0usize..8,
        any::<bool>(),
    )
        .prop_map(
            |(bd, cr, hf, hx, sf, speed_factor, num_sources, adversarial_sources)| {
                WorldConfig {
                    // Tenth-steps spanning [-0.5, 1.5]: both sides of the
                    // unit interval, hitting 0.0 and 1.0 exactly.
                    barrier_density: f64::from(bd).mul_add(0.1, -0.5),
                    churn_rate: f64::from(cr).mul_add(0.1, -0.5),
                    hetero_fraction: f64::from(hf).mul_add(0.1, -0.5),
                    // Fifth-steps spanning [-1.0, 4.0].
                    hetero_factor: f64::from(hx).mul_add(0.2, -1.0),
                    speed_fraction: f64::from(sf).mul_add(0.1, -0.5),
                    speed_factor,
                    num_sources,
                    adversarial_sources,
                }
            },
        )
}

proptest! {
    /// Pinned both directions, like the axis test below: every world
    /// spec the builder accepts must instantiate through the
    /// constructors, and every rejection must be either the
    /// constructor's own error verbatim or one of the documented
    /// spec-stricter combination gates.
    #[test]
    fn world_spec_validation_equals_constructor_validation(
        kind in arb_kind(),
        side in 4u32..24,
        k in 2usize..10,
        world in arb_world(),
        one_hop in any::<bool>(),
    ) {
        let mut builder = ScenarioSpec::builder(kind, side, k).world(world);
        let one_hop = one_hop && matches!(kind, ProcessKind::Broadcast | ProcessKind::Coverage);
        if one_hop {
            builder = builder.exchange_rule(ExchangeRule::OneHop);
        }
        let axes_active = world.has_barriers()
            || world.has_churn()
            || world.has_hetero_radii()
            || world.has_speed_classes();
        match builder.build() {
            Ok(spec) => {
                // Accepted -> the constructor path accepts it too.
                let mut rng = SmallRng::seed_from_u64(1);
                match kind {
                    ProcessKind::Broadcast => {
                        let built = WorldSim::from_spec(&spec, &mut rng).map(|_| ());
                        prop_assert!(
                            built.is_ok(),
                            "buildable world spec rejected by WorldSim: {:?}",
                            built.unwrap_err()
                        );
                    }
                    ProcessKind::Infection => {
                        prop_assert!(Infection::with_sources(k, world.num_sources).is_ok());
                        prop_assert!(!axes_active, "infection spec accepted world axes");
                    }
                    // Every other kind supports only the trivial world.
                    _ => prop_assert!(spec.world().is_trivial()),
                }
            }
            Err(e) => {
                if let Err(range) = world.validate() {
                    // Range violations are constructor-equivalent:
                    // identical to WorldConfig::validate's own error.
                    prop_assert_eq!(e, range);
                } else {
                    match &e {
                    SimError::SourceOutOfRange { .. } => {
                        // Constructor-equivalent with with_sources.
                        let ctor = match kind {
                            ProcessKind::Broadcast => {
                                Broadcast::with_sources(k, world.num_sources).map(|_| ())
                            }
                            ProcessKind::Infection => {
                                Infection::with_sources(k, world.num_sources).map(|_| ())
                            }
                            other => panic!("source error leaked past {other}'s gate"),
                        };
                        prop_assert_eq!(&e, &ctor.unwrap_err());
                    }
                    SimError::UnsupportedSetting { setting, .. } => {
                        // The documented stricter gates, each reachable
                        // only from its own precondition.
                        // The one-hop gate's message mentions world
                        // axes too — match it first.
                        if setting.contains("one-hop") {
                            prop_assert!(one_hop && kind == ProcessKind::Broadcast);
                            prop_assert!(
                                world.has_barriers()
                                    || world.has_churn()
                                    || world.has_hetero_radii()
                            );
                        } else if setting.contains("world axes") {
                            prop_assert!(kind != ProcessKind::Broadcast && axes_active);
                        } else if setting.contains("source axes") {
                            prop_assert!(!matches!(
                                kind,
                                ProcessKind::Broadcast | ProcessKind::Infection
                            ));
                            prop_assert!(world.num_sources > 1 || world.adversarial_sources);
                        } else {
                            panic!("unexpected unsupported-setting rejection: {e}");
                        }
                    }
                    // A wall density that closes the map: identical to
                    // the constructor's own barrier error.
                    SimError::Grid(_) => {
                        prop_assert_eq!(
                            &e,
                            &world.build_barriers(side).map(|_| ()).unwrap_err()
                        );
                    }
                    other => panic!("unexpected world rejection: {other}"),
                    }
                }
            }
        }
    }
}

proptest! {
    #[test]
    fn spec_validation_equals_simulation_validation(
        kind in arb_kind(),
        (side, k, radius, source) in arb_params(),
        cap in arb_cap(),
    ) {
        let mut spec_builder = ScenarioSpec::builder(kind, side, k)
            .radius(radius)
            .source(source);
        let mut config_builder = SimConfig::builder(side, k).radius(radius).source(source);
        if let Some(cap) = cap {
            spec_builder = spec_builder.max_steps(cap);
            config_builder = config_builder.max_steps(cap);
        }
        let spec = spec_builder.build();
        let config = config_builder.build();
        match (&spec, &config) {
            // Spec and config reject the same inputs with the same
            // error.
            (Err(se), Err(ce)) => prop_assert_eq!(se, ce),
            // The one documented stricter rule reachable from this
            // test's parameter space: infection is contact-only, so
            // the driver would silently force a declared r > 0 to 0 —
            // the spec rejects it instead.
            (Err(SimError::UnsupportedSetting { kind: k_name, .. }), Ok(_)) => {
                prop_assert_eq!(*k_name, "infection");
                prop_assert_eq!(kind, ProcessKind::Infection);
                prop_assert!(radius > 0);
            }
            (Ok(spec), Ok(config)) => {
                prop_assert_eq!(spec.config(), config);
                // A buildable spec always instantiates its simulation:
                // every constructor the spec can route to accepts it.
                let mut rng = SmallRng::seed_from_u64(1);
                let constructed = match kind {
                    ProcessKind::Broadcast => {
                        Simulation::broadcast(config, &mut rng).map(|_| ())
                    }
                    ProcessKind::Gossip => Simulation::gossip(config, &mut rng).map(|_| ()),
                    ProcessKind::Infection => {
                        Simulation::infection(config, &mut rng).map(|_| ())
                    }
                    ProcessKind::Coverage => Simulation::coverage(config, &mut rng).map(|_| ()),
                    ProcessKind::ProtocolBroadcast => {
                        Simulation::protocol_broadcast(config, NetworkConfig::IDEAL, 1, &mut rng)
                            .map(|_| ())
                    }
                };
                prop_assert!(
                    constructed.is_ok(),
                    "{kind}: buildable spec rejected by the constructor: {:?}",
                    constructed.unwrap_err()
                );
            }
            (Ok(_), Err(e)) => panic!("spec accepted input the simulation rejects: {e}"),
            (Err(e), Ok(_)) => panic!("spec rejected input the simulation accepts: {e}"),
        }
    }

    #[test]
    fn with_axes_revalidates_like_a_fresh_build(
        kind in arb_kind(),
        (side, k, radius, source) in arb_params(),
        cap in arb_cap(),
        (side2, k2, radius2) in (1u32..24, 1usize..10, 0u32..60),
    ) {
        let mut builder = ScenarioSpec::builder(kind, side, k).radius(radius).source(source);
        if let Some(cap) = cap {
            builder = builder.max_steps(cap);
        }
        // Only buildable specs can be re-derived.
        if let Ok(spec) = builder.build() {
            let mut fresh =
                ScenarioSpec::builder(kind, side2, k2).radius(radius2).source(source);
            if let Some(cap) = cap {
                fresh = fresh.max_steps(cap);
            }
            match (spec.with_axes(side2, k2, radius2), fresh.build()) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "with_axes differs from a fresh build"),
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => panic!("with_axes {a:?} disagrees with fresh build {b:?}"),
            }
        }
    }

    #[test]
    fn toml_round_trip_preserves_arbitrary_valid_specs(
        kind in arb_kind(),
        side in 1u32..24,
        k in 2usize..10,
        radius in 0u32..60,
        cap in arb_cap(),
        fraction_metric in any::<bool>(),
        frog in any::<bool>(),
        one_hop in any::<bool>(),
        lossy in any::<bool>(),
    ) {
        // Infection is contact-only: nonzero radii are build errors.
        let radius = if kind == ProcessKind::Infection { 0 } else { radius };
        let mut builder = ScenarioSpec::builder(kind, side, k)
            .radius(radius)
            .source(k - 1)
            .metric(if fraction_metric { Metric::Fraction } else { Metric::Time });
        // Only declare settings the kind implements: gossip and the
        // protocol twin support neither, infection has no one-hop
        // exchange, and only the twin takes network faults.
        if frog && !matches!(kind, ProcessKind::Gossip | ProcessKind::ProtocolBroadcast) {
            builder = builder.mobility(sparsegossip_core::Mobility::InformedOnly);
        }
        if lossy && kind == ProcessKind::ProtocolBroadcast {
            builder = builder.network(NetworkConfig::new(0.25, 2, 3, 4).expect("valid network"));
        }
        if one_hop && matches!(kind, ProcessKind::Broadcast | ProcessKind::Coverage) {
            builder = builder.exchange_rule(sparsegossip_core::ExchangeRule::OneHop);
        }
        // Shift the cap away from the invalid 0: this test only wants
        // valid specs.
        if let Some(cap) = cap {
            builder = builder.max_steps(cap + 1);
        }
        let spec = builder.build().expect("parameters are valid by construction");
        let parsed = ScenarioSpec::from_toml_str(&spec.to_toml()).expect("own output parses");
        prop_assert_eq!(spec, parsed);
    }
}
