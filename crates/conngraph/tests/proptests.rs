//! Property-based tests: the spatially-hashed component builder must
//! agree exactly with the O(k²) brute-force reference on arbitrary
//! agent layouts and radii; the seed-restricted builder must agree
//! with the full builder on every seed-containing component; and a
//! hash maintained move by move must equal a fresh build.

use proptest::prelude::*;
use sparsegossip_conngraph::{
    components, components_brute, components_from_seeds, components_into, giant_fraction,
    Components, ComponentsScratch, IslandStats, SpatialHash,
};
use sparsegossip_grid::Point;
use sparsegossip_walks::BitSet;

fn arb_layout() -> impl Strategy<Value = (Vec<Point>, u32, u32)> {
    (1u32..40).prop_flat_map(|side| {
        (
            proptest::collection::vec((0..side, 0..side), 0..60)
                .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect()),
            0u32..50,
            Just(side),
        )
    })
}

/// A layout plus a random seed mask over the agents and a random walk
/// trajectory: per step, each agent draws a u8 — values 0–3 are a
/// clamped unit move N/E/S/W, anything else holds, so an arbitrary
/// subset of the agents moves each step.
fn arb_layout_with_seeds_and_walk(
) -> impl Strategy<Value = (Vec<Point>, u32, u32, Vec<bool>, Vec<Vec<u8>>)> {
    arb_layout().prop_flat_map(|(positions, r, side)| {
        let k = positions.len();
        (
            Just(positions),
            Just(r),
            Just(side),
            proptest::collection::vec(any::<bool>(), k..k + 1),
            proptest::collection::vec(proptest::collection::vec(0u8..10, k..k + 1), 0..8),
        )
    })
}

fn seeds_from_mask(mask: &[bool], k: usize) -> BitSet {
    let mut seeds = BitSet::new(k);
    for (i, &on) in mask.iter().enumerate().take(k) {
        if on {
            seeds.insert(i);
        }
    }
    seeds
}

/// One clamped unit move: direction 0–3 is N/E/S/W, anything else holds.
fn step_point(p: Point, dir: u8, side: u32) -> Point {
    match dir {
        0 if p.y + 1 < side => Point::new(p.x, p.y + 1),
        1 if p.x + 1 < side => Point::new(p.x + 1, p.y),
        2 if p.y > 0 => Point::new(p.x, p.y - 1),
        3 if p.x > 0 => Point::new(p.x - 1, p.y),
        _ => p,
    }
}

/// Bucket-for-bucket hash equality via the mode-independent iterator:
/// dimensions plus every bucket's agent sequence (which also pins the
/// occupied set and the per-bucket increasing order).
fn hashes_equal(a: &SpatialHash, b: &SpatialHash) -> bool {
    if a.bucket_side() != b.bucket_side()
        || a.buckets_per_side() != b.buckets_per_side()
        || a.num_agents() != b.num_agents()
    {
        return false;
    }
    (0..a.buckets_per_side()).all(|by| {
        (0..a.buckets_per_side()).all(|bx| {
            a.bucket_agents_iter(bx, by)
                .eq(b.bucket_agents_iter(bx, by))
        })
    })
}

proptest! {
    #[test]
    fn hashed_equals_brute_force((positions, r, side) in arb_layout()) {
        let fast = components(&positions, r, side);
        let brute = components_brute(&positions, r, side);
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn scratch_reuse_equals_fresh_build(
        (positions_a, r_a, side_a) in arb_layout(),
        (positions_b, r_b, side_b) in arb_layout(),
    ) {
        // One scratch, two arbitrary consecutive builds (different
        // sizes, radii, grids): each must equal the fresh build exactly
        // — stale buffer contents never leak into the partition.
        let mut scratch = ComponentsScratch::new();
        let first = components_into(&mut scratch, &positions_a, r_a, side_a).clone();
        prop_assert_eq!(first, components(&positions_a, r_a, side_a));
        let second = components_into(&mut scratch, &positions_b, r_b, side_b).clone();
        prop_assert_eq!(second, components(&positions_b, r_b, side_b));
    }

    #[test]
    fn partition_is_valid((positions, r, side) in arb_layout()) {
        let c = components(&positions, r, side);
        // Sizes sum to k; every member slice is consistent with labels.
        let total: usize = (0..c.count()).map(|i| c.size(i)).sum();
        prop_assert_eq!(total, positions.len());
        for comp in 0..c.count() {
            prop_assert!(c.size(comp) >= 1);
            for &m in c.members(comp) {
                prop_assert_eq!(c.label_of(m as usize) as usize, comp);
            }
        }
    }

    #[test]
    fn adjacency_implies_same_component((positions, r, side) in arb_layout()) {
        let c = components(&positions, r, side);
        for i in 0..positions.len() {
            for j in i + 1..positions.len() {
                if positions[i].manhattan(positions[j]) <= r {
                    prop_assert_eq!(c.label_of(i), c.label_of(j));
                }
            }
        }
    }

    #[test]
    fn radius_growth_only_merges((positions, r, side) in arb_layout()) {
        // Components at radius r refine components at radius r+1.
        let fine = components(&positions, r, side);
        let coarse = components(&positions, r.saturating_add(1), side);
        prop_assert!(coarse.count() <= fine.count());
        for comp in 0..fine.count() {
            let ms = fine.members(comp);
            let first = coarse.label_of(ms[0] as usize);
            for &m in ms {
                prop_assert_eq!(coarse.label_of(m as usize), first);
            }
        }
        prop_assert!(giant_fraction(&coarse) >= giant_fraction(&fine) - 1e-12);
    }

    #[test]
    fn seeded_labelling_matches_full_on_seed_components(
        (positions, r, side, mask, _walk) in arb_layout_with_seeds_and_walk(),
    ) {
        let k = positions.len();
        let seeds = seeds_from_mask(&mask, k);
        let full = components(&positions, r, side);
        let seeded = components_from_seeds(&positions, &seeds, r, side);
        prop_assert_eq!(seeded.num_agents(), k);

        // Which full components contain a seed?
        let mut full_has_seed = vec![false; full.count()];
        for s in seeds.iter_ones() {
            full_has_seed[full.label_of(s) as usize] = true;
        }
        // The seeded view has exactly one component per seed-containing
        // full component, with an identical member slice, and covers
        // nothing else.
        let covered: Vec<usize> = (0..full.count()).filter(|&c| full_has_seed[c]).collect();
        prop_assert_eq!(seeded.count(), covered.len());
        for (sc, &fc) in covered.iter().enumerate() {
            // Both sides label dense ids in first-agent order, so the
            // c-th seed-containing full component IS the c-th seeded one.
            prop_assert_eq!(seeded.members(sc), full.members(fc));
            prop_assert_eq!(seeded.size(sc), full.size(fc));
            for &m in seeded.members(sc) {
                prop_assert_eq!(seeded.label_of(m as usize) as usize, sc);
            }
        }
        // Uncovered agents carry the sentinel label.
        for i in 0..k {
            let in_seeded = full_has_seed[full.label_of(i) as usize];
            prop_assert_eq!(seeded.is_covered(i), in_seeded);
            if !in_seeded {
                prop_assert_eq!(seeded.label_of(i), Components::NO_LABEL);
            }
        }
    }

    #[test]
    fn incrementally_maintained_hash_equals_fresh_build(
        (positions, r, side, _mask, walk) in arb_layout_with_seeds_and_walk(),
    ) {
        // Maintain the hash move by move along a random trajectory in
        // which an arbitrary subset of the agents moves each step; the
        // result must equal a fresh build at every step — any moved
        // subset, any r including 0.
        let mut positions = positions;
        let mut hash = SpatialHash::build(&positions, r, side);
        for step in &walk {
            let mut moves = Vec::new();
            for (i, &dir) in step.iter().enumerate().take(positions.len()) {
                let from = positions[i];
                let to = step_point(from, dir, side);
                if to != from {
                    positions[i] = to;
                    moves.push((i as u32, from, to));
                }
            }
            hash.apply_moves(&moves);
            prop_assert!(
                hashes_equal(&hash, &SpatialHash::build(&positions, r, side)),
                "maintained hash diverged after {} moves", moves.len()
            );
        }
    }

    #[test]
    fn island_stats_are_consistent((positions, r, side) in arb_layout()) {
        let c = components(&positions, r, side);
        let s = IslandStats::from_components(&c);
        prop_assert_eq!(s.count, c.count());
        prop_assert!(s.max_size <= positions.len());
        prop_assert!(s.singletons <= s.count);
        if s.count > 0 {
            prop_assert!(s.mean_size >= 1.0 - 1e-12);
            prop_assert!(s.mean_size <= s.max_size as f64 + 1e-12);
        }
    }
}
