//! Property-based tests: the spatially-hashed component builder must
//! agree exactly with the O(k²) brute-force reference on arbitrary
//! agent layouts and radii.

use proptest::prelude::*;
use sparsegossip_conngraph::{
    components, components_brute, components_into, giant_fraction, ComponentsScratch, IslandStats,
};
use sparsegossip_grid::Point;

fn arb_layout() -> impl Strategy<Value = (Vec<Point>, u32, u32)> {
    (1u32..40).prop_flat_map(|side| {
        (
            proptest::collection::vec((0..side, 0..side), 0..60)
                .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect()),
            0u32..50,
            Just(side),
        )
    })
}

proptest! {
    #[test]
    fn hashed_equals_brute_force((positions, r, side) in arb_layout()) {
        let fast = components(&positions, r, side);
        let brute = components_brute(&positions, r, side);
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn scratch_reuse_equals_fresh_build(
        (positions_a, r_a, side_a) in arb_layout(),
        (positions_b, r_b, side_b) in arb_layout(),
    ) {
        // One scratch, two arbitrary consecutive builds (different
        // sizes, radii, grids): each must equal the fresh build exactly
        // — stale buffer contents never leak into the partition.
        let mut scratch = ComponentsScratch::new();
        let first = components_into(&mut scratch, &positions_a, r_a, side_a).clone();
        prop_assert_eq!(first, components(&positions_a, r_a, side_a));
        let second = components_into(&mut scratch, &positions_b, r_b, side_b).clone();
        prop_assert_eq!(second, components(&positions_b, r_b, side_b));
    }

    #[test]
    fn partition_is_valid((positions, r, side) in arb_layout()) {
        let c = components(&positions, r, side);
        // Sizes sum to k; every member slice is consistent with labels.
        let total: usize = (0..c.count()).map(|i| c.size(i)).sum();
        prop_assert_eq!(total, positions.len());
        for comp in 0..c.count() {
            prop_assert!(c.size(comp) >= 1);
            for &m in c.members(comp) {
                prop_assert_eq!(c.label_of(m as usize) as usize, comp);
            }
        }
    }

    #[test]
    fn adjacency_implies_same_component((positions, r, side) in arb_layout()) {
        let c = components(&positions, r, side);
        for i in 0..positions.len() {
            for j in i + 1..positions.len() {
                if positions[i].manhattan(positions[j]) <= r {
                    prop_assert_eq!(c.label_of(i), c.label_of(j));
                }
            }
        }
    }

    #[test]
    fn radius_growth_only_merges((positions, r, side) in arb_layout()) {
        // Components at radius r refine components at radius r+1.
        let fine = components(&positions, r, side);
        let coarse = components(&positions, r.saturating_add(1), side);
        prop_assert!(coarse.count() <= fine.count());
        for comp in 0..fine.count() {
            let ms = fine.members(comp);
            let first = coarse.label_of(ms[0] as usize);
            for &m in ms {
                prop_assert_eq!(coarse.label_of(m as usize), first);
            }
        }
        prop_assert!(giant_fraction(&coarse) >= giant_fraction(&fine) - 1e-12);
    }

    #[test]
    fn island_stats_are_consistent((positions, r, side) in arb_layout()) {
        let c = components(&positions, r, side);
        let s = IslandStats::from_components(&c);
        prop_assert_eq!(s.count, c.count());
        prop_assert!(s.max_size <= positions.len());
        prop_assert!(s.singletons <= s.count);
        if s.count > 0 {
            prop_assert!(s.mean_size >= 1.0 - 1e-12);
            prop_assert!(s.mean_size <= s.max_size as f64 + 1e-12);
        }
    }
}
