//! Property-based tests for the percolation diagnostics and the island
//! statistics: monotonicity of the percolation order parameter in `r`,
//! and exact agreement between island summaries and the underlying
//! [`components`] partition on arbitrary configurations.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sparsegossip_conngraph::{
    components, estimate_threshold, giant_fraction, percolation_profile, IslandSampler, IslandStats,
};
use sparsegossip_grid::{Grid, Point, Topology};

fn arb_layout() -> impl Strategy<Value = (Vec<Point>, u32, u32)> {
    (2u32..32).prop_flat_map(|side| {
        (
            proptest::collection::vec((0..side, 0..side), 0..50)
                .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect()),
            0u32..40,
            Just(side),
        )
    })
}

proptest! {
    #[test]
    fn giant_fraction_is_monotone_in_radius(
        (positions, r, side) in arb_layout(),
        step in 1u32..8,
    ) {
        // The order parameter of the transition can only grow when the
        // radius grows on a fixed configuration.
        let fine = components(&positions, r, side);
        let coarse = components(&positions, r.saturating_add(step), side);
        prop_assert!(giant_fraction(&coarse) >= giant_fraction(&fine) - 1e-12);
        prop_assert!(coarse.max_size() >= fine.max_size());
        let f = giant_fraction(&fine);
        prop_assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn percolation_probability_is_monotone_in_radius_same_draws(
        side in 4u32..24,
        k in 1usize..24,
        r_lo in 0u32..16,
        step in 1u32..8,
        samples in 1u32..5,
        seed in 0u64..1000,
    ) {
        // `percolation_profile` draws its placements from the RNG in a
        // fixed order, so re-seeding gives the *same* placements at two
        // radii: the sampled percolation probability (mean giant
        // fraction) must then be monotone in r, sample for sample.
        let grid = Grid::new(side).unwrap();
        let r_hi = r_lo + step;
        let mut rng = SmallRng::seed_from_u64(seed);
        let lo = percolation_profile(&grid, k, &[r_lo], samples, &mut rng);
        let mut rng = SmallRng::seed_from_u64(seed);
        let hi = percolation_profile(&grid, k, &[r_hi], samples, &mut rng);
        prop_assert!(hi[0].mean_giant_fraction >= lo[0].mean_giant_fraction - 1e-12);
        prop_assert!(hi[0].mean_max_size >= lo[0].mean_max_size - 1e-12);
        // Output invariants: fractions in [0, 1], sizes at most k.
        for p in lo.iter().chain(&hi) {
            prop_assert!((0.0..=1.0).contains(&p.mean_giant_fraction));
            prop_assert!(p.mean_max_size <= k as f64 + 1e-12);
            prop_assert!(p.mean_max_size >= if k > 0 { 1.0 - 1e-12 } else { 0.0 });
        }
    }

    #[test]
    fn percolation_profile_is_deterministic_and_aligned(
        side in 4u32..24,
        k in 1usize..24,
        seed in 0u64..1000,
    ) {
        let grid = Grid::new(side).unwrap();
        let radii = [0u32, 2, 5];
        let a = percolation_profile(&grid, k, &radii, 3, &mut SmallRng::seed_from_u64(seed));
        let b = percolation_profile(&grid, k, &radii, 3, &mut SmallRng::seed_from_u64(seed));
        prop_assert_eq!(&a, &b, "same seed must reproduce the profile");
        prop_assert_eq!(a.len(), radii.len());
        for (p, &r) in a.iter().zip(&radii) {
            prop_assert_eq!(p.r, r);
        }
    }

    #[test]
    fn threshold_estimate_is_in_range_and_deterministic(
        side in 4u32..20,
        k in 2usize..16,
        seed in 0u64..500,
    ) {
        let grid = Grid::new(side).unwrap();
        let a = estimate_threshold(&grid, k, 0.5, 3, &mut SmallRng::seed_from_u64(seed));
        let b = estimate_threshold(&grid, k, 0.5, 3, &mut SmallRng::seed_from_u64(seed));
        prop_assert_eq!(a, b, "same seed must reproduce the threshold");
        prop_assert!(a >= 1 && a <= grid.side());
        // Anchor: at radius ≥ the Manhattan diameter 2(side−1) the
        // graph is complete, so the giant fraction is exactly 1.
        let full =
            percolation_profile(&grid, k, &[2 * side], 2, &mut SmallRng::seed_from_u64(seed));
        prop_assert!((full[0].mean_giant_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn island_stats_agree_with_components((positions, r, side) in arb_layout()) {
        let c = components(&positions, r, side);
        let s = IslandStats::from_components(&c);
        // Count, max and singletons recomputed independently from the
        // partition must match the summary exactly.
        prop_assert_eq!(s.count, c.count());
        prop_assert_eq!(s.max_size, c.max_size());
        let singletons = (0..c.count()).filter(|&i| c.size(i) == 1).count();
        prop_assert_eq!(s.singletons, singletons);
        let sizes_total: usize = (0..c.count()).map(|i| c.size(i)).sum();
        prop_assert_eq!(sizes_total, positions.len());
        if c.count() > 0 {
            let mean = sizes_total as f64 / c.count() as f64;
            prop_assert!((s.mean_size - mean).abs() < 1e-12);
        } else {
            prop_assert_eq!(s.mean_size, 0.0);
        }
    }

    #[test]
    fn island_sampler_matches_per_instant_stats(
        (positions_a, r, side) in arb_layout(),
        (positions_b, _r2, _s2) in arb_layout(),
    ) {
        // Clamp the second layout onto the first grid so both instants
        // live on the same domain.
        let positions_b: Vec<Point> = positions_b
            .iter()
            .map(|p| Point::new(p.x % side, p.y % side))
            .collect();
        let mut sampler = IslandSampler::new(r, side);
        let a = sampler.observe(&positions_a);
        let b = sampler.observe(&positions_b);
        // Each observation equals the standalone component statistics.
        prop_assert_eq!(a, IslandStats::from_components(&components(&positions_a, r, side)));
        prop_assert_eq!(b, IslandStats::from_components(&components(&positions_b, r, side)));
        // Running aggregates are exactly the max / mean of what was
        // observed.
        prop_assert_eq!(sampler.samples(), 2);
        prop_assert_eq!(sampler.max_island_ever(), a.max_size.max(b.max_size));
        let mean = (a.max_size + b.max_size) as f64 / 2.0;
        prop_assert!((sampler.mean_max_island() - mean).abs() < 1e-12);
    }
}
