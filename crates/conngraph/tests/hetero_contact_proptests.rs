//! Property tests for the heterogeneous-radius contact model: the
//! spatial-hash candidate filtering (bucket size = max radius, pairs
//! accepted by the symmetric `min(r_i, r_j)` rule) must agree exactly
//! with the O(k²) brute-force reference on arbitrary configurations —
//! including `r = 0` agents — on both the full partition and the
//! frontier-sparse seeded path over an incrementally maintained hash.

use proptest::prelude::*;
use sparsegossip_conngraph::{
    components_brute_by, components_from_seeds_on_by, components_into_by, Components,
    ComponentsScratch, Contact, RadiiContact, SeededScratch, SpatialHash, UniformContact,
};
use sparsegossip_grid::Point;
use sparsegossip_walks::BitSet;

/// Arbitrary side, agent layout, per-agent radii (zeros included) and
/// seed mask.
fn arb_hetero_layout() -> impl Strategy<Value = (Vec<Point>, Vec<u32>, u32, Vec<bool>)> {
    (1u32..40).prop_flat_map(|side| {
        proptest::collection::vec((0..side, 0..side), 0..60).prop_flat_map(move |coords| {
            let k = coords.len();
            let positions: Vec<Point> = coords.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            (
                Just(positions),
                proptest::collection::vec(0u32..12, k..k + 1),
                Just(side),
                proptest::collection::vec(any::<bool>(), k..k + 1),
            )
        })
    })
}

fn seeds_from_mask(mask: &[bool], k: usize) -> BitSet {
    let mut seeds = BitSet::new(k);
    for (i, &on) in mask.iter().enumerate().take(k) {
        if on {
            seeds.insert(i);
        }
    }
    seeds
}

fn max_radius(radii: &[u32]) -> u32 {
    radii.iter().copied().max().unwrap_or(0)
}

proptest! {
    #[test]
    fn hetero_hashed_equals_brute_force(
        (positions, radii, side, _mask) in arb_hetero_layout(),
    ) {
        let contact = RadiiContact(&radii);
        let mut scratch = ComponentsScratch::new();
        let fast =
            components_into_by(&mut scratch, &positions, &contact, max_radius(&radii), side)
                .clone();
        let brute = components_brute_by(&positions, &contact, side);
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn hetero_contact_is_symmetric_and_min_ruled(
        (positions, radii, side, _mask) in arb_hetero_layout(),
    ) {
        let contact = RadiiContact(&radii);
        let c = components_brute_by(&positions, &contact, side);
        for i in 0..positions.len() {
            for j in i + 1..positions.len() {
                let fwd = contact.in_contact(i, j, positions[i], positions[j]);
                let bwd = contact.in_contact(j, i, positions[j], positions[i]);
                prop_assert_eq!(fwd, bwd, "asymmetric contact for ({}, {})", i, j);
                let d = positions[i].manhattan(positions[j]);
                prop_assert_eq!(fwd, d <= radii[i].min(radii[j]));
                if fwd {
                    prop_assert_eq!(c.label_of(i), c.label_of(j));
                }
            }
        }
    }

    #[test]
    fn zero_radius_agents_connect_only_colocated(
        (positions, mut radii, side, _mask) in arb_hetero_layout(),
    ) {
        // Force a zero-radius agent into every non-empty configuration.
        if let Some(first) = radii.first_mut() {
            *first = 0;
        }
        let contact = RadiiContact(&radii);
        let c = components_brute_by(&positions, &contact, side);
        for j in 1..positions.len() {
            if positions[0].manhattan(positions[j]) > 0 {
                // Agent 0 reaches j only through other agents, never
                // directly; at distance > 0 a direct edge is impossible.
                prop_assert!(!contact.in_contact(0, j, positions[0], positions[j]));
            } else {
                prop_assert_eq!(c.label_of(0), c.label_of(j));
            }
        }
    }

    #[test]
    fn hetero_seeded_matches_full_on_seed_components(
        (positions, radii, side, mask) in arb_hetero_layout(),
    ) {
        let k = positions.len();
        let contact = RadiiContact(&radii);
        let seeds = seeds_from_mask(&mask, k);
        let full = components_brute_by(&positions, &contact, side);
        let hash = SpatialHash::build(&positions, max_radius(&radii), side);
        let mut scratch = SeededScratch::new();
        let seeded =
            components_from_seeds_on_by(&hash, &mut scratch, &positions, &seeds, &contact)
                .clone();
        prop_assert_eq!(seeded.num_agents(), k);

        let mut full_has_seed = vec![false; full.count()];
        for s in seeds.iter_ones() {
            full_has_seed[full.label_of(s) as usize] = true;
        }
        let covered: Vec<usize> = (0..full.count()).filter(|&c| full_has_seed[c]).collect();
        prop_assert_eq!(seeded.count(), covered.len());
        for (sc, &fc) in covered.iter().enumerate() {
            prop_assert_eq!(seeded.members(sc), full.members(fc));
        }
        for i in 0..k {
            let in_seeded = full_has_seed[full.label_of(i) as usize];
            prop_assert_eq!(seeded.is_covered(i), in_seeded);
            if !in_seeded {
                prop_assert_eq!(seeded.label_of(i), Components::NO_LABEL);
            }
        }
    }

    #[test]
    fn hetero_seeded_survives_incremental_hash_maintenance(
        (positions, radii, side, mask) in arb_hetero_layout(),
        walk in proptest::collection::vec(proptest::collection::vec(0u8..10, 0..60), 0..6),
    ) {
        // The frontier-sparse production path: a hash maintained move by
        // move (bucket radius = max agent radius) driving the seeded
        // labelling must equal the brute-force partition every step.
        let k = positions.len();
        let contact = RadiiContact(&radii);
        let seeds = seeds_from_mask(&mask, k);
        let r_max = max_radius(&radii);
        let mut positions = positions;
        let mut hash = SpatialHash::build(&positions, r_max, side);
        let mut scratch = SeededScratch::new();
        let mut moves = Vec::new();
        for step in &walk {
            moves.clear();
            for (i, &dir) in step.iter().enumerate().take(k) {
                let from = positions[i];
                let to = match dir {
                    0 if from.y + 1 < side => Point::new(from.x, from.y + 1),
                    1 if from.x + 1 < side => Point::new(from.x + 1, from.y),
                    2 if from.y > 0 => Point::new(from.x, from.y - 1),
                    3 if from.x > 0 => Point::new(from.x - 1, from.y),
                    _ => from,
                };
                if to != from {
                    positions[i] = to;
                    moves.push((i as u32, from, to));
                }
            }
            hash.apply_moves(&moves);
            let seeded =
                components_from_seeds_on_by(&hash, &mut scratch, &positions, &seeds, &contact);
            let full = components_brute_by(&positions, &contact, side);
            for s in seeds.iter_ones() {
                prop_assert_eq!(
                    seeded.members(seeded.label_of(s) as usize),
                    full.members(full.label_of(s) as usize),
                    "seed {} component diverged", s
                );
            }
        }
    }

    #[test]
    fn equal_radii_reduce_to_the_uniform_model(
        (positions, _radii, side, _mask) in arb_hetero_layout(),
        r in 0u32..12,
    ) {
        let radii = vec![r; positions.len()];
        let hetero = components_brute_by(&positions, &RadiiContact(&radii), side);
        let uniform = components_brute_by(&positions, &UniformContact(r), side);
        prop_assert_eq!(hetero, uniform);
    }
}
