use sparsegossip_grid::Point;

use crate::{Contact, SpatialHash, SpatialScratch, UniformContact, UnionFind};

/// The connected components of a visibility graph `G_t(r)`.
///
/// Agents are labelled with dense component ids `0..count`, and the
/// member lists are stored grouped so per-component iteration (the rumor
/// exchange step) is a contiguous slice walk.
///
/// # Examples
///
/// ```
/// use sparsegossip_conngraph::components;
/// use sparsegossip_grid::Point;
///
/// let pts = [Point::new(0, 0), Point::new(2, 0), Point::new(4, 0)];
/// // r = 2: a chain 0—1—2 is a single component.
/// let comps = components(&pts, 2, 16);
/// assert_eq!(comps.count(), 1);
/// assert_eq!(comps.members(0), &[0, 1, 2]);
/// // r = 1: all isolated.
/// assert_eq!(components(&pts, 1, 16).count(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// Dense component id per agent ([`Components::NO_LABEL`] for
    /// agents a seed-restricted build did not cover).
    pub(crate) labels: Vec<u32>,
    /// Component sizes, indexed by component id.
    pub(crate) sizes: Vec<u32>,
    /// Agent indices grouped by component id.
    pub(crate) members: Vec<u32>,
    /// Start offset of each component in `members`; length `count + 1`.
    pub(crate) offsets: Vec<u32>,
}

impl Default for Components {
    /// An empty partition over zero agents.
    fn default() -> Self {
        Self::empty()
    }
}

impl Components {
    /// The label of agents not covered by a seed-restricted build (see
    /// [`components_from_seeds`](crate::components_from_seeds)): their
    /// component was not labelled because it contains no seed.
    pub const NO_LABEL: u32 = u32::MAX;

    /// A shared empty partition over zero agents — the placeholder for
    /// processes that opt out of component building. Being a `const`
    /// reference, handing it out costs no heap allocation.
    pub const EMPTY: &'static Components = &Components {
        labels: Vec::new(),
        sizes: Vec::new(),
        members: Vec::new(),
        offsets: Vec::new(),
    };

    /// An empty partition over zero agents.
    fn empty() -> Self {
        Self {
            labels: Vec::new(),
            sizes: Vec::new(),
            members: Vec::new(),
            offsets: Vec::new(),
        }
    }

    /// Builds the grouped representation from a union–find over agents.
    fn from_union_find(mut uf: UnionFind) -> Self {
        let mut out = Self::empty();
        let mut root_label = Vec::new();
        let mut cursor = Vec::new();
        Self::rebuild(&mut out, &mut uf, &mut root_label, &mut cursor);
        out
    }

    /// Rebuilds `out` in place from `uf`, reusing every buffer
    /// (including the caller-provided `root_label` / `cursor` scratch).
    /// Produces content identical to [`Components::from_union_find`].
    fn rebuild(
        out: &mut Components,
        uf: &mut UnionFind,
        root_label: &mut Vec<u32>,
        cursor: &mut Vec<u32>,
    ) {
        let k = uf.len();
        out.labels.clear();
        out.labels.resize(k, u32::MAX);
        root_label.clear();
        root_label.resize(k, u32::MAX);
        out.sizes.clear();
        // There are at most k components; a one-time reservation keeps
        // later rebuilds allocation-free even when the component count
        // drifts to new maxima mid-run (frozen Frog-model agents
        // splitting off walkers do exactly that).
        out.sizes.reserve(k);
        for (i, label) in out.labels.iter_mut().enumerate() {
            let r = uf.find(i);
            if root_label[r] == u32::MAX {
                root_label[r] = out.sizes.len() as u32;
                out.sizes.push(0);
            }
            let lab = root_label[r];
            *label = lab;
            out.sizes[lab as usize] += 1;
        }
        // Counting sort agents by label.
        out.offsets.clear();
        out.offsets.reserve(k + 1);
        out.offsets.resize(out.sizes.len() + 1, 0);
        for c in 0..out.sizes.len() {
            out.offsets[c + 1] = out.offsets[c] + out.sizes[c];
        }
        cursor.clear();
        cursor.reserve(k + 1);
        cursor.extend_from_slice(&out.offsets);
        out.members.clear();
        out.members.resize(k, 0);
        for (i, &lab) in out.labels.iter().enumerate() {
            out.members[cursor[lab as usize] as usize] = i as u32;
            cursor[lab as usize] += 1;
        }
    }

    /// The number of components.
    #[inline]
    #[must_use]
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// The number of agents.
    #[inline]
    #[must_use]
    pub fn num_agents(&self) -> usize {
        self.labels.len()
    }

    /// The component id of agent `i` — [`Components::NO_LABEL`] if a
    /// seed-restricted build left the agent uncovered.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    #[must_use]
    pub fn label_of(&self, i: usize) -> u32 {
        self.labels[i]
    }

    /// Whether agent `i` belongs to a labelled component. Always true
    /// for a full build; false for agents whose component a
    /// seed-restricted build skipped.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    #[must_use]
    pub fn is_covered(&self, i: usize) -> bool {
        self.labels[i] != Self::NO_LABEL
    }

    /// The size of agent `i`'s component.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    #[must_use]
    pub fn size_of_agent(&self, i: usize) -> usize {
        self.sizes[self.labels[i] as usize] as usize
    }

    /// The size of component `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[inline]
    #[must_use]
    pub fn size(&self, c: usize) -> usize {
        self.sizes[c] as usize
    }

    /// The agents of component `c`, in increasing agent order.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[inline]
    #[must_use]
    pub fn members(&self, c: usize) -> &[u32] {
        let start = self.offsets[c] as usize;
        let end = self.offsets[c + 1] as usize;
        &self.members[start..end]
    }

    /// The size of the largest component (0 for an empty agent set).
    #[must_use]
    pub fn max_size(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0) as usize
    }

    /// Iterates over component member-slices.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        (0..self.count()).map(move |c| self.members(c))
    }

    /// Histogram of component sizes: entry `s` counts components of
    /// size `s` (index 0 is always 0).
    #[must_use]
    pub fn size_histogram(&self) -> Vec<u32> {
        let mut h = vec![0u32; self.max_size() + 1];
        for &s in &self.sizes {
            h[s as usize] += 1;
        }
        h
    }
}

/// Reusable buffers for [`components_into`]: the spatial-hash scratch,
/// the union–find forest, the grouped [`Components`] under construction
/// and the counting-sort cursors.
///
/// One scratch per simulation (or per worker thread) turns the per-step
/// component rebuild — the hot path of every dissemination run — into a
/// clear-and-refill with zero steady-state heap allocation.
///
/// # Examples
///
/// ```
/// use sparsegossip_conngraph::{components, components_into, ComponentsScratch};
/// use sparsegossip_grid::Point;
///
/// let mut scratch = ComponentsScratch::new();
/// let pts = [Point::new(0, 0), Point::new(0, 1), Point::new(9, 9)];
/// for r in [0, 1, 2] {
///     let reused = components_into(&mut scratch, &pts, r, 10);
///     assert_eq!(reused, &components(&pts, r, 10));
/// }
/// ```
#[derive(Clone, Debug, Default)]
pub struct ComponentsScratch {
    pub(crate) spatial: SpatialScratch,
    uf: UnionFind,
    root_label: Vec<u32>,
    cursor: Vec<u32>,
    comps: Components,
    /// Buffers for the seed-restricted labelling entry point
    /// ([`components_from_seeds_into`](crate::components_from_seeds_into)).
    pub(crate) seeded: crate::SeededScratch,
}

impl ComponentsScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the scratch, yielding the most recently built partition.
    #[must_use]
    pub fn into_components(self) -> Components {
        self.comps
    }
}

/// Unions every pair of agents the contact model accepts, scanning
/// each *occupied* bucket pair of the hash exactly once — O(k) bucket
/// work even when the grid has `n ≫ k` buckets (the `r = 0`
/// contact-only regime), where a full-grid sweep would cost O(n).
///
/// The hash's bucket radius must bound the contact model's reach (see
/// the [`Contact`] contract); the homogeneous path monomorphizes to
/// the plain Manhattan test via [`UniformContact`].
///
/// The scan order differs from a row-major sweep, but the union–find
/// partition — and therefore the canonical [`Components`] labelling
/// (dense ids in first-agent order) — is order-independent.
// detlint: hot
fn union_visible_by<C: Contact>(
    hash: &SpatialHash,
    positions: &[Point],
    contact: &C,
    uf: &mut UnionFind,
) {
    let bps = hash.buckets_per_side();
    // Half-neighbourhood scan so each bucket pair is examined once:
    // within-bucket pairs, then (E, N, NE, NW) neighbour buckets.
    const NEIGHBOR_OFFSETS: [(i32, i32); 4] = [(1, 0), (0, 1), (1, 1), (-1, 1)];
    for &bucket in hash.occupied_buckets() {
        let bx = bucket % bps;
        let by = bucket / bps;
        let here = hash.bucket_agents(bx, by);
        for (idx, &a) in here.iter().enumerate() {
            for &b in &here[idx + 1..] {
                if contact.in_contact(
                    a as usize,
                    b as usize,
                    positions[a as usize],
                    positions[b as usize],
                ) {
                    uf.union(a as usize, b as usize);
                }
            }
        }
        for (dx, dy) in NEIGHBOR_OFFSETS {
            let nx = bx as i32 + dx;
            let ny = by as i32 + dy;
            if nx < 0 || ny < 0 || nx >= bps as i32 || ny >= bps as i32 {
                continue;
            }
            let there = hash.bucket_agents(nx as u32, ny as u32);
            for &a in here {
                for &b in there {
                    if contact.in_contact(
                        a as usize,
                        b as usize,
                        positions[a as usize],
                        positions[b as usize],
                    ) {
                        uf.union(a as usize, b as usize);
                    }
                }
            }
        }
    }
}

/// Computes the connected components of `G_t(r)` over `positions` on a
/// grid of the given side, via spatial hashing (O(k) expected in sparse
/// regimes).
///
/// Two agents are adjacent iff their Manhattan distance is ≤ `r`. With
/// `r = 0` agents are adjacent only when co-located, matching the
/// paper's most restricted case.
///
/// Allocates a fresh partition per call; the per-step hot path uses
/// [`components_into`] with a persistent [`ComponentsScratch`] instead.
///
/// # Panics
///
/// Panics if `side == 0` or any position lies outside the grid.
pub fn components(positions: &[Point], r: u32, side: u32) -> Components {
    let mut scratch = ComponentsScratch::new();
    components_into(&mut scratch, positions, r, side);
    scratch.into_components()
}

/// Computes the connected components of `G_t(r)` inside `scratch`,
/// clearing and refilling its buffers (spatial hash, union–find, the
/// grouped partition) instead of allocating, and returns a view of the
/// result.
///
/// Produces a partition identical to [`components`] — same labels, same
/// member order — so a reused scratch is observationally equivalent to
/// a fresh build (the property tests in `tests/proptests.rs` pin this).
/// After warm-up at the working size the rebuild performs zero heap
/// allocations.
///
/// # Panics
///
/// As [`components`].
pub fn components_into<'a>(
    scratch: &'a mut ComponentsScratch,
    positions: &[Point],
    r: u32,
    side: u32,
) -> &'a Components {
    components_into_by(scratch, positions, &UniformContact(r), r, side)
}

/// Computes the connected components of the contact graph inside
/// `scratch`, under an arbitrary [`Contact`] model — the heterogeneous
/// counterpart of [`components_into`].
///
/// `bucket_radius` sizes the spatial-hash buckets and must bound the
/// contact model's reach (the maximum per-agent radius under the
/// `min(r_i, r_j)` rule); `contact` then filters the 3×3 candidate
/// superset pair by pair. With `UniformContact(r)` and
/// `bucket_radius = r` this is exactly [`components_into`].
///
/// # Panics
///
/// As [`components`].
pub fn components_into_by<'a, C: Contact>(
    scratch: &'a mut ComponentsScratch,
    positions: &[Point],
    contact: &C,
    bucket_radius: u32,
    side: u32,
) -> &'a Components {
    let ComponentsScratch {
        spatial,
        uf,
        root_label,
        cursor,
        comps,
        seeded: _,
    } = scratch;
    let hash = SpatialHash::build_into(spatial, positions, bucket_radius, side);
    uf.reset_to(positions.len());
    union_visible_by(hash, positions, contact, uf);
    Components::rebuild(comps, uf, root_label, cursor);
    &*comps
}

/// Computes the connected components over an already-built (or
/// incrementally maintained) `hash` under an arbitrary [`Contact`]
/// model — the full-partition counterpart of
/// [`components_from_seeds_on_by`](crate::components_from_seeds_on_by).
///
/// The `hash` must describe exactly `positions` and its bucket radius
/// must bound the contact model's reach.
///
/// # Panics
///
/// Panics if the hash holds a different number of agents than
/// `positions`.
// detlint: hot
pub fn components_on_by<'a, C: Contact>(
    hash: &SpatialHash,
    scratch: &'a mut ComponentsScratch,
    positions: &[Point],
    contact: &C,
) -> &'a Components {
    assert_eq!(
        hash.num_agents(),
        positions.len(),
        "hash agent count mismatch"
    );
    let ComponentsScratch {
        spatial: _,
        uf,
        root_label,
        cursor,
        comps,
        seeded: _,
    } = scratch;
    uf.reset_to(positions.len());
    union_visible_by(hash, positions, contact, uf);
    Components::rebuild(comps, uf, root_label, cursor);
    &*comps
}

/// Reference implementation of [`components`] by O(k²) pairwise checks.
///
/// Used by tests and available for debugging; produces an identical
/// partition (component ids may be assigned in a different order, but
/// this function normalizes identically by first-agent order).
///
/// # Panics
///
/// Panics if any position lies outside the grid.
pub fn components_brute(positions: &[Point], r: u32, side: u32) -> Components {
    components_brute_by(positions, &UniformContact(r), side)
}

/// Reference implementation of the contact-graph partition by O(k²)
/// pairwise checks under an arbitrary [`Contact`] model — the
/// heterogeneous counterpart of [`components_brute`].
///
/// # Panics
///
/// Panics if any position lies outside the grid.
pub fn components_brute_by<C: Contact>(positions: &[Point], contact: &C, side: u32) -> Components {
    for p in positions {
        assert!(
            p.x < side && p.y < side,
            "position {p} outside side-{side} grid"
        );
    }
    let mut uf = UnionFind::new(positions.len());
    for i in 0..positions.len() {
        for j in i + 1..positions.len() {
            if contact.in_contact(i, j, positions[i], positions[j]) {
                uf.union(i, j);
            }
        }
    }
    Components::from_union_find(uf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_agent_set_has_no_components() {
        let c = components(&[], 1, 8);
        assert_eq!(c.count(), 0);
        assert_eq!(c.num_agents(), 0);
        assert_eq!(c.max_size(), 0);
    }

    #[test]
    fn chain_connectivity_depends_on_radius() {
        let pts = [Point::new(0, 0), Point::new(3, 0), Point::new(6, 0)];
        assert_eq!(components(&pts, 3, 16).count(), 1);
        assert_eq!(components(&pts, 2, 16).count(), 3);
    }

    #[test]
    fn colocated_agents_connect_at_radius_zero() {
        let pts = [Point::new(5, 5), Point::new(5, 5), Point::new(5, 6)];
        let c = components(&pts, 0, 8);
        assert_eq!(c.count(), 2);
        assert_eq!(c.size_of_agent(0), 2);
        assert_eq!(c.label_of(0), c.label_of(1));
        assert_ne!(c.label_of(0), c.label_of(2));
    }

    #[test]
    fn labels_are_dense_and_consistent_with_members() {
        let pts: Vec<Point> = (0..20).map(|i| Point::new(i % 7, i / 7)).collect();
        let c = components(&pts, 1, 8);
        let mut total = 0;
        for comp in 0..c.count() {
            for &m in c.members(comp) {
                assert_eq!(c.label_of(m as usize) as usize, comp);
            }
            assert_eq!(c.members(comp).len(), c.size(comp));
            total += c.size(comp);
        }
        assert_eq!(total, 20);
    }

    #[test]
    fn histogram_counts_components() {
        let pts = [Point::new(0, 0), Point::new(0, 1), Point::new(9, 9)];
        let c = components(&pts, 1, 16);
        let h = c.size_histogram();
        assert_eq!(h[1], 1);
        assert_eq!(h[2], 1);
        assert_eq!(c.iter().count(), 2);
    }

    #[test]
    fn matches_brute_force_on_fixed_layouts() {
        let pts: Vec<Point> = (0..50)
            .map(|i| Point::new((i * 13) % 20, (i * 7) % 20))
            .collect();
        for r in [0u32, 1, 2, 3, 5, 10, 40] {
            let fast = components(&pts, r, 20);
            let brute = components_brute(&pts, r, 20);
            assert_eq!(fast, brute, "partition mismatch at r={r}");
        }
    }

    #[test]
    fn reused_scratch_is_identical_to_fresh_build() {
        let mut scratch = ComponentsScratch::new();
        // Shrinking and growing agent counts between calls exercises the
        // buffer-resizing paths; equality is content-exact (labels,
        // sizes, members, offsets).
        let layouts: [Vec<Point>; 4] = [
            (0..50)
                .map(|i| Point::new((i * 13) % 20, (i * 7) % 20))
                .collect(),
            vec![Point::new(3, 3)],
            (0..200)
                .map(|i| Point::new(i % 20, (i / 20) % 20))
                .collect(),
            Vec::new(),
        ];
        for pts in &layouts {
            for r in [0u32, 1, 3, 10] {
                let fresh = components(pts, r, 20);
                let reused = components_into(&mut scratch, pts, r, 20);
                assert_eq!(reused, &fresh, "k={} r={r}", pts.len());
            }
        }
    }

    #[test]
    fn diagonal_pairs_respect_manhattan_not_chebyshev() {
        // (0,0) and (1,1): Manhattan 2, Chebyshev 1. They must NOT be
        // adjacent at r=1 even though they share a 3×3 bucket patch.
        let pts = [Point::new(0, 0), Point::new(1, 1)];
        assert_eq!(components(&pts, 1, 8).count(), 2);
        assert_eq!(components(&pts, 2, 8).count(), 1);
    }
}
