use sparsegossip_grid::Point;

use crate::{SpatialHash, UnionFind};

/// The connected components of a visibility graph `G_t(r)`.
///
/// Agents are labelled with dense component ids `0..count`, and the
/// member lists are stored grouped so per-component iteration (the rumor
/// exchange step) is a contiguous slice walk.
///
/// # Examples
///
/// ```
/// use sparsegossip_conngraph::components;
/// use sparsegossip_grid::Point;
///
/// let pts = [Point::new(0, 0), Point::new(2, 0), Point::new(4, 0)];
/// // r = 2: a chain 0—1—2 is a single component.
/// let comps = components(&pts, 2, 16);
/// assert_eq!(comps.count(), 1);
/// assert_eq!(comps.members(0), &[0, 1, 2]);
/// // r = 1: all isolated.
/// assert_eq!(components(&pts, 1, 16).count(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// Dense component id per agent.
    labels: Vec<u32>,
    /// Component sizes, indexed by component id.
    sizes: Vec<u32>,
    /// Agent indices grouped by component id.
    members: Vec<u32>,
    /// Start offset of each component in `members`; length `count + 1`.
    offsets: Vec<u32>,
}

impl Components {
    /// Builds the grouped representation from a union–find over agents.
    fn from_union_find(mut uf: UnionFind) -> Self {
        let k = uf.len();
        let mut labels = vec![u32::MAX; k];
        let mut root_label = vec![u32::MAX; k];
        let mut sizes = Vec::new();
        for (i, label) in labels.iter_mut().enumerate() {
            let r = uf.find(i);
            if root_label[r] == u32::MAX {
                root_label[r] = sizes.len() as u32;
                sizes.push(0);
            }
            let lab = root_label[r];
            *label = lab;
            sizes[lab as usize] += 1;
        }
        // Counting sort agents by label.
        let mut offsets = vec![0u32; sizes.len() + 1];
        for (c, &s) in sizes.iter().enumerate() {
            offsets[c + 1] = offsets[c] + s;
        }
        let mut cursor = offsets.clone();
        let mut members = vec![0u32; k];
        for (i, &lab) in labels.iter().enumerate() {
            members[cursor[lab as usize] as usize] = i as u32;
            cursor[lab as usize] += 1;
        }
        Self {
            labels,
            sizes,
            members,
            offsets,
        }
    }

    /// The number of components.
    #[inline]
    #[must_use]
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// The number of agents.
    #[inline]
    #[must_use]
    pub fn num_agents(&self) -> usize {
        self.labels.len()
    }

    /// The component id of agent `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    #[must_use]
    pub fn label_of(&self, i: usize) -> u32 {
        self.labels[i]
    }

    /// The size of agent `i`'s component.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    #[must_use]
    pub fn size_of_agent(&self, i: usize) -> usize {
        self.sizes[self.labels[i] as usize] as usize
    }

    /// The size of component `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[inline]
    #[must_use]
    pub fn size(&self, c: usize) -> usize {
        self.sizes[c] as usize
    }

    /// The agents of component `c`, in increasing agent order.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[inline]
    #[must_use]
    pub fn members(&self, c: usize) -> &[u32] {
        let start = self.offsets[c] as usize;
        let end = self.offsets[c + 1] as usize;
        &self.members[start..end]
    }

    /// The size of the largest component (0 for an empty agent set).
    #[must_use]
    pub fn max_size(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0) as usize
    }

    /// Iterates over component member-slices.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        (0..self.count()).map(move |c| self.members(c))
    }

    /// Histogram of component sizes: entry `s` counts components of
    /// size `s` (index 0 is always 0).
    #[must_use]
    pub fn size_histogram(&self) -> Vec<u32> {
        let mut h = vec![0u32; self.max_size() + 1];
        for &s in &self.sizes {
            h[s as usize] += 1;
        }
        h
    }
}

/// Computes the connected components of `G_t(r)` over `positions` on a
/// grid of the given side, via spatial hashing (O(k) expected in sparse
/// regimes).
///
/// Two agents are adjacent iff their Manhattan distance is ≤ `r`. With
/// `r = 0` agents are adjacent only when co-located, matching the
/// paper's most restricted case.
///
/// # Panics
///
/// Panics if `side == 0` or any position lies outside the grid.
pub fn components(positions: &[Point], r: u32, side: u32) -> Components {
    let hash = SpatialHash::build(positions, r, side);
    let mut uf = UnionFind::new(positions.len());
    let bps = hash.buckets_per_side();
    // Half-neighbourhood scan so each bucket pair is examined once:
    // within-bucket pairs, then (E, N, NE, NW) neighbour buckets.
    const NEIGHBOR_OFFSETS: [(i32, i32); 4] = [(1, 0), (0, 1), (1, 1), (-1, 1)];
    for by in 0..bps {
        for bx in 0..bps {
            let here = hash.bucket_agents(bx, by);
            for (idx, &a) in here.iter().enumerate() {
                for &b in &here[idx + 1..] {
                    if positions[a as usize].manhattan(positions[b as usize]) <= r {
                        uf.union(a as usize, b as usize);
                    }
                }
            }
            for (dx, dy) in NEIGHBOR_OFFSETS {
                let nx = bx as i32 + dx;
                let ny = by as i32 + dy;
                if nx < 0 || ny < 0 || nx >= bps as i32 || ny >= bps as i32 {
                    continue;
                }
                let there = hash.bucket_agents(nx as u32, ny as u32);
                for &a in here {
                    for &b in there {
                        if positions[a as usize].manhattan(positions[b as usize]) <= r {
                            uf.union(a as usize, b as usize);
                        }
                    }
                }
            }
        }
    }
    Components::from_union_find(uf)
}

/// Reference implementation of [`components`] by O(k²) pairwise checks.
///
/// Used by tests and available for debugging; produces an identical
/// partition (component ids may be assigned in a different order, but
/// this function normalizes identically by first-agent order).
///
/// # Panics
///
/// Panics if any position lies outside the grid.
pub fn components_brute(positions: &[Point], r: u32, side: u32) -> Components {
    for p in positions {
        assert!(
            p.x < side && p.y < side,
            "position {p} outside side-{side} grid"
        );
    }
    let mut uf = UnionFind::new(positions.len());
    for i in 0..positions.len() {
        for j in i + 1..positions.len() {
            if positions[i].manhattan(positions[j]) <= r {
                uf.union(i, j);
            }
        }
    }
    Components::from_union_find(uf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_agent_set_has_no_components() {
        let c = components(&[], 1, 8);
        assert_eq!(c.count(), 0);
        assert_eq!(c.num_agents(), 0);
        assert_eq!(c.max_size(), 0);
    }

    #[test]
    fn chain_connectivity_depends_on_radius() {
        let pts = [Point::new(0, 0), Point::new(3, 0), Point::new(6, 0)];
        assert_eq!(components(&pts, 3, 16).count(), 1);
        assert_eq!(components(&pts, 2, 16).count(), 3);
    }

    #[test]
    fn colocated_agents_connect_at_radius_zero() {
        let pts = [Point::new(5, 5), Point::new(5, 5), Point::new(5, 6)];
        let c = components(&pts, 0, 8);
        assert_eq!(c.count(), 2);
        assert_eq!(c.size_of_agent(0), 2);
        assert_eq!(c.label_of(0), c.label_of(1));
        assert_ne!(c.label_of(0), c.label_of(2));
    }

    #[test]
    fn labels_are_dense_and_consistent_with_members() {
        let pts: Vec<Point> = (0..20).map(|i| Point::new(i % 7, i / 7)).collect();
        let c = components(&pts, 1, 8);
        let mut total = 0;
        for comp in 0..c.count() {
            for &m in c.members(comp) {
                assert_eq!(c.label_of(m as usize) as usize, comp);
            }
            assert_eq!(c.members(comp).len(), c.size(comp));
            total += c.size(comp);
        }
        assert_eq!(total, 20);
    }

    #[test]
    fn histogram_counts_components() {
        let pts = [Point::new(0, 0), Point::new(0, 1), Point::new(9, 9)];
        let c = components(&pts, 1, 16);
        let h = c.size_histogram();
        assert_eq!(h[1], 1);
        assert_eq!(h[2], 1);
        assert_eq!(c.iter().count(), 2);
    }

    #[test]
    fn matches_brute_force_on_fixed_layouts() {
        let pts: Vec<Point> = (0..50)
            .map(|i| Point::new((i * 13) % 20, (i * 7) % 20))
            .collect();
        for r in [0u32, 1, 2, 3, 5, 10, 40] {
            let fast = components(&pts, r, 20);
            let brute = components_brute(&pts, r, 20);
            assert_eq!(fast, brute, "partition mismatch at r={r}");
        }
    }

    #[test]
    fn diagonal_pairs_respect_manhattan_not_chebyshev() {
        // (0,0) and (1,1): Manhattan 2, Chebyshev 1. They must NOT be
        // adjacent at r=1 even though they share a 3×3 bucket patch.
        let pts = [Point::new(0, 0), Point::new(1, 1)];
        assert_eq!(components(&pts, 1, 8).count(), 2);
        assert_eq!(components(&pts, 2, 8).count(), 1);
    }
}
