/// Disjoint-set forest with path halving and union by size.
///
/// The workhorse behind per-step component computation: `k` makes and at
/// most `O(k)` unions per step, each effectively O(α(k)).
///
/// # Examples
///
/// ```
/// use sparsegossip_conngraph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.size(0), 2);
/// assert_eq!(uf.count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    count: usize,
}

impl Default for UnionFind {
    /// An empty forest, ready to be sized with
    /// [`reset_to`](UnionFind::reset_to).
    fn default() -> Self {
        Self::new(0)
    }
}

impl UnionFind {
    /// Creates `n` singleton sets.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(
            n <= u32::MAX as usize,
            "element count {n} exceeds u32 range"
        );
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            count: n,
        }
    }

    /// The number of elements.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether there are no elements.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The number of disjoint sets.
    #[inline]
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// The representative of `x`'s set (with path halving).
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    #[inline]
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.count -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// The size of `x`'s set.
    pub fn size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Resets every element to a singleton (reusing the allocation).
    pub fn reset(&mut self) {
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p = i as u32;
        }
        self.size.fill(1);
        self.count = self.parent.len();
    }

    /// Resizes to `n` singleton sets, reusing the existing allocations —
    /// the scratch-reuse entry point behind
    /// [`components_into`](crate::components_into). After this call the
    /// forest is indistinguishable from `UnionFind::new(n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX`.
    pub fn reset_to(&mut self, n: usize) {
        assert!(
            n <= u32::MAX as usize,
            "element count {n} exceeds u32 range"
        );
        self.parent.clear();
        self.parent.extend(0..n as u32);
        self.size.clear();
        self.size.resize(n, 1);
        self.count = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_at_start() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.count(), 5);
        assert_eq!(uf.len(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.size(i), 1);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already joined");
        assert_eq!(uf.count(), 4);
        assert_eq!(uf.size(2), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn transitive_closure_over_chain() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.count(), 1);
        assert!(uf.connected(0, n - 1));
        assert_eq!(uf.size(500), n);
    }

    #[test]
    fn reset_restores_singletons() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 3);
        uf.reset();
        assert_eq!(uf.count(), 4);
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.size(3), 1);
    }

    #[test]
    fn reset_to_matches_fresh_forest() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.reset_to(6);
        assert_eq!(uf.len(), 6);
        assert_eq!(uf.count(), 6);
        for i in 0..6 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.size(i), 1);
        }
        // Shrinking works too.
        uf.union(4, 5);
        uf.reset_to(2);
        assert_eq!(uf.len(), 2);
        assert_eq!(uf.count(), 2);
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn empty_forest_is_fine() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.count(), 0);
    }
}
