use rand::RngExt;
use sparsegossip_grid::{Grid, Point, Topology};

use crate::{components, Components};

/// The critical transmission radius `r_c ≈ √(n/k)` below which
/// `G_t(r)` has no giant component (Penrose; Peres et al.).
///
/// # Examples
///
/// ```
/// use sparsegossip_conngraph::critical_radius;
/// assert_eq!(critical_radius(10_000.0, 100.0), 10.0);
/// ```
#[must_use]
pub fn critical_radius(n: f64, k: f64) -> f64 {
    (n / k).sqrt()
}

/// The fraction of agents in the largest component, in `[0, 1]`.
///
/// The order parameter of the percolation transition: ~`O(log k / k)`
/// below `r_c`, bounded away from 0 above.
#[must_use]
pub fn giant_fraction(c: &Components) -> f64 {
    if c.num_agents() == 0 {
        0.0
    } else {
        c.max_size() as f64 / c.num_agents() as f64
    }
}

/// One point of a percolation profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PercolationPoint {
    /// Transmission radius probed.
    pub r: u32,
    /// Mean (over samples) fraction of agents in the largest component.
    pub mean_giant_fraction: f64,
    /// Mean (over samples) size of the largest component.
    pub mean_max_size: f64,
}

/// Measures the giant-component fraction at each radius in `radii`,
/// averaging over `samples` independent uniform placements of `k`
/// agents.
///
/// Fresh uniform placements are statistically identical to snapshots of
/// the walking system (uniformity is stationary), so this profiles the
/// percolation behaviour of `G_t(r)` without simulating motion.
///
/// # Panics
///
/// Panics if `samples == 0`.
///
/// # Examples
///
/// ```
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
/// use sparsegossip_grid::Grid;
/// use sparsegossip_conngraph::percolation_profile;
///
/// let grid = Grid::new(64)?;
/// let mut rng = SmallRng::seed_from_u64(5);
/// let profile = percolation_profile(&grid, 64, &[1, 8, 64], 5, &mut rng);
/// // Giant fraction grows with r.
/// assert!(profile[0].mean_giant_fraction <= profile[2].mean_giant_fraction);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn percolation_profile<R: RngExt>(
    grid: &Grid,
    k: usize,
    radii: &[u32],
    samples: u32,
    rng: &mut R,
) -> Vec<PercolationPoint> {
    assert!(samples > 0, "at least one sample required");
    let mut out = Vec::with_capacity(radii.len());
    for &r in radii {
        let mut frac_total = 0.0;
        let mut size_total = 0.0;
        for _ in 0..samples {
            let positions: Vec<Point> = (0..k).map(|_| grid.random_point(rng)).collect();
            let c = components(&positions, r, grid.side());
            frac_total += giant_fraction(&c);
            size_total += c.max_size() as f64;
        }
        out.push(PercolationPoint {
            r,
            mean_giant_fraction: frac_total / f64::from(samples),
            mean_max_size: size_total / f64::from(samples),
        });
    }
    out
}

/// Estimates the percolation threshold: the smallest radius whose mean
/// giant-component fraction reaches `target`, found by bisection over
/// `[0, side]`.
///
/// Returns the radius in grid steps. With `target = 0.5` this lands
/// near `r_c ≈ √(n/k)` up to the constant the asymptotic hides.
///
/// # Panics
///
/// Panics if `samples == 0` or `target` is not in `(0, 1)`.
pub fn estimate_threshold<R: RngExt>(
    grid: &Grid,
    k: usize,
    target: f64,
    samples: u32,
    rng: &mut R,
) -> u32 {
    assert!(samples > 0, "at least one sample required");
    assert!(target > 0.0 && target < 1.0, "target must be in (0, 1)");
    let mut lo = 0u32; // fraction(lo) < target assumed
    let mut hi = grid.side(); // whole grid is one component: fraction 1
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        let p = percolation_profile(grid, k, &[mid], samples, rng);
        if p[0].mean_giant_fraction >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn critical_radius_closed_form() {
        assert!((critical_radius(256.0 * 256.0, 64.0) - 32.0).abs() < 1e-9);
    }

    #[test]
    fn giant_fraction_bounds() {
        let pts = [Point::new(0, 0), Point::new(0, 1), Point::new(9, 9)];
        let c = components(&pts, 1, 16);
        let f = giant_fraction(&c);
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(giant_fraction(&components(&[], 1, 16)), 0.0);
    }

    #[test]
    fn profile_is_monotone_in_radius_on_average() {
        let grid = Grid::new(32).unwrap();
        let mut rng = SmallRng::seed_from_u64(21);
        let p = percolation_profile(&grid, 32, &[0, 2, 8, 32], 20, &mut rng);
        for w in p.windows(2) {
            assert!(
                w[0].mean_giant_fraction <= w[1].mean_giant_fraction + 0.05,
                "giant fraction not monotone: {w:?}"
            );
        }
        // Radius = side connects everything.
        assert!((p[3].mean_giant_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_is_near_sqrt_n_over_k() {
        let grid = Grid::new(64).unwrap();
        let k = 64usize;
        let mut rng = SmallRng::seed_from_u64(22);
        let rc = critical_radius(grid.num_nodes() as f64, k as f64); // = 8
        let est = estimate_threshold(&grid, k, 0.5, 20, &mut rng);
        // The constant in r_c ≈ √(n/k) is model-dependent; accept a
        // factor-4 window around the asymptotic prediction.
        assert!(
            (f64::from(est)) > rc / 4.0 && f64::from(est) < rc * 4.0,
            "estimated threshold {est} too far from r_c={rc}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn profile_rejects_zero_samples() {
        let grid = Grid::new(8).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = percolation_profile(&grid, 4, &[1], 0, &mut rng);
    }
}
